// wtam_router — shard router fronting a fleet of wtam_serve workers.
//
// Speaks the same NDJSON protocol as wtam_serve on stdin/stdout, so any
// wtam_serve client can point at the router unchanged. Jobs shard by
// cache identity (the job's first RequestKey hashes to a worker), so
// resubmissions land on the worker that cached them; responses come
// back as workers finish (possibly out of submission order) with the
// client's ids restored. Workers that die are respawned and their
// in-flight jobs replayed — at-least-once delivery over idempotent
// solves, so the client still sees exactly one response per job.
//
// Control verbs fan out to every worker and the acks merge (numbers
// sum, "ok" ANDs; merged stats/metrics add the router's own counters
// as a "router" section / serve.router.* names). Router-specific verbs:
//   {"op": "kill_worker", "worker": i}  — SIGKILL worker i (crash-
//                                         recovery test hook; acks
//                                         after the respawn completes)
//   {"op": "shutdown"}                  — drain the fleet, merged ack,
//                                         exit 0; EOF = same, no ack
// {"op": "metrics", "format": "prometheus"} is refused (merged text
// expositions are not well-defined); use the JSON form.
//
// Options:
//   --workers N        fleet size (default 2)
//   --serve PATH       wtam_serve binary (default: next to this binary,
//                      falling back to PATH lookup)
//   --queue-limit N    per-worker in-flight cap: jobs beyond it are shed
//                      with status "overloaded" (0 = never shed)
//   --cache-file P     per-worker warm-boot persistence: worker i loads/
//                      saves P.w<i> (sharding keys by worker keeps each
//                      file disjoint, so save/load round-trips the fleet)
//   --worker-threads N forwarded to each worker as --threads
//   --cache-mb M       forwarded to each worker
//   --no-cache         forwarded to each worker
//   --timing / --trace forwarded to each worker
//   --quiet            no banner, no respawn notices on stderr
//
// Exit status: 0 on clean shutdown/EOF, 1 when the fleet cannot boot,
// 2 on usage errors.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "serve/router.hpp"

namespace {

using namespace wtam;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error) std::cerr << "error: " << error << "\n\n";
  std::cerr
      << "usage: wtam_router [--workers N] [--serve PATH] [--queue-limit N]\n"
         "                   [--cache-file PATH] [--worker-threads N]\n"
         "                   [--cache-mb M] [--no-cache] [--timing] "
         "[--trace]\n"
         "                   [--quiet]\n"
         "NDJSON protocol on stdin/stdout; see README (Fleet serving).\n";
  std::exit(2);
}

/// Default worker binary: wtam_serve next to this executable (the
/// normal build-tree layout), else bare "wtam_serve" for PATH lookup.
std::string default_serve_path(const char* argv0) {
  const std::string self = argv0;
  const std::size_t slash = self.find_last_of('/');
  if (slash == std::string::npos) return "wtam_serve";
  return self.substr(0, slash + 1) + "wtam_serve";
}

}  // namespace

int main(int argc, char** argv) {
  int workers = 2;
  std::string serve_path;
  std::string cache_file;
  std::uint64_t queue_limit = 0;
  int worker_threads = 0;
  int cache_mb = -1;  // -1 = worker default
  bool no_cache = false;
  bool timing = false;
  bool trace = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--workers") {
      workers = std::atoi(value());
      if (workers < 1) usage("--workers must be >= 1");
    } else if (arg == "--serve") {
      serve_path = value();
      if (serve_path.empty()) usage("--serve needs a non-empty path");
    } else if (arg == "--queue-limit") {
      const int limit = std::atoi(value());
      if (limit < 0) usage("--queue-limit must be >= 0 (0 = never shed)");
      queue_limit = static_cast<std::uint64_t>(limit);
    } else if (arg == "--cache-file") {
      cache_file = value();
      if (cache_file.empty()) usage("--cache-file needs a non-empty path");
    } else if (arg == "--worker-threads") {
      worker_threads = std::atoi(value());
      if (worker_threads < 0) usage("--worker-threads must be >= 0");
    } else if (arg == "--cache-mb") {
      cache_mb = std::atoi(value());
      if (cache_mb < 0) usage("--cache-mb must be >= 0");
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  if (serve_path.empty()) serve_path = default_serve_path(argv[0]);

  serve::RouterOptions options;
  options.queue_limit = queue_limit;
  for (int w = 0; w < workers; ++w) {
    std::vector<std::string> command = {serve_path, "--quiet"};
    if (worker_threads > 0) {
      command.push_back("--threads");
      command.push_back(std::to_string(worker_threads));
    }
    if (cache_mb >= 0) {
      command.push_back("--cache-mb");
      command.push_back(std::to_string(cache_mb));
    }
    if (no_cache) command.push_back("--no-cache");
    if (!cache_file.empty()) {
      // Disjoint per-worker snapshots: sharding pins each key to one
      // worker, so P.w0..P.w<N-1> partition the fleet's cache.
      command.push_back("--cache-file");
      command.push_back(cache_file + ".w" + std::to_string(w));
    }
    if (timing) command.push_back("--timing");
    if (trace) command.push_back("--trace");
    options.worker_commands.push_back(std::move(command));
  }

  // The router serializes sink calls, so plain cout is line-safe here.
  const auto sink = [](const std::string& line) {
    std::cout << line << '\n' << std::flush;
  };
  const auto diag = [quiet](const std::string& message) {
    if (!quiet) std::cerr << "wtam_router: " << message << "\n";
  };

  try {
    serve::Router router(std::move(options), sink, diag);
    if (!quiet)
      std::cerr << "wtam_router: ready (" << router.workers()
                << " workers via " << serve_path
                << "); one JSON request per line, {\"op\": \"shutdown\"} "
                   "to stop\n";
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      if (!router.handle_line(line)) return 0;
    }
    router.shutdown();  // EOF: drain the fleet silently
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "wtam_router: fleet failed to start: " << e.what() << "\n";
    return 1;
  }
}
