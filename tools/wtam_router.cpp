// wtam_router — shard router fronting a fleet of wtam_serve workers.
//
// Speaks the same NDJSON protocol as wtam_serve on stdin/stdout, so any
// wtam_serve client can point at the router unchanged. Workers are
// local subprocesses (spawned from --serve) and/or remote `wtam_serve
// --listen` endpoints (--worker host:port), mixed freely in one fleet.
// Jobs shard by cache identity (the job's first RequestKey hashes to a
// worker), so resubmissions land on the worker that cached them;
// responses come back as workers finish (possibly out of submission
// order) with the client's ids restored. Workers that die are respawned
// (local) or reconnected with backoff (remote) and their in-flight jobs
// replayed — at-least-once delivery over idempotent solves, so the
// client still sees exactly one response per job. With --ping-interval,
// a health thread also catches hung-but-not-exited workers: a missed
// pong severs the worker, which recovers through the same replay path.
//
// Control verbs fan out to every worker and the acks merge (numbers
// sum, "ok" ANDs; merged stats/metrics add the router's own counters
// as a "router" section / serve.router.* names; {"op": "metrics",
// "format": "prometheus"} renders the merged snapshot as Prometheus
// text in a "body" field). Router-specific verbs:
//   {"op": "ping"}                      — router liveness (answers
//                                         itself, echoes "seq")
//   {"op": "kill_worker", "worker": i}  — sever worker i (crash-
//                                         recovery test hook; acks
//                                         after the respawn completes)
//   {"op": "resize", "workers": M}      — hot re-shard: drain, stop the
//                                         old fleet, re-hash every
//                                         persisted cache entry to its
//                                         new owner's P.w<i> snapshot,
//                                         boot M workers
//   {"op": "shutdown"}                  — drain the fleet, merged ack,
//                                         exit 0; EOF = same, no ack
//
// Options:
//   --workers N        local fleet size (default 2 when no --worker
//                      endpoints are given, else 0)
//   --worker HOST:PORT remote worker endpoint (repeatable); remote
//                      workers fill the first slots, locals follow
//   --serve PATH       wtam_serve binary (default: next to this binary,
//                      falling back to PATH lookup)
//   --queue-limit N    per-worker in-flight cap: jobs beyond it are shed
//                      with status "overloaded" (0 = never shed)
//   --cache-file P     per-LOCAL-worker warm-boot persistence: local
//                      worker i loads/saves P.w<i> (sharding keys by
//                      worker keeps each file disjoint, so save/load
//                      round-trips the fleet); resize re-shards these
//   --ping-interval MS health-check cadence (0 = off, the default)
//   --ping-deadline MS missed-pong threshold (default 2000)
//   --worker-threads N forwarded to each local worker as --threads
//   --cache-mb M       forwarded to each local worker
//   --no-cache         forwarded to each local worker
//   --timing / --trace forwarded to each local worker
//   --quiet            no banner, no respawn notices on stderr
//
// Exit status: 0 on clean shutdown/EOF, 1 when the fleet cannot boot,
// 2 on usage errors.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/endpoint.hpp"
#include "serve/router.hpp"

namespace {

using namespace wtam;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error) std::cerr << "error: " << error << "\n\n";
  std::cerr
      << "usage: wtam_router [--workers N] [--worker HOST:PORT]...\n"
         "                   [--serve PATH] [--queue-limit N]\n"
         "                   [--cache-file PATH] [--ping-interval MS]\n"
         "                   [--ping-deadline MS] [--worker-threads N]\n"
         "                   [--cache-mb M] [--no-cache] [--timing] "
         "[--trace]\n"
         "                   [--quiet]\n"
         "NDJSON protocol on stdin/stdout; see README (Fleet serving).\n";
  std::exit(2);
}

/// Default worker binary: wtam_serve next to this executable (the
/// normal build-tree layout), else bare "wtam_serve" for PATH lookup.
std::string default_serve_path(const char* argv0) {
  const std::string self = argv0;
  const std::size_t slash = self.find_last_of('/');
  if (slash == std::string::npos) return "wtam_serve";
  return self.substr(0, slash + 1) + "wtam_serve";
}

}  // namespace

int main(int argc, char** argv) {
  int workers = -1;  // -1 = default (2 local, or 0 once --worker is given)
  std::vector<std::string> endpoints;
  std::string serve_path;
  std::string cache_file;
  std::uint64_t queue_limit = 0;
  int ping_interval_ms = 0;
  int ping_deadline_ms = 2000;
  int worker_threads = 0;
  int cache_mb = -1;  // -1 = worker default
  bool no_cache = false;
  bool timing = false;
  bool trace = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--workers") {
      workers = std::atoi(value());
      if (workers < 0) usage("--workers must be >= 0");
    } else if (arg == "--worker") {
      const std::string endpoint = value();
      try {
        (void)net::parse_endpoint(endpoint);  // fail at flag-parse time
      } catch (const std::exception& e) {
        usage(e.what());
      }
      endpoints.push_back(endpoint);
    } else if (arg == "--serve") {
      serve_path = value();
      if (serve_path.empty()) usage("--serve needs a non-empty path");
    } else if (arg == "--queue-limit") {
      const int limit = std::atoi(value());
      if (limit < 0) usage("--queue-limit must be >= 0 (0 = never shed)");
      queue_limit = static_cast<std::uint64_t>(limit);
    } else if (arg == "--cache-file") {
      cache_file = value();
      if (cache_file.empty()) usage("--cache-file needs a non-empty path");
    } else if (arg == "--ping-interval") {
      ping_interval_ms = std::atoi(value());
      if (ping_interval_ms < 0) usage("--ping-interval must be >= 0 (0 = off)");
    } else if (arg == "--ping-deadline") {
      ping_deadline_ms = std::atoi(value());
      if (ping_deadline_ms < 1) usage("--ping-deadline must be >= 1");
    } else if (arg == "--worker-threads") {
      worker_threads = std::atoi(value());
      if (worker_threads < 0) usage("--worker-threads must be >= 0");
    } else if (arg == "--cache-mb") {
      cache_mb = std::atoi(value());
      if (cache_mb < 0) usage("--cache-mb must be >= 0");
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  if (workers < 0) workers = endpoints.empty() ? 2 : 0;
  if (workers == 0 && endpoints.empty())
    usage("the fleet needs at least one worker (--workers or --worker)");
  if (serve_path.empty()) serve_path = default_serve_path(argv[0]);

  // Fleet composition for a given size, used both for the initial boot
  // and for the resize verb: remote endpoints pin the first slots (a
  // resize cannot conjure new hosts, so they persist across sizes as
  // long as M covers them), local workers fill the rest. Local worker
  // slot w gets the disjoint snapshot P.w<w> — sharding pins each key
  // to one worker, so the P.w* files partition the fleet's cache and
  // resize can re-deal them.
  const auto fleet_factory =
      [endpoints, serve_path, worker_threads, cache_mb, no_cache, cache_file,
       timing, trace](std::size_t count) {
        if (count < endpoints.size())
          throw std::runtime_error(
              "cannot shrink below the " + std::to_string(endpoints.size()) +
              " remote worker(s) pinned by --worker");
        std::vector<serve::WorkerSpec> specs;
        specs.reserve(count);
        for (const std::string& endpoint : endpoints)
          specs.push_back(serve::WorkerSpec::connect(endpoint));
        for (std::size_t w = specs.size(); w < count; ++w) {
          std::vector<std::string> command = {serve_path, "--quiet"};
          if (worker_threads > 0) {
            command.push_back("--threads");
            command.push_back(std::to_string(worker_threads));
          }
          if (cache_mb >= 0) {
            command.push_back("--cache-mb");
            command.push_back(std::to_string(cache_mb));
          }
          if (no_cache) command.push_back("--no-cache");
          std::string snapshot;
          if (!cache_file.empty()) {
            snapshot = cache_file + ".w" + std::to_string(w);
            command.push_back("--cache-file");
            command.push_back(snapshot);
          }
          if (timing) command.push_back("--timing");
          if (trace) command.push_back("--trace");
          specs.push_back(
              serve::WorkerSpec::local(std::move(command), std::move(snapshot)));
        }
        return specs;
      };

  serve::RouterOptions options;
  options.queue_limit = queue_limit;
  options.ping_interval = std::chrono::milliseconds(ping_interval_ms);
  options.ping_deadline = std::chrono::milliseconds(ping_deadline_ms);
  options.workers =
      fleet_factory(endpoints.size() + static_cast<std::size_t>(workers));
  options.fleet_factory = fleet_factory;

  // The router serializes sink calls, so plain cout is line-safe here.
  const auto sink = [](const std::string& line) {
    std::cout << line << '\n' << std::flush;
  };
  const auto diag = [quiet](const std::string& message) {
    if (!quiet) std::cerr << "wtam_router: " << message << "\n";
  };

  try {
    serve::Router router(std::move(options), sink, diag);
    if (!quiet)
      std::cerr << "wtam_router: ready (" << router.workers() << " workers: "
                << endpoints.size() << " remote, " << workers << " local via "
                << serve_path
                << "); one JSON request per line, {\"op\": \"shutdown\"} "
                   "to stop\n";
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      if (!router.handle_line(line)) return 0;
    }
    router.shutdown();  // EOF: drain the fleet silently
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "wtam_router: fleet failed to start: " << e.what() << "\n";
    return 1;
  }
}
