#!/usr/bin/env python3
"""CI gate for the constrained bench_backends section (ISSUE-10).

Reads BENCH_backends.json and fails when any constrained point regressed
past a generous per-point wall-clock ceiling, or produced an invalid
schedule. The ceiling is deliberately loose — CI runners are noisy, so
this is a cliff detector (the 10x constrained-vs-unconstrained gap the
incremental power timeline removed), not a tight perf pin; the JSON is
uploaded as an artifact so humans can track the actual trend.

Usage: check_bench_constrained.py BENCH_backends.json [--max-cpu-s 2.5]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", type=Path, help="BENCH_backends.json")
    parser.add_argument(
        "--max-cpu-s",
        type=float,
        default=2.5,
        help="per-point CPU ceiling in seconds (default: %(default)s)",
    )
    args = parser.parse_args()

    document = json.loads(args.json_path.read_text())
    constrained = document.get("constrained")
    if not constrained:
        print("FAIL: no 'constrained' section in", args.json_path)
        return 1

    failures = []
    for point in constrained:
        label = "{soc}/{backend}/{variant}".format(**point)
        cpu_s = float(point["cpu_s"])
        line = f"  {label:45s} cpu {cpu_s:8.3f}s  T={point['testing_time']}"
        if not point.get("schedule_valid", False):
            failures.append(f"{label}: schedule_valid is false")
            line += "  INVALID"
        if cpu_s > args.max_cpu_s:
            failures.append(
                f"{label}: cpu {cpu_s:.3f}s exceeds the "
                f"{args.max_cpu_s:.1f}s ceiling"
            )
            line += "  OVER CEILING"
        print(line)

    if failures:
        print(f"FAIL: {len(failures)} constrained point(s) out of bounds:")
        for failure in failures:
            print("  -", failure)
        return 1
    print(
        f"OK: {len(constrained)} constrained points within the "
        f"{args.max_cpu_s:.1f}s ceiling"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
