// Fixture: printing from library code — results travel through return
// values and detail lines; only tools own the terminal.
// (Never compiled; scanned by tools/wtam_lint.py --self-test.)

#include <iostream>

namespace fixture {

void report_progress(int done, int total) {
  std::cout << "progress " << done << "/" << total << "\n";
}

}  // namespace fixture
