// Fixture: implementation-defined randomness in a determinism path —
// library code must draw from the pinned RNG streams (common/rng.hpp).
// (Never compiled; scanned by tools/wtam_lint.py --self-test.)

#include <cstdlib>

namespace fixture {

int pick_seed_ordering(int count) {
  return std::rand() % count;
}

}  // namespace fixture
