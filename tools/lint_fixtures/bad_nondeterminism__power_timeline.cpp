// Fixture: a PowerTimeline-shaped structure (src/core/power.hpp) that
// breaks earliest-fit ties with std::rand() — the constrained packers'
// golden testing times pin byte-identical probes, so any
// implementation-defined randomness here is a determinism bug. Must
// trigger exactly the nondeterminism rule. (Never compiled; scanned by
// wtam_lint --self-test.)

#include <cstdint>
#include <cstdlib>
#include <vector>

namespace fixture {

class JitteredTimeline {
 public:
  std::int64_t earliest_fit(std::int64_t from) const {
    for (const auto& point : points_)
      if (point.time >= from && point.load == 0)
        return point.time + std::rand() % 2;
    return from;
  }

 private:
  struct Breakpoint {
    std::int64_t time = 0;
    std::int64_t load = 0;
  };
  std::vector<Breakpoint> points_;
};

}  // namespace fixture
