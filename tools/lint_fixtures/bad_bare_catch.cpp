// Fixture: catch (...) with no justification anywhere near it.
// (Never compiled; scanned by tools/wtam_lint.py --self-test.)

namespace fixture {

int run(int (*risky)());

int shield(int (*risky)()) {
  int value = 0;

  try {
    value = risky();
  } catch (...) {
    value = -1;
  }
  return value;
}

}  // namespace fixture
