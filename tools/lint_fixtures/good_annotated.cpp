// Fixture: what passing code looks like — annotated Mutex, justified
// catch (...), and a reasoned waiver.
// (Never compiled; scanned by tools/wtam_lint.py --self-test.)

#include "common/thread_annotations.hpp"

namespace fixture {

class Counter {
 public:
  void bump() {
    const wtam::common::MutexLock lock(mutex_);
    ++count_;
  }

  void bump_noexcept() {
    try {
      bump();
    } catch (...) {
      // Justified: callers require noexcept progress accounting; a lost
      // increment is preferable to terminating the worker.
    }
  }

 private:
  wtam::common::Mutex mutex_;
  int count_ WTAM_GUARDED_BY(mutex_) = 0;
  // wtam-lint: allow(unannotated-mutex) — guards only the stream state
  wtam::common::Mutex waived_;
};

}  // namespace fixture
