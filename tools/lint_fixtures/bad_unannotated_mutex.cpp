// Fixture: a Mutex member in a file that never says what it guards —
// the whole point of the wrappers is the WTAM_GUARDED_BY annotations.
// (Never compiled; scanned by tools/wtam_lint.py --self-test.)

#include "common/thread_annotations.hpp"

namespace fixture {

class Counter {
 public:
  void bump() {
    const wtam::common::MutexLock lock(mutex_);
    ++count_;
  }

 private:
  wtam::common::Mutex mutex_;
  int count_ = 0;
};

}  // namespace fixture
