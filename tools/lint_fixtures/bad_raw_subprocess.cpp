// Fixture: spawns a process directly instead of going through
// common::Subprocess — must trigger exactly [raw-subprocess].

#include <unistd.h>

int bad_spawn() {
  const int child = fork();
  if (child == 0) {
    execlp("true", "true", nullptr);
    _exit(127);
  }
  return child;
}
