// Fixture: a PowerTimeline-shaped structure (src/core/power.hpp) that
// narrates its coalescing to stdout — library code must stay silent so
// the packers' hot path and the NDJSON serving tier own their streams.
// Must trigger exactly the library-io rule. (Never compiled; scanned by
// wtam_lint --self-test.)

#include <cstdint>
#include <iostream>
#include <vector>

namespace fixture {

class ChattyTimeline {
 public:
  void add(std::int64_t start, std::int64_t end, std::int64_t load) {
    points_.push_back({start, load});
    points_.push_back({end, 0});
    std::cout << "timeline now has " << points_.size() << " breakpoints\n";
  }

 private:
  struct Breakpoint {
    std::int64_t time = 0;
    std::int64_t load = 0;
  };
  std::vector<Breakpoint> points_;
};

}  // namespace fixture
