// Fixture: raw std locking primitives must be rejected — the annotated
// wrappers in src/common/thread_annotations.hpp are the house primitives.
// (Never compiled; scanned by tools/wtam_lint.py --self-test.)

#include <mutex>

namespace fixture {

class Counter {
 public:
  void bump() {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++count_;
  }

 private:
  std::mutex mutex_;
  int count_ = 0;
};

}  // namespace fixture
