// Deliberately-bad fixture: raw socket syscalls outside src/net/. The
// transport layer (net::Listener/net::Connection) is the only
// sanctioned socket site — it owns SIGPIPE, EINTR retries, framing
// bounds, and shutdown semantics.

#include <sys/socket.h>

int open_raw_socket() {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);  // bad: bare socket(2)
  char byte = 0;
  (void)::recv(fd, &byte, 1, 0);  // bad: ::-qualified syscall too
  ::shutdown(fd, SHUT_RDWR);      // bad: collision-prone name, :: form
  return fd;
}
