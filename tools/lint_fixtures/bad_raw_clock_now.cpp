// Deliberately-bad fixture: reads the monotonic clock directly instead
// of going through common::steady_now()/Stopwatch (src/common/timer.hpp).
// Must trigger exactly the raw-clock-now rule.

#include <chrono>

long long raw_clock_read() {
  const auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count();
}
