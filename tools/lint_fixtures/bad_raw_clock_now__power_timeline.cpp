// Fixture: a PowerTimeline-shaped structure (src/core/power.hpp) whose
// add() timestamps breakpoints off the raw monotonic clock instead of
// the caller-supplied cycle times — exactly the nondeterministic clock
// read the timeline's determinism pins forbid. Must trigger exactly the
// raw-clock-now rule. (Never compiled; scanned by wtam_lint --self-test.)

#include <chrono>
#include <cstdint>
#include <vector>

namespace fixture {

class StampedTimeline {
 public:
  void add(std::int64_t load) {
    const auto now = std::chrono::steady_clock::now();
    points_.push_back({now.time_since_epoch().count(), load});
  }

 private:
  struct Breakpoint {
    std::int64_t time = 0;
    std::int64_t load = 0;
  };
  std::vector<Breakpoint> points_;
};

}  // namespace fixture
