#!/usr/bin/env python3
"""wtam_lint — fast repo-invariant linter for house rules.

Generic tools (clang-tidy, -Wthread-safety, TSan) cannot express the
repo-specific discipline, so this linter enforces it mechanically:

  raw-mutex          std::mutex / std::condition_variable / std::lock_guard /
                     std::unique_lock / std::scoped_lock are banned outside
                     src/common/thread_annotations.hpp — use the annotated
                     common::Mutex / MutexLock / CondVar so Clang's
                     -Wthread-safety can see every lock.          [src, tools]
  unannotated-mutex  a file that declares a Mutex member must annotate what
                     it guards (at least one WTAM_GUARDED_BY /
                     WTAM_PT_GUARDED_BY / WTAM_REQUIRES).         [src, tools]
  nondeterminism     no std::rand/srand/random_device/mt19937/
                     default_random_engine, no time(NULL)/clock()/
                     gettimeofday/system_clock: results must be reproducible
                     bit for bit, so only the pinned RNG streams
                     (common/rng.hpp) and steady_clock deadlines are
                     allowed.                                     [src]
  library-io         no std::cout/std::cerr/printf in library code; the
                     library reports through return values — tools own the
                     terminal.                                    [src]
  raw-clock-now      no raw std::chrono::*_clock::now() outside
                     src/common/timer.hpp (common::steady_now/Stopwatch)
                     and src/core/time_provider.hpp — one sanctioned
                     clock read keeps timing mockable and the
                     nondeterminism surface auditable.            [src, tools]
  bare-catch         catch (...) must carry a justification comment on the
                     same line, the line above, or the first two lines of
                     the handler: swallowing everything is sometimes right,
                     but never silently.                          [src, tools]
  raw-subprocess     fork/vfork/exec*/popen/system are banned outside
                     src/common/subprocess.* — spawn children through
                     common::Subprocess, which owns the fd hygiene,
                     SIGPIPE, exec-failure reporting, and reaping.
                                                                  [src, tools]
  raw-socket         socket syscalls (socket/bind/listen/accept/connect/
                     send/recv/getaddrinfo/...) are banned outside
                     src/net/ — talk through net::Listener /
                     net::Connection, which own SIGPIPE, EINTR retries,
                     framing bounds, and shutdown semantics.      [src, tools]

A finding can be waived on its line (or the line above) with
    // wtam-lint: allow(<rule>) — <reason>
and the reason is mandatory by convention (reviewed like a NOLINT).

Usage:
    wtam_lint.py --root /path/to/repo [--self-test]

--self-test first checks the deliberately-bad fixtures under
tools/lint_fixtures/ (each bad_<rule>.cpp — or bad_<rule>__<variant>.cpp
for extra shapes of the same rule — must trigger exactly its rule;
good_*.cpp must be clean), proving the rules still fire, then scans the
tree. Exit status: 0 clean, 1 findings or fixture mismatch, 2 usage.
"""

import argparse
import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h"}

ANNOTATION_HEADER = Path("src") / "common" / "thread_annotations.hpp"

ALLOW_RE = re.compile(r"//\s*wtam-lint:\s*allow\(([a-z-]+)\)")

# Line-level patterns per rule. Each entry: (rule, compiled regex, message).
RAW_MUTEX_RE = re.compile(
    r"std::(mutex|condition_variable(_any)?|lock_guard|unique_lock|"
    r"scoped_lock)\b")
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:wtam::)?(?:common::)?Mutex\s+\w+\s*;")
ANNOTATED_RE = re.compile(
    r"WTAM_(PT_)?GUARDED_BY|WTAM_REQUIRES")
NONDETERMINISM_RES = [
    (re.compile(r"std::rand\b|(?<![\w.:>])s?rand\s*\("),
     "std::rand/srand — use the pinned RNG streams (common/rng.hpp)"),
    (re.compile(r"\brandom_device\b|\bdefault_random_engine\b|\bmt19937"),
     "implementation-defined RNG — use common::Rng (pinned streams)"),
    (re.compile(r"(?<![\w.:>])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "wall-clock time() — determinism paths must not read the clock"),
    (re.compile(r"(?<![\w.:>])gettimeofday\s*\("),
     "gettimeofday — determinism paths must not read the clock"),
    (re.compile(r"(?<![\w.:>])clock\s*\(\s*\)"),
     "clock() — use common::Stopwatch (steady_clock) for timing"),
    (re.compile(r"\bsystem_clock\b"),
     "system_clock — wall-clock dates are nondeterministic; use "
     "steady_clock"),
]
LIBRARY_IO_RE = re.compile(r"std::(cout|cerr)\b|(?<![\w.:>])f?printf\s*\(")
RAW_CLOCK_RE = re.compile(
    r"\b(steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\(")
# The only files allowed to read a clock directly: the sanctioned
# steady_now()/Stopwatch seam and the mockable deadline provider.
CLOCK_ALLOWED = {
    str(Path("src") / "common" / "timer.hpp"),
    str(Path("src") / "core" / "time_provider.hpp"),
}
BARE_CATCH_RE = re.compile(r"catch\s*\(\s*\.\.\.\s*\)")
# Process-spawning primitives: bare calls (`fork(`), explicitly global
# (`::fork(`), and std::system. Matching deliberately skips member/
# qualified names like soc.fork( or my::popen( — the rule is about the
# libc spawners.
_SPAWN_NAMES = r"(?:v?fork|execl|execlp|execle|execv|execvp|execvpe|popen|system)"
RAW_SUBPROCESS_RE = re.compile(
    r"(?:(?<![\w.:>])" + _SPAWN_NAMES +
    r"|(?<!\w)::" + _SPAWN_NAMES +
    r"|std::system)\s*\(")
# The only files allowed to spawn processes directly.
SUBPROCESS_ALLOWED = {
    str(Path("src") / "common" / "subprocess.hpp"),
    str(Path("src") / "common" / "subprocess.cpp"),
}
# Socket syscalls. Unambiguous names match bare or ::-qualified; names
# that are also common identifiers (bind/listen/connect/send/recv/
# shutdown — think std::bind, a `listen` flag, Router::shutdown()) only
# match with an explicit :: so the rule cannot misfire on member calls
# or declarations. src/net uses the :: spelling throughout, so the
# syscalls themselves never slip past.
_SOCKET_SAFE_NAMES = (
    r"(?:socketpair|socket|accept4?|getaddrinfo|freeaddrinfo|getsockname|"
    r"getpeername|setsockopt|getsockopt|recvfrom|recvmsg|sendto|sendmsg|"
    r"inet_ntop|inet_pton)")
_SOCKET_RISKY_NAMES = r"(?:bind|listen|connect|send|recv|shutdown)"
RAW_SOCKET_RE = re.compile(
    r"(?:(?<![\w.:>])" + _SOCKET_SAFE_NAMES +
    r"|(?<!\w)::" + _SOCKET_SAFE_NAMES +
    r"|(?<!\w)::" + _SOCKET_RISKY_NAMES +
    r")\s*\(")
# The only directory allowed to touch sockets directly.
NET_ALLOWED_PREFIX = str(Path("src") / "net") + "/"
COMMENT_RE = re.compile(r"//|/\*")


def is_comment_or_string_heavy(line):
    """True when the matchable part of the line is inside a // comment."""
    # Cheap heuristic: strip everything after // (string literals with //
    # are rare in this codebase and the rules are substring-ish anyway).
    return line.lstrip().startswith("//")


def strip_line_comment(line):
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def allowed(lines, idx, rule):
    """Waiver on the finding's line or the line above."""
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = ALLOW_RE.search(lines[probe])
            if m and m.group(1) == rule:
                return True
    return False


def lint_file(path, rel, lines, scopes):
    """Yields (rel, line_number, rule, message) findings.

    `scopes` is the set of rule groups to apply: {"src"} gets every rule,
    {"tools"} the concurrency/catch rules only.
    """
    findings = []

    def report(idx, rule, message):
        if not allowed(lines, idx, rule):
            findings.append((rel, idx + 1, rule, message))

    in_library = "src" in scopes

    for idx, raw in enumerate(lines):
        if is_comment_or_string_heavy(raw):
            continue
        line = strip_line_comment(raw)

        if rel != str(ANNOTATION_HEADER) and RAW_MUTEX_RE.search(line):
            report(idx, "raw-mutex",
                   "raw std locking primitive — use the annotated "
                   "common::Mutex/MutexLock/CondVar "
                   "(src/common/thread_annotations.hpp)")

        if rel not in SUBPROCESS_ALLOWED and RAW_SUBPROCESS_RE.search(line):
            report(idx, "raw-subprocess",
                   "raw process spawning — go through common::Subprocess "
                   "(src/common/subprocess.hpp), the only sanctioned "
                   "fork/exec site")

        if (not rel.startswith(NET_ALLOWED_PREFIX)
                and RAW_SOCKET_RE.search(line)):
            report(idx, "raw-socket",
                   "raw socket syscall — go through net::Listener/"
                   "net::Connection (src/net/), the only sanctioned "
                   "socket site")

        if rel not in CLOCK_ALLOWED and RAW_CLOCK_RE.search(line):
            report(idx, "raw-clock-now",
                   "raw *_clock::now() — read time through "
                   "common::steady_now()/Stopwatch (src/common/timer.hpp) "
                   "so timing stays mockable and auditable")

        if in_library:
            for pattern, message in NONDETERMINISM_RES:
                if pattern.search(line):
                    report(idx, "nondeterminism", message)
            if LIBRARY_IO_RE.search(line):
                report(idx, "library-io",
                       "stdout/stderr from library code — return values "
                       "and details, not prints (tools own the terminal)")

        if BARE_CATCH_RE.search(line):
            # A justification comment must sit on the catch line, the
            # line above, or the first two lines of the handler body.
            window = [lines[idx]]
            if idx > 0:
                window.append(lines[idx - 1])
            window.extend(lines[idx + 1:idx + 3])
            if not any(COMMENT_RE.search(candidate) for candidate in window):
                report(idx, "bare-catch",
                       "catch (...) without a justification comment — say "
                       "why swallowing everything is safe here")

    if rel != str(ANNOTATION_HEADER):
        # Annotations only count in code — a comment that merely mentions
        # WTAM_GUARDED_BY must not satisfy the rule.
        code_body = "\n".join(
            strip_line_comment(line) for line in lines
            if not is_comment_or_string_heavy(line))
        if not ANNOTATED_RE.search(code_body):
            for idx, raw in enumerate(lines):
                if is_comment_or_string_heavy(raw):
                    continue
                if MUTEX_MEMBER_RE.search(strip_line_comment(raw)):
                    report(idx, "unannotated-mutex",
                           "Mutex member in a file with no WTAM_GUARDED_BY/"
                           "WTAM_REQUIRES — annotate what this mutex "
                           "guards (or waive with a reason)")

    return findings


def iter_targets(root):
    """Yields (path, rel, scopes) for every file the linter owns."""
    for base, scopes in (("src", {"src"}), ("tools", {"tools"})):
        directory = root / base
        if not directory.is_dir():
            continue
        for path in sorted(directory.rglob("*")):
            if path.suffix not in CPP_SUFFIXES:
                continue
            if "lint_fixtures" in path.parts:
                continue
            yield path, str(path.relative_to(root)), scopes


def run_scan(root):
    findings = []
    for path, rel, scopes in iter_targets(root):
        lines = path.read_text(encoding="utf-8").splitlines()
        findings.extend(lint_file(path, rel, lines, scopes))
    return findings


def run_self_test(root):
    """Every bad_<rule>.cpp fixture must trigger exactly its rule; every
    good_*.cpp must be clean. Returns a list of mismatch messages."""
    fixtures = root / "tools" / "lint_fixtures"
    problems = []
    fixture_files = sorted(fixtures.glob("*.cpp")) if fixtures.is_dir() else []
    if not fixture_files:
        return ["no fixtures found under tools/lint_fixtures"]
    for path in fixture_files:
        rel = str(path.relative_to(root))
        lines = path.read_text(encoding="utf-8").splitlines()
        # Fixtures are linted as library code — the strictest scope.
        found_rules = {finding[2]
                       for finding in lint_file(path, rel, lines, {"src"})}
        if path.stem.startswith("bad_"):
            # bad_<rule>.cpp, or bad_<rule>__<variant>.cpp for extra
            # fixtures exercising the same rule on different code shapes.
            expected = (path.stem[len("bad_"):]
                        .split("__", 1)[0]
                        .replace("_", "-"))
            if expected not in found_rules:
                problems.append(
                    f"{rel}: expected rule '{expected}' did not fire")
            if found_rules - {expected}:
                problems.append(
                    f"{rel}: unexpected extra rules {sorted(found_rules - {expected})}")
        elif path.stem.startswith("good_"):
            if found_rules:
                problems.append(
                    f"{rel}: clean fixture triggered {sorted(found_rules)}")
        else:
            problems.append(f"{rel}: fixture must be named bad_* or good_*")
    return problems


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=Path.cwd(),
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="check the lint_fixtures samples first")
    args = parser.parse_args(argv)
    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"wtam_lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    status = 0
    if args.self_test:
        problems = run_self_test(root)
        for problem in problems:
            print(f"wtam_lint: self-test: {problem}")
        if problems:
            status = 1
        else:
            print("wtam_lint: self-test OK "
                  "(every fixture triggers exactly its rule)")

    findings = run_scan(root)
    for rel, line, rule, message in findings:
        print(f"{rel}:{line}: [{rule}] {message}")
    if findings:
        print(f"wtam_lint: {len(findings)} finding(s)")
        status = 1
    else:
        print("wtam_lint: tree clean")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
