// wtam_serve — long-running wrapper/TAM co-optimization service.
//
// Speaks newline-delimited JSON (NDJSON) on stdin/stdout: one request
// per input line, one response object per output line. The job schema is
// exactly the batch wire format (src/api/job_io.hpp), so anything that
// can write a jobs file can talk to the server:
//
//   {"id": "a", "soc": "d695", "width": 32, "backend": "rectpack"}
//   {"id": "b", "soc": "d695", "width": 16, "width_max": 24}
//   {"id": "c", "soc": "d695", "width": 32, "backend": "rectpack",
//    "constraints": {"power": [...], "power_budget": 2000}}
//   {"op": "stats"}
//   {"op": "cache_clear"}
//   {"op": "shutdown"}
//
// Jobs execute concurrently on a worker pool and results are written
// *as they complete* — possibly out of submission order; the request
// `id` is echoed into every result so callers correlate. Every result
// carries `cache: hit|miss|bypass` (the memoizing ResultCache is on by
// default; an identical resubmission is served byte-identically without
// running an engine). Control verbs:
//   stats        — jobs accepted/completed plus cache counters
//   cache_clear  — drop every cached entry, then ack
//   shutdown     — stop reading, drain in-flight jobs, ack, exit 0
// EOF on stdin behaves like shutdown (without the ack line).
//
// Options:
//   --threads N    concurrent jobs (default 0 = one per hardware thread)
//   --cache-mb M   cache byte budget in MiB (default 64; 0 disables)
//   --no-cache     disable the result cache
//   --timing       include cpu_s/wall_s in results (off by default so
//                  responses are byte-identical across runs)
//   --quiet        no startup banner on stderr
//
// Exit status: 0 on clean shutdown/EOF, 2 on usage errors. Malformed
// request lines are answered with an {"error": ...} object (the id is
// echoed when one can be salvaged) and the server keeps serving — a bad
// client must not take the service down.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "api/job_io.hpp"
#include "api/result_cache.hpp"
#include "api/solver.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"

namespace {

using namespace wtam;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: wtam_serve [--threads N] [--cache-mb M] [--no-cache]\n"
               "                  [--timing] [--quiet]\n"
               "NDJSON protocol on stdin/stdout; see README (wtam_serve).\n";
  std::exit(2);
}

/// Serializes response lines: results may complete on any worker, but
/// each NDJSON line must hit stdout whole and be flushed (callers block
/// on our output).
class LineWriter {
 public:
  void write(const api::JsonValue& value) {
    const std::string line = value.dump_compact_string();
    const wtam::common::MutexLock lock(mutex_);
    std::cout << line << '\n' << std::flush;
  }

 private:
  wtam::common::Mutex mutex_;
};

/// Job accounting shared between the read loop and the worker pool.
/// Every field sits under one mutex so `stats` reads one consistent
/// snapshot (accepted/completed/pending can never be observed torn) and
/// the drain wait observes the same counters the workers update.
class JobAccounting {
 public:
  struct Snapshot {
    std::uint64_t accepted = 0;
    std::uint64_t completed = 0;
    std::size_t pending = 0;
  };

  /// Registers a newly read job; returns its 1-based accept number
  /// (used to synthesize ids for id-less requests).
  [[nodiscard]] std::uint64_t job_accepted() {
    const wtam::common::MutexLock lock(mutex_);
    ++pending_;
    return ++accepted_;
  }

  /// Marks one job finished and wakes the drain waiter when idle.
  void job_completed() {
    const wtam::common::MutexLock lock(mutex_);
    --pending_;
    ++completed_;
    if (pending_ == 0) drained_.notify_all();
  }

  /// Blocks until no job is in flight; returns the counters as observed
  /// in that same critical section (the shutdown ack reports `completed`
  /// from here rather than re-reading it unlocked later).
  [[nodiscard]] Snapshot wait_for_drain() {
    const wtam::common::MutexLock lock(mutex_);
    while (pending_ != 0) drained_.wait(mutex_);
    return Snapshot{accepted_, completed_, pending_};
  }

  [[nodiscard]] Snapshot snapshot() const {
    const wtam::common::MutexLock lock(mutex_);
    return Snapshot{accepted_, completed_, pending_};
  }

 private:
  mutable wtam::common::Mutex mutex_;
  wtam::common::CondVar drained_;
  std::size_t pending_ WTAM_GUARDED_BY(mutex_) = 0;
  std::uint64_t accepted_ WTAM_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ WTAM_GUARDED_BY(mutex_) = 0;
};

api::JsonValue error_response(const std::string& id,
                              const std::string& message) {
  api::JsonValue response = api::JsonValue::object();
  if (!id.empty()) response.set("id", api::JsonValue::string(id));
  response.set("error", api::JsonValue::string(message));
  return response;
}

/// Best-effort id extraction from a parsed request that failed later
/// validation, so the client can still correlate the error response.
std::string salvage_id(const api::JsonValue& value) {
  if (const api::JsonValue* id = value.find("id"))
    if (id->kind() == api::JsonValue::Kind::String) return id->as_string();
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 0;  // server default: use the hardware
  std::size_t cache_mb = 64;
  bool use_cache = true;
  bool timing = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--threads") {
      threads = std::atoi(value());
      if (threads < 0) usage("--threads must be >= 0 (0 = hardware threads)");
    } else if (arg == "--cache-mb") {
      const int mb = std::atoi(value());
      if (mb < 0) usage("--cache-mb must be >= 0 (0 disables the cache)");
      cache_mb = static_cast<std::size_t>(mb);
      use_cache = mb > 0;
    } else if (arg == "--no-cache") {
      use_cache = false;
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }

  std::shared_ptr<api::ResultCache> cache;
  if (use_cache) {
    api::ResultCacheOptions cache_options;
    cache_options.max_bytes = cache_mb << 20;
    cache = std::make_shared<api::ResultCache>(cache_options);
  }
  // Each job runs through one shared Solver (single-solve calls are
  // thread-safe; the cache coalesces concurrent identical jobs).
  const api::Solver solver(api::SolverOptions::with_threads(1, cache));
  api::ResultsWriteOptions write_options;
  write_options.include_timing = timing;
  write_options.include_cache = true;

  LineWriter out;

  // In-flight accounting: shutdown/EOF drain before exiting, and `stats`
  // reports progress.
  JobAccounting accounting;

  // Declared after everything its workers reference, so the pool's
  // joining destructor runs first on every exit path.
  const int workers =
      threads == 0 ? common::ThreadPool::hardware_threads() : threads;
  common::ThreadPool pool(workers);

  if (!quiet)
    std::cerr << "wtam_serve: ready (" << workers << " workers, cache "
              << (cache ? std::to_string(cache_mb) + " MiB" : "off")
              << "); one JSON request per line, {\"op\": \"shutdown\"} to "
                 "stop\n";

  std::string line;
  std::uint64_t line_number = 0;
  while (std::getline(std::cin, line)) {
    ++line_number;
    if (line.empty()) continue;

    // Each line is parsed exactly once; control verbs are handled inline
    // on the read loop, jobs go to the pool so the loop keeps accepting
    // while engines run.
    api::JsonValue value;
    try {
      value = api::JsonValue::parse(line);
    } catch (const std::exception& e) {
      out.write(error_response({}, "line " + std::to_string(line_number) +
                                       ": " + e.what()));
      continue;
    }
    if (const api::JsonValue* op = value.find("op")) {
      try {
        const std::string verb = op->as_string();
        if (verb == "shutdown") {
          const JobAccounting::Snapshot drained = accounting.wait_for_drain();
          api::JsonValue response = api::JsonValue::object();
          response.set("op", api::JsonValue::string("shutdown"));
          response.set("ok", api::JsonValue::boolean(true));
          response.set("jobs",
                       api::JsonValue::number(
                           static_cast<std::int64_t>(drained.completed)));
          out.write(response);
          return 0;
        } else if (verb == "stats") {
          api::JsonValue response = api::JsonValue::object();
          response.set("op", api::JsonValue::string("stats"));
          const JobAccounting::Snapshot now = accounting.snapshot();
          response.set("accepted", api::JsonValue::number(
                                       static_cast<std::int64_t>(now.accepted)));
          response.set("completed",
                       api::JsonValue::number(
                           static_cast<std::int64_t>(now.completed)));
          response.set("pending", api::JsonValue::number(
                                      static_cast<std::int64_t>(now.pending)));
          if (cache) {
            const api::ResultCacheStats stats = cache->stats();
            api::JsonValue cache_json = api::JsonValue::object();
            const auto set_count = [&](const char* key, std::uint64_t count) {
              cache_json.set(key, api::JsonValue::number(
                                      static_cast<std::int64_t>(count)));
            };
            set_count("hits", stats.hits);
            set_count("misses", stats.misses);
            set_count("coalesced", stats.coalesced);
            set_count("insertions", stats.insertions);
            set_count("evictions", stats.evictions);
            set_count("entries", stats.entries);
            set_count("bytes", stats.bytes);
            set_count("max_bytes", stats.max_bytes);
            response.set("cache", std::move(cache_json));
          }
          out.write(response);
        } else if (verb == "cache_clear") {
          if (cache) cache->clear();
          api::JsonValue response = api::JsonValue::object();
          response.set("op", api::JsonValue::string("cache_clear"));
          response.set("ok", api::JsonValue::boolean(cache != nullptr));
          out.write(response);
        } else {
          out.write(error_response(
              salvage_id(value), "unknown op '" + verb +
                                     "' (known: stats, cache_clear, "
                                     "shutdown)"));
        }
      } catch (const std::exception& e) {
        out.write(error_response(salvage_id(value),
                                 "line " + std::to_string(line_number) + ": " +
                                     e.what()));
      }
      continue;
    }

    api::SolveRequest request;
    try {
      request = api::job_from_json(value);
    } catch (const std::exception& e) {
      out.write(error_response(salvage_id(value),
                               "line " + std::to_string(line_number) + ": " +
                                   e.what()));
      continue;
    }
    const std::uint64_t job_number = accounting.job_accepted();
    if (request.id.empty())
      request.id = "job-" + std::to_string(job_number);

    pool.submit([&, request = std::move(request)] {
      // Solver::solve never throws: every failure mode is a Status.
      const api::SolveResult result = solver.solve(request);
      out.write(api::result_to_json(result, write_options));
      accounting.job_completed();
    });
  }

  // EOF: drain and exit like a silent shutdown.
  (void)accounting.wait_for_drain();
  return 0;
}
