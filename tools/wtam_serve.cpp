// wtam_serve — long-running wrapper/TAM co-optimization service.
//
// Speaks newline-delimited JSON (NDJSON) on stdin/stdout: one request
// per input line, one response object per output line. The job schema is
// exactly the batch wire format (src/api/job_io.hpp), so anything that
// can write a jobs file can talk to the server:
//
//   {"id": "a", "soc": "d695", "width": 32, "backend": "rectpack"}
//   {"id": "b", "soc": "d695", "width": 16, "width_max": 24}
//   {"id": "c", "soc": "d695", "width": 32, "backend": "rectpack",
//    "constraints": {"power": [...], "power_budget": 2000}}
//   {"op": "stats"}
//   {"op": "cache_clear"}
//   {"op": "shutdown"}
//
// Jobs execute concurrently on a worker pool and results are written
// *as they complete* — possibly out of submission order; the request
// `id` is echoed into every result so callers correlate. Every result
// carries `cache: hit|miss|bypass` (the memoizing ResultCache is on by
// default; an identical resubmission is served byte-identically without
// running an engine). Control verbs:
//   stats        — jobs accepted/started/completed, error-response,
//                  shed, and in-flight/queue-depth gauges, plus cache
//                  counters
//   metrics      — full MetricsRegistry snapshot. Options on the verb:
//                  {"op": "metrics", "drain": true} waits for in-flight
//                  jobs first (deterministic counters for scripted
//                  scrapes); {"op": "metrics", "format": "prometheus"}
//                  returns the text exposition in a "body" string field
//                  (the response stays one NDJSON line either way)
//   cache_clear  — drop every cached entry and zero the cache counters;
//                  the ack carries the PRE-clear counters (the last
//                  consistent look at the epoch being discarded), so
//                  post-clear scrapes read deterministically from zero
//   cache_save   — snapshot the cache to {"path": ...} (default: the
//                  --cache-file path); ack reports entries/bytes written
//   shutdown     — stop reading, drain in-flight jobs, save the cache
//                  (when --cache-file is set), ack, exit 0
// EOF on stdin behaves like shutdown (without the ack line).
//
// Options:
//   --threads N      concurrent jobs (default 0 = one per hardware thread)
//   --cache-mb M     cache byte budget in MiB (default 64; 0 disables)
//   --no-cache       disable the result cache
//   --cache-file P   warm-boot persistence: load the snapshot at P on
//                    start (missing file = cold start; torn tail = load
//                    the valid prefix; wrong version = refuse the file
//                    and start cold, loudly) and save back to P on
//                    shutdown/EOF after the drain
//   --queue-limit N  admission control: when more than N accepted jobs
//                    are waiting for a worker, new jobs are shed with
//                    status "overloaded" instead of queued (0 = never
//                    shed, the default). Shedding bounds queue time —
//                    clients retry, the queue never grows unboundedly
//   --timing         include cpu_s/wall_s in results (off by default so
//                    responses are byte-identical across runs)
//   --trace          include per-solve stage spans (`trace` array) in
//                    results — opt-in execution provenance like --timing
//   --quiet          no startup banner on stderr
//
// Exit status: 0 on clean shutdown/EOF, 2 on usage errors. Malformed
// request lines are answered with an {"error": ...} object (the id is
// echoed when one can be salvaged) and the server keeps serving — a bad
// client must not take the service down.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "api/cache_store.hpp"
#include "api/job_io.hpp"
#include "api/result_cache.hpp"
#include "api/solver.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_json.hpp"

namespace {

using namespace wtam;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: wtam_serve [--threads N] [--cache-mb M] [--no-cache]\n"
               "                  [--cache-file PATH] [--queue-limit N]\n"
               "                  [--timing] [--trace] [--quiet]\n"
               "NDJSON protocol on stdin/stdout; see README (wtam_serve).\n";
  std::exit(2);
}

/// Serializes response lines: results may complete on any worker, but
/// each NDJSON line must hit stdout whole and be flushed (callers block
/// on our output).
class LineWriter {
 public:
  void write(const api::JsonValue& value) {
    const std::string line = value.dump_compact_string();
    const wtam::common::MutexLock lock(mutex_);
    std::cout << line << '\n' << std::flush;
  }

 private:
  wtam::common::Mutex mutex_;
};

/// Job accounting shared between the read loop and the worker pool.
/// Every field sits under one mutex so `stats` reads one consistent
/// snapshot (accepted/completed/pending can never be observed torn) and
/// the drain wait observes the same counters the workers update.
class JobAccounting {
 public:
  struct Snapshot {
    std::uint64_t accepted = 0;
    std::uint64_t started = 0;
    std::uint64_t completed = 0;
    std::uint64_t errors = 0;
    std::uint64_t shed = 0;
    std::size_t pending = 0;

    /// Jobs a worker is executing right now.
    [[nodiscard]] std::uint64_t running() const noexcept {
      return started - completed;
    }
    /// Jobs accepted but still waiting for a worker.
    [[nodiscard]] std::uint64_t queue_depth() const noexcept {
      return accepted - started;
    }
  };

  /// Registers a newly read job; returns its 1-based accept number
  /// (used to synthesize ids for id-less requests).
  [[nodiscard]] std::uint64_t job_accepted() {
    const wtam::common::MutexLock lock(mutex_);
    ++pending_;
    return ++accepted_;
  }

  /// Admission control: accepts the job only when fewer than `limit`
  /// jobs are queued (limit 0 = unlimited). The depth check and the
  /// accept are one critical section, so concurrent readers can never
  /// overshoot the limit between checking and counting. Returns the
  /// accept number, or 0 when the job was shed.
  [[nodiscard]] std::uint64_t try_accept(std::uint64_t limit) {
    const wtam::common::MutexLock lock(mutex_);
    if (limit != 0 && accepted_ - started_ >= limit) {
      ++shed_;
      return 0;
    }
    ++pending_;
    return ++accepted_;
  }

  /// Marks one job picked up by a worker (running = started - completed).
  void job_started() {
    const wtam::common::MutexLock lock(mutex_);
    ++started_;
  }

  /// Marks one job finished and wakes the drain waiter when idle.
  void job_completed() {
    const wtam::common::MutexLock lock(mutex_);
    --pending_;
    ++completed_;
    if (pending_ == 0) drained_.notify_all();
  }

  /// Counts one per-line error response (malformed JSON, bad op, bad
  /// job) — previously invisible in `stats`.
  void error_recorded() {
    const wtam::common::MutexLock lock(mutex_);
    ++errors_;
  }

  /// Blocks until no job is in flight; returns the counters as observed
  /// in that same critical section (the shutdown ack reports `completed`
  /// from here rather than re-reading it unlocked later).
  [[nodiscard]] Snapshot wait_for_drain() {
    const wtam::common::MutexLock lock(mutex_);
    while (pending_ != 0) drained_.wait(mutex_);
    return snapshot_locked();
  }

  [[nodiscard]] Snapshot snapshot() const {
    const wtam::common::MutexLock lock(mutex_);
    return snapshot_locked();
  }

 private:
  [[nodiscard]] Snapshot snapshot_locked() const WTAM_REQUIRES(mutex_) {
    Snapshot snapshot;
    snapshot.accepted = accepted_;
    snapshot.started = started_;
    snapshot.completed = completed_;
    snapshot.errors = errors_;
    snapshot.shed = shed_;
    snapshot.pending = pending_;
    return snapshot;
  }

  mutable wtam::common::Mutex mutex_;
  wtam::common::CondVar drained_;
  std::size_t pending_ WTAM_GUARDED_BY(mutex_) = 0;
  std::uint64_t accepted_ WTAM_GUARDED_BY(mutex_) = 0;
  std::uint64_t started_ WTAM_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ WTAM_GUARDED_BY(mutex_) = 0;
  std::uint64_t errors_ WTAM_GUARDED_BY(mutex_) = 0;
  std::uint64_t shed_ WTAM_GUARDED_BY(mutex_) = 0;
};

api::JsonValue error_response(const std::string& id,
                              const std::string& message) {
  api::JsonValue response = api::JsonValue::object();
  if (!id.empty()) response.set("id", api::JsonValue::string(id));
  response.set("error", api::JsonValue::string(message));
  return response;
}

/// Best-effort id extraction from a parsed request that failed later
/// validation, so the client can still correlate the error response.
std::string salvage_id(const api::JsonValue& value) {
  if (const api::JsonValue* id = value.find("id"))
    if (id->kind() == api::JsonValue::Kind::String) return id->as_string();
  return {};
}

/// Syncs the serve gauges from job accounting, snapshots the process
/// registry, and folds the cache's counters in, so one scrape shows the
/// whole service. Counter/gauge lists are re-sorted so the merged
/// snapshot keeps the registry's deterministic name order.
obs::MetricsSnapshot scrape_metrics(const JobAccounting::Snapshot& jobs,
                                    const api::ResultCache* cache) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.gauge("serve.inflight_jobs")
      .set(static_cast<std::int64_t>(jobs.running()));
  registry.gauge("serve.queue_depth")
      .set(static_cast<std::int64_t>(jobs.queue_depth()));
  obs::MetricsSnapshot snapshot = registry.snapshot();
  if (cache != nullptr) {
    const api::ResultCacheStats stats = cache->stats();
    const auto counter = [&snapshot](const char* name, std::uint64_t value) {
      snapshot.counters.push_back({name, static_cast<std::int64_t>(value)});
    };
    counter("serve.cache.hits", stats.hits);
    counter("serve.cache.misses", stats.misses);
    counter("serve.cache.coalesced", stats.coalesced);
    counter("serve.cache.insertions", stats.insertions);
    counter("serve.cache.evictions", stats.evictions);
    const auto gauge = [&snapshot](const char* name, std::uint64_t value) {
      snapshot.gauges.push_back({name, static_cast<std::int64_t>(value)});
    };
    gauge("serve.cache.entries", stats.entries);
    gauge("serve.cache.bytes", stats.bytes);
    gauge("serve.cache.max_bytes", stats.max_bytes);
    const auto by_name = [](const auto& a, const auto& b) {
      return a.name < b.name;
    };
    std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
    std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  }
  return snapshot;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 0;  // server default: use the hardware
  std::size_t cache_mb = 64;
  bool use_cache = true;
  std::string cache_file;
  std::uint64_t queue_limit = 0;  // 0 = never shed
  bool timing = false;
  bool trace = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--threads") {
      threads = std::atoi(value());
      if (threads < 0) usage("--threads must be >= 0 (0 = hardware threads)");
    } else if (arg == "--cache-mb") {
      const int mb = std::atoi(value());
      if (mb < 0) usage("--cache-mb must be >= 0 (0 disables the cache)");
      cache_mb = static_cast<std::size_t>(mb);
      use_cache = mb > 0;
    } else if (arg == "--no-cache") {
      use_cache = false;
    } else if (arg == "--cache-file") {
      cache_file = value();
      if (cache_file.empty()) usage("--cache-file needs a non-empty path");
    } else if (arg == "--queue-limit") {
      const int limit = std::atoi(value());
      if (limit < 0) usage("--queue-limit must be >= 0 (0 = never shed)");
      queue_limit = static_cast<std::uint64_t>(limit);
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }

  std::shared_ptr<api::ResultCache> cache;
  if (use_cache) {
    api::ResultCacheOptions cache_options;
    cache_options.max_bytes = cache_mb << 20;
    cache = std::make_shared<api::ResultCache>(cache_options);
  }
  if (!cache && !cache_file.empty())
    usage("--cache-file needs the cache (drop --no-cache / --cache-mb 0)");

  // Warm boot: load the snapshot before any job runs, then zero the
  // counters so scrapes only count this process's traffic (the loader's
  // own insertions are bookkeeping, not service history).
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  if (cache && !cache_file.empty()) {
    try {
      const api::CacheLoadStats loaded =
          api::load_cache_file(*cache, cache_file);
      registry.counter("serve.persist.loaded_entries")
          .increment(static_cast<std::int64_t>(loaded.entries_loaded));
      registry.counter("serve.persist.rejected_entries")
          .increment(static_cast<std::int64_t>(loaded.entries_rejected));
      if (!loaded.clean_tail)
        registry.counter("serve.persist.torn_tails").increment();
      if (!quiet && loaded.found)
        std::cerr << "wtam_serve: warm boot from " << cache_file << " ("
                  << loaded.entries_loaded << " entries"
                  << (loaded.clean_tail ? "" : ", torn tail truncated")
                  << ")\n";
    } catch (const std::exception& e) {
      // Version mismatch / unreadable snapshot: refuse the file, start
      // cold, and say so — a stale-format cache must never be trusted,
      // but it must not take the service down either.
      registry.counter("serve.persist.load_failures").increment();
      std::cerr << "wtam_serve: ignoring cache file: " << e.what() << "\n";
    }
    cache->reset_stats();
  }
  // Each job runs through one shared Solver (single-solve calls are
  // thread-safe; the cache coalesces concurrent identical jobs).
  api::SolverOptions solver_options = api::SolverOptions::with_threads(1, cache);
  solver_options.trace = trace;
  const api::Solver solver(std::move(solver_options));
  api::ResultsWriteOptions write_options;
  write_options.include_timing = timing;
  write_options.include_cache = true;
  write_options.include_trace = trace;

  LineWriter out;

  // In-flight accounting: shutdown/EOF drain before exiting, and `stats`
  // reports progress.
  JobAccounting accounting;

  // Process-wide serve metrics, scraped by the `metrics` verb alongside
  // everything the solver/engines record.
  obs::Counter& jobs_accepted_counter = registry.counter("serve.jobs_accepted");
  obs::Counter& jobs_completed_counter =
      registry.counter("serve.jobs_completed");
  obs::Counter& errors_counter = registry.counter("serve.errors");
  obs::Counter& jobs_shed_counter = registry.counter("serve.jobs_shed");
  obs::Histogram& job_hist = registry.histogram("serve.job_ns");

  // Every per-line error response goes through here so `stats` and the
  // serve.errors counter see it.
  const auto write_error = [&accounting, &errors_counter, &out](
                               const std::string& id,
                               const std::string& message) {
    accounting.error_recorded();
    errors_counter.increment();
    out.write(error_response(id, message));
  };

  // Final persistence: shutdown and EOF both save back to --cache-file
  // after the drain, so the next boot is warm. A failed save must not
  // turn a clean shutdown into a crash — it is reported and counted.
  const auto save_cache_on_exit = [&cache, &cache_file, &registry] {
    if (!cache || cache_file.empty()) return;
    try {
      const api::CacheSaveStats saved =
          api::save_cache_file(*cache, cache_file);
      registry.counter("serve.persist.saves").increment();
      (void)saved;
    } catch (const std::exception& e) {
      registry.counter("serve.persist.save_failures").increment();
      std::cerr << "wtam_serve: cache save failed: " << e.what() << "\n";
    }
  };

  // Declared after everything its workers reference, so the pool's
  // joining destructor runs first on every exit path.
  const int workers =
      threads == 0 ? common::ThreadPool::hardware_threads() : threads;
  common::ThreadPool pool(workers);

  if (!quiet)
    std::cerr << "wtam_serve: ready (" << workers << " workers, cache "
              << (cache ? std::to_string(cache_mb) + " MiB" : "off")
              << "); one JSON request per line, {\"op\": \"shutdown\"} to "
                 "stop\n";

  std::string line;
  std::uint64_t line_number = 0;
  while (std::getline(std::cin, line)) {
    ++line_number;
    if (line.empty()) continue;

    // Each line is parsed exactly once; control verbs are handled inline
    // on the read loop, jobs go to the pool so the loop keeps accepting
    // while engines run.
    api::JsonValue value;
    try {
      value = api::JsonValue::parse(line);
    } catch (const std::exception& e) {
      write_error({}, "line " + std::to_string(line_number) + ": " + e.what());
      continue;
    }
    if (const api::JsonValue* op = value.find("op")) {
      try {
        const std::string verb = op->as_string();
        if (verb == "shutdown") {
          const JobAccounting::Snapshot drained = accounting.wait_for_drain();
          save_cache_on_exit();
          api::JsonValue response = api::JsonValue::object();
          response.set("op", api::JsonValue::string("shutdown"));
          response.set("ok", api::JsonValue::boolean(true));
          response.set("jobs",
                       api::JsonValue::number(
                           static_cast<std::int64_t>(drained.completed)));
          out.write(response);
          return 0;
        } else if (verb == "stats") {
          api::JsonValue response = api::JsonValue::object();
          response.set("op", api::JsonValue::string("stats"));
          const JobAccounting::Snapshot now = accounting.snapshot();
          response.set("accepted", api::JsonValue::number(
                                       static_cast<std::int64_t>(now.accepted)));
          response.set("completed",
                       api::JsonValue::number(
                           static_cast<std::int64_t>(now.completed)));
          response.set("pending", api::JsonValue::number(
                                      static_cast<std::int64_t>(now.pending)));
          response.set("errors", api::JsonValue::number(
                                     static_cast<std::int64_t>(now.errors)));
          response.set("shed", api::JsonValue::number(
                                   static_cast<std::int64_t>(now.shed)));
          response.set("running", api::JsonValue::number(
                                      static_cast<std::int64_t>(now.running())));
          response.set("queue_depth",
                       api::JsonValue::number(
                           static_cast<std::int64_t>(now.queue_depth())));
          if (cache) {
            const api::ResultCacheStats stats = cache->stats();
            api::JsonValue cache_json = api::JsonValue::object();
            const auto set_count = [&](const char* key, std::uint64_t count) {
              cache_json.set(key, api::JsonValue::number(
                                      static_cast<std::int64_t>(count)));
            };
            set_count("hits", stats.hits);
            set_count("misses", stats.misses);
            set_count("coalesced", stats.coalesced);
            set_count("insertions", stats.insertions);
            set_count("evictions", stats.evictions);
            set_count("entries", stats.entries);
            set_count("bytes", stats.bytes);
            set_count("max_bytes", stats.max_bytes);
            response.set("cache", std::move(cache_json));
          }
          out.write(response);
        } else if (verb == "metrics") {
          bool drain = false;
          if (const api::JsonValue* flag = value.find("drain"))
            drain = flag->as_bool();
          std::string format = "json";
          if (const api::JsonValue* requested = value.find("format"))
            format = requested->as_string();
          if (format != "json" && format != "prometheus") {
            write_error(salvage_id(value),
                        "metrics format must be \"json\" or \"prometheus\"");
            continue;
          }
          // drain waits for in-flight jobs first, so a scripted scrape
          // observes deterministic counters (the CI smoke asserts
          // accepted == completed == jobs submitted).
          const JobAccounting::Snapshot now =
              drain ? accounting.wait_for_drain() : accounting.snapshot();
          const obs::MetricsSnapshot snapshot =
              scrape_metrics(now, cache.get());
          api::JsonValue response = api::JsonValue::object();
          response.set("op", api::JsonValue::string("metrics"));
          if (format == "prometheus") {
            response.set("format", api::JsonValue::string("prometheus"));
            response.set("body",
                         api::JsonValue::string(obs::to_prometheus(snapshot)));
          } else {
            // Materialized first: members() returns a reference into the
            // document, which must outlive the loop.
            const api::JsonValue sections = obs::metrics_to_json(snapshot);
            for (const auto& [section, content] : sections.members())
              response.set(section, content);
          }
          out.write(response);
        } else if (verb == "cache_clear") {
          api::JsonValue response = api::JsonValue::object();
          response.set("op", api::JsonValue::string("cache_clear"));
          response.set("ok", api::JsonValue::boolean(cache != nullptr));
          if (cache) {
            // The ack carries the PRE-clear counters: the last consistent
            // look at the epoch being discarded. After the ack, both the
            // entries and the counters read from zero.
            const api::ResultCacheStats stats = cache->stats();
            api::JsonValue cache_json = api::JsonValue::object();
            const auto set_count = [&](const char* key, std::uint64_t count) {
              cache_json.set(key, api::JsonValue::number(
                                      static_cast<std::int64_t>(count)));
            };
            set_count("hits", stats.hits);
            set_count("misses", stats.misses);
            set_count("coalesced", stats.coalesced);
            set_count("insertions", stats.insertions);
            set_count("evictions", stats.evictions);
            set_count("entries", stats.entries);
            set_count("bytes", stats.bytes);
            response.set("cache", std::move(cache_json));
            cache->clear();
            cache->reset_stats();
          }
          out.write(response);
        } else if (verb == "cache_save") {
          std::string path = cache_file;
          if (const api::JsonValue* requested = value.find("path"))
            path = requested->as_string();
          if (!cache) {
            write_error(salvage_id(value), "cache_save: the cache is off");
            continue;
          }
          if (path.empty()) {
            write_error(salvage_id(value),
                        "cache_save: no path (give \"path\" or start with "
                        "--cache-file)");
            continue;
          }
          try {
            const api::CacheSaveStats saved =
                api::save_cache_file(*cache, path);
            registry.counter("serve.persist.saves").increment();
            api::JsonValue response = api::JsonValue::object();
            response.set("op", api::JsonValue::string("cache_save"));
            response.set("ok", api::JsonValue::boolean(true));
            response.set("path", api::JsonValue::string(path));
            response.set("entries",
                         api::JsonValue::number(
                             static_cast<std::int64_t>(saved.entries)));
            response.set("bytes", api::JsonValue::number(
                                      static_cast<std::int64_t>(saved.bytes)));
            out.write(response);
          } catch (const std::exception& e) {
            registry.counter("serve.persist.save_failures").increment();
            write_error(salvage_id(value),
                        std::string("cache_save: ") + e.what());
          }
        } else {
          write_error(salvage_id(value), "unknown op '" + verb +
                                             "' (known: stats, metrics, "
                                             "cache_clear, cache_save, "
                                             "shutdown)");
        }
      } catch (const std::exception& e) {
        write_error(salvage_id(value), "line " + std::to_string(line_number) +
                                           ": " + e.what());
      }
      continue;
    }

    api::SolveRequest request;
    try {
      request = api::job_from_json(value);
    } catch (const std::exception& e) {
      write_error(salvage_id(value),
                  "line " + std::to_string(line_number) + ": " + e.what());
      continue;
    }
    const std::uint64_t job_number = accounting.try_accept(queue_limit);
    if (job_number == 0) {
      // Admission control: the queue is at its limit — shed instead of
      // stalling. The response is a result line (status "overloaded"),
      // not an error object: the job was well-formed, the service just
      // declined it right now. Message is fixed text so shed responses
      // stay byte-deterministic.
      jobs_shed_counter.increment();
      api::JsonValue response = api::JsonValue::object();
      if (!request.id.empty())
        response.set("id", api::JsonValue::string(request.id));
      response.set("status",
                   api::JsonValue::string(
                       std::string(api::to_string(api::Status::Overloaded))));
      response.set("error",
                   api::JsonValue::string(
                       "queue limit reached; job shed — retry later"));
      out.write(response);
      continue;
    }
    jobs_accepted_counter.increment();
    if (request.id.empty())
      request.id = "job-" + std::to_string(job_number);

    pool.submit([&, request = std::move(request),
                 queued = common::Stopwatch()] {
      accounting.job_started();
      const std::int64_t queue_ns = queued.elapsed_ns();  // accept -> pickup
      // Solver::solve never throws: every failure mode is a Status.
      api::SolveResult result = solver.solve(request);
      if (trace) {
        // The solver timed its own (empty) queue: overwrite with the
        // accept-to-execution wait this server actually imposed, so the
        // echoed trace shows real queueing under load.
        for (auto& span : result.trace)
          if (span.stage == "queue-wait") {
            span.duration_ns = queue_ns;
            break;
          }
      }
      out.write(api::result_to_json(result, write_options));
      job_hist.record_ns(queued.elapsed_ns());
      jobs_completed_counter.increment();
      accounting.job_completed();
    });
  }

  // EOF: drain and exit like a silent shutdown (cache saved the same).
  (void)accounting.wait_for_drain();
  save_cache_on_exit();
  return 0;
}
