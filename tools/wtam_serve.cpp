// wtam_serve — long-running wrapper/TAM co-optimization service.
//
// Speaks newline-delimited JSON (NDJSON): one request per input line,
// one response object per output line, on either transport:
//   * stdin/stdout (the default) — one client, the process's pipes;
//   * --listen HOST:PORT — a TCP server; every connected client speaks
//     the same protocol concurrently against one shared service (one
//     solver, one cache, one admission-controlled pool).
// The job schema is exactly the batch wire format (src/api/job_io.hpp),
// so anything that can write a jobs file can talk to the server:
//
//   {"id": "a", "soc": "d695", "width": 32, "backend": "rectpack"}
//   {"id": "b", "soc": "d695", "width": 16, "width_max": 24}
//   {"op": "stats"}
//   {"op": "shutdown"}
//
// Jobs execute concurrently on a worker pool and results are written
// *as they complete* — possibly out of submission order; the request
// `id` is echoed into every result so callers correlate. Every result
// carries `cache: hit|miss|bypass` (the memoizing ResultCache is on by
// default; an identical resubmission is served byte-identically without
// running an engine). Control verbs (src/serve/service.hpp implements
// them; full semantics documented there):
//   ping         — liveness probe, answered inline even under load;
//                  echoes "seq" (the router's health checks use this)
//   stats        — job counters + cache counters, one consistent snapshot
//   metrics      — full MetricsRegistry snapshot ({"drain": true} waits
//                  for in-flight jobs; {"format": "prometheus"} returns
//                  the text exposition in a "body" string field)
//   cache_clear  — drop every cached entry; ack carries the PRE-clear
//                  counters
//   cache_save   — snapshot the cache to {"path": ...} (default: the
//                  --cache-file path)
//   shutdown     — stop reading, drain in-flight jobs, save the cache
//                  (when --cache-file is set), ack, exit 0. Over TCP
//                  this stops the whole server, not just the client.
// EOF on stdin behaves like shutdown (without the ack line); EOF from a
// TCP client just ends that client. SIGTERM/SIGINT drain and save the
// cache before exiting, so kill-based orchestration keeps the warmth.
//
// Options:
//   --listen H:P     serve TCP clients on H:P instead of stdin/stdout
//                    (port 0 = kernel-assigned; see --port-file)
//   --port-file P    write the actually-bound host:port to P once
//                    listening (how scripts use --listen 127.0.0.1:0)
//   --threads N      concurrent jobs (default 0 = one per hardware thread)
//   --cache-mb M     cache byte budget in MiB (default 64; 0 disables)
//   --no-cache       disable the result cache
//   --cache-file P   warm-boot persistence: load the snapshot at P on
//                    start (missing file = cold start; torn tail = load
//                    the valid prefix; wrong version = refuse the file
//                    and start cold, loudly) and save back to P on
//                    shutdown/EOF/SIGTERM after the drain
//   --queue-limit N  admission control: when more than N accepted jobs
//                    are waiting for a worker, new jobs are shed with
//                    status "overloaded" instead of queued (0 = never
//                    shed, the default)
//   --timing         include cpu_s/wall_s in results (off by default so
//                    responses are byte-identical across runs)
//   --trace          include per-solve stage spans (`trace` array) in
//                    results — opt-in execution provenance like --timing
//   --quiet          no startup banner on stderr
//
// Exit status: 0 on clean shutdown/EOF/signal, 1 when --listen cannot
// bind, 2 on usage errors. Malformed request lines are answered with an
// {"error": ...} object (the id is echoed when one can be salvaged) and
// the server keeps serving — a bad client must not take the service
// down. An oversized line (beyond the framing bound) is answered with a
// clean error and the stream resyncs at the next newline.

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "common/thread_annotations.hpp"
#include "net/endpoint.hpp"
#include "net/socket.hpp"
#include "serve/service.hpp"

namespace {

using namespace wtam;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: wtam_serve [--listen HOST:PORT] [--port-file PATH]\n"
               "                  [--threads N] [--cache-mb M] [--no-cache]\n"
               "                  [--cache-file PATH] [--queue-limit N]\n"
               "                  [--timing] [--trace] [--quiet]\n"
               "NDJSON protocol on stdin/stdout (or TCP with --listen); "
               "see README (wtam_serve).\n";
  std::exit(2);
}

/// Serializes stdout response lines: results may complete on any pool
/// worker, but each NDJSON line must hit stdout whole and be flushed
/// (callers block on our output).
class StdoutWriter {
 public:
  void write(const std::string& line) {
    const common::MutexLock lock(mutex_);
    std::cout << line << '\n' << std::flush;
  }

 private:
  common::Mutex mutex_;
};

// SIGTERM/SIGINT land here: the self-pipe trick. The handler does the
// only async-signal-safe thing — writes one byte — and the transport
// loops treat that byte as "stop accepting, drain, save, exit", so a
// kill-based orchestrator gets the same warm cache a clean shutdown
// leaves behind. Installed WITHOUT SA_RESTART so a blocked stdin read
// returns instead of silently resuming.
int g_signal_pipe[2] = {-1, -1};

extern "C" void handle_stop_signal(int) {
  const char byte = 's';
  const ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

void install_signal_handlers() {
  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "wtam_serve: signal pipe failed; running without "
                 "drain-on-signal\n";
    return;
  }
  struct sigaction action = {};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupted reads must return
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

/// Tracks live TCP connections so shutdown (verb or signal) can sever
/// every client and unblock their reader threads.
class ConnectionRegistry {
 public:
  void add(std::uint64_t id, std::shared_ptr<net::Connection> connection) {
    const common::MutexLock lock(mutex_);
    connections_.emplace(id, std::move(connection));
  }

  void remove(std::uint64_t id) {
    const common::MutexLock lock(mutex_);
    connections_.erase(id);
  }

  void sever_all() {
    std::vector<std::shared_ptr<net::Connection>> victims;
    {
      const common::MutexLock lock(mutex_);
      victims.reserve(connections_.size());
      for (auto& [id, connection] : connections_)
        victims.push_back(connection);
      connections_.clear();
    }
    for (const auto& connection : victims) connection->shutdown_both();
  }

 private:
  common::Mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<net::Connection>>
      connections_ WTAM_GUARDED_BY(mutex_);
};

/// The stdin/stdout transport. Polls stdin alongside the signal pipe so
/// SIGTERM/SIGINT break the read loop; lines are reassembled from raw
/// chunks (the poll wakeup granularity), and a final unterminated line
/// still counts. Returns the process exit status.
int run_stdio(serve::Service& service) {
  StdoutWriter out;
  const serve::Service::Sink sink = [&out](const std::string& line) {
    out.write(line);
  };

  std::string buffer;
  std::uint64_t line_number = 0;
  bool eof = false;
  bool signaled = false;
  while (!eof && !signaled) {
    pollfd fds[2] = {{STDIN_FILENO, POLLIN, 0}, {g_signal_pipe[0], POLLIN, 0}};
    const nfds_t count = g_signal_pipe[0] >= 0 ? 2 : 1;
    const int ready = ::poll(fds, count, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (count == 2 && (fds[1].revents & POLLIN) != 0) {
      signaled = true;
      break;
    }
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    char chunk[4096];
    const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      eof = true;
      break;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t newline = buffer.find('\n', start);
         newline != std::string::npos;
         newline = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (service.handle_line(line, ++line_number, sink) ==
          serve::Service::Action::Shutdown) {
        return 0;  // drained, saved, acked inside the verb
      }
    }
    buffer.erase(0, start);
  }
  // EOF: a final unterminated line still counts (matches getline).
  if (eof && !buffer.empty()) {
    if (service.handle_line(buffer, ++line_number, sink) ==
        serve::Service::Action::Shutdown)
      return 0;
  }
  // EOF or signal: drain and exit like a silent shutdown (cache saved
  // the same).
  service.drain_and_save();
  return 0;
}

/// The TCP transport: accept loop + one reader thread per client, all
/// sharing one Service. A client's `shutdown` verb (or SIGTERM/SIGINT)
/// stops the listener, severs every client, drains, and saves.
int run_listen(serve::Service& service, const net::Endpoint& endpoint,
               const std::string& port_file, bool quiet) {
  std::unique_ptr<net::Listener> listener;
  try {
    listener = std::make_unique<net::Listener>(endpoint);
  } catch (const std::exception& e) {
    std::cerr << "wtam_serve: " << e.what() << "\n";
    return 1;
  }

  if (!port_file.empty()) {
    // tmp + rename: pollers waiting on the file never read a torn
    // endpoint.
    const std::string tmp = port_file + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    out << listener->local_endpoint().to_string() << "\n";
    out.close();
    if (!out || std::rename(tmp.c_str(), port_file.c_str()) != 0) {
      std::cerr << "wtam_serve: cannot write --port-file " << port_file
                << "\n";
      return 1;
    }
  }
  if (!quiet)
    std::cerr << "wtam_serve: listening on "
              << listener->local_endpoint().to_string() << " ("
              << service.workers() << " workers, cache "
              << (service.cache_enabled()
                      ? std::to_string(service.cache_mb()) + " MiB"
                      : std::string("off"))
              << ")\n";

  ConnectionRegistry registry;
  std::atomic<bool> stopping{false};

  // Signal watcher: SIGTERM/SIGINT (via the self-pipe) stop the accept
  // loop; the main thread then severs clients, drains, and saves. The
  // main thread wakes this watcher with its own byte on clean exits.
  std::thread signal_watcher;
  if (g_signal_pipe[0] >= 0)
    signal_watcher = std::thread([&listener] {
      char byte = 0;
      ssize_t n = 0;
      do {
        n = ::read(g_signal_pipe[0], &byte, 1);
      } while (n < 0 && errno == EINTR);
      listener->stop();
    });

  std::vector<std::thread> readers;
  std::uint64_t next_id = 0;
  while (std::unique_ptr<net::Connection> accepted = listener->accept()) {
    const std::uint64_t id = ++next_id;
    std::shared_ptr<net::Connection> connection(std::move(accepted));
    registry.add(id, connection);
    readers.push_back(std::thread([&service, &registry, &listener, &stopping,
                                   connection, id] {
      // The sink holds the connection alive until its last in-flight
      // job has written its response; writes after a disconnect fail
      // silently inside the transport.
      const serve::Service::Sink sink =
          [connection](const std::string& line) {
            (void)connection->write_line(line);
          };
      std::string line;
      std::uint64_t line_number = 0;
      for (;;) {
        switch (connection->read_line(line)) {
          case net::ReadStatus::Line: {
            ++line_number;
            if (line.empty()) continue;
            if (service.handle_line(line, line_number, sink) ==
                serve::Service::Action::Shutdown) {
              // Drained and saved; now stop the world. The ack already
              // reached this client.
              stopping.store(true);
              listener->stop();
              registry.sever_all();
              return;
            }
            continue;
          }
          case net::ReadStatus::TooLong: {
            ++line_number;
            api::JsonValue response = api::JsonValue::object();
            response.set(
                "error",
                api::JsonValue::string(
                    "line " + std::to_string(line_number) +
                    ": frame exceeds the line-length bound; resynced at "
                    "the next newline"));
            sink(response.dump_compact_string());
            continue;
          }
          case net::ReadStatus::Eof:
            // Client hung up: just this client ends. In-flight jobs
            // still complete (their writes land on the dead socket and
            // are dropped).
            registry.remove(id);
            return;
        }
      }
    }));
  }

  // Accept loop ended: a signal or a shutdown verb. Sever any remaining
  // clients so their readers unblock, then join and drain.
  registry.sever_all();
  for (std::thread& reader : readers) reader.join();
  if (signal_watcher.joinable()) {
    const char byte = 'q';
    const ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
    (void)ignored;
    signal_watcher.join();
  }
  if (!stopping.load()) service.drain_and_save();  // signal path
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServiceOptions options;
  options.threads = 0;  // server default: use the hardware
  std::string listen;
  std::string port_file;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--listen") {
      listen = value();
      try {
        (void)net::parse_endpoint(listen);  // fail at flag-parse time
      } catch (const std::exception& e) {
        usage(e.what());
      }
    } else if (arg == "--port-file") {
      port_file = value();
      if (port_file.empty()) usage("--port-file needs a non-empty path");
    } else if (arg == "--threads") {
      options.threads = std::atoi(value());
      if (options.threads < 0)
        usage("--threads must be >= 0 (0 = hardware threads)");
    } else if (arg == "--cache-mb") {
      const int mb = std::atoi(value());
      if (mb < 0) usage("--cache-mb must be >= 0 (0 disables the cache)");
      options.cache_mb = static_cast<std::size_t>(mb);
      options.use_cache = mb > 0;
    } else if (arg == "--no-cache") {
      options.use_cache = false;
    } else if (arg == "--cache-file") {
      options.cache_file = value();
      if (options.cache_file.empty())
        usage("--cache-file needs a non-empty path");
    } else if (arg == "--queue-limit") {
      const int limit = std::atoi(value());
      if (limit < 0) usage("--queue-limit must be >= 0 (0 = never shed)");
      options.queue_limit = static_cast<std::uint64_t>(limit);
    } else if (arg == "--timing") {
      options.timing = true;
    } else if (arg == "--trace") {
      options.trace = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  if (!options.use_cache && !options.cache_file.empty())
    usage("--cache-file needs the cache (drop --no-cache / --cache-mb 0)");
  if (listen.empty() && !port_file.empty())
    usage("--port-file only makes sense with --listen");

  install_signal_handlers();

  serve::Service service(std::move(options),
                         [quiet](const std::string& message) {
                           if (!quiet)
                             std::cerr << "wtam_serve: " << message << "\n";
                         });

  if (!listen.empty())
    return run_listen(service, net::parse_endpoint(listen), port_file, quiet);

  if (!quiet)
    std::cerr << "wtam_serve: ready (" << service.workers()
              << " workers, cache "
              << (service.cache_enabled()
                      ? std::to_string(service.cache_mb()) + " MiB"
                      : std::string("off"))
              << "); one JSON request per line, {\"op\": \"shutdown\"} to "
                 "stop\n";
  return run_stdio(service);
}
