// Writes the four benchmark SOCs to .soc files (the documented text
// dialect), so downstream users can inspect and modify the workloads.
// The repository's data/ directory is generated with this tool.

#include <iostream>
#include <string>

#include "wtam.hpp"

int main(int argc, char** argv) {
  using namespace wtam;
  const std::string dir = argc > 1 ? argv[1] : ".";
  for (const soc::Soc& soc :
       {soc::d695(), soc::p21241(), soc::p31108(), soc::p93791()}) {
    const std::string path = dir + "/" + soc.name + ".soc";
    soc::save_soc_file(path, soc);
    std::cout << "wrote " << path << " (" << soc.core_count() << " cores, "
              << "complexity " << soc::test_complexity(soc) << ")\n";
  }
  return 0;
}
