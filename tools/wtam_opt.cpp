// wtam_opt — command-line wrapper/TAM co-optimizer.
//
//   wtam_opt --soc d695 --width 32
//   wtam_opt --soc d695 --width 32 --backend rectpack --gantt
//   wtam_opt --soc path/to/design.soc --width 64 --max-tams 8
//   wtam_opt --soc p93791 --width 48 --fixed-tams 3 --exhaustive --budget 30
//
// Options:
//   --soc NAME|FILE   built-in benchmark (d695, p21241, p31108, p93791) or
//                     a .soc file in the documented dialect
//   --width W         total TAM width (required)
//   --backend NAME    optimizer backend (default enumerative); see
//                     --list-backends
//   --list-backends   print the registered backends and exit
//   --max-tams B      search B in [1, B] (default 10)
//   --fixed-tams B    pin the number of TAMs (overrides --max-tams)
//   --threads N       worker threads for the partition search and the
//                     exhaustive baseline (default 1 = serial; 0 = one
//                     per hardware thread); results are identical to
//                     serial at any thread count
//   --no-final-ilp    skip the exact re-optimization step
//   --exhaustive      also run the exhaustive baseline of [8]
//   --budget S        wall-clock budget for --exhaustive (default 30)
//   --gantt           print the test schedule as a Gantt chart
//   --quiet           only print the testing time (scripting)
//
// Exit status: 0 on success, 1 on runtime errors (bad .soc files, ...),
// 2 on usage errors (unknown flags, missing/invalid values).

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "wtam.hpp"

namespace {

[[noreturn]] void usage(const char* error = nullptr) {
  if (error) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: wtam_opt --soc NAME|FILE --width W [--backend NAME]\n"
               "                [--list-backends] [--max-tams B] [--fixed-tams B]\n"
               "                [--threads N] [--no-final-ilp] [--exhaustive]\n"
               "                [--budget S] [--gantt] [--quiet]\n"
               "built-in SOCs: d695 p21241 p31108 p93791\n";
  std::exit(2);
}

[[noreturn]] void list_backends() {
  for (const auto& name : wtam::core::BackendRegistry::instance().names()) {
    const auto* backend = wtam::core::BackendRegistry::instance().find(name);
    std::cout << name << "\t" << backend->description() << "\n";
  }
  std::exit(0);
}

wtam::soc::Soc load(const std::string& name) {
  using namespace wtam::soc;
  if (name == "d695") return d695();
  if (name == "p21241") return p21241();
  if (name == "p31108") return p31108();
  if (name == "p93791") return p93791();
  return load_soc_file(name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wtam;

  std::string soc_name;
  std::string backend = "enumerative";
  int width = 0;
  int max_tams = 10;
  std::optional<int> fixed_tams;
  int threads = 1;
  bool final_ilp = true;
  bool exhaustive = false;
  double budget = 30.0;
  bool gantt = false;
  bool quiet = false;
  // Flags only the enumerative backend honors; remembered so selecting
  // another backend warns instead of silently ignoring them.
  std::vector<std::string> enumerative_flags;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--soc") {
      soc_name = value();
    } else if (arg == "--width") {
      width = std::atoi(value());
    } else if (arg == "--backend") {
      backend = value();
    } else if (arg == "--list-backends") {
      list_backends();
    } else if (arg == "--max-tams") {
      max_tams = std::atoi(value());
      enumerative_flags.push_back(arg);
    } else if (arg == "--fixed-tams") {
      fixed_tams = std::atoi(value());
      enumerative_flags.push_back(arg);
    } else if (arg == "--threads") {
      threads = std::atoi(value());
      enumerative_flags.push_back(arg);
    } else if (arg == "--no-final-ilp") {
      final_ilp = false;
      enumerative_flags.push_back(arg);
    } else if (arg == "--exhaustive") {
      exhaustive = true;
    } else if (arg == "--budget") {
      budget = std::atof(value());
    } else if (arg == "--gantt") {
      gantt = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  if (soc_name.empty()) usage("--soc is required");
  if (width < 1 || width > 256) usage("--width must be in 1..256");
  if (fixed_tams && (*fixed_tams < 1 || *fixed_tams > width))
    usage("--fixed-tams out of range");
  if (threads < 0) usage("--threads must be >= 0 (0 = hardware threads)");
  if (core::BackendRegistry::instance().find(backend) == nullptr)
    usage(("unknown backend " + backend + " (see --list-backends)").c_str());
  if (backend != "enumerative")
    for (const auto& flag : enumerative_flags) {
      // --threads/--max-tams/--fixed-tams still drive the --exhaustive
      // baseline; only --no-final-ilp is enumerative-only regardless.
      if (exhaustive && flag != "--no-final-ilp") continue;
      std::cerr << "warning: " << flag << " is ignored by the " << backend
                << " backend\n";
    }

  try {
    const soc::Soc soc = load(soc_name);
    const core::TestTimeTable table(soc, width);

    core::BackendOptions options;
    options.max_tams = fixed_tams ? *fixed_tams : max_tams;
    options.min_tams = fixed_tams ? *fixed_tams : 1;
    options.threads = threads;
    options.run_final_step = final_ilp;
    const auto outcome = core::run_backend(backend, table, width, options);
    pack::require_valid(table, outcome.schedule);

    if (quiet) {
      std::cout << outcome.testing_time << "\n";
      return 0;
    }

    // Align every "key: value" line on the longest key the backend emits
    // ("testing time" is the longest fixed label).
    std::size_t key_width = std::string("testing time").size();
    for (const auto& [key, detail] : outcome.details)
      key_width = std::max(key_width, key.size());
    const auto label = [key_width](std::string key) {
      key += ':';
      key.resize(key_width + 2, ' ');
      return key;
    };

    std::cout << "SOC " << soc.name << " (" << soc.core_count()
              << " cores), total TAM width " << width << "\n"
              << label("backend") << outcome.backend << "\n";
    if (outcome.architecture)
      std::cout << label("architecture") << outcome.architecture->tam_count()
                << " TAMs\n";
    for (const auto& [key, detail] : outcome.details)
      std::cout << label(key) << detail << "\n";
    std::cout << label("testing time") << outcome.testing_time << " cycles ("
              << common::format_fixed(outcome.cpu_s, 3) << " s CPU)\n";

    const auto bounds = core::testing_time_lower_bounds(table, width);
    std::cout << label("lower bound") << bounds.combined() << " cycles (gap "
              << common::format_fixed(
                     core::optimality_gap(bounds, outcome.testing_time) * 100.0,
                     2)
              << "%)\n";

    if (exhaustive) {
      core::ExhaustiveOptions ex;
      ex.time_budget_s = budget;
      ex.threads = threads;
      const auto baseline =
          core::exhaustive_pnpaw(table, width, options.max_tams, ex);
      if (baseline.completed) {
        std::cout << label("exhaustive") << baseline.best.testing_time
                  << " cycles, partition "
                  << core::format_partition(baseline.best.widths) << " ("
                  << common::format_fixed(baseline.cpu_s, 3) << " s)\n";
      } else {
        std::cout << label("exhaustive") << "did not complete within "
                  << common::format_fixed(budget, 0) << " s ("
                  << baseline.partitions_solved << "/"
                  << baseline.partitions_total << " partitions)\n";
      }
    }

    if (gantt)
      std::cout << "\n" << pack::render_packed_gantt(outcome.schedule, soc, 64);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (...) {
    std::cerr << "error: unknown exception\n";
    return 1;
  }
  return 0;
}
