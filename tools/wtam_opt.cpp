// wtam_opt — command-line wrapper/TAM co-optimizer.
//
//   wtam_opt --soc d695 --width 32
//   wtam_opt --soc d695 --width 32 --backend rectpack --gantt
//   wtam_opt --soc p93791 --width 48 --deadline 2.5
//   wtam_opt --batch examples/jobs.json --threads 4 --out results.json
//
// Options (single-job mode):
//   --soc NAME|FILE   built-in benchmark (d695, p21241, p31108, p93791) or
//                     a .soc file in the documented dialect
//   --width W         total TAM width (required)
//   --backend NAME    optimizer backend (default enumerative); see
//                     --list-backends
//   --list-backends   print the registered backends and exit
//   --max-tams B      search B in [1, B] (default 10)
//   --fixed-tams B    pin the number of TAMs (overrides --max-tams)
//   --threads N       worker threads for the partition search, the
//                     rectpack walkers, and the exhaustive baseline
//                     (default 1 = serial; 0 = one per hardware thread);
//                     results are identical to serial at any thread count
//   --constraints F   JSON file with a scenario-constraints object
//                     (power/power_budget/precedence/fixed/forbidden/
//                     earliest_start — the jobs-file "constraints" block;
//                     see README "Constraints"). rectpack honors every
//                     class; enumerative honors the power budget and
//                     rejects the rest as invalid_request
//   --deadline S      wall-clock budget; an expired job returns its
//                     best-so-far schedule with status deadline_exceeded
//   --no-final-ilp    skip the exact re-optimization step
//   --exhaustive      also run the exhaustive baseline of [8]
//   --budget S        wall-clock budget for --exhaustive (default 30)
//   --gantt           print the test schedule as a Gantt chart
//   --quiet           only print the testing time (scripting)
//
// Batch mode (runs jobs concurrently through the api::Solver):
//   --batch FILE      jobs JSON (see src/api/job_io.hpp for the format)
//   --threads N       concurrent jobs (default 1; 0 = hardware threads)
//   --out FILE        write the results JSON there (default: stdout)
//   --timing          include cpu_s/wall_s in the results JSON (off by
//                     default so results are byte-identical across runs)
//   --quiet           suppress the per-job progress lines on stderr
//
// Either mode:
//   --metrics         after the run, print the process metrics snapshot
//                     (Prometheus text) on stderr — counters, gauges,
//                     and stage histograms. Results output is unchanged
//   --trace           collect per-solve stage spans and print them on
//                     stderr per job (queue-wait, soc-resolve,
//                     cache-lookup, walkers, exact step, validation).
//                     Results output is unchanged
//   --cache           memoize results (api::ResultCache): repeated
//                     identical (SOC, width, backend, options) points are
//                     served from the cache, byte-identical to the cold
//                     run; concurrent duplicates coalesce. Results JSON
//                     is unchanged by the cache (provenance is off the
//                     canonical bytes); a batch summary goes to stderr
//   --cache-mb M      cache byte budget in MiB (default 64; implies
//                     --cache unless M is 0)
//
// Exit status: 0 on success (deadline_exceeded is a success: a valid
// best-so-far schedule was produced), 1 on runtime errors (bad .soc
// files, unreadable jobs files, invalid/failed jobs in a batch), 2 on
// usage errors (unknown flags, missing/invalid values).

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "wtam.hpp"

namespace {

[[noreturn]] void usage(const char* error = nullptr) {
  if (error) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: wtam_opt --soc NAME|FILE --width W [--backend NAME]\n"
               "                [--list-backends] [--max-tams B] [--fixed-tams B]\n"
               "                [--threads N] [--constraints FILE] [--deadline S]\n"
               "                [--no-final-ilp] [--exhaustive] [--budget S]\n"
               "                [--gantt] [--quiet]\n"
               "       wtam_opt --batch jobs.json [--threads N] [--out FILE]\n"
               "                [--timing] [--quiet]\n"
               "       either mode also takes [--cache] [--cache-mb M]\n"
               "                              [--metrics] [--trace]\n"
               "built-in SOCs:";
  for (const std::string_view name : wtam::soc::builtin_soc_names())
    std::cerr << " " << name;
  std::cerr << "\n";
  std::exit(2);
}

// --trace report for one solve: the stage spans, ordered by start time,
// in microseconds relative to the job's submission. Stderr only — the
// results JSON/stdout contract is untouched.
void report_trace(const wtam::api::SolveResult& result) {
  if (result.trace.empty()) return;
  std::cerr << "trace " << (result.id.empty() ? "(job)" : result.id) << ":\n";
  for (const auto& span : result.trace)
    std::cerr << "  " << span.stage << "  +" << span.start_ns / 1000 << "us  "
              << span.duration_ns / 1000 << "us\n";
}

// --metrics report: the process-wide registry snapshot in Prometheus text
// exposition, the same bytes the wtam_serve `metrics` verb serves.
void report_metrics() {
  std::cerr << "metrics:\n"
            << wtam::obs::to_prometheus(
                   wtam::obs::MetricsRegistry::instance().snapshot());
}

[[noreturn]] void list_backends() {
  const auto backends = wtam::core::BackendRegistry::instance().backends();
  std::size_t name_width = 0;
  for (const auto* backend : backends)
    name_width = std::max(name_width, backend->name().size());
  for (const auto* backend : backends) {
    std::string name(backend->name());
    name.resize(name_width + 2, ' ');
    std::cout << name << backend->description() << "\n";
  }
  std::exit(0);
}

int run_batch(const std::string& jobs_path, int threads,
              const std::string& out_path, bool include_timing, bool quiet,
              bool metrics, bool trace,
              std::shared_ptr<wtam::api::ResultCache> cache) {
  using namespace wtam;
  try {
    const std::vector<api::SolveRequest> jobs =
        api::load_jobs_file(jobs_path);
    if (jobs.empty()) {
      std::cerr << "error: " << jobs_path << " contains no jobs\n";
      return 1;
    }

    api::ProgressFn progress;
    if (!quiet)
      progress = [](const api::ProgressEvent& event) {
        if (event.phase != api::ProgressEvent::Phase::Finished) return;
        const api::SolveResult& result = *event.result;
        std::cerr << "[" << event.index + 1 << "/" << event.total << "] "
                  << result.id << ": " << api::to_string(result.status);
        if (result.has_outcome())
          std::cerr << " (" << result.outcome->testing_time << " cycles, W="
                    << result.width << ")";
        if (!result.error.empty()) std::cerr << " — " << result.error;
        std::cerr << "\n";
      };

    api::SolverOptions solver_options =
        api::SolverOptions::with_threads(threads, cache);
    solver_options.trace = trace;
    api::Solver solver(solver_options);
    const std::vector<api::SolveResult> results =
        solver.solve_batch(jobs, {}, progress);

    if (trace)
      for (const auto& result : results) report_trace(result);
    if (metrics) report_metrics();

    if (cache != nullptr && !quiet) {
      const api::ResultCacheStats stats = cache->stats();
      std::cerr << "cache: " << stats.hits << " hits, " << stats.misses
                << " misses, " << stats.entries << " entries ("
                << stats.bytes / 1024 << " KiB)\n";
    }

    api::ResultsWriteOptions write_options;
    write_options.include_timing = include_timing;
    if (out_path.empty())
      std::cout << api::results_to_json(results, write_options) << "\n";
    else
      api::write_results_file(out_path, results, write_options);

    int failed = 0;
    for (const auto& result : results)
      if (result.status == api::Status::InvalidRequest ||
          result.status == api::Status::InternalError ||
          (result.has_outcome() && !result.schedule_valid))
        ++failed;
    if (failed != 0) {
      std::cerr << "error: " << failed << " of " << results.size()
                << " jobs failed (see results JSON)\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wtam;

  std::string soc_name;
  std::string backend = "enumerative";
  std::string batch_path;
  std::string out_path;
  std::string constraints_path;
  int width = 0;
  int max_tams = 10;
  std::optional<int> fixed_tams;
  int threads = 1;
  std::optional<double> deadline_s;
  bool final_ilp = true;
  bool exhaustive = false;
  bool timing = false;
  double budget = 30.0;
  bool gantt = false;
  bool quiet = false;
  bool metrics = false;
  bool trace = false;
  bool use_cache = false;
  int cache_mb = 64;
  // Flags only the enumerative backend honors; remembered so selecting
  // another backend warns instead of silently ignoring them.
  std::vector<std::string> enumerative_flags;
  // Flags meaningless in batch mode, for the same kind of warning.
  std::vector<std::string> single_only_flags;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--soc") {
      soc_name = value();
    } else if (arg == "--width") {
      width = std::atoi(value());
    } else if (arg == "--backend") {
      backend = value();
      single_only_flags.push_back(arg);
    } else if (arg == "--list-backends") {
      list_backends();
    } else if (arg == "--batch") {
      batch_path = value();
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--max-tams") {
      max_tams = std::atoi(value());
      enumerative_flags.push_back(arg);
      single_only_flags.push_back(arg);
    } else if (arg == "--fixed-tams") {
      fixed_tams = std::atoi(value());
      enumerative_flags.push_back(arg);
      single_only_flags.push_back(arg);
    } else if (arg == "--threads") {
      // Honored by every backend (partition search, rectpack walkers)
      // and the exhaustive baseline, so no backend-mismatch warning.
      threads = std::atoi(value());
    } else if (arg == "--constraints") {
      constraints_path = value();
      single_only_flags.push_back(arg);
    } else if (arg == "--deadline") {
      deadline_s = std::atof(value());
      single_only_flags.push_back(arg);
    } else if (arg == "--no-final-ilp") {
      final_ilp = false;
      enumerative_flags.push_back(arg);
      single_only_flags.push_back(arg);
    } else if (arg == "--exhaustive") {
      exhaustive = true;
      single_only_flags.push_back(arg);
    } else if (arg == "--budget") {
      budget = std::atof(value());
      single_only_flags.push_back(arg);
    } else if (arg == "--gantt") {
      gantt = true;
      single_only_flags.push_back(arg);
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--cache") {
      use_cache = true;
    } else if (arg == "--cache-mb") {
      cache_mb = std::atoi(value());
      use_cache = cache_mb > 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }

  if (cache_mb < 0) usage("--cache-mb must be >= 0 (0 disables the cache)");
  std::shared_ptr<api::ResultCache> cache;
  if (use_cache) {
    api::ResultCacheOptions cache_options;
    cache_options.max_bytes = static_cast<std::size_t>(cache_mb) << 20;
    cache = std::make_shared<api::ResultCache>(cache_options);
  }

  if (!batch_path.empty()) {
    if (!soc_name.empty() || width != 0)
      usage("--batch cannot be combined with --soc/--width (configure jobs "
            "in the jobs file)");
    if (!single_only_flags.empty())
      usage(("--batch cannot be combined with " + single_only_flags.front() +
             " (configure jobs in the jobs file)")
                .c_str());
    if (threads < 0) usage("--threads must be >= 0 (0 = hardware threads)");
    return run_batch(batch_path, threads, out_path, timing, quiet, metrics,
                     trace, std::move(cache));
  }
  if (!out_path.empty()) usage("--out requires --batch");
  if (timing) usage("--timing requires --batch");

  if (soc_name.empty()) usage("--soc is required");
  if (width < 1 || width > 256) usage("--width must be in 1..256");
  if (fixed_tams && (*fixed_tams < 1 || *fixed_tams > width))
    usage("--fixed-tams out of range");
  if (threads < 0) usage("--threads must be >= 0 (0 = hardware threads)");
  if (deadline_s && !(*deadline_s > 0.0)) usage("--deadline must be > 0");
  if (core::BackendRegistry::instance().find(backend) == nullptr)
    usage(("unknown backend " + backend + " (see --list-backends)").c_str());
  if (backend != "enumerative")
    for (const auto& flag : enumerative_flags) {
      // --max-tams/--fixed-tams still drive the --exhaustive baseline;
      // only --no-final-ilp is enumerative-only regardless.
      if (exhaustive && flag != "--no-final-ilp") continue;
      std::cerr << "warning: " << flag << " is ignored by the " << backend
                << " backend\n";
    }

  try {
    const soc::Soc soc = soc::load_by_name_or_path(soc_name);

    api::SolveRequest request;
    request.soc_value = soc;
    request.width = width;
    request.backend = backend;
    request.options.max_tams = fixed_tams ? *fixed_tams : max_tams;
    request.options.min_tams = fixed_tams ? *fixed_tams : 1;
    request.options.threads = threads;
    request.options.run_final_step = final_ilp;
    request.deadline_s = deadline_s;
    if (!constraints_path.empty()) {
      std::ifstream in(constraints_path, std::ios::binary);
      if (!in)
        throw std::runtime_error("cannot open constraints file " +
                                 constraints_path);
      std::ostringstream text;
      text << in.rdbuf();
      request.options.constraints =
          api::constraints_from_json(api::JsonValue::parse(text.str()));
    }

    api::SolverOptions solver_options =
        api::SolverOptions::with_threads(1, std::move(cache));
    solver_options.trace = trace;
    const api::SolveResult result = api::Solver(solver_options).solve(request);
    if (trace) report_trace(result);
    if (metrics) report_metrics();
    if (result.status == api::Status::InvalidRequest ||
        result.status == api::Status::InternalError || !result.has_outcome()) {
      std::cerr << "error: "
                << (result.error.empty() ? "solver produced no outcome"
                                         : result.error)
                << "\n";
      return 1;
    }
    if (!result.schedule_valid) {
      // Same teeth pack::require_valid used to have: a backend emitting a
      // geometrically invalid schedule is a runtime error, not a result.
      std::cerr << "error: backend " << request.backend
                << " produced an invalid schedule\n";
      return 1;
    }
    const core::BackendOutcome& outcome = *result.outcome;

    if (quiet) {
      std::cout << outcome.testing_time << "\n";
      return 0;
    }

    // Align every "key: value" line on the longest key the backend emits
    // ("testing time" is the longest fixed label).
    std::size_t key_width = std::string("testing time").size();
    for (const auto& [key, detail] : outcome.details)
      key_width = std::max(key_width, key.size());
    const auto label = [key_width](std::string key) {
      key += ':';
      key.resize(key_width + 2, ' ');
      return key;
    };

    std::cout << "SOC " << soc.name << " (" << soc.core_count()
              << " cores), total TAM width " << width << "\n"
              << label("backend") << outcome.backend << "\n";
    if (result.status != api::Status::Ok)
      std::cout << label("status") << api::to_string(result.status)
                << " (best-so-far result)\n";
    if (result.cache != api::CacheOutcome::Bypass)
      std::cout << label("cache") << api::to_string(result.cache) << "\n";
    if (outcome.architecture)
      std::cout << label("architecture") << outcome.architecture->tam_count()
                << " TAMs\n";
    for (const auto& [key, detail] : outcome.details)
      std::cout << label(key) << detail << "\n";
    std::cout << label("testing time") << outcome.testing_time << " cycles ("
              << common::format_fixed(outcome.cpu_s, 3) << " s CPU)\n";

    std::cout << label("lower bound") << result.lower_bound << " cycles (gap "
              << common::format_fixed(result.optimality_gap() * 100.0, 2)
              << "%)\n";

    if (exhaustive) {
      // The table the Solver built internally is not exposed, so the
      // baseline (already budget-bound, off the common path) rebuilds it.
      const core::TestTimeTable table(soc, width);
      core::ExhaustiveOptions ex;
      ex.time_budget_s = budget;
      ex.threads = threads;
      // --deadline bounds the whole invocation: the baseline stops at
      // whichever of --budget and the remaining deadline fires first.
      core::SolveContext deadline_context;
      if (deadline_s) {
        deadline_context = core::SolveContext::with_deadline(
            std::max(0.0, *deadline_s - result.wall_s));
        ex.context = &deadline_context;
      }
      const auto baseline =
          core::exhaustive_pnpaw(table, width, request.options.max_tams, ex);
      if (baseline.completed) {
        std::cout << label("exhaustive") << baseline.best.testing_time
                  << " cycles, partition "
                  << core::format_partition(baseline.best.widths) << " ("
                  << common::format_fixed(baseline.cpu_s, 3) << " s)\n";
      } else if (ex.context != nullptr &&
                 ex.context->poll() != core::SolveInterrupt::None) {
        std::cout << label("exhaustive") << "stopped by --deadline ("
                  << baseline.partitions_solved << "/"
                  << baseline.partitions_total << " partitions)\n";
      } else {
        std::cout << label("exhaustive") << "did not complete within "
                  << common::format_fixed(budget, 0) << " s ("
                  << baseline.partitions_solved << "/"
                  << baseline.partitions_total << " partitions)\n";
      }
    }

    if (gantt)
      std::cout << "\n" << pack::render_packed_gantt(outcome.schedule, soc, 64);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (...) {
    // CLI exit contract: runtime failures — even non-std exceptions —
    // must end as exit 1 with a message, never a terminate() crash.
    std::cerr << "error: unknown exception\n";
    return 1;
  }
  return 0;
}
