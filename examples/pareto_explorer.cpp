// Pareto explorer: the width/testing-time trade-off of individual cores.
//
// The paper's §1 motivates multiple TAMs with the observation that cores
// only exploit TAM width up to a point ("idle TAM wires"). This example
// prints, for each core of a chosen SOC, the staircase T(w) of Pareto-
// optimal wrapper widths — the widths at which the testing time actually
// improves — and the width at which the core saturates.

#include <iostream>
#include <string>

#include "wtam.hpp"

int main(int argc, char** argv) {
  using namespace wtam;

  const std::string which = argc > 1 ? argv[1] : "d695";
  soc::Soc soc;
  try {
    soc = soc::load_by_name_or_path(which);
  } catch (const std::exception& e) {
    std::cerr << "usage: pareto_explorer [d695|p21241|p31108|p93791|FILE.soc]\n"
              << e.what() << "\n";
    return 1;
  }

  constexpr int kMaxWidth = 64;
  common::TextTable table("Pareto-optimal wrapper widths, " + soc.name +
                          " (T in cycles, widths 1.." +
                          std::to_string(kMaxWidth) + ")");
  table.set_header({"core", "T(1)", "saturation width", "T(min)", "staircase"},
                   {common::Align::Left, common::Align::Right,
                    common::Align::Right, common::Align::Right,
                    common::Align::Left});

  for (const auto& core : soc.cores) {
    const auto widths = wrapper::pareto_widths(core, kMaxWidth);
    std::string staircase;
    for (std::size_t k = 0; k < widths.size(); ++k) {
      if (k > 0) staircase += ' ';
      staircase += std::to_string(widths[k]) + ':' +
                   std::to_string(wrapper::test_time(core, widths[k]));
      if (staircase.size() > 70) {  // keep rows printable
        staircase += " ...";
        break;
      }
    }
    table.add_row({core.name, std::to_string(wrapper::test_time(core, 1)),
                   std::to_string(widths.back()),
                   std::to_string(wrapper::test_time(core, widths.back())),
                   staircase});
  }
  std::cout << table;

  std::cout << "\nReading: 'saturation width' is the smallest wrapper width "
               "reaching the core's minimal testing time; assigning the core "
               "to a wider TAM only idles wires (paper §1).\n";
  return 0;
}
