// Power-aware test scheduling: sweep the peak-power budget and show the
// testing-time / peak-power trade-off on a co-optimized architecture
// (the constraint studied by the paper's reference [4]).

#include <iostream>
#include <numeric>

#include "wtam.hpp"

int main(int argc, char** argv) {
  using namespace wtam;

  const int width = argc > 1 ? std::atoi(argv[1]) : 32;
  if (width < 2 || width > 64) {
    std::cerr << "usage: power_aware [total_width 2..64]\n";
    return 1;
  }

  const soc::Soc soc = soc::d695();
  const core::TestTimeTable table(soc, width);
  core::CoOptimizeOptions options;
  options.search.max_tams = 4;
  const auto result = core::co_optimize(table, width, options);
  const auto& arch = result.architecture;

  const core::PowerVector power = core::scan_activity_power(soc);
  const auto unconstrained = core::build_schedule(table, arch);
  const std::int64_t peak0 = core::peak_power(unconstrained, power);
  const std::int64_t largest = *std::max_element(power.begin(), power.end());

  std::cout << soc.name << " at W=" << width << ", partition "
            << core::format_partition(arch.widths) << ": unconstrained "
            << arch.testing_time << " cycles at peak power " << peak0
            << " (scan-activity units)\n\n";

  common::TextTable sweep("Peak-power budget sweep");
  sweep.set_header({"budget", "feasible", "peak", "testing time",
                    "slowdown (%)", "inserted idle (cycles)"});
  for (double fraction : {1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4}) {
    const auto budget = static_cast<std::int64_t>(fraction * peak0);
    const auto constrained =
        core::schedule_with_power_limit(table, arch, power, budget);
    if (!constrained.feasible) {
      sweep.add_row({std::to_string(budget), "no", "-", "-", "-", "-"});
      continue;
    }
    const double slowdown =
        (static_cast<double>(constrained.schedule.makespan) -
         static_cast<double>(arch.testing_time)) /
        static_cast<double>(arch.testing_time) * 100.0;
    sweep.add_row({std::to_string(budget), "yes",
                   std::to_string(constrained.peak),
                   std::to_string(constrained.schedule.makespan),
                   common::format_fixed(slowdown, 1),
                   std::to_string(constrained.idle_cycles)});
  }
  std::cout << sweep;
  std::cout << "\n(lowest feasible budget = largest single-core power = "
            << largest << ")\n";
  return 0;
}
