// Reproduces the paper's Figure 2 worked example step by step.
//
// Five cores, three TAMs of widths 32/16/8, testing times given by Figure
// 2(a). Core_assign must end with TAM times 180/200/200 and the assignment
// of Figure 2(b): cores 1..5 -> TAMs 2, 3, 2, 1, 1.

#include <iostream>

#include "wtam.hpp"

int main() {
  using namespace wtam;

  const std::vector<int> widths = {32, 16, 8};
  const core::ExplicitTimeMatrix times(
      {32, 16, 8}, {
                       {50, 100, 200},   // Core 1
                       {75, 95, 200},    // Core 2
                       {90, 100, 150},   // Core 3
                       {60, 75, 80},     // Core 4
                       {120, 120, 125},  // Core 5
                   });

  common::TextTable matrix("Figure 2(a): core testing times (cycles)");
  matrix.set_header({"Core", "TAM 1 (32)", "TAM 2 (16)", "TAM 3 (8)"});
  for (int i = 0; i < times.core_count(); ++i)
    matrix.add_row({std::to_string(i + 1), std::to_string(times.time(i, 32)),
                    std::to_string(times.time(i, 16)),
                    std::to_string(times.time(i, 8))});
  std::cout << matrix << "\n";

  std::cout << "Core_assign walkthrough (largest time -> least-loaded TAM):\n"
            << "  1. All TAMs empty; widest (TAM 1) goes first. Core 5 has\n"
            << "     the largest T on TAM 1 (120) -> Core 5 to TAM 1.\n"
            << "  2. TAM 2 is the widest empty TAM. Cores 1 and 3 tie at\n"
            << "     100; Core 1 is slower on the next-narrower TAM 3\n"
            << "     (200 vs 150) -> Core 1 to TAM 2 (Line 14).\n"
            << "  3. Core 2 to TAM 3 (largest remaining T there, 200).\n"
            << "  4. TAM 2 minimally loaded -> Core 3 to TAM 2.\n"
            << "  5. Core 4 to TAM 1.\n\n";

  const core::CoreAssignResult result = core::core_assign(times, widths);
  common::TextTable outcome("Figure 2(b): final assignment");
  outcome.set_header({"Core", "TAM", "time (cycles)"});
  for (int i = 0; i < times.core_count(); ++i) {
    const int tam = result.architecture.assignment[static_cast<std::size_t>(i)];
    outcome.add_row(
        {std::to_string(i + 1), std::to_string(tam + 1),
         std::to_string(times.time(i, widths[static_cast<std::size_t>(tam)]))});
  }
  std::cout << outcome << "\n";

  std::cout << "TAM times:";
  for (const auto t : result.architecture.tam_times) std::cout << ' ' << t;
  std::cout << "  (paper: 180 200 200)\n";
  std::cout << "SOC testing time: " << result.architecture.testing_time
            << " cycles (paper: 200)\n";

  // The final optimization step (exact P_AW) confirms 200 is optimal here.
  const core::ExactResult exact =
      core::solve_assignment_exact(times, widths, {});
  std::cout << "exact optimum for this partition: "
            << exact.architecture.testing_time << " cycles\n";
  return result.architecture.testing_time == 200 ? 0 : 1;
}
