// Test-schedule visualization: co-optimize a SOC, then print the per-TAM
// schedule as a Gantt chart together with the wire-utilization report
// that quantifies the paper's §1 "idle TAM wires" motivation.

#include <iostream>
#include <string>

#include "wtam.hpp"

int main(int argc, char** argv) {
  using namespace wtam;

  const std::string which = argc > 1 ? argv[1] : "d695";
  const int width = argc > 2 ? std::atoi(argv[2]) : 32;
  soc::Soc soc;
  try {
    soc = soc::load_by_name_or_path(which);
  } catch (const std::exception& e) {
    std::cerr << "usage: schedule_gantt [d695|p21241|p31108|p93791|FILE.soc]"
                 " [width]\n"
              << e.what() << "\n";
    return 1;
  }
  if (width < 2 || width > 128) {
    std::cerr << "width must be in 2..128\n";
    return 1;
  }

  const core::TestTimeTable table(soc, width);
  core::CoOptimizeOptions options;
  options.search.max_tams = 8;
  const auto result = core::co_optimize(table, width, options);
  const auto& arch = result.architecture;

  std::cout << soc.name << " at total TAM width " << width << ": partition "
            << core::format_partition(arch.widths) << ", testing time "
            << arch.testing_time << " cycles\n\n";

  const auto schedule =
      core::build_schedule(table, arch, core::ScheduleOrder::LongestFirst);
  std::cout << core::render_gantt(schedule, soc, 64) << "\n";

  common::TextTable util("Wire utilization per TAM");
  util.set_header({"TAM", "width", "max used", "idle wires", "utilization"});
  for (const auto& u : core::wire_utilization(table, arch)) {
    util.add_row({std::to_string(u.tam + 1), std::to_string(u.width),
                  std::to_string(u.max_used_width),
                  std::to_string(u.idle_wires),
                  common::format_fixed(u.time_weighted_utilization * 100.0, 1) +
                      "%"});
  }
  std::cout << util;

  const auto bounds = core::testing_time_lower_bounds(table, width);
  std::cout << "\nlower bounds: bottleneck core "
            << soc.cores[static_cast<std::size_t>(bounds.bottleneck_core_index)]
                   .name
            << " -> " << bounds.bottleneck_core << " cycles; volume -> "
            << bounds.volume << " cycles; achieved gap "
            << common::format_fixed(
                   core::optimality_gap(bounds, arch.testing_time) * 100.0, 1)
            << "%\n";
  return 0;
}
