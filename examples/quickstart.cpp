// Quickstart: co-optimize the test access architecture of SOC d695.
//
// Loads the embedded ITC'02-style benchmark, runs the paper's two-step
// flow (Partition_evaluate + final exact assignment) for a 32-bit total
// TAM width, and prints the resulting architecture.

#include <cstdlib>
#include <iostream>

#include "wtam.hpp"

int main(int argc, char** argv) {
  using namespace wtam;

  int total_width = 32;
  if (argc > 1) total_width = std::atoi(argv[1]);
  if (total_width < 1 || total_width > 128) {
    std::cerr << "usage: quickstart [total_tam_width 1..128]\n";
    return 1;
  }

  // 1. Load a SOC (here: the embedded d695 benchmark).
  const soc::Soc soc = soc::d695();
  std::cout << "SOC " << soc.name << ": " << soc.core_count()
            << " cores, test complexity ~" << soc::test_complexity(soc)
            << "\n\n";

  // 2. Precompute core testing times for every width up to the budget.
  const core::TestTimeTable table(soc, total_width);

  // 3. Run the two-step co-optimization (P_NPAW: number of TAMs is free).
  core::CoOptimizeOptions options;
  options.search.max_tams = 10;
  const core::CoOptimizeResult result =
      core::co_optimize(table, total_width, options);

  // 4. Report.
  const core::TamArchitecture& arch = result.architecture;
  std::cout << "Total TAM width " << total_width << " -> " << arch.tam_count()
            << " TAMs, partition " << core::format_partition(arch.widths)
            << "\n";
  std::cout << "SOC testing time: " << arch.testing_time << " cycles\n";
  std::cout << "heuristic search: " << result.heuristic.best.testing_time
            << " cycles in " << common::format_fixed(result.heuristic_cpu_s, 3)
            << " s; final exact step "
            << common::format_fixed(result.final_cpu_s, 3) << " s\n\n";

  common::TextTable per_tam("Per-TAM schedule");
  per_tam.set_header({"TAM", "width", "time (cycles)", "cores"},
                     {common::Align::Right, common::Align::Right,
                      common::Align::Right, common::Align::Left});
  for (int j = 0; j < arch.tam_count(); ++j) {
    std::string cores;
    for (int i = 0; i < soc.core_count(); ++i) {
      if (arch.assignment[static_cast<std::size_t>(i)] != j) continue;
      if (!cores.empty()) cores += ", ";
      cores += soc.cores[static_cast<std::size_t>(i)].name;
    }
    per_tam.add_row({std::to_string(j + 1),
                     std::to_string(arch.widths[static_cast<std::size_t>(j)]),
                     std::to_string(arch.tam_times[static_cast<std::size_t>(j)]),
                     cores});
  }
  std::cout << per_tam;
  std::cout << "\nassignment vector " << core::format_assignment(arch.assignment)
            << "\n";
  return 0;
}
