// Rectangle-packing walkthrough on d695.
//
// Shows the three layers of the rectpack backend one at a time:
//   1. the rectangle model — each core's Pareto-optimal (width x time)
//      candidates derived from Design_wrapper;
//   2. a raw bottom-left skyline pack of the min-area rectangles;
//   3. the full rectpack_schedule flow (seed orderings + width-adjust
//      local search + hole-filling compaction), validated and rendered
//      as a wire-level Gantt chart, side by side with the enumerative
//      backend on the same SOC and width.
//
// Build & run:  cmake --build build --target example_rectpack_demo
//               ./build/example_rectpack_demo

#include <iostream>

#include "wtam.hpp"

int main() {
  using namespace wtam;

  const soc::Soc soc = soc::d695();
  constexpr int kWidth = 24;
  const core::TestTimeTable table(soc, kWidth);

  // --- 1. the rectangle model -------------------------------------------
  const pack::RectModel model = pack::build_rect_model(table, kWidth);
  std::cout << "Candidate rectangles at W=" << kWidth
            << " (width x cycles, Pareto-optimal widths only):\n";
  for (const int core : {0, 5, 9}) {
    std::cout << "  " << soc.cores[static_cast<std::size_t>(core)].name << ":";
    for (const auto& rect : model.candidates[static_cast<std::size_t>(core)])
      std::cout << " " << rect.width << "x" << rect.time;
    std::cout << "\n";
  }
  std::cout << "total min-rectangle area " << model.total_min_area()
            << " wire-cycles => area bound "
            << (model.total_min_area() + kWidth - 1) / kWidth << " cycles\n\n";

  // --- 2. a plain skyline pack ------------------------------------------
  pack::Skyline skyline(kWidth);
  for (int i = 0; i < model.core_count(); ++i) {
    const pack::Rect& rect = model.min_area_rect(i);
    const auto spot = skyline.best_spot(rect.width);
    skyline.place(spot.wire, rect.width, spot.start + rect.time);
  }
  std::cout << "naive skyline pack of the min-area rectangles: "
            << skyline.makespan() << " cycles\n";

  // --- 3. the full backend, against the enumerative flow ----------------
  // Both engines through the public api::Solver (the registry's raw
  // optimize() seam is for backend-level tests only).
  const auto solve_with = [&](const std::string& backend) {
    api::SolveRequest request;
    request.soc_value = soc;
    request.width = kWidth;
    request.backend = backend;
    return api::Solver().solve(request);
  };
  const api::SolveResult rectpack = solve_with("rectpack");
  const api::SolveResult enumerative = solve_with("enumerative");
  if (!rectpack.has_outcome() || !rectpack.schedule_valid ||
      !enumerative.has_outcome()) {
    std::cerr << "error: solver produced no valid outcome\n";
    return 1;
  }

  std::cout << "rectpack backend:    " << rectpack.outcome->testing_time
            << " cycles (" << common::format_fixed(rectpack.outcome->cpu_s, 3)
            << " s)\n"
            << "enumerative backend: " << enumerative.outcome->testing_time
            << " cycles ("
            << common::format_fixed(enumerative.outcome->cpu_s, 3) << " s)\n"
            << "lower bound:         "
            << core::testing_time_lower_bounds(table, kWidth).combined()
            << " cycles\n\n"
            << pack::render_packed_gantt(rectpack.outcome->schedule, soc, 72);
  return 0;
}
