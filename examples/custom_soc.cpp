// Build your own SOC: assemble cores via the API (or load a .soc file),
// save it, re-load it, and sweep the co-optimizer over TAM widths.
//
//   custom_soc              -- uses a small hand-built SOC
//   custom_soc file.soc     -- optimizes the given .soc file instead

#include <iostream>

#include "wtam.hpp"

namespace {

wtam::soc::Soc build_demo_soc() {
  using wtam::soc::Core;
  using wtam::soc::CoreKind;
  wtam::soc::Soc soc;
  soc.name = "demo4";

  Core cpu;
  cpu.name = "cpu";
  cpu.test_patterns = 220;
  cpu.num_inputs = 64;
  cpu.num_outputs = 64;
  cpu.scan_chains = {120, 120, 110, 110, 100, 100};
  soc.cores.push_back(cpu);

  Core dsp;
  dsp.name = "dsp";
  dsp.test_patterns = 150;
  dsp.num_inputs = 40;
  dsp.num_outputs = 48;
  dsp.scan_chains = {90, 90, 80, 80};
  soc.cores.push_back(dsp);

  Core sram;
  sram.name = "sram";
  sram.kind = CoreKind::Memory;
  sram.test_patterns = 4000;
  sram.num_inputs = 30;
  sram.num_outputs = 16;
  soc.cores.push_back(sram);

  Core uart;
  uart.name = "uart";
  uart.test_patterns = 85;
  uart.num_inputs = 12;
  uart.num_outputs = 10;
  uart.scan_chains = {60};
  soc.cores.push_back(uart);

  soc.validate();
  return soc;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wtam;

  soc::Soc soc;
  if (argc > 1) {
    soc = soc::load_soc_file(argv[1]);
    std::cout << "loaded " << soc.name << " from " << argv[1] << "\n";
  } else {
    soc = build_demo_soc();
    // Demonstrate the text format round trip.
    const std::string text = soc::write_soc_string(soc);
    std::cout << "serialized SOC:\n" << text << "\n";
    soc = soc::parse_soc_string(text);
  }

  constexpr int kMaxWidth = 48;
  const core::TestTimeTable table(soc, kMaxWidth);

  common::TextTable sweep("Co-optimization sweep for " + soc.name);
  sweep.set_header({"W", "TAMs", "partition", "testing time", "CPU (ms)"},
                   {common::Align::Right, common::Align::Right,
                    common::Align::Left, common::Align::Right,
                    common::Align::Right});
  core::CoOptimizeOptions options;
  options.search.max_tams = 6;
  for (int w = 8; w <= kMaxWidth; w += 8) {
    const auto result = core::co_optimize(table, w, options);
    sweep.add_row({std::to_string(w),
                   std::to_string(result.architecture.tam_count()),
                   core::format_partition(result.architecture.widths),
                   std::to_string(result.architecture.testing_time),
                   common::format_fixed(result.total_cpu_s() * 1e3, 1)});
  }
  std::cout << sweep;
  return 0;
}
