# Exit-status contract of the wtam_opt CLI, exercised as a ctest:
#   0 — success,
#   1 — runtime error (unreadable/bad --soc files, ...), with a clean
#       "error: ..." message instead of std::terminate,
#   2 — usage error (unknown flags, missing/invalid values).
# Run via:  cmake -DWTAM_OPT=<binary> -DWORK_DIR=<dir> -P cli_checks.cmake

if(NOT DEFINED WTAM_OPT OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "pass -DWTAM_OPT=<binary> -DWORK_DIR=<dir>")
endif()

function(expect_run expected_code stderr_pattern)
  execute_process(COMMAND ${WTAM_OPT} ${ARGN}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL ${expected_code})
    message(FATAL_ERROR "wtam_opt ${ARGN}: exit ${code}, expected "
                        "${expected_code}\nstderr: ${err}")
  endif()
  if(NOT "${stderr_pattern}" STREQUAL "" AND NOT err MATCHES "${stderr_pattern}")
    message(FATAL_ERROR "wtam_opt ${ARGN}: stderr does not match "
                        "'${stderr_pattern}'\nstderr: ${err}")
  endif()
endfunction()

# Usage errors exit 2 and print usage.
expect_run(2 "unknown option" --bogus)
expect_run(2 "--soc is required" --width 16)
expect_run(2 "missing value for --width" --soc d695 --width)
expect_run(2 "--width must be in" --soc d695 --width 0)
expect_run(2 "unknown backend" --soc d695 --width 16 --backend annealing)

# Runtime errors exit 1 with a clean "error:" line (no std::terminate).
expect_run(1 "error: cannot open soc file" --soc ${WORK_DIR}/no_such.soc --width 16)
file(WRITE ${WORK_DIR}/cli_bad.soc "soc x\ncore y patterns=zz inputs=1 outputs=1\n")
expect_run(1 "error: soc parse error at line 2" --soc ${WORK_DIR}/cli_bad.soc --width 16)

# Success paths exit 0.
expect_run(0 "" --list-backends)
expect_run(0 "" --soc d695 --width 16 --backend rectpack --quiet)
# A CRLF-saved .soc file (Windows editors) parses fine.
file(WRITE ${WORK_DIR}/cli_crlf.soc
     "soc crlf\r\ncore a patterns=5 inputs=2 outputs=2 scan=3,4\r\n")
expect_run(0 "" --soc ${WORK_DIR}/cli_crlf.soc --width 8 --quiet)

message(STATUS "wtam_opt CLI exit-status contract holds")
