# Exit-status contract of the wtam_opt CLI, exercised as a ctest:
#   0 — success,
#   1 — runtime error (unreadable/bad --soc files, ...), with a clean
#       "error: ..." message instead of std::terminate,
#   2 — usage error (unknown flags, missing/invalid values),
# plus the wtam_serve NDJSON protocol smoke check (requests in, results
# out, cache hits on resubmission, control verbs, clean shutdown) and a
# metrics-verb scrape whose counters must equal the jobs submitted.
# Run via:  cmake -DWTAM_OPT=<binary> -DWTAM_SERVE=<binary>
#                 -DWORK_DIR=<dir> -P cli_checks.cmake

if(NOT DEFINED WTAM_OPT OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "pass -DWTAM_OPT=<binary> -DWORK_DIR=<dir>")
endif()

function(expect_run expected_code stderr_pattern)
  execute_process(COMMAND ${WTAM_OPT} ${ARGN}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL ${expected_code})
    message(FATAL_ERROR "wtam_opt ${ARGN}: exit ${code}, expected "
                        "${expected_code}\nstderr: ${err}")
  endif()
  if(NOT "${stderr_pattern}" STREQUAL "" AND NOT err MATCHES "${stderr_pattern}")
    message(FATAL_ERROR "wtam_opt ${ARGN}: stderr does not match "
                        "'${stderr_pattern}'\nstderr: ${err}")
  endif()
endfunction()

# Usage errors exit 2 and print usage.
expect_run(2 "unknown option" --bogus)
expect_run(2 "--soc is required" --width 16)
expect_run(2 "missing value for --width" --soc d695 --width)
expect_run(2 "--width must be in" --soc d695 --width 0)
expect_run(2 "unknown backend" --soc d695 --width 16 --backend annealing)

# Runtime errors exit 1 with a clean "error:" line (no std::terminate).
expect_run(1 "error: cannot open soc file" --soc ${WORK_DIR}/no_such.soc --width 16)
file(WRITE ${WORK_DIR}/cli_bad.soc "soc x\ncore y patterns=zz inputs=1 outputs=1\n")
expect_run(1 "error: soc parse error at line 2" --soc ${WORK_DIR}/cli_bad.soc --width 16)

# Success paths exit 0.
expect_run(0 "" --list-backends)
expect_run(0 "" --soc d695 --width 16 --backend rectpack --quiet)
# A CRLF-saved .soc file (Windows editors) parses fine.
file(WRITE ${WORK_DIR}/cli_crlf.soc
     "soc crlf\r\ncore a patterns=5 inputs=2 outputs=2 scan=3,4\r\n")
expect_run(0 "" --soc ${WORK_DIR}/cli_crlf.soc --width 8 --quiet)

# ---- batch mode (api::Solver round trip) -----------------------------------

# Usage/runtime errors first.
expect_run(2 "cannot be combined" --batch x.json --soc d695 --width 8)
expect_run(2 "requires --batch" --soc d695 --width 8 --out x.json)
expect_run(1 "error: cannot open jobs file" --batch ${WORK_DIR}/no_such_jobs.json)
file(WRITE ${WORK_DIR}/cli_bad_jobs.json "{\"jobs\": [{\"soc\": \"d695\", \"width\": 8, \"bogus\": 1}]}")
expect_run(1 "unknown field 'bogus'" --batch ${WORK_DIR}/cli_bad_jobs.json)

# Round trip: submit 3 jobs, check the results JSON parses and every
# status is "ok" — then re-run at another thread count and require the
# byte-identical artifact the batch determinism contract promises.
file(WRITE ${WORK_DIR}/cli_jobs.json "{\"jobs\": [
  {\"id\": \"a\", \"soc\": \"d695\", \"width\": 16, \"backend\": \"rectpack\"},
  {\"id\": \"b\", \"soc\": \"d695\", \"width\": 24, \"backend\": \"enumerative\", \"max_tams\": 4},
  {\"id\": \"c\", \"soc\": \"d695\", \"width\": 16, \"width_max\": 20, \"backend\": \"enumerative\", \"max_tams\": 3}
]}")
expect_run(0 "" --batch ${WORK_DIR}/cli_jobs.json --threads 4
             --out ${WORK_DIR}/cli_results.json --quiet)
file(READ ${WORK_DIR}/cli_results.json results)
string(JSON result_count LENGTH "${results}" results)
if(NOT result_count EQUAL 3)
  message(FATAL_ERROR "expected 3 results, got ${result_count}")
endif()
math(EXPR last "${result_count} - 1")
foreach(i RANGE ${last})
  string(JSON status GET "${results}" results ${i} status)
  if(NOT status STREQUAL "ok")
    message(FATAL_ERROR "result ${i}: status '${status}', expected 'ok'")
  endif()
  string(JSON valid GET "${results}" results ${i} schedule_valid)
  if(NOT valid STREQUAL "ON")  # CMake renders JSON true as ON
    message(FATAL_ERROR "result ${i}: schedule_valid '${valid}'")
  endif()
endforeach()
expect_run(0 "" --batch ${WORK_DIR}/cli_jobs.json --threads 1
             --out ${WORK_DIR}/cli_results_serial.json --quiet)
file(READ ${WORK_DIR}/cli_results_serial.json results_serial)
if(NOT results STREQUAL results_serial)
  message(FATAL_ERROR "batch results differ between --threads 4 and --threads 1")
endif()

# A deadline-bound job on p93791 comes back deadline_exceeded with a
# validator-clean best-so-far schedule (not an error).
file(WRITE ${WORK_DIR}/cli_deadline_jobs.json "{\"jobs\": [
  {\"id\": \"slow\", \"soc\": \"p93791\", \"width\": 48, \"max_tams\": 16, \"deadline_s\": 0.01}
]}")
expect_run(0 "" --batch ${WORK_DIR}/cli_deadline_jobs.json
             --out ${WORK_DIR}/cli_deadline_results.json --quiet)
file(READ ${WORK_DIR}/cli_deadline_results.json deadline_results)
string(JSON status GET "${deadline_results}" results 0 status)
if(NOT status STREQUAL "deadline_exceeded")
  message(FATAL_ERROR "deadline job: status '${status}', expected 'deadline_exceeded'")
endif()
string(JSON valid GET "${deadline_results}" results 0 schedule_valid)
if(NOT valid STREQUAL "ON")
  message(FATAL_ERROR "deadline job: best-so-far schedule did not validate")
endif()

# A cached re-run of the same jobs file produces the byte-identical
# results artifact (cache provenance stays off the canonical bytes).
expect_run(0 "" --batch ${WORK_DIR}/cli_jobs.json --threads 2 --cache
             --out ${WORK_DIR}/cli_results_cached.json --quiet)
file(READ ${WORK_DIR}/cli_results_cached.json results_cached)
if(NOT results STREQUAL results_cached)
  message(FATAL_ERROR "batch results differ with --cache on")
endif()

# Observability is reporting, not behavior: the same batch with
# --metrics/--trace on must still produce the byte-identical results
# file (spans and scrapes go to stderr only).
expect_run(0 "# TYPE solver_requests counter"
             --batch ${WORK_DIR}/cli_jobs.json --threads 2 --metrics --trace
             --out ${WORK_DIR}/cli_results_obs.json --quiet)
file(READ ${WORK_DIR}/cli_results_obs.json results_obs)
if(NOT results STREQUAL results_obs)
  message(FATAL_ERROR "batch results differ with --metrics/--trace on")
endif()

# ---- constrained batch round trip ------------------------------------------
# Same SOC/width/backend with and without a power budget, plus an exact
# resubmission of the constrained job. Cold run (no cache) and warm run
# (cache, serial so the resubmission hits the stored entry) must produce
# byte-identical results files; the cache summary must report exactly one
# hit and two misses — i.e. constrained and unconstrained jobs have
# different cache keys, and the constrained resubmission reuses its own.
file(WRITE ${WORK_DIR}/cli_constrained_jobs.json "{\"jobs\": [
  {\"id\": \"plain\", \"soc\": \"d695\", \"width\": 16, \"backend\": \"rectpack\"},
  {\"id\": \"power\", \"soc\": \"d695\", \"width\": 16, \"backend\": \"rectpack\",
   \"constraints\": {\"power\": [100,100,100,100,100,100,100,100,100,100],
                     \"power_budget\": 100}},
  {\"id\": \"power-again\", \"soc\": \"d695\", \"width\": 16, \"backend\": \"rectpack\",
   \"constraints\": {\"power\": [100,100,100,100,100,100,100,100,100,100],
                     \"power_budget\": 100}}
]}")
expect_run(0 "" --batch ${WORK_DIR}/cli_constrained_jobs.json --threads 2
             --out ${WORK_DIR}/cli_constrained_cold.json --quiet)
file(READ ${WORK_DIR}/cli_constrained_cold.json constrained_cold)
foreach(i RANGE 2)
  string(JSON status GET "${constrained_cold}" results ${i} status)
  string(JSON valid GET "${constrained_cold}" results ${i} schedule_valid)
  if(NOT status STREQUAL "ok" OR NOT valid STREQUAL "ON")
    message(FATAL_ERROR "constrained batch result ${i}: status '${status}', "
                        "schedule_valid '${valid}'")
  endif()
endforeach()
string(JSON plain_time GET "${constrained_cold}" results 0 testing_time)
string(JSON power_time GET "${constrained_cold}" results 1 testing_time)
if(NOT power_time GREATER plain_time)
  message(FATAL_ERROR "power-budget job (${power_time}) should be slower "
                      "than the unconstrained job (${plain_time})")
endif()
expect_run(0 "cache: 1 hits, 2 misses"
             --batch ${WORK_DIR}/cli_constrained_jobs.json --threads 1 --cache
             --out ${WORK_DIR}/cli_constrained_warm.json)
file(READ ${WORK_DIR}/cli_constrained_warm.json constrained_warm)
if(NOT constrained_cold STREQUAL constrained_warm)
  message(FATAL_ERROR "constrained batch results differ between the cold "
                      "run and the warm --cache run")
endif()

message(STATUS "wtam_opt CLI exit-status contract holds (incl. --batch and "
               "constrained jobs)")

# ---- wtam_serve (NDJSON service smoke check) -------------------------------

if(NOT DEFINED WTAM_SERVE)
  message(FATAL_ERROR "pass -DWTAM_SERVE=<binary>")
endif()

# 4 distinct requests (one carrying an inline constraints block), a
# resubmission of the first (must be served from the cache), a stats
# probe, and a shutdown. Responses may arrive out of submission order;
# ids correlate them.
file(WRITE ${WORK_DIR}/serve_session.ndjson
"{\"id\": \"a\", \"soc\": \"d695\", \"width\": 16, \"backend\": \"rectpack\"}
{\"id\": \"b\", \"soc\": \"d695\", \"width\": 24, \"backend\": \"rectpack\"}
{\"id\": \"c\", \"soc\": \"d695\", \"width\": 16, \"backend\": \"enumerative\", \"max_tams\": 4}
{\"id\": \"d\", \"soc\": \"d695\", \"width\": 16, \"backend\": \"rectpack\", \"constraints\": {\"power\": [100,100,100,100,100,100,100,100,100,100], \"power_budget\": 200}}
{\"id\": \"a-again\", \"soc\": \"d695\", \"width\": 16, \"backend\": \"rectpack\"}
{\"op\": \"stats\"}
{\"op\": \"shutdown\"}
")
execute_process(COMMAND ${WTAM_SERVE} --quiet --threads 2
                INPUT_FILE ${WORK_DIR}/serve_session.ndjson
                OUTPUT_VARIABLE serve_out
                ERROR_VARIABLE serve_err
                RESULT_VARIABLE serve_code)
if(NOT serve_code EQUAL 0)
  message(FATAL_ERROR "wtam_serve: exit ${serve_code}\nstderr: ${serve_err}")
endif()
string(REGEX REPLACE "\n+$" "" serve_out "${serve_out}")
# Response bodies may contain literal ';' (the canonical constraints
# detail), which would split CMake lists — hide them before splitting
# on newlines, restore per line.
string(REPLACE ";" "<semi>" serve_escaped "${serve_out}")
string(REPLACE "\n" ";" serve_lines "${serve_escaped}")
list(LENGTH serve_lines serve_line_count)
if(NOT serve_line_count EQUAL 7)
  message(FATAL_ERROR "wtam_serve: expected 7 response lines, got "
                      "${serve_line_count}:\n${serve_out}")
endif()
set(seen_ids "")
foreach(line IN LISTS serve_lines)
  string(REPLACE "<semi>" ";" line "${line}")
  string(JSON op ERROR_VARIABLE no_op GET "${line}" op)
  if(no_op STREQUAL "NOTFOUND")
    continue()  # control response (stats/shutdown), checked below
  endif()
  string(JSON id GET "${line}" id)
  string(JSON status GET "${line}" status)
  if(NOT status STREQUAL "ok")
    message(FATAL_ERROR "wtam_serve: job ${id} status '${status}':\n${line}")
  endif()
  string(JSON cache_state GET "${line}" cache)
  if(id STREQUAL "a-again" AND NOT cache_state STREQUAL "hit")
    message(FATAL_ERROR "wtam_serve: resubmitted job reported cache "
                        "'${cache_state}', expected 'hit':\n${line}")
  endif()
  list(APPEND seen_ids ${id})
endforeach()
list(SORT seen_ids)
if(NOT seen_ids STREQUAL "a;a-again;b;c;d")
  message(FATAL_ERROR "wtam_serve: job ids '${seen_ids}' incomplete")
endif()
if(NOT serve_out MATCHES "\"op\": \"stats\"")
  message(FATAL_ERROR "wtam_serve: no stats response:\n${serve_out}")
endif()
if(NOT serve_out MATCHES "\"op\": \"shutdown\"")
  message(FATAL_ERROR "wtam_serve: no shutdown ack:\n${serve_out}")
endif()

# Soak: 102 piped requests (34 x 3 unique points) + shutdown. Exercises
# the pool, the coalescing path, and (in the sanitizer job) memory
# hygiene under sustained traffic; every duplicate id must report the
# identical testing time (deterministic per-id results).
set(soak_lines "")
foreach(i RANGE 1 34)
  string(APPEND soak_lines "{\"id\": \"x${i}\", \"soc\": \"d695\", \"width\": 12, \"backend\": \"rectpack\"}\n")
  string(APPEND soak_lines "{\"id\": \"y${i}\", \"soc\": \"d695\", \"width\": 14, \"backend\": \"rectpack\"}\n")
  string(APPEND soak_lines "{\"id\": \"z${i}\", \"soc\": \"d695\", \"width\": 16, \"backend\": \"rectpack\"}\n")
endforeach()
string(APPEND soak_lines "{\"op\": \"shutdown\"}\n")
file(WRITE ${WORK_DIR}/serve_soak.ndjson "${soak_lines}")
execute_process(COMMAND ${WTAM_SERVE} --quiet --threads 4
                INPUT_FILE ${WORK_DIR}/serve_soak.ndjson
                OUTPUT_VARIABLE soak_out
                ERROR_VARIABLE soak_err
                RESULT_VARIABLE soak_code)
if(NOT soak_code EQUAL 0)
  message(FATAL_ERROR "wtam_serve soak: exit ${soak_code}\nstderr: ${soak_err}")
endif()
string(REGEX REPLACE "\n+$" "" soak_out "${soak_out}")
string(REPLACE "\n" ";" soak_lines_out "${soak_out}")
set(ok_count 0)
set(x_time "")
set(y_time "")
set(z_time "")
foreach(line IN LISTS soak_lines_out)
  string(JSON op ERROR_VARIABLE no_op GET "${line}" op)
  if(no_op STREQUAL "NOTFOUND")
    continue()
  endif()
  string(JSON status GET "${line}" status)
  if(NOT status STREQUAL "ok")
    message(FATAL_ERROR "wtam_serve soak: non-ok result:\n${line}")
  endif()
  math(EXPR ok_count "${ok_count} + 1")
  string(JSON id GET "${line}" id)
  string(JSON t GET "${line}" testing_time)
  string(SUBSTRING ${id} 0 1 family)
  if("${${family}_time}" STREQUAL "")
    set(${family}_time ${t})
  elseif(NOT ${family}_time EQUAL ${t})
    message(FATAL_ERROR "wtam_serve soak: ${id} returned ${t}, other "
                        "'${family}' requests returned ${${family}_time}")
  endif()
endforeach()
if(NOT ok_count EQUAL 102)
  message(FATAL_ERROR "wtam_serve soak: ${ok_count} ok results, expected 102")
endif()

# ---- wtam_serve metrics verb (scrape smoke) --------------------------------
# A fresh session: three jobs (one a duplicate of the first, so the
# cache serves it), one malformed line (counted by serve.errors), then a
# drained metrics scrape in both formats. The acceptance criterion: the
# scraped job counters equal exactly the jobs this check submitted.
file(WRITE ${WORK_DIR}/serve_metrics.ndjson
"{\"id\": \"m1\", \"soc\": \"d695\", \"width\": 12, \"backend\": \"rectpack\"}
{\"id\": \"m2\", \"soc\": \"d695\", \"width\": 14, \"backend\": \"rectpack\"}
{\"id\": \"m3\", \"soc\": \"d695\", \"width\": 12, \"backend\": \"rectpack\"}
this is not json
{\"op\": \"metrics\", \"drain\": true}
{\"op\": \"metrics\", \"drain\": true, \"format\": \"prometheus\"}
{\"op\": \"shutdown\"}
")
execute_process(COMMAND ${WTAM_SERVE} --quiet --threads 2
                INPUT_FILE ${WORK_DIR}/serve_metrics.ndjson
                OUTPUT_VARIABLE metrics_out
                ERROR_VARIABLE metrics_err
                RESULT_VARIABLE metrics_code)
if(NOT metrics_code EQUAL 0)
  message(FATAL_ERROR "wtam_serve metrics: exit ${metrics_code}\n"
                      "stderr: ${metrics_err}")
endif()
string(REGEX REPLACE "\n+$" "" metrics_out "${metrics_out}")
string(REPLACE ";" "<semi>" metrics_escaped "${metrics_out}")
string(REPLACE "\n" ";" metrics_lines "${metrics_escaped}")
set(json_scrape "")
set(prom_body "")
foreach(line IN LISTS metrics_lines)
  string(REPLACE "<semi>" ";" line "${line}")
  string(JSON op ERROR_VARIABLE no_op GET "${line}" op)
  if(NOT no_op STREQUAL "NOTFOUND")
    continue()  # job result or the error-line response
  endif()
  if(NOT op STREQUAL "metrics")
    continue()  # shutdown ack
  endif()
  string(JSON body ERROR_VARIABLE no_body GET "${line}" body)
  if(no_body STREQUAL "NOTFOUND")
    set(prom_body "${body}")
  else()
    set(json_scrape "${line}")
  endif()
endforeach()
if(json_scrape STREQUAL "" OR prom_body STREQUAL "")
  message(FATAL_ERROR "wtam_serve metrics: missing scrape response(s):\n"
                      "${metrics_out}")
endif()
# Drained counters must equal what was submitted: 3 jobs, 1 error line.
string(JSON accepted GET "${json_scrape}" counters serve.jobs_accepted)
string(JSON completed GET "${json_scrape}" counters serve.jobs_completed)
string(JSON errors GET "${json_scrape}" counters serve.errors)
if(NOT accepted EQUAL 3 OR NOT completed EQUAL 3)
  message(FATAL_ERROR "wtam_serve metrics: jobs_accepted=${accepted} "
                      "jobs_completed=${completed}, expected 3/3")
endif()
if(NOT errors EQUAL 1)
  message(FATAL_ERROR "wtam_serve metrics: serve.errors=${errors}, expected 1")
endif()
string(JSON inflight GET "${json_scrape}" gauges serve.inflight_jobs)
string(JSON queue_depth GET "${json_scrape}" gauges serve.queue_depth)
if(NOT inflight EQUAL 0 OR NOT queue_depth EQUAL 0)
  message(FATAL_ERROR "wtam_serve metrics: drained scrape reports "
                      "inflight=${inflight} queue_depth=${queue_depth}")
endif()
string(JSON job_samples GET "${json_scrape}" histograms serve.job_ns count)
if(NOT job_samples EQUAL 3)
  message(FATAL_ERROR "wtam_serve metrics: serve.job_ns count "
                      "${job_samples}, expected 3")
endif()
# The Prometheus exposition reports the same totals under sanitized names.
if(NOT prom_body MATCHES "serve_jobs_accepted 3")
  message(FATAL_ERROR "wtam_serve metrics: prometheus body lacks "
                      "'serve_jobs_accepted 3':\n${prom_body}")
endif()
if(NOT prom_body MATCHES "# TYPE serve_job_ns summary")
  message(FATAL_ERROR "wtam_serve metrics: prometheus body lacks the "
                      "serve_job_ns summary:\n${prom_body}")
endif()

message(STATUS "wtam_serve NDJSON protocol holds (smoke + 102-request soak "
               "+ metrics scrape)")

# ---- wtam_serve --cache-file (persistence smoke) ---------------------------
# A cold session solves two jobs and snapshots its cache on shutdown;
# a warm session boots from that snapshot and must serve both jobs from
# the cache with the identical testing times. The shutdown ack of the
# cold run reports the entries it persisted.
set(serve_cache ${WORK_DIR}/serve_cache.bin)
file(REMOVE ${serve_cache})
file(WRITE ${WORK_DIR}/serve_persist.ndjson
"{\"id\": \"p1\", \"soc\": \"d695\", \"width\": 18, \"backend\": \"rectpack\"}
{\"id\": \"p2\", \"soc\": \"d695\", \"width\": 20, \"backend\": \"rectpack\"}
{\"op\": \"shutdown\"}
")
foreach(phase cold warm)
  execute_process(COMMAND ${WTAM_SERVE} --quiet --threads 2
                          --cache-file ${serve_cache}
                  INPUT_FILE ${WORK_DIR}/serve_persist.ndjson
                  OUTPUT_VARIABLE persist_out
                  ERROR_VARIABLE persist_err
                  RESULT_VARIABLE persist_code)
  if(NOT persist_code EQUAL 0)
    message(FATAL_ERROR "wtam_serve ${phase} persistence run: exit "
                        "${persist_code}\nstderr: ${persist_err}")
  endif()
  if(NOT EXISTS ${serve_cache})
    message(FATAL_ERROR "wtam_serve ${phase} persistence run: no snapshot "
                        "at ${serve_cache}")
  endif()
  string(REGEX REPLACE "\n+$" "" persist_out "${persist_out}")
  string(REPLACE "\n" ";" persist_lines "${persist_out}")
  foreach(line IN LISTS persist_lines)
    string(JSON op ERROR_VARIABLE no_op GET "${line}" op)
    if(no_op STREQUAL "NOTFOUND")
      continue()  # shutdown ack
    endif()
    string(JSON id GET "${line}" id)
    string(JSON status GET "${line}" status)
    string(JSON cache_state GET "${line}" cache)
    string(JSON t GET "${line}" testing_time)
    if(NOT status STREQUAL "ok")
      message(FATAL_ERROR "wtam_serve ${phase} persistence run: job ${id} "
                          "status '${status}':\n${line}")
    endif()
    if(phase STREQUAL "cold")
      set(persist_${id}_time ${t})
    else()
      if(NOT cache_state STREQUAL "hit")
        message(FATAL_ERROR "wtam_serve warm-boot run: job ${id} reported "
                            "cache '${cache_state}', expected 'hit':\n${line}")
      endif()
      if(NOT persist_${id}_time EQUAL ${t})
        message(FATAL_ERROR "wtam_serve warm-boot run: job ${id} testing "
                            "time ${t} differs from the cold run's "
                            "${persist_${id}_time}")
      endif()
    endif()
  endforeach()
endforeach()

message(STATUS "wtam_serve --cache-file persistence holds (cold store -> "
               "warm-boot hits, identical results)")

# ---- wtam_router (fleet smoke + crash replay) ------------------------------

if(NOT DEFINED WTAM_ROUTER)
  message(FATAL_ERROR "pass -DWTAM_ROUTER=<binary>")
endif()

# Two runs over the same seven jobs (six distinct + one resubmission).
# The clean run establishes the per-id reference responses; the crash
# run SIGKILLs worker 0 mid-batch via the kill_worker verb and must
# still answer every id with the identical result — replay makes the
# crash invisible apart from cache provenance, which the comparison
# strips (a replayed solve recomputes what the dead worker had cached).
set(fleet_jobs
"{\"id\": \"f1\", \"soc\": \"d695\", \"width\": 16, \"backend\": \"rectpack\"}
{\"id\": \"f2\", \"soc\": \"d695\", \"width\": 17, \"backend\": \"rectpack\"}
{\"id\": \"f3\", \"soc\": \"d695\", \"width\": 18, \"backend\": \"rectpack\"}
")
set(fleet_jobs_tail
"{\"id\": \"f4\", \"soc\": \"d695\", \"width\": 19, \"backend\": \"rectpack\"}
{\"id\": \"f5\", \"soc\": \"d695\", \"width\": 20, \"backend\": \"rectpack\"}
{\"id\": \"f6\", \"soc\": \"d695\", \"width\": 21, \"backend\": \"rectpack\"}
{\"id\": \"f1again\", \"soc\": \"d695\", \"width\": 16, \"backend\": \"rectpack\"}
{\"op\": \"stats\"}
{\"op\": \"shutdown\"}
")
file(WRITE ${WORK_DIR}/fleet_clean.ndjson
     "${fleet_jobs}${fleet_jobs_tail}")
file(WRITE ${WORK_DIR}/fleet_crash.ndjson
     "${fleet_jobs}{\"op\": \"kill_worker\", \"worker\": 0}\n${fleet_jobs_tail}")

foreach(phase clean crash)
  execute_process(COMMAND ${WTAM_ROUTER} --quiet --workers 2
                          --serve ${WTAM_SERVE}
                  INPUT_FILE ${WORK_DIR}/fleet_${phase}.ndjson
                  OUTPUT_VARIABLE fleet_out
                  ERROR_VARIABLE fleet_err
                  RESULT_VARIABLE fleet_code)
  if(NOT fleet_code EQUAL 0)
    message(FATAL_ERROR "wtam_router ${phase} run: exit ${fleet_code}\n"
                        "stderr: ${fleet_err}")
  endif()
  string(REGEX REPLACE "\n+$" "" fleet_out "${fleet_out}")
  string(REPLACE ";" "<semi>" fleet_escaped "${fleet_out}")
  string(REPLACE "\n" ";" fleet_lines "${fleet_escaped}")
  set(fleet_ok_count 0)
  foreach(line IN LISTS fleet_lines)
    string(REPLACE "<semi>" ";" line "${line}")
    string(JSON op ERROR_VARIABLE no_op GET "${line}" op)
    if(no_op STREQUAL "NOTFOUND")
      if(NOT op STREQUAL "stats")
        continue()  # kill_worker / shutdown ack
      endif()
      string(JSON fleet_workers GET "${line}" workers)
      string(JSON fleet_routed GET "${line}" router routed)
      string(JSON fleet_respawns GET "${line}" router respawns)
      if(NOT fleet_workers EQUAL 2)
        message(FATAL_ERROR "wtam_router ${phase} run: stats reports "
                            "${fleet_workers} workers, expected 2")
      endif()
      if(NOT fleet_routed EQUAL 7)
        message(FATAL_ERROR "wtam_router ${phase} run: stats reports "
                            "${fleet_routed} routed jobs, expected 7")
      endif()
      set(fleet_${phase}_respawns ${fleet_respawns})
      continue()
    endif()
    string(JSON id GET "${line}" id)
    string(JSON status GET "${line}" status)
    if(NOT status STREQUAL "ok")
      message(FATAL_ERROR "wtam_router ${phase} run: job ${id} status "
                          "'${status}':\n${line}")
    endif()
    math(EXPR fleet_ok_count "${fleet_ok_count} + 1")
    # The resubmission shards to the worker that cached the original,
    # so the clean run must serve it from the fleet's cache.
    if(phase STREQUAL "clean" AND id STREQUAL "f1again")
      string(JSON cache_state GET "${line}" cache)
      if(NOT cache_state STREQUAL "hit")
        message(FATAL_ERROR "wtam_router clean run: resubmitted job "
                            "reported cache '${cache_state}', expected "
                            "'hit':\n${line}")
      endif()
    endif()
    # Cache provenance is the one legitimate difference between the
    # runs (a respawned worker recomputes), so strip it before the
    # per-id byte comparison.
    string(REGEX REPLACE "\"cache\": \"[a-z]+\"" "\"cache\": \"-\""
           stripped "${line}")
    set(fleet_${phase}_${id} "${stripped}")
  endforeach()
  if(NOT fleet_ok_count EQUAL 7)
    message(FATAL_ERROR "wtam_router ${phase} run: ${fleet_ok_count} ok "
                        "results, expected 7:\n${fleet_out}")
  endif()
endforeach()

foreach(id f1 f2 f3 f4 f5 f6 f1again)
  if(NOT fleet_clean_${id} STREQUAL fleet_crash_${id})
    message(FATAL_ERROR "wtam_router: job ${id} differs between the clean "
                        "and the crash run\nclean: ${fleet_clean_${id}}\n"
                        "crash: ${fleet_crash_${id}}")
  endif()
endforeach()
if(NOT fleet_clean_respawns EQUAL 0)
  message(FATAL_ERROR "wtam_router clean run: ${fleet_clean_respawns} "
                      "respawns, expected 0")
endif()
if(NOT fleet_crash_respawns GREATER 0)
  message(FATAL_ERROR "wtam_router crash run: no respawn recorded after "
                      "kill_worker")
endif()

message(STATUS "wtam_router fleet smoke holds (7 jobs over 2 workers, "
               "crash replay byte-identical modulo cache provenance)")

# ---- multi-host fleet (TCP workers, kill mid-batch, hot resize) ------------
# Three fleets answer the same five jobs and must agree byte for byte
# (modulo cache provenance): a single local worker (the baseline), a
# mixed fleet of one pipe + one TCP worker, and a two-TCP-worker fleet
# whose worker 0 is killed mid-batch (the sever/reconnect/replay path).
# Then an all-local fleet resizes 2 -> 3 mid-session and must serve the
# resubmitted jobs from the re-sharded caches — hits, byte-identical.

# Launches a wtam_serve TCP worker in the background on an ephemeral
# port; await_endpoint() blocks until its --port-file reports where.
function(launch_tcp_worker tag)
  file(REMOVE ${WORK_DIR}/mh_${tag}.port)
  execute_process(COMMAND sh -c "'${WTAM_SERVE}' --listen 127.0.0.1:0 --port-file '${WORK_DIR}/mh_${tag}.port' --quiet > '${WORK_DIR}/mh_${tag}.log' 2>&1 &"
                  RESULT_VARIABLE launch_code)
  if(NOT launch_code EQUAL 0)
    message(FATAL_ERROR "multi-host: cannot launch TCP worker ${tag}")
  endif()
endfunction()

function(await_endpoint tag out_var)
  set(port_file ${WORK_DIR}/mh_${tag}.port)
  foreach(i RANGE 100)
    if(EXISTS ${port_file})
      break()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
  endforeach()
  if(NOT EXISTS ${port_file})
    message(FATAL_ERROR "multi-host: worker ${tag} never wrote its port file "
                        "(see ${WORK_DIR}/mh_${tag}.log)")
  endif()
  file(READ ${port_file} endpoint)
  string(STRIP "${endpoint}" endpoint)
  set(${out_var} ${endpoint} PARENT_SCOPE)
endfunction()

set(mh_jobs
"{\"id\": \"m1\", \"soc\": \"d695\", \"width\": 16, \"backend\": \"rectpack\"}
{\"id\": \"m2\", \"soc\": \"d695\", \"width\": 17, \"backend\": \"rectpack\"}
{\"id\": \"m3\", \"soc\": \"d695\", \"width\": 18, \"backend\": \"rectpack\"}
")
set(mh_jobs_tail
"{\"id\": \"m4\", \"soc\": \"d695\", \"width\": 19, \"backend\": \"rectpack\"}
{\"id\": \"m5\", \"soc\": \"d695\", \"width\": 20, \"backend\": \"rectpack\"}
{\"op\": \"stats\"}
{\"op\": \"shutdown\"}
")
file(WRITE ${WORK_DIR}/mh_session.ndjson "${mh_jobs}${mh_jobs_tail}")
file(WRITE ${WORK_DIR}/mh_kill.ndjson
     "${mh_jobs}{\"op\": \"kill_worker\", \"worker\": 0}\n${mh_jobs_tail}")

# Workers for the mixed fleet (one TCP) and the kill fleet (two TCP).
launch_tcp_worker(w1)
launch_tcp_worker(w2)
launch_tcp_worker(w3)
await_endpoint(w1 mh_ep1)
await_endpoint(w2 mh_ep2)
await_endpoint(w3 mh_ep3)

# phase -> router flags + input + expected fleet size.
set(mh_baseline_args --workers 1)
set(mh_mixed_args --workers 1 --worker ${mh_ep1})
set(mh_kill_args --worker ${mh_ep2} --worker ${mh_ep3})
foreach(phase baseline mixed kill)
  if(phase STREQUAL "kill")
    set(mh_input ${WORK_DIR}/mh_kill.ndjson)
  else()
    set(mh_input ${WORK_DIR}/mh_session.ndjson)
  endif()
  execute_process(COMMAND ${WTAM_ROUTER} --quiet --serve ${WTAM_SERVE}
                          ${mh_${phase}_args}
                  INPUT_FILE ${mh_input}
                  OUTPUT_VARIABLE mh_out
                  ERROR_VARIABLE mh_err
                  RESULT_VARIABLE mh_code)
  if(NOT mh_code EQUAL 0)
    message(FATAL_ERROR "multi-host ${phase} run: exit ${mh_code}\n"
                        "stderr: ${mh_err}")
  endif()
  string(REGEX REPLACE "\n+$" "" mh_out "${mh_out}")
  string(REPLACE ";" "<semi>" mh_escaped "${mh_out}")
  string(REPLACE "\n" ";" mh_lines "${mh_escaped}")
  set(mh_ok_count 0)
  foreach(line IN LISTS mh_lines)
    string(REPLACE "<semi>" ";" line "${line}")
    string(JSON op ERROR_VARIABLE no_op GET "${line}" op)
    if(no_op STREQUAL "NOTFOUND")
      if(NOT op STREQUAL "stats")
        continue()  # kill_worker / shutdown ack
      endif()
      string(JSON mh_workers GET "${line}" workers)
      string(JSON mh_respawns GET "${line}" router respawns)
      set(mh_${phase}_workers ${mh_workers})
      set(mh_${phase}_respawns ${mh_respawns})
      continue()
    endif()
    string(JSON id GET "${line}" id)
    string(JSON status GET "${line}" status)
    if(NOT status STREQUAL "ok")
      message(FATAL_ERROR "multi-host ${phase} run: job ${id} status "
                          "'${status}':\n${line}")
    endif()
    math(EXPR mh_ok_count "${mh_ok_count} + 1")
    string(REGEX REPLACE "\"cache\": \"[a-z]+\"" "\"cache\": \"-\""
           stripped "${line}")
    set(mh_${phase}_${id} "${stripped}")
  endforeach()
  if(NOT mh_ok_count EQUAL 5)
    message(FATAL_ERROR "multi-host ${phase} run: ${mh_ok_count} ok results, "
                        "expected 5:\n${mh_out}")
  endif()
endforeach()

foreach(id m1 m2 m3 m4 m5)
  foreach(phase mixed kill)
    if(NOT mh_baseline_${id} STREQUAL mh_${phase}_${id})
      message(FATAL_ERROR "multi-host: job ${id} differs between the "
                          "baseline and the ${phase} fleet\nbaseline: "
                          "${mh_baseline_${id}}\n${phase}: ${mh_${phase}_${id}}")
    endif()
  endforeach()
endforeach()
if(NOT mh_mixed_workers EQUAL 2 OR NOT mh_kill_workers EQUAL 2)
  message(FATAL_ERROR "multi-host: fleets report ${mh_mixed_workers}/"
                      "${mh_kill_workers} workers, expected 2/2")
endif()
if(NOT mh_mixed_respawns EQUAL 0)
  message(FATAL_ERROR "multi-host mixed run: ${mh_mixed_respawns} respawns, "
                      "expected 0")
endif()
if(NOT mh_kill_respawns GREATER 0)
  message(FATAL_ERROR "multi-host kill run: no reconnect recorded after "
                      "kill_worker severed the TCP worker")
endif()

# Hot resize: four jobs warm a 2-worker fleet's caches, the fleet
# resizes to 3 (re-dealing the persisted entries to their new owners),
# and the identical resubmissions must all be cache hits with
# byte-identical responses.
set(mh_resize_cache ${WORK_DIR}/mh_resize_cache.bin)
file(REMOVE ${mh_resize_cache}.w0 ${mh_resize_cache}.w1 ${mh_resize_cache}.w2)
set(mh_resize_jobs
"{\"id\": \"r1\", \"soc\": \"d695\", \"width\": 16, \"backend\": \"rectpack\"}
{\"id\": \"r2\", \"soc\": \"d695\", \"width\": 17, \"backend\": \"rectpack\"}
{\"id\": \"r3\", \"soc\": \"d695\", \"width\": 18, \"backend\": \"rectpack\"}
{\"id\": \"r4\", \"soc\": \"d695\", \"width\": 19, \"backend\": \"rectpack\"}
")
file(WRITE ${WORK_DIR}/mh_resize.ndjson
     "${mh_resize_jobs}{\"op\": \"resize\", \"workers\": 3}\n${mh_resize_jobs}{\"op\": \"stats\"}\n{\"op\": \"shutdown\"}\n")
execute_process(COMMAND ${WTAM_ROUTER} --quiet --workers 2
                        --serve ${WTAM_SERVE}
                        --cache-file ${mh_resize_cache}
                INPUT_FILE ${WORK_DIR}/mh_resize.ndjson
                OUTPUT_VARIABLE resize_out
                ERROR_VARIABLE resize_err
                RESULT_VARIABLE resize_code)
if(NOT resize_code EQUAL 0)
  message(FATAL_ERROR "multi-host resize run: exit ${resize_code}\n"
                      "stderr: ${resize_err}")
endif()
string(REGEX REPLACE "\n+$" "" resize_out "${resize_out}")
string(REPLACE ";" "<semi>" resize_escaped "${resize_out}")
string(REPLACE "\n" ";" resize_lines "${resize_escaped}")
set(resize_acked FALSE)
foreach(line IN LISTS resize_lines)
  string(REPLACE "<semi>" ";" line "${line}")
  string(JSON op ERROR_VARIABLE no_op GET "${line}" op)
  if(no_op STREQUAL "NOTFOUND")
    if(op STREQUAL "resize")
      string(JSON resize_ok GET "${line}" ok)
      string(JSON resize_workers GET "${line}" workers)
      string(JSON resize_entries GET "${line}" resharded_entries)
      if(NOT resize_ok STREQUAL "ON" OR NOT resize_workers EQUAL 3
         OR NOT resize_entries EQUAL 4)
        message(FATAL_ERROR "multi-host resize ack wrong (ok=${resize_ok} "
                            "workers=${resize_workers} "
                            "resharded=${resize_entries}):\n${line}")
      endif()
      set(resize_acked TRUE)
    elseif(op STREQUAL "stats")
      string(JSON resize_count GET "${line}" router resizes)
      if(NOT resize_count EQUAL 1)
        message(FATAL_ERROR "multi-host resize run: router counted "
                            "${resize_count} resizes, expected 1")
      endif()
    endif()
    continue()
  endif()
  string(JSON id GET "${line}" id)
  string(JSON status GET "${line}" status)
  if(NOT status STREQUAL "ok")
    message(FATAL_ERROR "multi-host resize run: job ${id} status "
                        "'${status}':\n${line}")
  endif()
  string(JSON cache_state GET "${line}" cache)
  string(REGEX REPLACE "\"cache\": \"[a-z]+\"" "\"cache\": \"-\""
         stripped "${line}")
  if(NOT DEFINED resize_first_${id})
    set(resize_first_${id} "${stripped}")
  else()
    if(NOT cache_state STREQUAL "hit")
      message(FATAL_ERROR "multi-host resize run: resubmitted ${id} "
                          "reported cache '${cache_state}', expected 'hit' "
                          "from the re-sharded snapshot:\n${line}")
    endif()
    if(NOT resize_first_${id} STREQUAL stripped)
      message(FATAL_ERROR "multi-host resize run: ${id} differs across the "
                          "resize\nbefore: ${resize_first_${id}}\n"
                          "after:  ${stripped}")
    endif()
    set(resize_second_${id} "${stripped}")
  endif()
endforeach()
if(NOT resize_acked)
  message(FATAL_ERROR "multi-host resize run: no resize ack:\n${resize_out}")
endif()
foreach(id r1 r2 r3 r4)
  if(NOT DEFINED resize_second_${id})
    message(FATAL_ERROR "multi-host resize run: no post-resize response "
                        "for ${id}:\n${resize_out}")
  endif()
endforeach()

message(STATUS "multi-host fleet holds (pipe+TCP byte-identical to the "
               "baseline, kill mid-batch replayed, resize 2->3 re-sharded "
               "to cache hits)")
