// Tables 17/18: SOC p93791, P_PAW with B = 3.

#include <iostream>

#include "bench_util.hpp"
#include "soc/benchmarks.hpp"

int main() {
  using namespace wtam;
  const soc::Soc soc = soc::p93791();
  const core::TestTimeTable table(soc, 64);

  std::cout << "=== Tables 17/18: p93791, B = 3 ===\n\n";
  bench::run_paw_comparison(table, {.soc_label = "p93791", .tams = 3});
  return 0;
}
