#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/tam_types.hpp"

namespace wtam::bench {

namespace {

std::string cycles(std::int64_t t) { return std::to_string(t); }

std::string seconds(double s) {
  if (s < 0.0005) return "<0.001";
  return common::format_fixed(s, 3);
}

}  // namespace

double exhaustive_budget_s(double fallback) {
  if (const char* env = std::getenv("WTAM_BENCH_BUDGET")) {
    const double parsed = std::atof(env);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

int bench_threads(int fallback) {
  if (const char* env = std::getenv("WTAM_BENCH_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    // Reject non-numeric values outright: atoi-style "garbage means 0"
    // would silently switch 0 = all-hardware-threads mode on a typo.
    if (end != env && *end == '\0' && parsed >= 0 && parsed <= 4096)
      return static_cast<int>(parsed);
    std::cerr << "warning: ignoring invalid WTAM_BENCH_THREADS=\"" << env
              << "\" (want an integer >= 0)\n";
  }
  return fallback;
}

void write_json_file(const std::string& path, const Json& document) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  document.dump(out);
  out << '\n';
  if (!out) throw std::runtime_error("write failed for " + path);
}

void run_paw_comparison(const core::TestTimeTable& table,
                        const PawComparison& config) {
  struct RowResult {
    int width;
    core::ExhaustiveResult exhaustive;
    core::CoOptimizeResult flow;
  };
  std::vector<RowResult> rows;
  rows.reserve(config.widths.size());
  const int threads = bench_threads();
  for (const int width : config.widths) {
    RowResult row;
    row.width = width;
    core::ExhaustiveOptions old_options;
    old_options.time_budget_s = exhaustive_budget_s();
    old_options.threads = threads;
    row.exhaustive = core::exhaustive_paw(table, width, config.tams, old_options);
    core::CoOptimizeOptions flow_options;
    flow_options.search.threads = threads;
    row.flow =
        core::co_optimize_fixed_b(table, width, config.tams, flow_options);
    rows.push_back(std::move(row));
  }

  common::TextTable old_table("Exhaustive method of [8] for " +
                              config.soc_label + ", B=" +
                              std::to_string(config.tams));
  old_table.set_header(
      {"W", "partition", "core assignment", "T_old (cyc)", "t_old (s)"},
      {common::Align::Right, common::Align::Left, common::Align::Left,
       common::Align::Right, common::Align::Right});
  for (const auto& row : rows) {
    if (row.exhaustive.completed) {
      old_table.add_row(
          {std::to_string(row.width),
           core::format_partition(row.exhaustive.best.widths),
           core::format_assignment(row.exhaustive.best.assignment),
           cycles(row.exhaustive.best.testing_time),
           seconds(row.exhaustive.cpu_s)});
    } else {
      old_table.add_row({std::to_string(row.width), "-", "did not complete",
                         "n/a", seconds(row.exhaustive.cpu_s) + "+"});
    }
  }
  std::cout << old_table << '\n';

  common::TextTable new_table("New co-optimization method for " +
                              config.soc_label + ", B=" +
                              std::to_string(config.tams));
  new_table.set_header({"W", "partition", "core assignment", "T_new (cyc)",
                        "t_new (s)", "dT (%)", "t_new/t_old"},
                       {common::Align::Right, common::Align::Left,
                        common::Align::Left, common::Align::Right,
                        common::Align::Right, common::Align::Right,
                        common::Align::Right});
  for (const auto& row : rows) {
    const auto& arch = row.flow.architecture;
    std::string delta = "n/a";
    std::string ratio = "n/a";
    if (row.exhaustive.completed) {
      const double t_old =
          static_cast<double>(row.exhaustive.best.testing_time);
      delta = common::format_signed_percent(
          (static_cast<double>(arch.testing_time) - t_old) / t_old * 100.0);
      const double cpu_old = std::max(row.exhaustive.cpu_s, 1e-6);
      ratio = common::format_fixed(row.flow.total_cpu_s() / cpu_old, 4);
    }
    new_table.add_row({std::to_string(row.width),
                       core::format_partition(arch.widths),
                       core::format_assignment(arch.assignment),
                       cycles(arch.testing_time),
                       seconds(row.flow.total_cpu_s()), delta, ratio});
  }
  std::cout << new_table << '\n';

  if (config.ilp_exhaustive) {
    // The method of [8] verbatim: every partition solved with the ILP
    // model. This is the baseline behind the paper's CPU-time ratio
    // column (two-orders-of-magnitude claim).
    common::TextTable ilp_table("Exhaustive with ILP engine (as [8]) for " +
                                config.soc_label + ", B=" +
                                std::to_string(config.tams));
    ilp_table.set_header({"W", "T_old_ilp (cyc)", "t_old_ilp (s)",
                          "t_new/t_old_ilp"},
                         {common::Align::Right, common::Align::Right,
                          common::Align::Right, common::Align::Right});
    for (const auto& row : rows) {
      core::ExhaustiveOptions ilp_options;
      ilp_options.time_budget_s = exhaustive_budget_s();
      ilp_options.engine = core::ExactEngine::Ilp;
      ilp_options.threads = bench_threads();
      const auto baseline =
          core::exhaustive_paw(table, row.width, config.tams, ilp_options);
      if (baseline.completed) {
        ilp_table.add_row(
            {std::to_string(row.width), cycles(baseline.best.testing_time),
             seconds(baseline.cpu_s),
             common::format_fixed(
                 row.flow.total_cpu_s() / std::max(baseline.cpu_s, 1e-6), 4)});
      } else {
        ilp_table.add_row({std::to_string(row.width), "n/a",
                           seconds(baseline.cpu_s) + "+ (DNC)", "n/a"});
      }
    }
    std::cout << ilp_table << '\n';
  }

  if (config.ilp_probe && !rows.empty()) {
    // One per-partition solve with the paper's ILP formulation (§3.2),
    // budget-capped. [8] ran one of these per enumerated partition.
    const auto& probe_widths = rows.back().flow.architecture.widths;
    core::ExactOptions ilp_options;
    ilp_options.engine = core::ExactEngine::Ilp;
    ilp_options.time_limit_s = exhaustive_budget_s();
    const auto probe =
        core::solve_assignment_exact(table, probe_widths, ilp_options);
    std::cout << "ILP-engine probe (one P_AW solve, partition "
              << core::format_partition(probe_widths) << "): ";
    if (probe.proven_optimal) {
      std::cout << probe.architecture.testing_time << " cycles in "
                << seconds(probe.cpu_s) << " s (" << probe.nodes
                << " B&B nodes over LP relaxations)\n";
    } else {
      std::cout << "DID NOT COMPLETE within " << seconds(ilp_options.time_limit_s)
                << " s — the exhaustive method of [8] ran one such solve per "
                   "partition, hence its multi-day non-termination on this "
                   "SOC\n";
    }
    std::cout << '\n';
  }
}

void run_pnpaw(const core::TestTimeTable& table, const PnpawRun& config) {
  common::TextTable out("New co-optimization method for " + config.soc_label +
                        " (P_NPAW, B<=" + std::to_string(config.max_tams) +
                        "; delta vs exhaustive B<=" +
                        std::to_string(config.reference_max_tams) + ")");
  out.set_header({"W", "#TAMs", "partition", "core assignment", "T_new (cyc)",
                  "t_new (s)", "dT (%)", "t_new/t_old"},
                 {common::Align::Right, common::Align::Right,
                  common::Align::Left, common::Align::Left,
                  common::Align::Right, common::Align::Right,
                  common::Align::Right, common::Align::Right});

  for (const int width : config.widths) {
    core::CoOptimizeOptions options;
    options.search.max_tams = config.max_tams;
    options.search.threads = bench_threads();
    const auto flow = core::co_optimize(table, width, options);

    core::ExhaustiveOptions reference_options;
    reference_options.time_budget_s = exhaustive_budget_s();
    reference_options.threads = bench_threads();
    const auto reference = core::exhaustive_pnpaw(
        table, width, config.reference_max_tams, reference_options);

    const auto& arch = flow.architecture;
    std::string delta = "n/a";
    std::string ratio = "n/a";
    if (reference.completed) {
      const double t_old = static_cast<double>(reference.best.testing_time);
      delta = common::format_signed_percent(
          (static_cast<double>(arch.testing_time) - t_old) / t_old * 100.0);
      ratio = common::format_fixed(
          flow.total_cpu_s() / std::max(reference.cpu_s, 1e-6), 4);
    }
    out.add_row({std::to_string(width), std::to_string(arch.tam_count()),
                 core::format_partition(arch.widths),
                 core::format_assignment(arch.assignment),
                 cycles(arch.testing_time), seconds(flow.total_cpu_s()), delta,
                 ratio});
  }
  std::cout << out << '\n';
}

void print_ranges_table(const soc::Soc& soc, const std::string& title) {
  common::TextTable out(title);
  out.set_header({"circuit", "#cores", "test patterns", "functional I/Os",
                  "scan chains", "scan lengths"},
                 {common::Align::Left, common::Align::Right,
                  common::Align::Right, common::Align::Right,
                  common::Align::Right, common::Align::Right});
  const auto row = [&out](const std::string& label,
                          const soc::CoreDataRanges& ranges) {
    const auto span = [](const soc::Range& r) {
      return std::to_string(r.min) + "-" + std::to_string(r.max);
    };
    out.add_row({label, std::to_string(ranges.core_count),
                 span(ranges.test_patterns), span(ranges.functional_ios),
                 ranges.scan_chain_count.max == 0 ? "0"
                                                  : span(ranges.scan_chain_count),
                 ranges.scan_lengths ? span(*ranges.scan_lengths) : "-"});
  };
  row("logic cores", soc::core_data_ranges(soc, soc::CoreKind::Logic));
  row("memory cores", soc::core_data_ranges(soc, soc::CoreKind::Memory));
  std::cout << out << '\n';
}

}  // namespace wtam::bench
