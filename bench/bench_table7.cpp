// Table 7: SOC p21241, P_NPAW (B <= 10). The paper's headline here: with
// Partition_evaluate the width can be spread over more TAMs than
// Exhaustive could handle, cutting testing times by ~25-42% for W >= 24.
// Also reproduces the documented anomaly at W = 16 (§4.2): the heuristic
// may pick a 4-TAM partition whose post-ILP time exceeds the best 2-TAM
// result.

#include <iostream>

#include "bench_util.hpp"
#include "core/co_optimizer.hpp"
#include "soc/benchmarks.hpp"

int main() {
  using namespace wtam;
  const soc::Soc soc = soc::p21241();
  const core::TestTimeTable table(soc, 64);

  std::cout << "=== Table 7: p21241, P_NPAW (B <= 10) ===\n\n";
  bench::run_pnpaw(table, {.soc_label = "p21241",
                           .max_tams = 10,
                           .reference_max_tams = 2});

  // The §4.2 anomaly check at W = 16.
  core::CoOptimizeOptions wide;
  wide.search.max_tams = 10;
  const auto free_b = core::co_optimize(table, 16, wide);
  const auto two = core::co_optimize_fixed_b(table, 16, 2, {});
  std::cout << "anomaly check at W=16 (paper §4.2): free-B heuristic chose B="
            << free_b.heuristic.best_tams << " -> "
            << free_b.architecture.testing_time
            << " cycles after the final step; pinned B=2 gives "
            << two.architecture.testing_time << " cycles\n";
  if (two.architecture.testing_time < free_b.architecture.testing_time)
    std::cout << "=> anomalous: the heuristic's partition is not best after "
                 "exact re-optimization (as the paper reports).\n";
  else
    std::cout << "=> no anomaly on this synthetic instance (the paper's "
                 "anomaly is data-dependent).\n";
  return 0;
}
