// Tables 5/6: SOC p21241, P_PAW with B = 2 — exhaustive [8] vs the new
// co-optimization method. (The paper could not run B >= 3 exhaustively for
// this SOC: "did not run to completion even after two days".)

#include <iostream>

#include "bench_util.hpp"
#include "soc/benchmarks.hpp"

int main() {
  using namespace wtam;
  const soc::Soc soc = soc::p21241();
  const core::TestTimeTable table(soc, 64);

  std::cout << "=== Tables 5/6: p21241, B = 2 ===\n\n";
  bench::run_paw_comparison(table, {.soc_label = "p21241", .tams = 2});
  return 0;
}
