// Backend shoot-out: every registered optimizer backend on every
// benchmark SOC (the four built-ins plus seeded synthetic SOCs) across
// total TAM widths 16..64 — now a thin client of the job-oriented
// api::Solver: one SolveRequest per (SOC, width, backend), executed as a
// parallel batch with deterministic result ordering. For each run the
// testing time, the CPU time, and the gap to the architecture-independent
// lower bound are recorded; for rectpack the delta against the
// enumerative flow is reported (the ISSUE-2 acceptance asks it to stay
// within +5% on d695 at W=32/64 — negative deltas mean rectangle packing
// reclaimed idle wires the test bus could not). Results are printed as
// tables and written to BENCH_backends.json so the backend-quality
// trajectory is machine-readable across PRs.
//
// Environment knobs (see bench_util.hpp): WTAM_BENCH_THREADS — here the
// number of concurrently executing jobs (each job runs its engine
// serially, so results are identical at any thread count).

#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/job_io.hpp"
#include "api/result_cache.hpp"
#include "api/solver.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/backend.hpp"
#include "core/constraints.hpp"
#include "core/power.hpp"
#include "soc/benchmarks.hpp"
#include "soc/generator.hpp"

namespace {

using namespace wtam;

constexpr int kWidths[] = {16, 24, 32, 40, 48, 56, 64};

soc::Soc synthetic(std::uint64_t seed) {
  soc::SyntheticSpec spec;
  spec.name = "synth" + std::to_string(seed);
  spec.seed = seed;
  spec.logic_cores = 10 + static_cast<int>(seed % 5);
  spec.logic.patterns = {20, 400};
  spec.logic.ios = {10, 180};
  spec.logic.chains = {1, 12};
  spec.logic.chain_len = {20, 180};
  spec.memory_cores = 4 + static_cast<int>(seed % 3);
  spec.memory.patterns = {100, 2500};
  spec.memory.ios = {8, 50};
  return soc::generate_soc(spec);
}

}  // namespace

int main() {
  const int threads = bench::bench_threads();

  std::vector<soc::Soc> socs = {soc::d695(), soc::p21241(), soc::p31108(),
                                soc::p93791()};
  for (const std::uint64_t seed : {11ULL, 23ULL, 47ULL})
    socs.push_back(synthetic(seed));

  const auto backends = core::BackendRegistry::instance().names();

  // One job per (SOC, width, backend), in the order the report tables
  // iterate — solve_batch returns results in exactly this order.
  std::vector<api::SolveRequest> jobs;
  for (const soc::Soc& soc : socs)
    for (const int width : kWidths)
      for (const auto& name : backends) {
        api::SolveRequest request;
        request.id = soc.name + "-w" + std::to_string(width) + "-" + name;
        request.soc_value = soc;
        request.width = width;
        request.backend = name;
        jobs.push_back(std::move(request));
      }

  const api::Solver solver(api::SolverOptions::with_threads(threads));
  const std::vector<api::SolveResult> results = solver.solve_batch(jobs);

  std::size_t next = 0;
  bool all_ok = true;
  bench::Json runs = bench::Json::array();
  for (const soc::Soc& soc : socs) {
    common::TextTable table("Backends on " + soc.name + " (" +
                            std::to_string(soc.core_count()) + " cores)");
    table.set_header({"W", "backend", "T (cycles)", "LB", "gap %", "CPU s",
                      "vs enum %"},
                     {common::Align::Right, common::Align::Left,
                      common::Align::Right, common::Align::Right,
                      common::Align::Right, common::Align::Right,
                      common::Align::Right});

    for (const int width : kWidths) {
      std::map<std::string, std::int64_t> per_backend;
      for (const auto& name : backends) {
        const api::SolveResult& result = results[next++];
        if (result.status != api::Status::Ok || !result.has_outcome()) {
          std::cerr << "error: job " << result.id << " ended "
                    << api::to_string(result.status) << " " << result.error
                    << "\n";
          all_ok = false;
          // Keep the runs array positionally complete — downstream
          // tooling aligns runs across PRs by (soc, width, backend).
          bench::Json entry = bench::Json::object();
          entry.set("soc", bench::Json::string(soc.name));
          entry.set("width",
                    bench::Json::number(static_cast<std::int64_t>(width)));
          entry.set("backend", bench::Json::string(name));
          entry.set("status", bench::Json::string(
                                  std::string(api::to_string(result.status))));
          entry.set("error", bench::Json::string(result.error));
          entry.set("schedule_valid", bench::Json::boolean(false));
          runs.push(std::move(entry));
          continue;
        }
        const core::BackendOutcome& outcome = *result.outcome;
        const double gap = result.optimality_gap();
        per_backend[name] = outcome.testing_time;
        all_ok = all_ok && result.schedule_valid;

        std::string vs_enum = "-";
        if (name != "enumerative" && per_backend.count("enumerative") != 0) {
          const auto reference =
              static_cast<double>(per_backend.at("enumerative"));
          vs_enum = common::format_signed_percent(
              (static_cast<double>(outcome.testing_time) - reference) /
              reference * 100.0);
        }
        table.add_row({std::to_string(width), name,
                       std::to_string(outcome.testing_time),
                       std::to_string(result.lower_bound),
                       common::format_fixed(gap * 100.0, 2),
                       common::format_fixed(outcome.cpu_s, 3), vs_enum});

        bench::Json entry = bench::Json::object();
        entry.set("soc", bench::Json::string(soc.name));
        entry.set("width",
                  bench::Json::number(static_cast<std::int64_t>(width)));
        entry.set("backend", bench::Json::string(name));
        entry.set("testing_time", bench::Json::number(outcome.testing_time));
        entry.set("cpu_s", bench::Json::number(outcome.cpu_s));
        entry.set("lower_bound", bench::Json::number(result.lower_bound));
        entry.set("gap", bench::Json::number(gap));
        entry.set("schedule_valid",
                  bench::Json::boolean(result.schedule_valid));
        runs.push(std::move(entry));
      }
      table.add_separator();
    }
    std::cout << table << "\n";
  }

  // ---- cache replay: the same sweep twice through one ResultCache -------
  // Models the service workload (bench reruns, Pareto exploration,
  // wtam_serve traffic re-asking known points): the cold pass populates
  // the cache, the warm pass must be all hits and near-zero wall time.
  const auto cache = std::make_shared<api::ResultCache>();
  const api::Solver cached_solver(
      api::SolverOptions::with_threads(threads, cache));
  std::vector<api::SolveRequest> replay_jobs;
  for (const int width : kWidths)
    for (const auto& name : backends) {
      api::SolveRequest request;
      request.id = "replay-d695-w" + std::to_string(width) + "-" + name;
      request.soc_value = socs.front();  // d695
      request.width = width;
      request.backend = name;
      replay_jobs.push_back(std::move(request));
    }
  common::Stopwatch cold_watch;
  const auto cold_results = cached_solver.solve_batch(replay_jobs);
  const double cold_wall_s = cold_watch.elapsed_s();
  common::Stopwatch warm_watch;
  const auto warm_results = cached_solver.solve_batch(replay_jobs);
  const double warm_wall_s = warm_watch.elapsed_s();
  std::size_t warm_hits = 0;
  for (std::size_t i = 0; i < warm_results.size(); ++i) {
    if (warm_results[i].cache == api::CacheOutcome::Hit) ++warm_hits;
    // Byte-identity contract: a hit reproduces the cold result exactly.
    all_ok = all_ok &&
             api::result_to_json(warm_results[i]).dump_string() ==
                 api::result_to_json(cold_results[i]).dump_string();
  }
  const api::ResultCacheStats cache_stats = cache->stats();
  std::cout << "cache replay on d695: cold "
            << common::format_fixed(cold_wall_s, 3) << " s, warm "
            << common::format_fixed(warm_wall_s, 3) << " s (" << warm_hits
            << "/" << warm_results.size() << " hits, hit rate "
            << common::format_fixed(cache_stats.hit_rate() * 100.0, 1)
            << "%)\n";

  // ---- constrained scenarios --------------------------------------------
  // The same points under scenario constraints (ISSUE-5): d695 with
  // scan-activity powers plus two seeded synthetic constrained SOCs,
  // each at {no constraints, power budget, power + precedence}, W=32.
  // Records the testing-time inflation each constraint level costs over
  // the unconstrained baseline of the same (SOC, backend). rectpack runs
  // every level; enumerative skips power+precedence (it reports
  // unsupported_constraint for precedence by contract).
  struct ConstrainedPoint {
    std::string soc_label;
    std::string backend;
    std::string variant;
    const soc::Soc* soc;
    core::ScheduleConstraints constraints;
  };
  std::vector<ConstrainedPoint> points;

  soc::Soc d695_soc = socs.front();
  core::ScheduleConstraints d695_power;
  d695_power.power = core::scan_activity_power(d695_soc);
  for (const std::int64_t p : d695_power.power)
    d695_power.power_budget = std::max(d695_power.power_budget, p);
  core::ScheduleConstraints d695_power_prec = d695_power;
  d695_power_prec.precedence = {{0, 5}, {1, 5}, {5, 9}};

  std::vector<soc::ConstrainedScenario> scenarios;
  for (const std::uint64_t seed : {7ULL, 19ULL}) {
    soc::ConstrainedScenarioSpec spec;
    spec.soc.name = "csynth" + std::to_string(seed);
    spec.soc.seed = seed;
    spec.soc.logic_cores = 9;
    spec.soc.logic.patterns = {20, 400};
    spec.soc.logic.ios = {10, 150};
    spec.soc.logic.chains = {1, 10};
    spec.soc.logic.chain_len = {20, 160};
    spec.soc.memory_cores = 4;
    spec.soc.memory.patterns = {100, 2000};
    spec.soc.memory.ios = {8, 40};
    spec.seed = seed;
    spec.power_budget_fraction = 0.35;
    spec.precedence_edges = 6;
    scenarios.push_back(soc::generate_constrained_scenario(spec));
  }

  const auto add_points = [&points](const std::string& label,
                                    const soc::Soc& soc,
                                    const core::ScheduleConstraints& power,
                                    const core::ScheduleConstraints& full) {
    for (const auto& backend : {std::string("enumerative"),
                                std::string("rectpack")}) {
      points.push_back({label, backend, "none", &soc, {}});
      points.push_back({label, backend, "power", &soc, power});
      if (backend == "rectpack")  // enumerative: unsupported by contract
        points.push_back({label, backend, "power+precedence", &soc, full});
    }
  };
  add_points("d695", d695_soc, d695_power, d695_power_prec);
  for (const auto& scenario : scenarios) {
    core::ScheduleConstraints power_only;
    power_only.power = scenario.constraints.power;
    power_only.power_budget = scenario.constraints.power_budget;
    add_points(scenario.soc.name, scenario.soc, power_only,
               scenario.constraints);
  }

  std::vector<api::SolveRequest> constrained_jobs;
  for (const ConstrainedPoint& point : points) {
    api::SolveRequest request;
    request.id = point.soc_label + "-" + point.backend + "-" + point.variant;
    request.soc_value = *point.soc;
    request.width = 32;
    request.backend = point.backend;
    request.options.constraints = point.constraints;
    constrained_jobs.push_back(std::move(request));
  }
  const auto constrained_results = solver.solve_batch(constrained_jobs);

  common::TextTable constrained_table(
      "Constrained scenarios (W=32, vs unconstrained baseline)");
  constrained_table.set_header(
      {"soc", "backend", "variant", "T (cycles)", "inflation %"},
      {common::Align::Left, common::Align::Left, common::Align::Left,
       common::Align::Right, common::Align::Right});
  bench::Json constrained_runs = bench::Json::array();
  std::map<std::string, std::int64_t> baselines;  // (soc, backend) -> T
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ConstrainedPoint& point = points[i];
    const api::SolveResult& result = constrained_results[i];
    bench::Json entry = bench::Json::object();
    entry.set("soc", bench::Json::string(point.soc_label));
    entry.set("backend", bench::Json::string(point.backend));
    entry.set("variant", bench::Json::string(point.variant));
    if (result.status != api::Status::Ok || !result.has_outcome()) {
      std::cerr << "error: constrained job " << result.id << " ended "
                << api::to_string(result.status) << " " << result.error
                << "\n";
      all_ok = false;
      entry.set("status", bench::Json::string(
                              std::string(api::to_string(result.status))));
      constrained_runs.push(std::move(entry));
      continue;
    }
    all_ok = all_ok && result.schedule_valid;
    const std::int64_t time = result.outcome->testing_time;
    const std::string baseline_key = point.soc_label + "/" + point.backend;
    if (point.variant == "none") baselines[baseline_key] = time;
    const auto baseline_it = baselines.find(baseline_key);
    const std::int64_t baseline =
        baseline_it != baselines.end() ? baseline_it->second : 0;
    const double inflation =
        baseline > 0 ? (static_cast<double>(time) -
                        static_cast<double>(baseline)) /
                           static_cast<double>(baseline) * 100.0
                     : 0.0;
    constrained_table.add_row(
        {point.soc_label, point.backend, point.variant, std::to_string(time),
         common::format_signed_percent(inflation)});
    entry.set("testing_time", bench::Json::number(time));
    entry.set("inflation_pct", bench::Json::number(inflation));
    entry.set("schedule_valid", bench::Json::boolean(result.schedule_valid));
    entry.set("cpu_s", bench::Json::number(result.outcome->cpu_s));
    constrained_runs.push(std::move(entry));
  }
  std::cout << constrained_table << "\n";

  // ---- machine-readable artifact ----------------------------------------
  bench::Json document = bench::Json::object();
  document.set("bench", bench::Json::string("backends"));
  document.set("threads",
               bench::Json::number(static_cast<std::int64_t>(threads)));
  bench::Json backend_names = bench::Json::array();
  for (const auto& name : backends)
    backend_names.push(bench::Json::string(name));
  document.set("backends", std::move(backend_names));

  bench::Json cache_json = bench::Json::object();
  cache_json.set("soc", bench::Json::string("d695"));
  cache_json.set("jobs", bench::Json::number(
                             static_cast<std::int64_t>(replay_jobs.size())));
  cache_json.set("cold_wall_s", bench::Json::number(cold_wall_s));
  cache_json.set("warm_wall_s", bench::Json::number(warm_wall_s));
  cache_json.set("warm_hits",
                 bench::Json::number(static_cast<std::int64_t>(warm_hits)));
  cache_json.set("hits", bench::Json::number(
                             static_cast<std::int64_t>(cache_stats.hits)));
  cache_json.set("misses", bench::Json::number(
                               static_cast<std::int64_t>(cache_stats.misses)));
  cache_json.set("hit_rate", bench::Json::number(cache_stats.hit_rate()));
  cache_json.set("entries", bench::Json::number(
                                static_cast<std::int64_t>(cache_stats.entries)));
  cache_json.set("bytes", bench::Json::number(
                              static_cast<std::int64_t>(cache_stats.bytes)));
  document.set("cache_replay", std::move(cache_json));
  document.set("constrained", std::move(constrained_runs));

  document.set("runs", std::move(runs));

  bench::write_json_file("BENCH_backends.json", document);
  std::cout << "wrote BENCH_backends.json (" << results.size() << " runs)\n";
  if (!all_ok) {
    std::cerr << "error: at least one job failed or produced an invalid "
                 "schedule\n";
    return 1;
  }
  return 0;
}
