// Backend shoot-out: every registered optimizer backend on every
// benchmark SOC (the four built-ins plus seeded synthetic SOCs) across
// total TAM widths 16..64. For each run the testing time, the CPU time,
// and the gap to the architecture-independent lower bound are recorded;
// for rectpack the delta against the enumerative flow is reported (the
// ISSUE-2 acceptance asks it to stay within +5% on d695 at W=32/64 —
// negative deltas mean rectangle packing reclaimed idle wires the test
// bus could not). Results are printed as tables and written to
// BENCH_backends.json so the backend-quality trajectory is
// machine-readable across PRs.
//
// Environment knobs (see bench_util.hpp): WTAM_BENCH_THREADS.

#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/backend.hpp"
#include "core/lower_bounds.hpp"
#include "core/test_time_table.hpp"
#include "pack/packed_schedule.hpp"
#include "soc/benchmarks.hpp"
#include "soc/generator.hpp"

namespace {

using namespace wtam;

constexpr int kWidths[] = {16, 24, 32, 40, 48, 56, 64};

struct RunRecord {
  std::string soc;
  int width = 0;
  std::string backend;
  std::int64_t testing_time = 0;
  double cpu_s = 0.0;
  std::int64_t lower_bound = 0;
  double gap = 0.0;  ///< (T - LB) / LB
  bool valid = false;
};

soc::Soc synthetic(std::uint64_t seed) {
  soc::SyntheticSpec spec;
  spec.name = "synth" + std::to_string(seed);
  spec.seed = seed;
  spec.logic_cores = 10 + static_cast<int>(seed % 5);
  spec.logic.patterns = {20, 400};
  spec.logic.ios = {10, 180};
  spec.logic.chains = {1, 12};
  spec.logic.chain_len = {20, 180};
  spec.memory_cores = 4 + static_cast<int>(seed % 3);
  spec.memory.patterns = {100, 2500};
  spec.memory.ios = {8, 50};
  return soc::generate_soc(spec);
}

}  // namespace

int main() {
  const int threads = bench::bench_threads();

  std::vector<soc::Soc> socs = {soc::d695(), soc::p21241(), soc::p31108(),
                                soc::p93791()};
  for (const std::uint64_t seed : {11ULL, 23ULL, 47ULL})
    socs.push_back(synthetic(seed));

  const auto backends = core::BackendRegistry::instance().names();
  std::vector<RunRecord> records;

  for (const soc::Soc& soc : socs) {
    common::TextTable table("Backends on " + soc.name + " (" +
                            std::to_string(soc.core_count()) + " cores)");
    table.set_header({"W", "backend", "T (cycles)", "LB", "gap %", "CPU s",
                      "vs enum %"},
                     {common::Align::Right, common::Align::Left,
                      common::Align::Right, common::Align::Right,
                      common::Align::Right, common::Align::Right,
                      common::Align::Right});

    for (const int width : kWidths) {
      const core::TestTimeTable times(soc, width);
      const auto bounds = core::testing_time_lower_bounds(times, width);

      std::map<std::string, std::int64_t> per_backend;
      for (const auto& name : backends) {
        core::BackendOptions options;
        options.threads = threads;
        const auto outcome = core::run_backend(name, times, width, options);

        RunRecord record;
        record.soc = soc.name;
        record.width = width;
        record.backend = name;
        record.testing_time = outcome.testing_time;
        record.cpu_s = outcome.cpu_s;
        record.lower_bound = bounds.combined();
        record.gap = core::optimality_gap(bounds, outcome.testing_time);
        record.valid =
            pack::validate_packed_schedule(times, outcome.schedule).empty();
        records.push_back(record);
        per_backend[name] = outcome.testing_time;

        std::string vs_enum = "-";
        if (name != "enumerative" && per_backend.count("enumerative") != 0) {
          const auto reference =
              static_cast<double>(per_backend.at("enumerative"));
          vs_enum = common::format_signed_percent(
              (static_cast<double>(outcome.testing_time) - reference) /
              reference * 100.0);
        }
        table.add_row({std::to_string(width), name,
                       std::to_string(outcome.testing_time),
                       std::to_string(bounds.combined()),
                       common::format_fixed(record.gap * 100.0, 2),
                       common::format_fixed(outcome.cpu_s, 3), vs_enum});
      }
      table.add_separator();
    }
    std::cout << table << "\n";
  }

  // ---- machine-readable artifact ----------------------------------------
  bench::Json document = bench::Json::object();
  document.set("bench", bench::Json::string("backends"));
  document.set("threads", bench::Json::number(static_cast<std::int64_t>(threads)));
  bench::Json backend_names = bench::Json::array();
  for (const auto& name : backends)
    backend_names.push(bench::Json::string(name));
  document.set("backends", std::move(backend_names));

  bench::Json runs = bench::Json::array();
  bool all_valid = true;
  for (const auto& record : records) {
    bench::Json entry = bench::Json::object();
    entry.set("soc", bench::Json::string(record.soc));
    entry.set("width", bench::Json::number(static_cast<std::int64_t>(record.width)));
    entry.set("backend", bench::Json::string(record.backend));
    entry.set("testing_time", bench::Json::number(record.testing_time));
    entry.set("cpu_s", bench::Json::number(record.cpu_s));
    entry.set("lower_bound", bench::Json::number(record.lower_bound));
    entry.set("gap", bench::Json::number(record.gap));
    entry.set("schedule_valid", bench::Json::boolean(record.valid));
    runs.push(std::move(entry));
    all_valid = all_valid && record.valid;
  }
  document.set("runs", std::move(runs));

  bench::write_json_file("BENCH_backends.json", document);
  std::cout << "wrote BENCH_backends.json (" << records.size() << " runs)\n";
  if (!all_valid) {
    std::cerr << "error: at least one backend produced an invalid schedule\n";
    return 1;
  }
  return 0;
}
