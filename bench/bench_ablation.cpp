// Ablation studies for the design choices DESIGN.md calls out:
//   A. Core_assign tie-break rules (Figure 1, Lines 11-16) on/off;
//   B. tau early-abort (Lines 18-20) on/off — CPU and pruning counts;
//   C. partition enumeration strategies: clean unique enumeration vs the
//      paper's restricted odometer vs the rejected "enumeration-
//      comparison" hash-filter (§3.1), including its memory footprint;
//   D. per-B tau reset (Figure 3 Line 6) vs carrying tau across B;
//   E. the final exact step's contribution over the bare heuristic.

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/co_optimizer.hpp"
#include "core/daisy_chain.hpp"
#include "partition/partition.hpp"
#include "soc/benchmarks.hpp"
#include "wrapper/wrapper.hpp"

int main() {
  using namespace wtam;

  const soc::Soc d695 = soc::d695();
  const soc::Soc p21241 = soc::p21241();
  const core::TestTimeTable d695_table(d695, 64);
  const core::TestTimeTable p21241_table(p21241, 64);

  // --- A: tie-break rules -------------------------------------------------
  {
    common::TextTable out(
        "Ablation A: Core_assign tie-break rules (heuristic testing time, "
        "P_PAW best over partitions, B=3)");
    out.set_header({"SOC", "W", "both rules", "no widest-TAM rule",
                    "no next-TAM core rule", "neither"});
    const auto run = [](const core::TestTimeTable& table, int width,
                        bool widest, bool next_tam) {
      core::PartitionEvaluateOptions options;
      options.min_tams = 3;
      options.max_tams = 3;
      options.widest_tam_tiebreak = widest;
      options.next_tam_core_tiebreak = next_tam;
      return core::partition_evaluate(table, width, options).best.testing_time;
    };
    for (const int width : {24, 40, 56}) {
      out.add_row({"d695", std::to_string(width),
                   std::to_string(run(d695_table, width, true, true)),
                   std::to_string(run(d695_table, width, false, true)),
                   std::to_string(run(d695_table, width, true, false)),
                   std::to_string(run(d695_table, width, false, false))});
      out.add_row({"p21241", std::to_string(width),
                   std::to_string(run(p21241_table, width, true, true)),
                   std::to_string(run(p21241_table, width, false, true)),
                   std::to_string(run(p21241_table, width, true, false)),
                   std::to_string(run(p21241_table, width, false, false))});
    }
    std::cout << out << '\n';
  }

  // --- B: tau early abort ---------------------------------------------------
  {
    common::TextTable out(
        "Ablation B: tau early-abort (Figure 1 Lines 18-20), p21241, B=6");
    out.set_header({"W", "evaluated (pruned)", "CPU (s)",
                    "evaluated (no prune)", "CPU (s)", "speedup"});
    for (const int width : {44, 56, 64}) {
      core::PartitionEvaluateOptions pruned;
      pruned.min_tams = 6;
      pruned.max_tams = 6;
      common::Stopwatch w1;
      const auto with_prune = core::partition_evaluate(p21241_table, width, pruned);
      const double t1 = w1.elapsed_s();

      core::PartitionEvaluateOptions unpruned = pruned;
      unpruned.prune_with_tau = false;
      common::Stopwatch w2;
      const auto without = core::partition_evaluate(p21241_table, width, unpruned);
      const double t2 = w2.elapsed_s();

      out.add_row(
          {std::to_string(width),
           std::to_string(with_prune.per_b.front().evaluated_to_completion),
           common::format_fixed(t1, 3),
           std::to_string(without.per_b.front().evaluated_to_completion),
           common::format_fixed(t2, 3),
           common::format_fixed(t2 / std::max(t1, 1e-6), 2) + "x"});
    }
    std::cout << out << '\n';
  }

  // --- C: enumeration strategies -------------------------------------------
  {
    common::TextTable out(
        "Ablation C: partition enumeration strategies (W=40)");
    out.set_header({"B", "unique p(W,B)", "odometer tuples", "duplicates",
                    "compositions", "filter memory (bytes)"});
    for (const int tams : {3, 4, 5, 6}) {
      const auto odometer = partition::restricted_odometer_stats(40, tams);
      const auto filter = partition::comparison_filter_stats(40, tams);
      out.add_row({std::to_string(tams),
                   std::to_string(partition::count_exact(40, tams)),
                   std::to_string(odometer.tuples),
                   std::to_string(odometer.duplicates),
                   std::to_string(filter.compositions),
                   std::to_string(filter.stored_bytes)});
    }
    std::cout << out;
    std::cout << "(compositions grow as C(W-1,B-1) — the memory-hungry "
                 "enumeration-comparison method the paper rejects in §3.1)\n\n";
  }

  // --- D: tau reset per B ----------------------------------------------------
  {
    common::TextTable out(
        "Ablation D: per-B tau reset (Figure 3) vs carried tau, p21241");
    out.set_header({"W", "evaluated (reset)", "evaluated (carried)",
                    "best T (reset)", "best T (carried)"});
    for (const int width : {32, 48, 64}) {
      core::PartitionEvaluateOptions reset;
      reset.max_tams = 6;
      core::PartitionEvaluateOptions carried = reset;
      carried.reset_tau_per_b = false;
      const auto a = core::partition_evaluate(p21241_table, width, reset);
      const auto b = core::partition_evaluate(p21241_table, width, carried);
      std::uint64_t evaluated_a = 0;
      std::uint64_t evaluated_b = 0;
      for (const auto& s : a.per_b) evaluated_a += s.evaluated_to_completion;
      for (const auto& s : b.per_b) evaluated_b += s.evaluated_to_completion;
      out.add_row({std::to_string(width), std::to_string(evaluated_a),
                   std::to_string(evaluated_b),
                   std::to_string(a.best.testing_time),
                   std::to_string(b.best.testing_time)});
    }
    std::cout << out << '\n';
  }

  // --- F: Design_wrapper balancing vs naive round-robin wrappers -------------
  {
    common::TextTable out(
        "Ablation F: BFD-balanced Design_wrapper vs naive round-robin "
        "(core testing time in cycles)");
    out.set_header({"core", "w", "Design_wrapper", "naive", "penalty (%)"});
    for (const auto* name : {"s9234", "s38584", "s13207", "s38417"}) {
      for (const auto& core : d695.cores) {
        if (core.name != name) continue;
        for (const int w : {8, 16}) {
          const auto balanced = wrapper::design_wrapper(core, w);
          const auto naive = wrapper::design_wrapper_naive(core, w);
          const double penalty =
              (static_cast<double>(naive.test_time) -
               static_cast<double>(balanced.test_time)) /
              static_cast<double>(balanced.test_time) * 100.0;
          out.add_row({core.name, std::to_string(w),
                       std::to_string(balanced.test_time),
                       std::to_string(naive.test_time),
                       common::format_fixed(penalty, 1)});
        }
      }
    }
    std::cout << out << '\n';
  }

  // --- G: test bus vs daisychain TAM access model -----------------------------
  {
    common::TextTable out(
        "Ablation G: test bus model (paper) vs daisychain access [11,14] "
        "(co-optimized bus architectures, re-evaluated under daisychain)");
    out.set_header({"SOC", "W", "#TAMs", "bus T", "daisychain T",
                    "penalty (%)", "bypass overhead"});
    for (const int width : {16, 32, 64}) {
      for (const auto* soc_ptr : {&d695, &p21241}) {
        const auto& table = soc_ptr == &d695 ? d695_table : p21241_table;
        core::CoOptimizeOptions options;
        options.search.max_tams = 6;
        const auto flow = core::co_optimize(table, width, options);
        const auto daisy =
            core::evaluate_daisy_chain(*soc_ptr, flow.architecture);
        const double penalty =
            (static_cast<double>(daisy.testing_time) -
             static_cast<double>(flow.architecture.testing_time)) /
            static_cast<double>(flow.architecture.testing_time) * 100.0;
        out.add_row({soc_ptr->name, std::to_string(width),
                     std::to_string(flow.architecture.tam_count()),
                     std::to_string(flow.architecture.testing_time),
                     std::to_string(daisy.testing_time),
                     common::format_fixed(penalty, 2),
                     std::to_string(daisy.bypass_overhead_cycles)});
      }
    }
    std::cout << out;
    std::cout << "(why the paper adopts the test bus model: bypass bits "
                 "stretch every scan path by the chain's core count)\n\n";
  }

  // --- E: value of the final exact step --------------------------------------
  {
    common::TextTable out(
        "Ablation E: final ILP step vs bare heuristic (P_NPAW, B<=10)");
    out.set_header({"SOC", "W", "heuristic T", "after final step", "gain (%)"});
    for (const int width : {32, 56}) {
      for (const auto* entry :
           {&d695_table, &p21241_table}) {
        core::CoOptimizeOptions options;
        options.search.max_tams = 10;
        const auto flow = core::co_optimize(*entry, width, options);
        const double heuristic =
            static_cast<double>(flow.heuristic.best.testing_time);
        const double final_time =
            static_cast<double>(flow.architecture.testing_time);
        out.add_row({entry == &d695_table ? "d695" : "p21241",
                     std::to_string(width),
                     std::to_string(flow.heuristic.best.testing_time),
                     std::to_string(flow.architecture.testing_time),
                     common::format_fixed((heuristic - final_time) / heuristic * 100.0,
                                          2)});
      }
    }
    std::cout << out << '\n';
  }

  // --- H: parallel search scaling --------------------------------------------
  {
    common::TextTable out(
        "Ablation H: partition_evaluate worker threads (p21241, W=64, "
        "B<=6; parallel results are bit-identical to serial by contract)");
    out.set_header({"threads", "wall (s)", "speedup", "best T", "identical"},
                   {common::Align::Right, common::Align::Right,
                    common::Align::Right, common::Align::Right,
                    common::Align::Right});
    core::PartitionEvaluateOptions options;
    options.max_tams = 6;
    common::Stopwatch serial_watch;
    const auto serial = core::partition_evaluate(p21241_table, 64, options);
    const double serial_s = serial_watch.elapsed_s();
    out.add_row({"1", common::format_fixed(serial_s, 3), "1.00x",
                 std::to_string(serial.best.testing_time), "yes"});
    for (const int threads : {2, 4, 8}) {
      core::PartitionEvaluateOptions parallel_options = options;
      parallel_options.threads = threads;
      common::Stopwatch watch;
      const auto parallel =
          core::partition_evaluate(p21241_table, 64, parallel_options);
      const double elapsed = watch.elapsed_s();
      const bool identical =
          parallel.best.testing_time == serial.best.testing_time &&
          parallel.best.widths == serial.best.widths &&
          parallel.best.assignment == serial.best.assignment;
      out.add_row({std::to_string(threads), common::format_fixed(elapsed, 3),
                   common::format_fixed(serial_s / std::max(elapsed, 1e-9), 2) +
                       "x",
                   std::to_string(parallel.best.testing_time),
                   identical ? "yes" : "NO"});
    }
    std::cout << out << '\n';
  }
  return 0;
}
