// Table 19: SOC p93791, P_NPAW (B <= 10).

#include <iostream>

#include "bench_util.hpp"
#include "soc/benchmarks.hpp"

int main() {
  using namespace wtam;
  const soc::Soc soc = soc::p93791();
  const core::TestTimeTable table(soc, 64);

  std::cout << "=== Table 19: p93791, P_NPAW (B <= 10) ===\n\n";
  bench::run_pnpaw(table, {.soc_label = "p93791",
                           .max_tams = 10,
                           .reference_max_tams = 3});
  return 0;
}
