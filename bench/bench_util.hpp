// Shared harness for regenerating the paper's tables.
//
// Every table bench compares the same two flows the paper does:
//   * "Exhaustive" — the method of [8]: every width partition solved
//     exactly (our branch & bound stands in for their lp_solve ILP), with
//     a wall-clock budget standing in for their multi-day cutoffs;
//   * "New co-optimization" — Partition_evaluate + one final exact solve.
// Columns follow the paper: width partition, core assignment vector [5],
// testing time T, CPU time, percentage delta, and CPU-time ratio.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/json_value.hpp"
#include "core/co_optimizer.hpp"
#include "core/exhaustive.hpp"
#include "core/test_time_table.hpp"
#include "soc/soc.hpp"

namespace wtam::bench {

/// Per-(W) exhaustive budget in seconds; override with the
/// WTAM_BENCH_BUDGET environment variable (the paper's analogue: runs
/// were cut off after two days).
[[nodiscard]] double exhaustive_budget_s(double fallback = 30.0);

/// Worker threads for the table benches' searches; override with the
/// WTAM_BENCH_THREADS environment variable (0 = one per hardware
/// thread). Heuristic-search results are thread-count-invariant; the
/// budgeted exhaustive baselines stay timing-dependent (which partitions
/// get solved before the WTAM_BENCH_BUDGET deadline can shift with
/// throughput), exactly as they are serially.
[[nodiscard]] int bench_threads(int fallback = 1);

/// JSON document model for machine-readable bench artifacts
/// (BENCH_*.json) — the library's api::JsonValue (objects preserve
/// insertion order, deterministic two-space dump, full parser). One
/// writer means the bench artifacts and the Solver's jobs/results files
/// can never drift apart in serialization policy.
using Json = wtam::api::JsonValue;

/// Writes `document` to `path` (pretty-printed, trailing newline).
/// Throws std::runtime_error when the file cannot be written.
void write_json_file(const std::string& path, const Json& document);

struct PawComparison {
  std::string soc_label;
  int tams = 2;
  std::vector<int> widths = {16, 24, 32, 40, 48, 56, 64};
  /// After the tables, time the paper's actual per-partition solver (the
  /// ILP model through our simplex branch & bound) on one partition, to
  /// show why [8]'s exhaustive enumeration hit multi-day walls on the
  /// Philips SOCs. The exhaustive baseline above uses the combinatorial
  /// engine so that reference optima exist at all.
  bool ilp_probe = true;
  /// Additionally run the *full* exhaustive enumeration with the ILP
  /// engine — the method of [8] verbatim — and report the CPU-time ratio
  /// t_new/t_old_ilp. Only tractable on d695 within the budget.
  bool ilp_exhaustive = false;
};

/// Regenerates a Table-2/5/6/9/10/... pair: the exhaustive table and the
/// new-co-optimization table for a fixed number of TAMs.
void run_paw_comparison(const core::TestTimeTable& table,
                        const PawComparison& config);

struct PnpawRun {
  std::string soc_label;
  int max_tams = 10;
  std::vector<int> widths = {16, 24, 32, 40, 48, 56, 64};
  /// Reference for the paper's delta column: best exhaustive result with
  /// at most this many TAMs (the paper compares against its best B<=3
  /// numbers because Exhaustive never finished beyond that).
  int reference_max_tams = 3;
};

/// Regenerates a Table-3/7/13/19 row set (problem P_NPAW).
void run_pnpaw(const core::TestTimeTable& table, const PnpawRun& config);

/// Regenerates one row block of Tables 4/8/14 (core test-data ranges).
void print_ranges_table(const soc::Soc& soc, const std::string& title);

}  // namespace wtam::bench
