// Tables 11/12: SOC p31108, P_PAW with B = 3. The paper's signature
// behaviour: from W = 40 the testing time sticks at 544579 cycles — the
// theoretical floor set by Core 18, which saturates at a 10-bit wrapper.

#include <iostream>

#include "bench_util.hpp"
#include "soc/benchmarks.hpp"
#include "soc/soc.hpp"

int main() {
  using namespace wtam;
  const soc::Soc soc = soc::p31108();
  const core::TestTimeTable table(soc, 64);

  std::cout << "=== Tables 11/12: p31108, B = 3 ===\n\n";
  bench::run_paw_comparison(table, {.soc_label = "p31108", .tams = 3});

  std::cout << "theoretical lower bound: Core 18 min testing time = "
            << soc::min_test_time_bound(soc.cores[17])
            << " cycles (paper: 544579, reached from W = 40)\n";
  return 0;
}
