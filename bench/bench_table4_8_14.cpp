// Tables 4, 8, 14: core test-data ranges of the three Philips SOCs.
// Our synthetic reconstructions pin every published range endpoint, so
// these tables must match the paper cell for cell (see DESIGN.md §3).

#include <iostream>

#include "bench_util.hpp"
#include "soc/benchmarks.hpp"
#include "soc/soc.hpp"

int main() {
  using namespace wtam;
  bench::print_ranges_table(
      soc::p21241(), "Table 4: ranges in test data for the 28 cores in p21241");
  bench::print_ranges_table(
      soc::p31108(), "Table 8: ranges in test data for the 19 cores in p31108");
  bench::print_ranges_table(
      soc::p93791(), "Table 14: ranges in test data for the 32 cores in p93791");

  std::cout << "test-data volumes (sum p*(io+ff), cycles*bits /1000):\n";
  for (const soc::Soc& soc : {soc::p21241(), soc::p31108(), soc::p93791()})
    std::cout << "  " << soc.name << ": " << soc::test_complexity(soc) << "\n";
  std::cout << "(The paper's name-number formula from [8] is not public; see"
               " DESIGN.md for the volume-calibration rationale.)\n";
  return 0;
}
