// Table 1: efficiency of the Partition_evaluate heuristic on SOC p21241.
//
// For B = 6 and B = 8 and W = 44..64, compares the theoretical number of
// unique partitions P(W, B) ~ W^(B-1)/(B!(B-1)!) [10] with P_eval, the
// number of partitions the heuristic actually evaluates to completion
// (everything else is cut off early by the tau rule, Lines 18-20 of
// Figure 1). E = P_eval / P(W, B); the paper reports ~2% on average.

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "partition/partition.hpp"
#include "soc/benchmarks.hpp"

int main() {
  using namespace wtam;

  const soc::Soc soc = soc::p21241();
  const core::TestTimeTable table(soc, 64);

  common::TextTable out(
      "Table 1: efficiency of Partition_evaluate on p21241 (B=6 and B=8)");
  out.set_header({"W", "P(W,6)", "P_eval", "E", "P(W,8)", "P_eval", "E"});

  double total_e = 0.0;
  int count = 0;
  for (int width = 44; width <= 64; width += 4) {
    std::vector<std::string> row;
    row.push_back(std::to_string(width));
    for (const int tams : {6, 8}) {
      core::PartitionEvaluateOptions options;
      options.min_tams = tams;
      options.max_tams = tams;
      const auto result = core::partition_evaluate(table, width, options);
      const auto& stats = result.per_b.front();
      const double estimate = partition::estimate(width, tams);
      const double efficiency =
          static_cast<double>(stats.evaluated_to_completion) / estimate;
      row.push_back(common::format_fixed(estimate, 0));
      row.push_back(std::to_string(stats.evaluated_to_completion));
      row.push_back(common::format_fixed(efficiency, 3));
      total_e += efficiency;
      ++count;
    }
    out.add_row(std::move(row));
  }
  std::cout << out;
  std::cout << "\nmean E = " << common::format_fixed(total_e / count, 3)
            << "  (paper: ~0.02 on average; E << 1 means the tau rule prunes"
               " almost the whole partition space)\n";
  return 0;
}
