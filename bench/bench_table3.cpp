// Table 3: SOC d695, problem P_NPAW — the number of TAMs is free (B <= 10).
// The paper's delta column compares against the best exhaustive result for
// B <= 3 (beyond that, [8] never terminated).

#include <iostream>

#include "bench_util.hpp"
#include "soc/benchmarks.hpp"

int main() {
  using namespace wtam;
  const soc::Soc soc = soc::d695();
  const core::TestTimeTable table(soc, 64);

  std::cout << "=== Table 3: d695, P_NPAW (B <= 10) ===\n\n";
  bench::run_pnpaw(table, {.soc_label = "d695",
                           .max_tams = 10,
                           .reference_max_tams = 3});
  return 0;
}
