// Table 13: SOC p31108, P_NPAW (B <= 10). Once W >= 40 the optimizer hits
// the 544579-cycle floor (Core 18 alone on a >= 10-bit TAM) and extra
// width/TAMs stop helping — some TAMs may even stay idle, as the paper
// observes for W >= 56.

#include <iostream>

#include "bench_util.hpp"
#include "soc/benchmarks.hpp"

int main() {
  using namespace wtam;
  const soc::Soc soc = soc::p31108();
  const core::TestTimeTable table(soc, 64);

  std::cout << "=== Table 13: p31108, P_NPAW (B <= 10) ===\n\n";
  bench::run_pnpaw(table, {.soc_label = "p31108",
                           .max_tams = 10,
                           .reference_max_tams = 3});
  return 0;
}
