// bench_serve — serve-session load generator. Drives the api::Solver the
// way tools/wtam_serve.cpp does (one job per request on a worker pool,
// every job sharing one memoizing ResultCache) and publishes throughput,
// cache hit rate, and tail-latency percentiles to BENCH_serve.json.
//
// Three phases, extending the CI serve soak (cmake/cli_checks.cmake):
//   * cold — unique (soc, width) points: every request is a cache miss,
//     so this phase prices the raw solve path;
//   * soak — the 102-request mix (34 x {d695 w12/w14/w16 rectpack}): the
//     first request per point computes, concurrent duplicates coalesce
//     onto it, the rest hit — the steady-state serve workload;
//   * warm — the same 102 requests replayed against the hot cache: the
//     pure lookup path, the floor the server can promise.
//
// Per-request latency (submit -> result) feeds an obs::Histogram;
// p50/p90/p95/p99 come from its merged quantiles. Determinism is part of
// the contract: every result for the same point must report the same
// testing time in every phase — cache hits are byte-identical to the
// cold run — else this bench exits 1.

#include <cstdint>
#include <exception>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "api/result_cache.hpp"
#include "api/solver.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace wtam;

/// Fixed worker count so the artifact is comparable across machines
/// (mirrors a small serve deployment; the box's hardware_threads is
/// recorded alongside).
constexpr int kWorkers = 4;

api::SolveRequest make_request(std::string id, int width) {
  api::SolveRequest request;
  request.id = std::move(id);
  request.soc = "d695";
  request.width = width;
  request.backend = "rectpack";
  return request;
}

struct PhaseStats {
  std::string name;
  std::size_t requests = 0;
  double wall_s = 0.0;
  std::int64_t hits = 0;       // cache lookup deltas over the phase
  std::int64_t misses = 0;
  std::int64_t coalesced = 0;
  obs::HistogramData latency;  // submit -> result, ns

  [[nodiscard]] double throughput_rps() const {
    return wall_s > 0 ? static_cast<double>(requests) / wall_s : 0.0;
  }
  /// Share of lookups served without running an engine (hit or
  /// coalesced onto an in-flight duplicate).
  [[nodiscard]] double hit_rate() const {
    const std::int64_t lookups = hits + misses + coalesced;
    return lookups > 0
               ? static_cast<double>(hits + coalesced) /
                     static_cast<double>(lookups)
               : 0.0;
  }
};

/// Runs one phase: submits every request to the pool, waits for the
/// batch, and deposits each point's testing time into `reference` —
/// first writer sets the expected value, later phases must agree.
PhaseStats run_phase(const std::string& name,
                     const std::vector<api::SolveRequest>& requests,
                     const api::Solver& solver, const api::ResultCache& cache,
                     common::ThreadPool& pool,
                     std::map<int, std::int64_t>& reference,
                     bool& deterministic) {
  obs::Histogram latency;
  // One slot per request, each task writes only its own index.
  std::vector<std::int64_t> testing_times(requests.size(), -1);
  common::CompletionLatch latch;

  const api::ResultCacheStats before = cache.stats();
  common::Stopwatch wall;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    pool.submit([&, i, queued = common::Stopwatch()] {
      try {
        const api::SolveResult result = solver.solve(requests[i]);
        if (result.has_outcome())
          testing_times[i] = result.outcome->testing_time;
        latency.record_ns(queued.elapsed_ns());
      } catch (...) {
        latch.record_error(std::current_exception());
      }
      latch.arrive();
    });
  }
  latch.wait(requests.size());

  PhaseStats stats;
  stats.name = name;
  stats.requests = requests.size();
  stats.wall_s = wall.elapsed_s();
  if (const std::exception_ptr error = latch.take_error())
    std::rethrow_exception(error);

  const api::ResultCacheStats after = cache.stats();
  stats.hits = static_cast<std::int64_t>(after.hits - before.hits);
  stats.misses = static_cast<std::int64_t>(after.misses - before.misses);
  stats.coalesced =
      static_cast<std::int64_t>(after.coalesced - before.coalesced);
  stats.latency = latency.merged();

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const int width = requests[i].width;
    if (testing_times[i] < 0) {
      std::cerr << "FATAL: " << name << " request " << requests[i].id
                << " produced no outcome\n";
      deterministic = false;
      continue;
    }
    const auto [it, inserted] = reference.emplace(width, testing_times[i]);
    if (!inserted && it->second != testing_times[i]) {
      std::cerr << "FATAL: " << name << " request " << requests[i].id
                << " returned " << testing_times[i] << " cycles; width "
                << width << " previously returned " << it->second << "\n";
      deterministic = false;
    }
  }
  return stats;
}

}  // namespace

int main() {
  const auto cache = std::make_shared<api::ResultCache>();
  // One solve worker per job, exactly like wtam_serve: concurrency comes
  // from the pool, duplicate suppression from the shared cache.
  const api::Solver solver(api::SolverOptions::with_threads(1, cache));
  common::ThreadPool pool(kWorkers);

  // Phase request mixes. The soak mirrors cmake/cli_checks.cmake: 34
  // rounds of the three points, interleaved, 102 requests total.
  std::vector<api::SolveRequest> cold;
  for (int width = 17; width <= 28; ++width)
    cold.push_back(make_request("cold-w" + std::to_string(width), width));

  std::vector<api::SolveRequest> soak;
  for (int round = 0; round < 34; ++round) {
    const std::string suffix = std::to_string(round);
    soak.push_back(make_request("x" + suffix, 12));
    soak.push_back(make_request("y" + suffix, 14));
    soak.push_back(make_request("z" + suffix, 16));
  }

  std::map<int, std::int64_t> reference;
  bool deterministic = true;
  std::vector<PhaseStats> phases;
  try {
    phases.push_back(run_phase("cold", cold, solver, *cache, pool, reference,
                               deterministic));
    phases.push_back(run_phase("soak", soak, solver, *cache, pool, reference,
                               deterministic));
    phases.push_back(run_phase("warm", soak, solver, *cache, pool, reference,
                               deterministic));
  } catch (const std::exception& e) {
    std::cerr << "FATAL: " << e.what() << "\n";
    return 1;
  }

  // --- human-readable table ------------------------------------------------
  common::TextTable table("serve soak (" + std::to_string(kWorkers) +
                          " workers, shared result cache)");
  table.set_header({"phase", "requests", "wall (s)", "req/s", "hit rate",
                    "p50 (ms)", "p90 (ms)", "p95 (ms)", "p99 (ms)",
                    "max (ms)"},
                   {common::Align::Left, common::Align::Right,
                    common::Align::Right, common::Align::Right,
                    common::Align::Right, common::Align::Right,
                    common::Align::Right, common::Align::Right,
                    common::Align::Right, common::Align::Right});
  const auto ms = [](double ns) { return ns / 1e6; };
  for (const auto& phase : phases)
    table.add_row({phase.name, std::to_string(phase.requests),
                   common::format_fixed(phase.wall_s, 3),
                   common::format_fixed(phase.throughput_rps(), 1),
                   common::format_fixed(phase.hit_rate() * 100.0, 1) + "%",
                   common::format_fixed(ms(phase.latency.quantile(0.5)), 3),
                   common::format_fixed(ms(phase.latency.quantile(0.9)), 3),
                   common::format_fixed(ms(phase.latency.quantile(0.95)), 3),
                   common::format_fixed(ms(phase.latency.quantile(0.99)), 3),
                   common::format_fixed(
                       ms(static_cast<double>(phase.latency.max)), 3)});
  std::cout << table << '\n';

  // --- machine-readable artifact -------------------------------------------
  bench::Json document = bench::Json::object();
  document.set("bench", bench::Json::string("serve"));
  document.set("hardware_threads",
               bench::Json::number(static_cast<std::int64_t>(
                   common::ThreadPool::hardware_threads())));
  document.set("workers",
               bench::Json::number(static_cast<std::int64_t>(kWorkers)));

  std::size_t total_requests = 0;
  double total_wall = 0.0;
  bench::Json phase_array = bench::Json::array();
  for (const auto& phase : phases) {
    total_requests += phase.requests;
    total_wall += phase.wall_s;
    bench::Json entry = bench::Json::object();
    entry.set("name", bench::Json::string(phase.name));
    entry.set("requests", bench::Json::number(
                              static_cast<std::int64_t>(phase.requests)));
    entry.set("wall_s", bench::Json::number(phase.wall_s));
    entry.set("throughput_rps", bench::Json::number(phase.throughput_rps()));
    entry.set("cache_hits", bench::Json::number(phase.hits));
    entry.set("cache_misses", bench::Json::number(phase.misses));
    entry.set("cache_coalesced", bench::Json::number(phase.coalesced));
    entry.set("hit_rate", bench::Json::number(phase.hit_rate()));
    bench::Json latency = bench::Json::object();
    latency.set("p50", bench::Json::number(phase.latency.quantile(0.5)));
    latency.set("p90", bench::Json::number(phase.latency.quantile(0.9)));
    latency.set("p95", bench::Json::number(phase.latency.quantile(0.95)));
    latency.set("p99", bench::Json::number(phase.latency.quantile(0.99)));
    latency.set("max", bench::Json::number(phase.latency.max));
    latency.set("mean", bench::Json::number(phase.latency.mean()));
    entry.set("latency_ns", std::move(latency));
    phase_array.push(std::move(entry));
  }
  document.set("phases", std::move(phase_array));

  bench::Json total = bench::Json::object();
  total.set("requests",
            bench::Json::number(static_cast<std::int64_t>(total_requests)));
  total.set("wall_s", bench::Json::number(total_wall));
  total.set("throughput_rps",
            bench::Json::number(total_wall > 0
                                    ? static_cast<double>(total_requests) /
                                          total_wall
                                    : 0.0));
  document.set("total", std::move(total));

  const std::string path = "BENCH_serve.json";
  bench::write_json_file(path, document);
  std::cout << "wrote " << path << "\n";

  if (!deterministic) {
    std::cerr << "FATAL: results diverged across phases (see above)\n";
    return 1;
  }
  return 0;
}
