// bench_serve — serve-session load generator. Drives the api::Solver the
// way tools/wtam_serve.cpp does (one job per request on a worker pool,
// every job sharing one memoizing ResultCache) and publishes throughput,
// cache hit rate, and tail-latency percentiles to BENCH_serve.json.
//
// Seven phases, extending the CI serve soak (cmake/cli_checks.cmake):
//   * cold — unique (soc, width) points: every request is a cache miss,
//     so this phase prices the raw solve path;
//   * soak — the 102-request mix (34 x {d695 w12/w14/w16 rectpack}): the
//     first request per point computes, concurrent duplicates coalesce
//     onto it, the rest hit — the steady-state serve workload;
//   * warm — the same 102 requests replayed against the hot cache: the
//     pure lookup path, the floor the server can promise;
//   * warm_boot — the cache is snapshotted to disk (api/cache_store),
//     loaded into a FRESH cache, and the cold sweep replayed against it:
//     every request must hit (100% — asserted) with testing times
//     byte-identical to the cold run, pricing the restart story;
//   * fleet — the distributed tier end-to-end: a wtam_router with two
//     wtam_serve workers (found next to this binary) first replays the
//     sweep (testing times must match the in-process reference), then
//     takes a 40-job unique-key burst against --queue-limit 4 — the
//     saturated fleet must SHED (status "overloaded", serve.router.shed
//     counted — both asserted) rather than stall: every burst job gets
//     an answer or this bench exits 1;
//   * pipe / tcp — the transport comparison: sequential request/response
//     round-trips of one cached point against a single wtam_serve worker,
//     first over its stdin/stdout pipes, then over a localhost socket
//     (--listen 127.0.0.1:0). After the priming solve every round is a
//     cache hit, so the percentiles price the transport itself — what a
//     multi-host deployment pays per hop relative to a local fleet.
//
// Per-request latency (submit -> result) feeds an obs::Histogram;
// p50/p90/p95/p99 come from its merged quantiles. Determinism is part of
// the contract: every result for the same point must report the same
// testing time in every phase — cache hits are byte-identical to the
// cold run — else this bench exits 1.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/cache_store.hpp"
#include "api/job_io.hpp"
#include "api/json_value.hpp"
#include "api/result_cache.hpp"
#include "api/solver.hpp"
#include "bench_util.hpp"
#include "common/subprocess.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "serve/worker_link.hpp"

namespace {

using namespace wtam;

/// Fixed worker count so the artifact is comparable across machines
/// (mirrors a small serve deployment; the box's hardware_threads is
/// recorded alongside).
constexpr int kWorkers = 4;

api::SolveRequest make_request(std::string id, int width) {
  api::SolveRequest request;
  request.id = std::move(id);
  request.soc = "d695";
  request.width = width;
  request.backend = "rectpack";
  return request;
}

struct PhaseStats {
  std::string name;
  std::size_t requests = 0;
  double wall_s = 0.0;
  std::int64_t hits = 0;       // cache lookup deltas over the phase
  std::int64_t misses = 0;
  std::int64_t coalesced = 0;
  obs::HistogramData latency;  // submit -> result, ns

  [[nodiscard]] double throughput_rps() const {
    return wall_s > 0 ? static_cast<double>(requests) / wall_s : 0.0;
  }
  /// Share of lookups served without running an engine (hit or
  /// coalesced onto an in-flight duplicate).
  [[nodiscard]] double hit_rate() const {
    const std::int64_t lookups = hits + misses + coalesced;
    return lookups > 0
               ? static_cast<double>(hits + coalesced) /
                     static_cast<double>(lookups)
               : 0.0;
  }
};

/// Runs one phase: submits every request to the pool, waits for the
/// batch, and deposits each point's testing time into `reference` —
/// first writer sets the expected value, later phases must agree.
PhaseStats run_phase(const std::string& name,
                     const std::vector<api::SolveRequest>& requests,
                     const api::Solver& solver, const api::ResultCache& cache,
                     common::ThreadPool& pool,
                     std::map<int, std::int64_t>& reference,
                     bool& deterministic) {
  obs::Histogram latency;
  // One slot per request, each task writes only its own index.
  std::vector<std::int64_t> testing_times(requests.size(), -1);
  common::CompletionLatch latch;

  const api::ResultCacheStats before = cache.stats();
  common::Stopwatch wall;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    pool.submit([&, i, queued = common::Stopwatch()] {
      try {
        const api::SolveResult result = solver.solve(requests[i]);
        if (result.has_outcome())
          testing_times[i] = result.outcome->testing_time;
        latency.record_ns(queued.elapsed_ns());
      } catch (...) {
        latch.record_error(std::current_exception());
      }
      latch.arrive();
    });
  }
  latch.wait(requests.size());

  PhaseStats stats;
  stats.name = name;
  stats.requests = requests.size();
  stats.wall_s = wall.elapsed_s();
  if (const std::exception_ptr error = latch.take_error())
    std::rethrow_exception(error);

  const api::ResultCacheStats after = cache.stats();
  stats.hits = static_cast<std::int64_t>(after.hits - before.hits);
  stats.misses = static_cast<std::int64_t>(after.misses - before.misses);
  stats.coalesced =
      static_cast<std::int64_t>(after.coalesced - before.coalesced);
  stats.latency = latency.merged();

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const int width = requests[i].width;
    if (testing_times[i] < 0) {
      std::cerr << "FATAL: " << name << " request " << requests[i].id
                << " produced no outcome\n";
      deterministic = false;
      continue;
    }
    const auto [it, inserted] = reference.emplace(width, testing_times[i]);
    if (!inserted && it->second != testing_times[i]) {
      std::cerr << "FATAL: " << name << " request " << requests[i].id
                << " returned " << testing_times[i] << " cycles; width "
                << width << " previously returned " << it->second << "\n";
      deterministic = false;
    }
  }
  return stats;
}

/// Everything the fleet phase measures beyond the common PhaseStats.
struct FleetOutcome {
  PhaseStats stats;
  std::int64_t ok_responses = 0;
  std::int64_t shed_responses = 0;
  std::int64_t router_shed_counter = 0;  // serve.router.shed from metrics
  std::int64_t respawns = 0;
  bool completed = false;  // every submitted job answered before timeout
};

/// Drives wtam_router (2 wtam_serve workers, --queue-limit 4) over its
/// NDJSON stdin/stdout: first the 12-width sweep (results must match
/// the in-process reference), then a 40-job unique-key burst that
/// saturates the fleet — the router must shed, not stall.
FleetOutcome run_fleet_phase(const std::string& bin_dir,
                             std::map<int, std::int64_t>& reference,
                             bool& deterministic) {
  FleetOutcome outcome;
  outcome.stats.name = "fleet";

  common::Subprocess router({bin_dir + "/wtam_router", "--workers", "2",
                             "--queue-limit", "4", "--serve",
                             bin_dir + "/wtam_serve", "--quiet"});

  common::Mutex mutex;
  // All three are only touched under `mutex` (reader thread + main).
  std::unordered_map<std::string, common::Stopwatch> pending;
  std::vector<api::JsonValue> responses;
  std::vector<api::JsonValue> op_acks;
  obs::Histogram latency;

  std::thread reader([&] {
    while (const std::optional<std::string> line = router.read_line()) {
      api::JsonValue value;
      try {
        value = api::JsonValue::parse(*line);
      } catch (const std::exception&) {
        continue;
      }
      const common::MutexLock lock(mutex);
      const api::JsonValue* id = value.find("id");
      if (id != nullptr && id->kind() == api::JsonValue::Kind::String) {
        if (const auto it = pending.find(id->as_string());
            it != pending.end()) {
          latency.record_ns(it->second.elapsed_ns());
          pending.erase(it);
        }
        responses.push_back(std::move(value));
      } else if (value.find("op") != nullptr) {
        op_acks.push_back(std::move(value));
      }
    }
  });

  const auto submit = [&](const api::SolveRequest& request) {
    const std::string line =
        api::job_to_json(request).dump_compact_string();
    {
      const common::MutexLock lock(mutex);
      pending.emplace(request.id, common::Stopwatch());
    }
    (void)router.write_line(line);
  };
  // Bounded wait: a fleet that stalls is exactly the failure this phase
  // exists to catch, so the timeout is an assertion, not a convenience.
  const auto wait_until = [&](const auto& done) {
    for (int i = 0; i < 36000; ++i) {
      {
        const common::MutexLock lock(mutex);
        if (done()) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  };

  common::Stopwatch wall;

  // Sweep: same 12 points as the cold phase; fresh worker caches, so
  // these are real solves routed by key — the reference ties the fleet
  // to the in-process results byte-for-byte (testing_time equality).
  for (int width = 17; width <= 28; ++width) {
    api::SolveRequest request = make_request("fleet-w" + std::to_string(width),
                                             width);
    submit(request);
  }
  if (!wait_until([&] { return responses.size() >= 12; })) {
    std::cerr << "FATAL: fleet sweep stalled (responses never arrived)\n";
    deterministic = false;
    return outcome;
  }

  // Saturation burst: unique keys (per-job rectpack seed) so nothing
  // caches; 40 near-simultaneous jobs against 2x queue-limit 4 must
  // drive the router into shedding.
  for (int i = 0; i < 40; ++i) {
    api::SolveRequest request =
        make_request("burst-" + std::to_string(i), 17 + (i % 12));
    request.options.rectpack.seed = 1000 + i;
    submit(request);
  }
  if (!wait_until(
          [&] { return responses.size() >= 52; })) {
    std::cerr << "FATAL: fleet burst stalled (shed or answer never came)\n";
    deterministic = false;
    return outcome;
  }
  outcome.completed = true;
  outcome.stats.requests = 52;

  // Scrape the fleet before shutdown: merged stats carry the router
  // section, merged metrics the serve.router.* counters.
  (void)router.write_line("{\"op\": \"stats\"}");
  (void)router.write_line("{\"op\": \"metrics\", \"drain\": true}");
  (void)router.write_line("{\"op\": \"shutdown\"}");
  if (!wait_until(
          [&] { return op_acks.size() >= 3; })) {
    std::cerr << "FATAL: fleet control verbs went unanswered\n";
    deterministic = false;
  }
  router.close_stdin();
  reader.join();
  (void)router.wait();
  outcome.stats.wall_s = wall.elapsed_s();
  outcome.stats.latency = latency.merged();

  const common::MutexLock lock(mutex);
  for (const api::JsonValue& response : responses) {
    const api::JsonValue* status = response.find("status");
    if (status == nullptr) continue;
    if (status->as_string() == "overloaded") {
      ++outcome.shed_responses;
      continue;
    }
    if (status->as_string() != "ok") {
      std::cerr << "FATAL: fleet job " << response.find("id")->as_string()
                << " came back " << status->as_string() << "\n";
      deterministic = false;
      continue;
    }
    ++outcome.ok_responses;
    // Sweep responses must agree with the in-process phases.
    const std::string& id = response.find("id")->as_string();
    if (id.rfind("fleet-w", 0) == 0) {
      const int width = static_cast<int>(response.find("width")->as_int());
      const std::int64_t testing_time =
          response.find("testing_time")->as_int();
      const auto [it, inserted] = reference.emplace(width, testing_time);
      if (!inserted && it->second != testing_time) {
        std::cerr << "FATAL: fleet width " << width << " returned "
                  << testing_time << " cycles; in-process reference is "
                  << it->second << "\n";
        deterministic = false;
      }
    }
  }
  for (const api::JsonValue& ack : op_acks) {
    const api::JsonValue* op = ack.find("op");
    if (op == nullptr) continue;
    if (op->as_string() == "stats") {
      if (const api::JsonValue* cache_section = ack.find("cache")) {
        outcome.stats.hits = cache_section->find("hits")->as_int();
        outcome.stats.misses = cache_section->find("misses")->as_int();
      }
      if (const api::JsonValue* router_section = ack.find("router"))
        outcome.respawns = router_section->find("respawns")->as_int();
    } else if (op->as_string() == "metrics") {
      if (const api::JsonValue* counters = ack.find("counters"))
        if (const api::JsonValue* shed = counters->find("serve.router.shed"))
          outcome.router_shed_counter = shed->as_int();
    }
  }
  return outcome;
}

/// Sequential request/response round-trips over one WorkerLink. A
/// priming solve warms the worker's cache first, so every measured
/// round is a hit and the histogram prices the transport itself
/// (framing, syscalls, wakeups), not the solver.
PhaseStats run_transport_phase(const std::string& name,
                               serve::WorkerLink& link,
                               std::map<int, std::int64_t>& reference,
                               bool& deterministic) {
  PhaseStats stats;
  stats.name = name;
  constexpr int kRounds = 200;
  const auto round_trip = [&](const std::string& id) {
    const api::SolveRequest request = make_request(id, 12);
    if (!link.write_line(api::job_to_json(request).dump_compact_string()))
      throw std::runtime_error(name + " worker rejected the request");
    const std::optional<std::string> line = link.read_line();
    if (!line) throw std::runtime_error(name + " worker hung up");
    return api::JsonValue::parse(*line);
  };
  (void)round_trip(name + "-prime");  // the only real solve

  obs::Histogram latency;
  common::Stopwatch wall;
  for (int i = 0; i < kRounds; ++i) {
    const common::Stopwatch rt;
    const api::JsonValue response = round_trip(name + "-" + std::to_string(i));
    latency.record_ns(rt.elapsed_ns());
    const api::JsonValue* status = response.find("status");
    if (status == nullptr || status->as_string() != "ok") {
      std::cerr << "FATAL: " << name << " round " << i
                << " came back without an ok result\n";
      deterministic = false;
      continue;
    }
    const api::JsonValue* cache_state = response.find("cache");
    if (cache_state != nullptr && cache_state->as_string() == "hit")
      ++stats.hits;
    else
      ++stats.misses;
    const std::int64_t testing_time = response.find("testing_time")->as_int();
    const auto [it, inserted] = reference.emplace(12, testing_time);
    if (!inserted && it->second != testing_time) {
      std::cerr << "FATAL: " << name << " round " << i << " returned "
                << testing_time << " cycles; reference is " << it->second
                << "\n";
      deterministic = false;
    }
  }
  stats.requests = kRounds;
  stats.wall_s = wall.elapsed_s();
  stats.latency = latency.merged();
  return stats;
}

}  // namespace

int main(int, char** argv) {
  const auto cache = std::make_shared<api::ResultCache>();
  // One solve worker per job, exactly like wtam_serve: concurrency comes
  // from the pool, duplicate suppression from the shared cache.
  const api::Solver solver(api::SolverOptions::with_threads(1, cache));
  common::ThreadPool pool(kWorkers);

  // Phase request mixes. The soak mirrors cmake/cli_checks.cmake: 34
  // rounds of the three points, interleaved, 102 requests total.
  std::vector<api::SolveRequest> cold;
  for (int width = 17; width <= 28; ++width)
    cold.push_back(make_request("cold-w" + std::to_string(width), width));

  std::vector<api::SolveRequest> soak;
  for (int round = 0; round < 34; ++round) {
    const std::string suffix = std::to_string(round);
    soak.push_back(make_request("x" + suffix, 12));
    soak.push_back(make_request("y" + suffix, 14));
    soak.push_back(make_request("z" + suffix, 16));
  }

  std::map<int, std::int64_t> reference;
  bool deterministic = true;
  std::vector<PhaseStats> phases;
  try {
    phases.push_back(run_phase("cold", cold, solver, *cache, pool, reference,
                               deterministic));
    phases.push_back(run_phase("soak", soak, solver, *cache, pool, reference,
                               deterministic));
    phases.push_back(run_phase("warm", soak, solver, *cache, pool, reference,
                               deterministic));
  } catch (const std::exception& e) {
    std::cerr << "FATAL: " << e.what() << "\n";
    return 1;
  }

  // --- warm-boot persistence phase -----------------------------------------
  // Snapshot to disk, load into a FRESH cache, replay the cold sweep:
  // the restart path must serve 100% hits, byte-identical to the cold
  // run (run_phase's reference check enforces the identity).
  const std::string snapshot_path = "BENCH_serve_cache.bin";
  try {
    (void)api::save_cache_file(*cache, snapshot_path);
    const auto booted = std::make_shared<api::ResultCache>();
    const api::CacheLoadStats loaded =
        api::load_cache_file(*booted, snapshot_path);
    const api::Solver booted_solver(
        api::SolverOptions::with_threads(1, booted));
    booted->reset_stats();
    std::vector<api::SolveRequest> replay = cold;
    for (std::size_t i = 0; i < replay.size(); ++i)
      replay[i].id = "boot-w" + std::to_string(replay[i].width);
    phases.push_back(run_phase("warm_boot", replay, booted_solver, *booted,
                               pool, reference, deterministic));
    const PhaseStats& boot = phases.back();
    if (!loaded.clean_tail || boot.misses != 0 ||
        boot.hits != static_cast<std::int64_t>(boot.requests)) {
      std::cerr << "FATAL: warm boot not fully warm (loaded "
                << loaded.entries_loaded << " entries, " << boot.hits << "/"
                << boot.requests << " hits, " << boot.misses << " misses)\n";
      deterministic = false;
    }
  } catch (const std::exception& e) {
    std::cerr << "FATAL: warm boot phase: " << e.what() << "\n";
    deterministic = false;
  }
  std::remove(snapshot_path.c_str());

  // --- distributed fleet phase ---------------------------------------------
  // wtam_router + 2 wtam_serve workers live next to this binary in the
  // build tree.
  const std::string self = argv[0];
  const std::size_t slash = self.find_last_of('/');
  const std::string bin_dir =
      slash == std::string::npos ? std::string(".") : self.substr(0, slash);
  FleetOutcome fleet;
  try {
    fleet = run_fleet_phase(bin_dir, reference, deterministic);
    phases.push_back(fleet.stats);
    if (!fleet.completed) deterministic = false;
    if (fleet.shed_responses == 0 || fleet.router_shed_counter == 0) {
      std::cerr << "FATAL: saturation burst never shed (responses "
                << fleet.shed_responses << ", serve.router.shed "
                << fleet.router_shed_counter << ")\n";
      deterministic = false;
    }
  } catch (const std::exception& e) {
    std::cerr << "FATAL: fleet phase: " << e.what() << "\n";
    deterministic = false;
  }

  // --- transport phases (pipe vs localhost TCP) ----------------------------
  // The same warm round-trip workload against one worker over each
  // transport; both must report the width-12 reference time, so the
  // comparison cannot silently measure different work.
  try {
    const std::unique_ptr<serve::WorkerLink> pipe_link =
        serve::make_worker_link(
            serve::WorkerSpec::local({bin_dir + "/wtam_serve", "--quiet"}));
    phases.push_back(
        run_transport_phase("pipe", *pipe_link, reference, deterministic));
    (void)pipe_link->write_line("{\"op\": \"shutdown\"}");
    (void)pipe_link->read_line();
    pipe_link->finish();
  } catch (const std::exception& e) {
    std::cerr << "FATAL: pipe transport phase: " << e.what() << "\n";
    deterministic = false;
  }
  try {
    const std::string port_file = "BENCH_serve_tcp.port";
    std::remove(port_file.c_str());
    common::Subprocess listener({bin_dir + "/wtam_serve", "--listen",
                                 "127.0.0.1:0", "--port-file", port_file,
                                 "--quiet"});
    std::string endpoint;
    for (int i = 0; i < 200 && endpoint.empty(); ++i) {
      std::ifstream in(port_file);
      std::getline(in, endpoint);
      if (endpoint.empty())
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    if (endpoint.empty())
      throw std::runtime_error("TCP worker never published its port");
    const std::unique_ptr<serve::WorkerLink> tcp_link =
        serve::make_worker_link(serve::WorkerSpec::connect(endpoint));
    phases.push_back(
        run_transport_phase("tcp", *tcp_link, reference, deterministic));
    // The shutdown verb stops the whole server, so the listener process
    // exits on its own and the wait() below reaps it.
    (void)tcp_link->write_line("{\"op\": \"shutdown\"}");
    (void)tcp_link->read_line();
    (void)listener.wait();
    std::remove(port_file.c_str());
  } catch (const std::exception& e) {
    std::cerr << "FATAL: tcp transport phase: " << e.what() << "\n";
    deterministic = false;
  }

  // --- human-readable table ------------------------------------------------
  common::TextTable table("serve soak (" + std::to_string(kWorkers) +
                          " workers, shared result cache)");
  table.set_header({"phase", "requests", "wall (s)", "req/s", "hit rate",
                    "p50 (ms)", "p90 (ms)", "p95 (ms)", "p99 (ms)",
                    "max (ms)"},
                   {common::Align::Left, common::Align::Right,
                    common::Align::Right, common::Align::Right,
                    common::Align::Right, common::Align::Right,
                    common::Align::Right, common::Align::Right,
                    common::Align::Right, common::Align::Right});
  const auto ms = [](double ns) { return ns / 1e6; };
  for (const auto& phase : phases)
    table.add_row({phase.name, std::to_string(phase.requests),
                   common::format_fixed(phase.wall_s, 3),
                   common::format_fixed(phase.throughput_rps(), 1),
                   common::format_fixed(phase.hit_rate() * 100.0, 1) + "%",
                   common::format_fixed(ms(phase.latency.quantile(0.5)), 3),
                   common::format_fixed(ms(phase.latency.quantile(0.9)), 3),
                   common::format_fixed(ms(phase.latency.quantile(0.95)), 3),
                   common::format_fixed(ms(phase.latency.quantile(0.99)), 3),
                   common::format_fixed(
                       ms(static_cast<double>(phase.latency.max)), 3)});
  std::cout << table << '\n';

  // --- machine-readable artifact -------------------------------------------
  bench::Json document = bench::Json::object();
  document.set("bench", bench::Json::string("serve"));
  document.set("hardware_threads",
               bench::Json::number(static_cast<std::int64_t>(
                   common::ThreadPool::hardware_threads())));
  document.set("workers",
               bench::Json::number(static_cast<std::int64_t>(kWorkers)));

  std::size_t total_requests = 0;
  double total_wall = 0.0;
  bench::Json phase_array = bench::Json::array();
  for (const auto& phase : phases) {
    total_requests += phase.requests;
    total_wall += phase.wall_s;
    bench::Json entry = bench::Json::object();
    entry.set("name", bench::Json::string(phase.name));
    entry.set("requests", bench::Json::number(
                              static_cast<std::int64_t>(phase.requests)));
    entry.set("wall_s", bench::Json::number(phase.wall_s));
    entry.set("throughput_rps", bench::Json::number(phase.throughput_rps()));
    entry.set("cache_hits", bench::Json::number(phase.hits));
    entry.set("cache_misses", bench::Json::number(phase.misses));
    entry.set("cache_coalesced", bench::Json::number(phase.coalesced));
    entry.set("hit_rate", bench::Json::number(phase.hit_rate()));
    if (phase.name == "fleet") {
      entry.set("ok_responses", bench::Json::number(fleet.ok_responses));
      entry.set("shed_responses", bench::Json::number(fleet.shed_responses));
      entry.set("router_shed_counter",
                bench::Json::number(fleet.router_shed_counter));
      entry.set("worker_respawns", bench::Json::number(fleet.respawns));
    }
    bench::Json latency = bench::Json::object();
    latency.set("p50", bench::Json::number(phase.latency.quantile(0.5)));
    latency.set("p90", bench::Json::number(phase.latency.quantile(0.9)));
    latency.set("p95", bench::Json::number(phase.latency.quantile(0.95)));
    latency.set("p99", bench::Json::number(phase.latency.quantile(0.99)));
    latency.set("max", bench::Json::number(phase.latency.max));
    latency.set("mean", bench::Json::number(phase.latency.mean()));
    entry.set("latency_ns", std::move(latency));
    phase_array.push(std::move(entry));
  }
  document.set("phases", std::move(phase_array));

  bench::Json total = bench::Json::object();
  total.set("requests",
            bench::Json::number(static_cast<std::int64_t>(total_requests)));
  total.set("wall_s", bench::Json::number(total_wall));
  total.set("throughput_rps",
            bench::Json::number(total_wall > 0
                                    ? static_cast<double>(total_requests) /
                                          total_wall
                                    : 0.0));
  document.set("total", std::move(total));

  const std::string path = "BENCH_serve.json";
  bench::write_json_file(path, document);
  std::cout << "wrote " << path << "\n";

  if (!deterministic) {
    std::cerr << "FATAL: results diverged across phases (see above)\n";
    return 1;
  }
  return 0;
}
