// Tables 9/10: SOC p31108, P_PAW with B = 2.

#include <iostream>

#include "bench_util.hpp"
#include "soc/benchmarks.hpp"

int main() {
  using namespace wtam;
  const soc::Soc soc = soc::p31108();
  const core::TestTimeTable table(soc, 64);

  std::cout << "=== Tables 9/10: p31108, B = 2 ===\n\n";
  bench::run_paw_comparison(table, {.soc_label = "p31108", .tams = 2});
  return 0;
}
