// Table 2 (a-d): SOC d695, problem P_PAW for B=2 and B=3 — the exhaustive
// method of [8] vs the new co-optimization flow.

#include <iostream>

#include "bench_util.hpp"
#include "soc/benchmarks.hpp"

int main() {
  using namespace wtam;
  const soc::Soc soc = soc::d695();
  const core::TestTimeTable table(soc, 64);

  std::cout << "=== Table 2(a)/(b): d695, B = 2 ===\n\n";
  bench::run_paw_comparison(
      table, {.soc_label = "d695", .tams = 2, .ilp_exhaustive = true});

  std::cout << "=== Table 2(c)/(d): d695, B = 3 ===\n\n";
  bench::run_paw_comparison(
      table, {.soc_label = "d695", .tams = 3, .ilp_exhaustive = true});
  return 0;
}
