// Tables 15/16: SOC p93791, P_PAW with B = 2.

#include <iostream>

#include "bench_util.hpp"
#include "soc/benchmarks.hpp"

int main() {
  using namespace wtam;
  const soc::Soc soc = soc::p93791();
  const core::TestTimeTable table(soc, 64);

  std::cout << "=== Tables 15/16: p93791, B = 2 ===\n\n";
  bench::run_paw_comparison(table, {.soc_label = "p93791", .tams = 2});
  return 0;
}
