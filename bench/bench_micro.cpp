// Micro benchmarks (google-benchmark) for the paper's CPU-time claims:
//   * Core_assign runs ~2 orders of magnitude faster than an exact solve
//     of the same P_AW instance (§2);
//   * Design_wrapper is cheap enough to evaluate thousands of times;
//   * partition enumeration is negligible next to evaluation.

#include <benchmark/benchmark.h>

#include "core/assignment_exact.hpp"
#include "core/co_optimizer.hpp"
#include "core/core_assign.hpp"
#include "core/test_time_table.hpp"
#include "lp/simplex.hpp"
#include "partition/partition.hpp"
#include "soc/benchmarks.hpp"
#include "wrapper/wrapper.hpp"

namespace {

using namespace wtam;

const soc::Soc& d695() {
  static const soc::Soc soc = soc::d695();
  return soc;
}
const soc::Soc& p93791() {
  static const soc::Soc soc = soc::p93791();
  return soc;
}
const core::TestTimeTable& d695_table() {
  static const core::TestTimeTable table(d695(), 64);
  return table;
}
const core::TestTimeTable& p93791_table() {
  static const core::TestTimeTable table(p93791(), 64);
  return table;
}

void BM_DesignWrapper(benchmark::State& state) {
  const auto& core = d695().cores[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    for (int w = 1; w <= 32; ++w)
      benchmark::DoNotOptimize(wrapper::design_wrapper(core, w).test_time);
  }
}
BENCHMARK(BM_DesignWrapper)->Arg(3)->Arg(4)->Arg(8);  // s9234, s38584, s35932

void BM_TestTimeTableBuild(benchmark::State& state) {
  for (auto _ : state) {
    core::TestTimeTable table(p93791(), static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(table.time(0, 1));
  }
}
BENCHMARK(BM_TestTimeTableBuild)->Arg(16)->Arg(64);

void BM_CoreAssign(benchmark::State& state) {
  const auto& table = state.range(0) == 0 ? d695_table() : p93791_table();
  const std::vector<int> widths = {9, 16, 23};
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::core_assign(table, widths).architecture.testing_time);
}
BENCHMARK(BM_CoreAssign)->Arg(0)->Arg(1);  // d695, p93791

void BM_ExactAssignBranchBound(benchmark::State& state) {
  const auto& table = state.range(0) == 0 ? d695_table() : p93791_table();
  const std::vector<int> widths = {9, 16, 23};
  for (auto _ : state)
    benchmark::DoNotOptimize(core::solve_assignment_exact(table, widths, {})
                                 .architecture.testing_time);
}
BENCHMARK(BM_ExactAssignBranchBound)->Arg(0)->Arg(1);

void BM_ExactAssignIlp(benchmark::State& state) {
  // The paper's lp_solve analogue: the full ILP model through our simplex
  // branch & bound (d695 only; the Philips instances take seconds each).
  const std::vector<int> widths = {6, 10};
  core::ExactOptions options;
  options.engine = core::ExactEngine::Ilp;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::solve_assignment_exact(d695_table(), widths, options)
            .architecture.testing_time);
}
BENCHMARK(BM_ExactAssignIlp);

void BM_PartitionEnumeration(benchmark::State& state) {
  const int width = 64;
  const int tams = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::uint64_t count = partition::for_each_partition(
        width, tams, [](std::span<const int>) { return true; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_PartitionEnumeration)->Arg(3)->Arg(6)->Arg(8);

void BM_PartitionEvaluate(benchmark::State& state) {
  const auto& table = d695_table();
  core::PartitionEvaluateOptions options;
  options.max_tams = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::partition_evaluate(table, 64, options).best.testing_time);
}
BENCHMARK(BM_PartitionEvaluate)->Arg(3)->Arg(6)->Arg(10);

void BM_FullCoOptimize(benchmark::State& state) {
  const auto& table = state.range(0) == 0 ? d695_table() : p93791_table();
  core::CoOptimizeOptions options;
  options.search.max_tams = 6;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::co_optimize(table, 48, options).architecture.testing_time);
}
BENCHMARK(BM_FullCoOptimize)->Arg(0)->Arg(1);

void BM_Simplex(benchmark::State& state) {
  // The LP relaxation of the d695 B=2 assignment model.
  const std::vector<int> widths = {6, 10};
  const ilp::Problem problem =
      core::build_assignment_ilp(d695_table(), widths);
  for (auto _ : state)
    benchmark::DoNotOptimize(lp::solve(problem.lp).objective);
}
BENCHMARK(BM_Simplex);

}  // namespace
