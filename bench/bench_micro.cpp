// Micro benchmarks for the paper's CPU-time claims, plus the serial-vs-
// parallel partition-search throughput that tracks the scaling work:
//   * Core_assign runs ~2 orders of magnitude faster than an exact solve
//     of the same P_AW instance (§2);
//   * Design_wrapper is cheap enough to evaluate thousands of times;
//   * partition enumeration is negligible next to evaluation;
//   * partition_evaluate at 1/2/4/8 threads returns bit-identical results
//     while the wall clock drops with available cores.
//
// Results are printed as a table and written to BENCH_micro.json so the
// performance trajectory is machine-readable across PRs.

#include <cstdint>
#include <iostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/assignment_exact.hpp"
#include "core/co_optimizer.hpp"
#include "core/core_assign.hpp"
#include "core/partition_evaluate.hpp"
#include "core/power.hpp"
#include "core/test_time_table.hpp"
#include "lp/simplex.hpp"
#include "obs/metrics.hpp"
#include "pack/skyline.hpp"
#include "partition/partition.hpp"
#include "soc/benchmarks.hpp"
#include "wrapper/wrapper.hpp"

namespace {

using namespace wtam;

struct Measurement {
  std::string name;
  std::int64_t iterations = 0;
  double seconds = 0.0;
  [[nodiscard]] double per_iteration_us() const {
    return iterations == 0 ? 0.0 : seconds / static_cast<double>(iterations) * 1e6;
  }
};

/// Runs `body` repeatedly until at least `min_seconds` of wall clock or
/// `min_iterations` calls, whichever bound is reached last.
template <typename Body>
Measurement measure(const std::string& name, const Body& body,
                    double min_seconds = 0.2,
                    std::int64_t min_iterations = 3) {
  Measurement result;
  result.name = name;
  common::Stopwatch watch;
  do {
    body();
    ++result.iterations;
    result.seconds = watch.elapsed_s();
  } while (result.seconds < min_seconds ||
           result.iterations < min_iterations);
  return result;
}

struct SearchSample {
  int threads = 0;
  double seconds = 0.0;
  double partitions_per_s = 0.0;
  double speedup_vs_serial = 1.0;
  bool identical_to_serial = true;
};

/// Serial-vs-parallel partition_evaluate on one SOC; verifies the
/// parallel contract (bit-identical best + per-B stats) while timing it.
struct SearchComparison {
  std::string soc;
  int width = 0;
  int max_tams = 0;
  std::uint64_t partitions = 0;
  std::int64_t best_time = 0;
  std::vector<SearchSample> samples;  // first entry is serial (threads=1)
};

bool same_results(const core::PartitionEvaluateResult& a,
                  const core::PartitionEvaluateResult& b) {
  if (a.best.widths != b.best.widths ||
      a.best.assignment != b.best.assignment ||
      a.best.testing_time != b.best.testing_time || a.best_tams != b.best_tams)
    return false;
  if (a.per_b.size() != b.per_b.size()) return false;
  for (std::size_t i = 0; i < a.per_b.size(); ++i) {
    const auto& sa = a.per_b[i];
    const auto& sb = b.per_b[i];
    if (sa.partitions_unique != sb.partitions_unique ||
        sa.evaluated_to_completion != sb.evaluated_to_completion ||
        sa.aborted_by_tau != sb.aborted_by_tau ||
        sa.best_time != sb.best_time ||
        sa.best_partition != sb.best_partition)
      return false;
  }
  return true;
}

SearchComparison compare_search(const std::string& soc_name,
                                const core::TestTimeTable& table, int width,
                                int max_tams) {
  SearchComparison comparison;
  comparison.soc = soc_name;
  comparison.width = width;
  comparison.max_tams = max_tams;

  core::PartitionEvaluateOptions options;
  options.max_tams = max_tams;

  const auto run = [&](int threads) {
    core::PartitionEvaluateOptions run_options = options;
    run_options.threads = threads;
    common::Stopwatch watch;
    const auto result = core::partition_evaluate(table, width, run_options);
    const double elapsed = watch.elapsed_s();
    return std::pair(result, elapsed);
  };

  const auto [serial, serial_s] = run(1);
  comparison.best_time = serial.best.testing_time;
  for (const auto& stats : serial.per_b)
    comparison.partitions += stats.partitions_unique;

  for (const int threads : {1, 2, 4, 8}) {
    const auto [result, elapsed] = threads == 1 ? std::pair(serial, serial_s)
                                                : run(threads);
    SearchSample sample;
    sample.threads = threads;
    sample.seconds = elapsed;
    sample.partitions_per_s =
        elapsed > 0 ? static_cast<double>(comparison.partitions) / elapsed
                    : 0.0;
    sample.speedup_vs_serial = elapsed > 0 ? serial_s / elapsed : 0.0;
    sample.identical_to_serial = same_results(serial, result);
    comparison.samples.push_back(sample);
  }
  return comparison;
}

}  // namespace

int main() {
  const soc::Soc d695 = soc::d695();
  const soc::Soc p93791 = soc::p93791();
  const core::TestTimeTable d695_table(d695, 64);
  const core::TestTimeTable p93791_table(p93791, 64);

  // --- kernel micro timings ------------------------------------------------
  std::vector<Measurement> measurements;

  measurements.push_back(measure("design_wrapper_d695_core4_w1to32", [&] {
    for (int w = 1; w <= 32; ++w)
      (void)wrapper::design_wrapper(d695.cores[4], w).test_time;
  }));

  measurements.push_back(measure("test_time_table_build_p93791_w64", [&] {
    core::TestTimeTable table(p93791, 64);
    (void)table.time(0, 1);
  }));

  const std::vector<int> kWidths916_23 = {9, 16, 23};
  measurements.push_back(measure("core_assign_d695_B3", [&] {
    (void)core::core_assign(d695_table, kWidths916_23).architecture
        .testing_time;
  }));
  measurements.push_back(measure("core_assign_p93791_B3", [&] {
    (void)core::core_assign(p93791_table, kWidths916_23).architecture
        .testing_time;
  }));

  measurements.push_back(measure("exact_assign_bb_d695_B3", [&] {
    (void)core::solve_assignment_exact(d695_table, kWidths916_23, {})
        .architecture.testing_time;
  }));

  const std::vector<int> kWidths6_10 = {6, 10};
  measurements.push_back(measure("exact_assign_ilp_d695_B2", [&] {
    core::ExactOptions options;
    options.engine = core::ExactEngine::Ilp;
    (void)core::solve_assignment_exact(d695_table, kWidths6_10, options)
        .architecture.testing_time;
  }));

  measurements.push_back(measure("partition_enumeration_w64_B6", [&] {
    (void)partition::for_each_partition(
        64, 6, [](std::span<const int>) { return true; });
  }));

  // The end-to-end two-step flow (Partition_evaluate + final exact solve),
  // so regressions in the orchestration glue stay visible in the trend.
  measurements.push_back(measure("co_optimize_d695_w48_B6", [&] {
    core::CoOptimizeOptions options;
    options.search.max_tams = 6;
    (void)core::co_optimize(d695_table, 48, options).architecture.testing_time;
  }));
  measurements.push_back(measure("co_optimize_p93791_w48_B6", [&] {
    core::CoOptimizeOptions options;
    options.search.max_tams = 6;
    (void)core::co_optimize(p93791_table, 48, options)
        .architecture.testing_time;
  }));

  measurements.push_back(measure("simplex_lp_relaxation_d695_B2", [&] {
    const ilp::Problem problem =
        core::build_assignment_ilp(d695_table, kWidths6_10);
    (void)lp::solve(problem.lp).objective;
  }));

  // The shared power-window feasibility kernel: the inner check of every
  // power-budgeted placement (skyline + hole filling), pinned so the
  // extraction into core/power stays as cheap as the packers' former
  // inlined loops. 64 spans ~ a large SOC's placement count; the probe
  // sweeps starts so both accept and reject paths are exercised.
  {
    std::vector<core::PowerSpan> power_spans;
    for (std::int64_t i = 0; i < 64; ++i)
      power_spans.push_back({i * 3, i * 3 + 40, 1 + (i % 7)});
    constexpr std::int64_t kWindowOps = 256;
    std::int64_t fits = 0;
    Measurement m = measure("power_window_fits_64spans", [&] {
      for (std::int64_t op = 0; op < kWindowOps; ++op)
        fits += core::power_window_fits(power_spans, op, 25, 3, 20) ? 1 : 0;
    });
    if (fits < 0) std::abort();  // keep the result observable
    m.iterations *= kWindowOps;
    measurements.push_back(m);
  }

  // The incremental power timeline that replaced per-query span rescans
  // on the constrained packing path (ISSUE-10). Two kernels: profile
  // maintenance (add over a long pack's worth of spans, then clear) and
  // the constrained spot search on a skyline seeded with ~1k placed
  // spans — the shape the d695/csynth power sweeps hammer.
  {
    core::PowerTimeline timeline;
    constexpr std::int64_t kTimelineSpans = 1024;
    Measurement m = measure("power_timeline_update_1kspans", [&] {
      timeline.clear();
      for (std::int64_t i = 0; i < kTimelineSpans; ++i)
        timeline.add((i * 37) % 4096, (i * 37) % 4096 + 64 + i % 96,
                     1 + i % 7);
      if (timeline.peak() <= 0) std::abort();  // keep the result observable
    });
    m.iterations *= kTimelineSpans;
    measurements.push_back(m);
  }
  {
    pack::Skyline skyline(64);
    std::int64_t budget = 0;
    for (std::int64_t i = 0; i < 1024; ++i) {
      const int wire = static_cast<int>((i * 11) % 56);
      const std::int64_t start = skyline.free_time(wire);
      const std::int64_t power = 1 + i % 7;
      skyline.place(wire, 8, start, start + 48 + i % 64, power);
      budget = std::max(budget, power);
    }
    budget += 6;  // headroom for the probe draw, still often contended
    pack::Skyline::SpotQuery query;
    query.width = 8;
    query.duration = 96;
    query.power = 4;
    query.power_budget = budget;
    constexpr std::int64_t kSpotOps = 64;
    std::int64_t starts = 0;
    Measurement m = measure("constrained_best_spot_1kspans", [&] {
      for (std::int64_t op = 0; op < kSpotOps; ++op) {
        query.min_start = op * 17;
        const auto spot = skyline.best_spot(query);
        if (!spot.has_value()) std::abort();
        starts += spot->start;
      }
    });
    if (starts < 0) std::abort();  // keep the result observable
    m.iterations *= kSpotOps;
    measurements.push_back(m);
  }

  // Observability overhead: the price a hot path pays to bump a counter
  // or record a histogram sample (sharded slot, one uncontended mutex
  // acquire). Bodies run kObsOps operations per call so the per-call
  // column reads as per-operation cost — the instrumented solver paths
  // budget low double-digit nanoseconds here.
  constexpr std::int64_t kObsOps = 4096;
  obs::MetricsRegistry obs_registry;  // local, not the process instance
  obs::Counter& obs_counter = obs_registry.counter("bench.counter");
  obs::Histogram& obs_histogram = obs_registry.histogram("bench.histogram");
  {
    Measurement m = measure("metrics_counter_increment", [&] {
      for (std::int64_t op = 0; op < kObsOps; ++op) obs_counter.increment();
    });
    m.iterations *= kObsOps;
    measurements.push_back(m);
  }
  {
    Measurement m = measure("metrics_histogram_record", [&] {
      for (std::int64_t op = 0; op < kObsOps; ++op) obs_histogram.record(op);
    });
    m.iterations *= kObsOps;
    measurements.push_back(m);
  }

  common::TextTable micro_table("Micro benchmarks (per-call wall clock)");
  micro_table.set_header({"benchmark", "iterations", "total (s)", "per call (us)"},
                         {common::Align::Left, common::Align::Right,
                          common::Align::Right, common::Align::Right});
  for (const auto& m : measurements)
    micro_table.add_row({m.name, std::to_string(m.iterations),
                         common::format_fixed(m.seconds, 3),
                         common::format_fixed(m.per_iteration_us(), 2)});
  std::cout << micro_table << '\n';

  // --- serial vs parallel partition search ---------------------------------
  const std::vector<SearchComparison> comparisons = {
      compare_search("d695", d695_table, 64, 6),
      compare_search("p93791", p93791_table, 64, 6),
  };

  for (const auto& comparison : comparisons) {
    common::TextTable table("partition_evaluate scaling on " + comparison.soc +
                            " (W=" + std::to_string(comparison.width) +
                            ", B<=" + std::to_string(comparison.max_tams) +
                            ", " + std::to_string(comparison.partitions) +
                            " partitions)");
    table.set_header(
        {"threads", "wall (s)", "partitions/s", "speedup", "identical"},
        {common::Align::Right, common::Align::Right, common::Align::Right,
         common::Align::Right, common::Align::Right});
    for (const auto& sample : comparison.samples)
      table.add_row({std::to_string(sample.threads),
                     common::format_fixed(sample.seconds, 3),
                     common::format_fixed(sample.partitions_per_s, 0),
                     common::format_fixed(sample.speedup_vs_serial, 2) + "x",
                     sample.identical_to_serial ? "yes" : "NO"});
    std::cout << table << '\n';
  }

  // --- machine-readable artifact -------------------------------------------
  bench::Json document = bench::Json::object();
  document.set("bench", bench::Json::string("micro"));
  document.set("hardware_threads",
               bench::Json::number(static_cast<std::int64_t>(
                   common::ThreadPool::hardware_threads())));

  bench::Json kernels = bench::Json::array();
  for (const auto& m : measurements) {
    bench::Json entry = bench::Json::object();
    entry.set("name", bench::Json::string(m.name));
    entry.set("iterations", bench::Json::number(m.iterations));
    entry.set("total_s", bench::Json::number(m.seconds));
    entry.set("per_call_us", bench::Json::number(m.per_iteration_us()));
    kernels.push(std::move(entry));
  }
  document.set("kernels", std::move(kernels));

  bench::Json searches = bench::Json::array();
  for (const auto& comparison : comparisons) {
    bench::Json entry = bench::Json::object();
    entry.set("soc", bench::Json::string(comparison.soc));
    entry.set("width", bench::Json::number(
                           static_cast<std::int64_t>(comparison.width)));
    entry.set("max_tams", bench::Json::number(
                              static_cast<std::int64_t>(comparison.max_tams)));
    entry.set("partitions",
              bench::Json::number(
                  static_cast<std::int64_t>(comparison.partitions)));
    entry.set("best_testing_time", bench::Json::number(comparison.best_time));
    bench::Json samples = bench::Json::array();
    for (const auto& sample : comparison.samples) {
      bench::Json row = bench::Json::object();
      row.set("threads", bench::Json::number(
                             static_cast<std::int64_t>(sample.threads)));
      row.set("wall_s", bench::Json::number(sample.seconds));
      row.set("partitions_per_s", bench::Json::number(sample.partitions_per_s));
      row.set("speedup_vs_serial",
              bench::Json::number(sample.speedup_vs_serial));
      row.set("identical_to_serial",
              bench::Json::boolean(sample.identical_to_serial));
      samples.push(std::move(row));
    }
    entry.set("samples", std::move(samples));
    searches.push(std::move(entry));
  }
  document.set("partition_search", std::move(searches));

  const std::string path = "BENCH_micro.json";
  bench::write_json_file(path, document);
  std::cout << "wrote " << path << "\n";

  // Parallel correctness is part of this bench's contract: fail loudly if
  // any thread count diverged from serial.
  for (const auto& comparison : comparisons)
    for (const auto& sample : comparison.samples)
      if (!sample.identical_to_serial) {
        std::cerr << "FATAL: parallel result diverged from serial on "
                  << comparison.soc << " with " << sample.threads
                  << " threads\n";
        return 1;
      }
  return 0;
}
