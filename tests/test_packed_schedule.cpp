#include <gtest/gtest.h>

#include <algorithm>

#include "core/co_optimizer.hpp"
#include "core/test_time_table.hpp"
#include "pack/packed_schedule.hpp"
#include "soc/benchmarks.hpp"

namespace wtam::pack {
namespace {

/// A tiny hand-valid schedule on d695 at W=8: every core full-width,
/// strictly sequential (one placement at a time can never overlap).
PackedSchedule sequential_schedule(const core::TestTimeTable& table,
                                   int width) {
  PackedSchedule schedule;
  schedule.total_width = width;
  std::int64_t clock = 0;
  for (int i = 0; i < table.core_count(); ++i) {
    const std::int64_t duration = table.time(i, width);
    schedule.placements.push_back({i, width, 0, clock, clock + duration});
    clock += duration;
  }
  schedule.makespan = clock;
  return schedule;
}

TEST(PackedSchedule, SequentialScheduleValidates) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 8);
  const auto schedule = sequential_schedule(table, 8);
  EXPECT_TRUE(validate_packed_schedule(table, schedule).empty());
  EXPECT_NO_THROW(require_valid(table, schedule));
  EXPECT_NEAR(strip_utilization(schedule), 1.0, 1e-12);
}

TEST(PackedSchedule, ValidatorCatchesEveryCorruption) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 8);
  const auto good = sequential_schedule(table, 8);

  {  // overlap in wires and time
    auto bad = good;
    bad.placements[1].start = bad.placements[0].start;
    bad.placements[1].end =
        bad.placements[1].start + table.time(1, bad.placements[1].width);
    const auto issues = validate_packed_schedule(table, bad);
    EXPECT_TRUE(std::any_of(issues.begin(), issues.end(), [](const auto& m) {
      return m.find("overlap") != std::string::npos;
    })) << "issues: " << issues.size();
  }
  {  // wire interval escaping the strip
    auto bad = good;
    bad.placements[0].wire = 1;
    EXPECT_FALSE(validate_packed_schedule(table, bad).empty());
  }
  {  // dishonest duration
    auto bad = good;
    bad.placements[0].end -= 1;
    EXPECT_FALSE(validate_packed_schedule(table, bad).empty());
  }
  {  // missing core / duplicated core
    auto bad = good;
    bad.placements[0].core = bad.placements[1].core;
    const auto issues = validate_packed_schedule(table, bad);
    EXPECT_TRUE(std::any_of(issues.begin(), issues.end(), [](const auto& m) {
      return m.find("never placed") != std::string::npos;
    }));
    EXPECT_TRUE(std::any_of(issues.begin(), issues.end(), [](const auto& m) {
      return m.find("placed 2 times") != std::string::npos;
    }));
  }
  {  // lying makespan
    auto bad = good;
    bad.makespan -= 1;
    EXPECT_FALSE(validate_packed_schedule(table, bad).empty());
  }
  {  // width outside the table's range
    auto bad = good;
    bad.total_width = 9;
    EXPECT_FALSE(validate_packed_schedule(table, bad).empty());
    EXPECT_THROW(require_valid(table, bad), std::runtime_error);
  }
  {  // placement width beyond the table's range must not throw
    auto bad = good;
    bad.placements[0].width = 300;
    const auto issues = validate_packed_schedule(table, bad);
    EXPECT_TRUE(std::any_of(issues.begin(), issues.end(), [](const auto& m) {
      return m.find("width outside the table's range") != std::string::npos;
    }));
  }
}

TEST(PackedSchedule, FromArchitectureMatchesTestBusSemantics) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 24);
  const auto arch = core::co_optimize(table, 24, {}).architecture;
  const auto schedule = from_architecture(table, arch);

  EXPECT_TRUE(validate_packed_schedule(table, schedule).empty());
  EXPECT_EQ(schedule.makespan, arch.testing_time);
  EXPECT_EQ(schedule.total_width, 24);
  ASSERT_EQ(static_cast<int>(schedule.placements.size()), table.core_count());

  // Every placement sits inside its TAM's static wire lane at the TAM's
  // width.
  std::vector<int> lane_start(arch.widths.size(), 0);
  for (std::size_t t = 1; t < arch.widths.size(); ++t)
    lane_start[t] = lane_start[t - 1] + arch.widths[t - 1];
  for (const auto& p : schedule.placements) {
    const int tam = arch.assignment[static_cast<std::size_t>(p.core)];
    EXPECT_EQ(p.width, arch.widths[static_cast<std::size_t>(tam)]);
    EXPECT_EQ(p.wire, lane_start[static_cast<std::size_t>(tam)]);
  }
}

TEST(PackedSchedule, GanttRendersAndCollapsesWireRuns) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 8);
  const auto schedule = sequential_schedule(table, 8);
  const std::string gantt =
      render_packed_gantt(schedule, soc::d695(), 40);
  // All 8 wires carry the same sequence, so they collapse to one row.
  EXPECT_NE(gantt.find("wires 1-8"), std::string::npos);
  EXPECT_NE(gantt.find("legend:"), std::string::npos);
  EXPECT_NE(gantt.find("makespan"), std::string::npos);

  PackedSchedule empty;
  empty.total_width = 8;
  EXPECT_EQ(render_packed_gantt(empty, soc::d695(), 40), "(empty schedule)\n");
}

}  // namespace
}  // namespace wtam::pack
