#include <gtest/gtest.h>

#include <algorithm>

#include "core/co_optimizer.hpp"
#include "core/test_time_table.hpp"
#include "pack/packed_schedule.hpp"
#include "soc/benchmarks.hpp"

namespace wtam::pack {
namespace {

/// A tiny hand-valid schedule on d695 at W=8: every core full-width,
/// strictly sequential (one placement at a time can never overlap).
PackedSchedule sequential_schedule(const core::TestTimeTable& table,
                                   int width) {
  PackedSchedule schedule;
  schedule.total_width = width;
  std::int64_t clock = 0;
  for (int i = 0; i < table.core_count(); ++i) {
    const std::int64_t duration = table.time(i, width);
    schedule.placements.push_back({i, width, 0, clock, clock + duration});
    clock += duration;
  }
  schedule.makespan = clock;
  return schedule;
}

TEST(PackedSchedule, SequentialScheduleValidates) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 8);
  const auto schedule = sequential_schedule(table, 8);
  EXPECT_TRUE(validate_packed_schedule(table, schedule).empty());
  EXPECT_NO_THROW(require_valid(table, schedule));
  EXPECT_NEAR(strip_utilization(schedule), 1.0, 1e-12);
}

TEST(PackedSchedule, ValidatorCatchesEveryCorruption) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 8);
  const auto good = sequential_schedule(table, 8);

  {  // overlap in wires and time
    auto bad = good;
    bad.placements[1].start = bad.placements[0].start;
    bad.placements[1].end =
        bad.placements[1].start + table.time(1, bad.placements[1].width);
    const auto issues = validate_packed_schedule(table, bad);
    EXPECT_TRUE(std::any_of(issues.begin(), issues.end(), [](const auto& m) {
      return m.find("overlap") != std::string::npos;
    })) << "issues: " << issues.size();
  }
  {  // wire interval escaping the strip
    auto bad = good;
    bad.placements[0].wire = 1;
    EXPECT_FALSE(validate_packed_schedule(table, bad).empty());
  }
  {  // dishonest duration
    auto bad = good;
    bad.placements[0].end -= 1;
    EXPECT_FALSE(validate_packed_schedule(table, bad).empty());
  }
  {  // missing core / duplicated core
    auto bad = good;
    bad.placements[0].core = bad.placements[1].core;
    const auto issues = validate_packed_schedule(table, bad);
    EXPECT_TRUE(std::any_of(issues.begin(), issues.end(), [](const auto& m) {
      return m.find("never placed") != std::string::npos;
    }));
    EXPECT_TRUE(std::any_of(issues.begin(), issues.end(), [](const auto& m) {
      return m.find("placed 2 times") != std::string::npos;
    }));
  }
  {  // lying makespan
    auto bad = good;
    bad.makespan -= 1;
    EXPECT_FALSE(validate_packed_schedule(table, bad).empty());
  }
  {  // width outside the table's range
    auto bad = good;
    bad.total_width = 9;
    EXPECT_FALSE(validate_packed_schedule(table, bad).empty());
    EXPECT_THROW(require_valid(table, bad), std::runtime_error);
  }
  {  // placement width beyond the table's range must not throw
    auto bad = good;
    bad.placements[0].width = 300;
    const auto issues = validate_packed_schedule(table, bad);
    EXPECT_TRUE(std::any_of(issues.begin(), issues.end(), [](const auto& m) {
      return m.find("width outside the table's range") != std::string::npos;
    }));
  }
}

TEST(PackedSchedule, FromArchitectureMatchesTestBusSemantics) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 24);
  const auto arch = core::co_optimize(table, 24, {}).architecture;
  const auto schedule = from_architecture(table, arch);

  EXPECT_TRUE(validate_packed_schedule(table, schedule).empty());
  EXPECT_EQ(schedule.makespan, arch.testing_time);
  EXPECT_EQ(schedule.total_width, 24);
  ASSERT_EQ(static_cast<int>(schedule.placements.size()), table.core_count());

  // Every placement sits inside its TAM's static wire lane at the TAM's
  // width.
  std::vector<int> lane_start(arch.widths.size(), 0);
  for (std::size_t t = 1; t < arch.widths.size(); ++t)
    lane_start[t] = lane_start[t - 1] + arch.widths[t - 1];
  for (const auto& p : schedule.placements) {
    const int tam = arch.assignment[static_cast<std::size_t>(p.core)];
    EXPECT_EQ(p.width, arch.widths[static_cast<std::size_t>(tam)]);
    EXPECT_EQ(p.wire, lane_start[static_cast<std::size_t>(tam)]);
  }
}

TEST(PackedSchedule, FromScheduleLowersPowerDelayedTestBusSchedules) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 24);
  const auto arch = core::co_optimize(table, 24, {}).architecture;
  const core::TestSchedule base = core::build_schedule(table, arch);
  const auto packed = from_schedule(arch, base);
  // With no delays the lowering agrees with from_architecture.
  const auto reference = from_architecture(table, arch);
  ASSERT_EQ(packed.placements.size(), reference.placements.size());
  EXPECT_EQ(packed.makespan, reference.makespan);
  EXPECT_TRUE(validate_packed_schedule(table, packed).empty());

  core::TestSchedule bad = base;
  bad.entries.front().tam = arch.tam_count();
  EXPECT_THROW((void)from_schedule(arch, bad), std::invalid_argument);
}

TEST(PackedSchedule, ConstraintValidatorCorruptionMatrix) {
  // A valid constrained schedule; corrupting any single constraint class
  // must flip the validator's verdict to invalid, with a violation
  // message naming that class. (Acceptance: ISSUE 5.)
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 8);
  const auto good = sequential_schedule(table, 8);  // one core at a time

  // A constraint set the sequential schedule satisfies (full-width
  // placements touch every wire, so no forbidden interval can hold).
  core::ScheduleConstraints constraints;
  constraints.power.assign(static_cast<std::size_t>(table.core_count()), 7);
  constraints.power_budget = 7;  // sequential = exactly one core running
  constraints.precedence = {{0, 1}, {1, 2}};
  constraints.fixed = {{3, {0, 8}}};
  constraints.earliest = {{0, 0}};
  ASSERT_TRUE(
      validate_packed_schedule(table, good, constraints).empty());
  // Empty constraints reduce to the geometric validator exactly.
  ASSERT_TRUE(
      validate_packed_schedule(table, good, core::ScheduleConstraints{})
          .empty());

  const auto first_issue_containing =
      [&](const core::ScheduleConstraints& corrupted, const char* needle) {
        const auto issues =
            validate_packed_schedule(table, good, corrupted);
        return std::any_of(issues.begin(), issues.end(),
                           [&](const std::string& issue) {
                             return issue.find(needle) != std::string::npos;
                           });
      };

  {  // power: tighten the budget below the (sequential) peak
    auto corrupted = constraints;
    corrupted.power_budget = 6;
    EXPECT_TRUE(first_issue_containing(corrupted, "exceeds the budget"));
  }
  {  // precedence: demand the reverse order of two sequential cores
    auto corrupted = constraints;
    corrupted.precedence.push_back({2, 1});
    EXPECT_TRUE(first_issue_containing(corrupted, "precedence"));
  }
  {  // fixed: shrink core 3's window below its full-width placement
    auto corrupted = constraints;
    corrupted.fixed = {{3, {0, 4}}};
    EXPECT_TRUE(first_issue_containing(corrupted, "fixed interval"));
  }
  {  // forbidden: outlaw a wire every full-width placement touches
    auto corrupted = constraints;
    corrupted.forbidden = {{4, {7, 8}}};
    EXPECT_TRUE(first_issue_containing(corrupted, "forbidden interval"));
  }
  {  // earliest_start: core 0 starts at 0, demand 1
    auto corrupted = constraints;
    corrupted.earliest = {{0, 1}};
    EXPECT_TRUE(first_issue_containing(corrupted, "earliest_start"));
  }
  {  // malformed constraints can never validate a schedule
    auto corrupted = constraints;
    corrupted.precedence.push_back({1, 0});  // closes a cycle
    EXPECT_TRUE(first_issue_containing(corrupted, "cycle"));
  }
  {  // an unknown core index is reported, never thrown, even with power
    auto bad = good;
    bad.placements[0].core = table.core_count();
    std::vector<std::string> issues;
    EXPECT_NO_THROW(issues =
                        validate_packed_schedule(table, bad, constraints));
    EXPECT_TRUE(std::any_of(issues.begin(), issues.end(),
                            [](const std::string& issue) {
                              return issue.find("unknown core") !=
                                     std::string::npos;
                            }));
  }
}

TEST(PackedSchedule, PackedPeakPowerSweepsExactly) {
  PackedSchedule schedule;
  schedule.total_width = 4;
  schedule.placements = {{0, 2, 0, 0, 10},   // power 5 over [0,10)
                         {1, 2, 2, 5, 15},   // power 3 over [5,15)
                         {2, 4, 0, 20, 30}};  // power 9 over [20,30)
  schedule.makespan = 30;
  const core::PowerVector power = {5, 3, 9};
  EXPECT_EQ(packed_peak_power(schedule, power), 9);  // overlap 8, solo 9
  EXPECT_EQ(packed_peak_power(PackedSchedule{}, power), 0);
  const core::PowerVector short_power = {5};
  EXPECT_THROW((void)packed_peak_power(schedule, short_power),
               std::invalid_argument);
}

TEST(PackedSchedule, GanttRendersAndCollapsesWireRuns) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 8);
  const auto schedule = sequential_schedule(table, 8);
  const std::string gantt =
      render_packed_gantt(schedule, soc::d695(), 40);
  // All 8 wires carry the same sequence, so they collapse to one row.
  EXPECT_NE(gantt.find("wires 1-8"), std::string::npos);
  EXPECT_NE(gantt.find("legend:"), std::string::npos);
  EXPECT_NE(gantt.find("makespan"), std::string::npos);

  PackedSchedule empty;
  empty.total_width = 8;
  EXPECT_EQ(render_packed_gantt(empty, soc::d695(), 40), "(empty schedule)\n");
}

}  // namespace
}  // namespace wtam::pack
