// Golden pins for the two optimizer backends on d695 (the paper's public
// benchmark). Both engines are fully deterministic, so exact testing
// times are pinned; a change here means the optimizer's behavior changed
// and the numbers must be re-justified, not silently re-recorded.

#include <gtest/gtest.h>

#include "core/backend.hpp"
#include "core/test_time_table.hpp"
#include "pack/packed_schedule.hpp"
#include "soc/benchmarks.hpp"

namespace wtam::core {
namespace {

struct GoldenCase {
  int width;
  std::int64_t enumerative;
  std::int64_t rectpack;
};

// ISSUE 2 acceptance: rectpack within 5% of enumerative (or better) on
// d695 at W=32 and W=64.
constexpr GoldenCase kGolden[] = {
    {32, 21566, 22270},
    {64, 11035, 11050},
};

TEST(GoldenBackends, D695TestingTimesArePinned) {
  const soc::Soc soc = soc::d695();
  for (const auto& golden : kGolden) {
    const TestTimeTable table(soc, golden.width);
    const auto enumerative = run_backend("enumerative", table, golden.width);
    const auto rectpack = run_backend("rectpack", table, golden.width);

    EXPECT_EQ(enumerative.testing_time, golden.enumerative)
        << "W=" << golden.width;
    EXPECT_EQ(rectpack.testing_time, golden.rectpack) << "W=" << golden.width;

    // Both schedules are geometry-clean.
    EXPECT_TRUE(
        pack::validate_packed_schedule(table, enumerative.schedule).empty());
    EXPECT_TRUE(
        pack::validate_packed_schedule(table, rectpack.schedule).empty());

    // The acceptance margin, asserted from the live numbers rather than
    // the pins so a future better rectpack cannot rot this check.
    EXPECT_LE(static_cast<double>(rectpack.testing_time),
              static_cast<double>(enumerative.testing_time) * 1.05)
        << "W=" << golden.width;
  }
}

}  // namespace
}  // namespace wtam::core
