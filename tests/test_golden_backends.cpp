// Golden pins for the two optimizer backends on d695 (the paper's public
// benchmark). Both engines are fully deterministic, so exact testing
// times are pinned; a change here means the optimizer's behavior changed
// and the numbers must be re-justified, not silently re-recorded.
//
// Runs through the public api::Solver (the one entry point since
// run_backend was removed), which also pins that the Solver layer adds
// nothing to and subtracts nothing from the engines' numbers.

#include <gtest/gtest.h>

#include "api/solver.hpp"
#include "soc/benchmarks.hpp"

namespace wtam::api {
namespace {

struct GoldenCase {
  int width;
  std::int64_t enumerative;
  std::int64_t rectpack;
};

// ISSUE 2 acceptance: rectpack within 5% of enumerative (or better) on
// d695 at W=32 and W=64.
constexpr GoldenCase kGolden[] = {
    {32, 21566, 22270},
    {64, 11035, 11050},
};

TEST(GoldenBackends, D695TestingTimesArePinned) {
  for (const auto& golden : kGolden) {
    const auto solve = [&](const std::string& backend) {
      SolveRequest request;
      request.soc = "d695";
      request.width = golden.width;
      request.backend = backend;
      return Solver().solve(request);
    };
    const SolveResult enumerative = solve("enumerative");
    const SolveResult rectpack = solve("rectpack");
    ASSERT_EQ(enumerative.status, Status::Ok) << "W=" << golden.width;
    ASSERT_EQ(rectpack.status, Status::Ok) << "W=" << golden.width;
    ASSERT_TRUE(enumerative.has_outcome());
    ASSERT_TRUE(rectpack.has_outcome());

    EXPECT_EQ(enumerative.outcome->testing_time, golden.enumerative)
        << "W=" << golden.width;
    EXPECT_EQ(rectpack.outcome->testing_time, golden.rectpack)
        << "W=" << golden.width;

    // Both schedules are geometry-clean (the Solver runs the strict
    // validator on every outcome).
    EXPECT_TRUE(enumerative.schedule_valid) << "W=" << golden.width;
    EXPECT_TRUE(rectpack.schedule_valid) << "W=" << golden.width;

    // The acceptance margin, asserted from the live numbers rather than
    // the pins so a future better rectpack cannot rot this check.
    EXPECT_LE(static_cast<double>(rectpack.outcome->testing_time),
              static_cast<double>(enumerative.outcome->testing_time) * 1.05)
        << "W=" << golden.width;
  }
}

}  // namespace
}  // namespace wtam::api
