#include <gtest/gtest.h>

#include "core/core_assign.hpp"
#include "core/partition_evaluate.hpp"
#include "core/test_time_table.hpp"
#include "partition/partition.hpp"
#include "soc/benchmarks.hpp"

namespace wtam::core {
namespace {

TEST(PartitionEvaluate, StatsPartitionCountsMatchTheory) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 24);
  PartitionEvaluateOptions options;
  options.min_tams = 1;
  options.max_tams = 4;
  const auto result = partition_evaluate(table, 24, options);
  ASSERT_EQ(result.per_b.size(), 4u);
  for (const auto& stats : result.per_b) {
    EXPECT_EQ(stats.partitions_unique,
              partition::count_exact(24, stats.tams));
    EXPECT_EQ(stats.evaluated_to_completion + stats.aborted_by_tau,
              stats.partitions_unique);
  }
}

TEST(PartitionEvaluate, TauPruningSkipsMostPartitions) {
  // The paper's Table-1 claim: only a small fraction of partitions is
  // evaluated to completion.
  const soc::Soc soc = soc::p21241();
  const TestTimeTable table(soc, 40);
  PartitionEvaluateOptions options;
  options.min_tams = 5;
  options.max_tams = 5;
  const auto result = partition_evaluate(table, 40, options);
  const auto& stats = result.per_b.front();
  EXPECT_GT(stats.aborted_by_tau, stats.evaluated_to_completion);
}

TEST(PartitionEvaluate, PruningDoesNotChangeTheResult) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 32);
  PartitionEvaluateOptions pruned;
  pruned.max_tams = 4;
  PartitionEvaluateOptions unpruned = pruned;
  unpruned.prune_with_tau = false;
  const auto a = partition_evaluate(table, 32, pruned);
  const auto b = partition_evaluate(table, 32, unpruned);
  EXPECT_EQ(a.best.testing_time, b.best.testing_time);
  EXPECT_EQ(a.best.widths, b.best.widths);
  EXPECT_EQ(a.best_tams, b.best_tams);
}

TEST(PartitionEvaluate, BestIsMinimumOverEvaluations) {
  // Re-evaluating the winning partition reproduces the winning time.
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 32);
  const auto result = partition_evaluate(table, 32, {});
  const auto check = core_assign(table, result.best.widths);
  ASSERT_FALSE(check.aborted);
  EXPECT_EQ(check.architecture.testing_time, result.best.testing_time);
}

TEST(PartitionEvaluate, SingleTamDegenerateCase) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 16);
  PartitionEvaluateOptions options;
  options.max_tams = 1;
  const auto result = partition_evaluate(table, 16, options);
  EXPECT_EQ(result.best_tams, 1);
  EXPECT_EQ(result.best.widths, (std::vector<int>{16}));
  EXPECT_EQ(result.best.testing_time, table.total_time(16));
}

TEST(PartitionEvaluate, WiderSearchNeverHurts) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 32);
  PartitionEvaluateOptions narrow;
  narrow.max_tams = 2;
  PartitionEvaluateOptions wide;
  wide.max_tams = 5;
  EXPECT_LE(partition_evaluate(table, 32, wide).best.testing_time,
            partition_evaluate(table, 32, narrow).best.testing_time);
}

TEST(PartitionEvaluate, MaxTamsAboveWidthIsClamped) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 8);
  PartitionEvaluateOptions options;
  options.max_tams = 20;  // > W = 8
  const auto result = partition_evaluate(table, 8, options);
  EXPECT_LE(result.per_b.size(), 8u);
}

TEST(PartitionEvaluate, CarriedTauMatchesPerBReset) {
  // Carrying tau across B is a strictly stronger prune but must find the
  // same best architecture.
  const soc::Soc soc = soc::p31108();
  const TestTimeTable table(soc, 24);
  PartitionEvaluateOptions reset;
  reset.max_tams = 4;
  PartitionEvaluateOptions carried = reset;
  carried.reset_tau_per_b = false;
  const auto a = partition_evaluate(table, 24, reset);
  const auto b = partition_evaluate(table, 24, carried);
  EXPECT_EQ(a.best.testing_time, b.best.testing_time);
  // And it prunes at least as hard.
  std::uint64_t evaluated_reset = 0;
  std::uint64_t evaluated_carried = 0;
  for (const auto& s : a.per_b) evaluated_reset += s.evaluated_to_completion;
  for (const auto& s : b.per_b) evaluated_carried += s.evaluated_to_completion;
  EXPECT_LE(evaluated_carried, evaluated_reset);
}

TEST(PartitionEvaluate, MinTamWidthRestrictsTheSearch) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 32);
  PartitionEvaluateOptions floored;
  floored.max_tams = 4;
  floored.min_tam_width = 6;
  const auto result = partition_evaluate(table, 32, floored);
  for (const int w : result.best.widths) EXPECT_GE(w, 6);
  for (const auto& stats : result.per_b)
    EXPECT_EQ(stats.partitions_unique,
              partition::count_exact_min(32, stats.tams, 6));
  // The floor can only restrict the space: never better than unrestricted.
  PartitionEvaluateOptions free = floored;
  free.min_tam_width = 1;
  EXPECT_GE(result.best.testing_time,
            partition_evaluate(table, 32, free).best.testing_time);
}

TEST(PartitionEvaluate, RejectsBadArguments) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 16);
  EXPECT_THROW((void)partition_evaluate(table, 0, {}), std::invalid_argument);
  EXPECT_THROW((void)partition_evaluate(table, 17, {}), std::invalid_argument);
  PartitionEvaluateOptions bad;
  bad.min_tams = 3;
  bad.max_tams = 2;
  EXPECT_THROW((void)partition_evaluate(table, 16, bad), std::invalid_argument);
  PartitionEvaluateOptions bad_floor;
  bad_floor.min_tam_width = 0;
  EXPECT_THROW((void)partition_evaluate(table, 16, bad_floor),
               std::invalid_argument);
  bad_floor.min_tam_width = 17;
  EXPECT_THROW((void)partition_evaluate(table, 16, bad_floor),
               std::invalid_argument);
}

}  // namespace
}  // namespace wtam::core
