#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/job_io.hpp"
#include "api/result_cache.hpp"
#include "api/solver.hpp"
#include "core/assignment_exact.hpp"
#include "core/backend.hpp"
#include "core/partition_evaluate.hpp"
#include "core/test_time_table.hpp"
#include "pack/packed_schedule.hpp"
#include "pack/rectpack.hpp"
#include "soc/benchmarks.hpp"

namespace wtam::api {
namespace {

SolveRequest d695_request(int width, const std::string& backend) {
  SolveRequest request;
  request.soc = "d695";
  request.width = width;
  request.backend = backend;
  return request;
}

// ---- request validation ---------------------------------------------------

TEST(SolverValidation, RejectsMalformedRequestsWithoutExecuting) {
  const auto expect_invalid = [](SolveRequest request,
                                 const std::string& fragment) {
    const std::string problem = validate(request);
    EXPECT_NE(problem.find(fragment), std::string::npos) << problem;
    const SolveResult result = Solver().solve(request);
    EXPECT_EQ(result.status, Status::InvalidRequest);
    EXPECT_EQ(result.error, problem);
    EXPECT_FALSE(result.has_outcome());
  };

  expect_invalid(SolveRequest{}, "no SOC");
  {
    SolveRequest both = d695_request(16, "enumerative");
    both.soc_inline = "soc x\ncore a patterns=1 inputs=1 outputs=1 scan=\n";
    expect_invalid(both, "ambiguous SOC");
  }
  expect_invalid(d695_request(0, "enumerative"), "width must be in");
  expect_invalid(d695_request(300, "enumerative"), "width must be in");
  {
    SolveRequest bad_sweep = d695_request(32, "enumerative");
    bad_sweep.width_max = 16;
    expect_invalid(bad_sweep, "width_max");
  }
  expect_invalid(d695_request(16, "no-such-backend"), "unknown backend");
  {
    SolveRequest bad_deadline = d695_request(16, "enumerative");
    bad_deadline.deadline_s = 0.0;
    expect_invalid(bad_deadline, "deadline_s");
  }
  {
    SolveRequest bad_tams = d695_request(16, "enumerative");
    bad_tams.options.min_tams = 5;
    bad_tams.options.max_tams = 2;
    expect_invalid(bad_tams, "TAM range");
  }
  EXPECT_TRUE(validate(d695_request(16, "rectpack")).empty());
}

TEST(SolverValidation, UnreadableSocFileIsInvalidRequest) {
  SolveRequest request = d695_request(16, "enumerative");
  request.soc = "/no/such/dir/missing.soc";
  const SolveResult result = Solver().solve(request);
  EXPECT_EQ(result.status, Status::InvalidRequest);
  EXPECT_NE(result.error.find("cannot open soc file"), std::string::npos);
}

// ---- single solves --------------------------------------------------------

TEST(Solver, OkSolveMatchesTheRawBackendSeam) {
  const soc::Soc soc = soc::d695();
  const core::TestTimeTable table(soc, 32);
  const auto reference = core::BackendRegistry::instance()
                             .at("enumerative")
                             .optimize(table, 32, {});

  const SolveResult result = Solver().solve(d695_request(32, "enumerative"));
  ASSERT_EQ(result.status, Status::Ok);
  ASSERT_TRUE(result.has_outcome());
  EXPECT_EQ(result.outcome->testing_time, reference.testing_time);
  EXPECT_EQ(result.soc_name, "d695");
  EXPECT_EQ(result.core_count, 10);
  EXPECT_EQ(result.width, 32);
  EXPECT_EQ(result.widths_tried, 1);
  EXPECT_TRUE(result.schedule_valid);
  EXPECT_GT(result.lower_bound, 0);
  EXPECT_LE(result.lower_bound, result.outcome->testing_time);
}

TEST(Solver, InlineSocTextSolves) {
  SolveRequest request;
  request.soc_inline =
      "soc tiny\n"
      "core a patterns=10 inputs=4 outputs=4 scan=8,8\n"
      "core b patterns=20 inputs=2 outputs=3 scan=\n";
  request.width = 8;
  request.backend = "rectpack";
  const SolveResult result = Solver().solve(request);
  ASSERT_EQ(result.status, Status::Ok);
  EXPECT_EQ(result.soc_name, "tiny");
  EXPECT_EQ(result.core_count, 2);
  EXPECT_TRUE(result.schedule_valid);
}

TEST(Solver, WidthSweepPicksTheBestWidth) {
  SolveRequest sweep = d695_request(16, "enumerative");
  sweep.width_max = 24;
  sweep.options.max_tams = 4;
  const SolveResult result = Solver().solve(sweep);
  ASSERT_EQ(result.status, Status::Ok);
  EXPECT_EQ(result.widths_tried, 9);

  // The best of the sweep is no worse than any endpoint solved alone.
  for (const int width : {16, 24}) {
    SolveRequest single = d695_request(width, "enumerative");
    single.options.max_tams = 4;
    const SolveResult one = Solver().solve(single);
    ASSERT_EQ(one.status, Status::Ok);
    EXPECT_LE(result.outcome->testing_time, one.outcome->testing_time);
  }
  EXPECT_GE(result.width, 16);
  EXPECT_LE(result.width, 24);
  EXPECT_TRUE(result.schedule_valid);
}

TEST(Solver, InternalErrorCapturesBackendExceptions) {
  class Throwing final : public core::OptimizerBackend {
    [[nodiscard]] std::string_view name() const noexcept override {
      return "test-throw";
    }
    [[nodiscard]] std::string_view description() const noexcept override {
      return "always throws (solver error-path probe)";
    }
    [[nodiscard]] core::BackendOutcome optimize(
        const core::TestTimeTable&, int, const core::BackendOptions&,
        const core::SolveContext&) const override {
      throw std::runtime_error("engine exploded");
    }
  };
  core::BackendRegistry::instance().register_backend(
      std::make_unique<Throwing>());

  const SolveResult result = Solver().solve(d695_request(16, "test-throw"));
  EXPECT_EQ(result.status, Status::InternalError);
  EXPECT_EQ(result.error, "engine exploded");
  EXPECT_FALSE(result.has_outcome());
}

// ---- deadlines ------------------------------------------------------------

TEST(SolverDeadline, ExpiredDeadlineReturnsValidBestSoFar) {
  // p93791 at W=48 with a large TAM range cannot finish in 10 ms, so the
  // deadline must fire — and the result must still be a complete,
  // validator-clean schedule (the best-so-far incumbent).
  SolveRequest request;
  request.soc = "p93791";
  request.width = 48;
  request.backend = "enumerative";
  request.options.max_tams = 16;
  request.deadline_s = 0.01;
  const SolveResult result = Solver().solve(request);
  EXPECT_EQ(result.status, Status::DeadlineExceeded);
  ASSERT_TRUE(result.has_outcome());
  EXPECT_EQ(result.outcome->interrupt, SolveInterrupt::DeadlineExceeded);
  EXPECT_GT(result.outcome->testing_time, 0);
  EXPECT_TRUE(result.schedule_valid);
}

TEST(SolverDeadline, RectpackHonorsDeadlines) {
  SolveRequest request;
  request.soc = "p93791";
  request.width = 32;
  request.backend = "rectpack";
  request.options.rectpack.local_search_iterations = 2'000'000;
  request.deadline_s = 0.02;
  const SolveResult result = Solver().solve(request);
  EXPECT_EQ(result.status, Status::DeadlineExceeded);
  ASSERT_TRUE(result.has_outcome());
  EXPECT_TRUE(result.schedule_valid);
}

// ---- cancellation ---------------------------------------------------------

TEST(SolverCancel, PreCancelledTokenShortCircuits) {
  CancelToken cancel;
  cancel.request_cancel();
  const SolveResult result =
      Solver().solve(d695_request(32, "enumerative"), cancel);
  EXPECT_EQ(result.status, Status::Cancelled);
  EXPECT_FALSE(result.has_outcome());
}

TEST(SolverCancel, EnginesObserveCancellationWithinOnePollInterval) {
  // Engine-level contract, deterministic (no timing): a context that is
  // already cancelled stops the search at its first poll — after exactly
  // one evaluated candidate — and returns a complete incumbent.
  const soc::Soc soc = soc::d695();
  const core::TestTimeTable table(soc, 32);
  core::SolveContext context;
  context.cancel.request_cancel();

  core::PartitionEvaluateOptions search;
  search.context = &context;
  const auto heuristic = core::partition_evaluate(table, 32, search);
  EXPECT_EQ(heuristic.interrupt, SolveInterrupt::Cancelled);
  // B=1 has the single partition [32] (always evaluated — the guaranteed
  // incumbent); B=2 stops at its first poll with nothing enumerated.
  std::uint64_t enumerated = 0;
  for (const auto& stats : heuristic.per_b)
    enumerated += stats.partitions_unique;
  EXPECT_EQ(enumerated, 1u);
  EXPECT_FALSE(heuristic.best.widths.empty());
  EXPECT_GT(heuristic.best.testing_time, 0);

  pack::RectPackOptions packing;
  packing.context = &context;
  const auto packed = pack::rectpack_schedule(table, 32, packing);
  EXPECT_EQ(packed.interrupt, SolveInterrupt::Cancelled);
  EXPECT_EQ(packed.schedule.placements.size(),
            static_cast<std::size_t>(soc.core_count()));
  EXPECT_TRUE(pack::validate_packed_schedule(table, packed.schedule).empty());
}

TEST(SolverCancel, ExactSolverHonorsTheContext) {
  // The final-optimization engines stop on a fired context like a
  // node/time limit: optimality unproven, heuristic incumbent returned.
  // The ILP engine polls every node, so a pre-cancelled context is
  // observed before the first branch — fully deterministic.
  const soc::Soc soc = soc::d695();
  const core::TestTimeTable table(soc, 32);
  core::SolveContext context;
  context.cancel.request_cancel();
  core::ExactOptions exact;
  exact.engine = core::ExactEngine::Ilp;
  exact.context = &context;
  const std::vector<int> widths = {10, 10, 12};
  const auto solved = core::solve_assignment_exact(table, widths, exact);
  EXPECT_FALSE(solved.proven_optimal);
  EXPECT_GT(solved.architecture.testing_time, 0);  // the warm-start incumbent
}

TEST(SolverCancel, CancellationFromAnotherThreadStopsALongJob) {
  SolveRequest request;
  request.soc = "p93791";
  request.width = 64;
  request.backend = "enumerative";
  request.options.max_tams = 16;  // astronomically large search space

  CancelToken cancel;
  std::thread canceller([cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cancel.request_cancel();
  });
  const SolveResult result = Solver().solve(request, cancel);
  canceller.join();
  EXPECT_EQ(result.status, Status::Cancelled);
  ASSERT_TRUE(result.has_outcome());
  EXPECT_TRUE(result.schedule_valid);
}

// ---- batches --------------------------------------------------------------

std::vector<SolveRequest> mixed_batch() {
  std::vector<SolveRequest> jobs;
  jobs.push_back(d695_request(16, "enumerative"));
  jobs.back().options.max_tams = 4;
  jobs.push_back(d695_request(16, "rectpack"));
  jobs.push_back(d695_request(24, "rectpack"));
  jobs.push_back(d695_request(24, "enumerative"));
  jobs.back().options.max_tams = 4;
  SolveRequest invalid;  // exercises per-job failure isolation
  invalid.soc = "d695";
  invalid.width = 0;
  jobs.push_back(invalid);
  return jobs;
}

TEST(SolverBatch, ResultsAreInRequestOrderAndThreadCountInvariant) {
  const std::vector<SolveRequest> jobs = mixed_batch();
  const std::vector<SolveResult> serial = Solver(SolverOptions::with_threads(1)).solve_batch(jobs);
  ASSERT_EQ(serial.size(), jobs.size());
  for (std::size_t i = 0; i + 1 < jobs.size(); ++i) {
    EXPECT_EQ(serial[i].status, Status::Ok) << i;
    EXPECT_EQ(serial[i].id, "job-" + std::to_string(i + 1));
    EXPECT_EQ(serial[i].backend, jobs[i].backend);
  }
  EXPECT_EQ(serial.back().status, Status::InvalidRequest);

  // Byte-identical results JSON at any thread count — the batch
  // determinism contract `--batch` relies on.
  const std::string reference = results_to_json(serial);
  for (const int threads : {2, 4, 0}) {
    const std::vector<SolveResult> parallel =
        Solver(SolverOptions::with_threads(threads)).solve_batch(jobs);
    EXPECT_EQ(results_to_json(parallel), reference) << threads;
  }
}

TEST(SolverBatch, HigherPriorityJobsStartFirst) {
  std::vector<SolveRequest> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back(d695_request(8, "rectpack"));
  jobs[0].priority = -1;
  jobs[1].priority = 5;
  jobs[2].priority = 0;

  std::vector<std::size_t> started;
  const auto progress = [&](const ProgressEvent& event) {
    if (event.phase == ProgressEvent::Phase::Started)
      started.push_back(event.index);
  };
  const auto results = Solver(SolverOptions::with_threads(1)).solve_batch(jobs, {}, progress);
  ASSERT_EQ(results.size(), 3u);
  // Execution order: priority descending; results stay in request order.
  EXPECT_EQ(started, (std::vector<std::size_t>{1, 2, 0}));
  for (std::size_t i = 0; i < results.size(); ++i)
    EXPECT_EQ(results[i].id, "job-" + std::to_string(i + 1));
}

TEST(SolverBatch, BatchWideCancelMarksUnstartedJobsCancelled) {
  std::vector<SolveRequest> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back(d695_request(16, "rectpack"));
  CancelToken cancel;
  cancel.request_cancel();
  const auto results = Solver(SolverOptions::with_threads(2)).solve_batch(jobs, cancel);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& result : results)
    EXPECT_EQ(result.status, Status::Cancelled);
}

TEST(SolverBatch, ProgressReportsStartAndFinishForEveryJob) {
  const std::vector<SolveRequest> jobs = {d695_request(8, "rectpack"),
                                          d695_request(8, "rectpack")};
  std::atomic<int> starts{0};
  std::atomic<int> finishes{0};
  const auto progress = [&](const ProgressEvent& event) {
    if (event.phase == ProgressEvent::Phase::Started) {
      ++starts;
      EXPECT_EQ(event.result, nullptr);
    } else {
      ++finishes;
      ASSERT_NE(event.result, nullptr);
      EXPECT_EQ(event.result->status, Status::Ok);
    }
    EXPECT_EQ(event.total, 2u);
  };
  (void)Solver(SolverOptions::with_threads(2)).solve_batch(jobs, {}, progress);
  EXPECT_EQ(starts.load(), 2);
  EXPECT_EQ(finishes.load(), 2);
}

// ---- result cache ---------------------------------------------------------

TEST(SolverCache, RepeatedRequestIsServedFromCacheByteIdentically) {
  const auto cache = std::make_shared<ResultCache>();
  const Solver solver(SolverOptions::with_threads(1, cache));
  SolveRequest request = d695_request(32, "enumerative");

  const SolveResult cold = solver.solve(request);
  ASSERT_EQ(cold.status, Status::Ok);
  EXPECT_EQ(cold.cache, CacheOutcome::Miss);

  const SolveResult warm = solver.solve(request);
  ASSERT_EQ(warm.status, Status::Ok);
  EXPECT_EQ(warm.cache, CacheOutcome::Hit);

  // Byte-identical canonical result bytes (timing and cache provenance
  // are opt-in, exactly so this holds).
  EXPECT_EQ(result_to_json(warm).dump_string(),
            result_to_json(cold).dump_string());
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(cache->stats().insertions, 1u);
}

TEST(SolverCache, EqualWorkHitsAcrossDifferentSocPhrasings) {
  // A request phrased with an in-memory SOC warms the cache for the same
  // point phrased by built-in name — canonical identity at work.
  const auto cache = std::make_shared<ResultCache>();
  const Solver solver(SolverOptions::with_threads(1, cache));

  SolveRequest by_value;
  by_value.soc_value = soc::d695();
  by_value.width = 24;
  by_value.backend = "rectpack";
  ASSERT_EQ(solver.solve(by_value).cache, CacheOutcome::Miss);

  const SolveResult warm = solver.solve(d695_request(24, "rectpack"));
  EXPECT_EQ(warm.cache, CacheOutcome::Hit);
}

TEST(SolverCache, SweepAndSingleWidthShareEntries) {
  const auto cache = std::make_shared<ResultCache>();
  const Solver solver(SolverOptions::with_threads(1, cache));

  SolveRequest sweep = d695_request(16, "rectpack");
  sweep.width_max = 20;
  const SolveResult cold = solver.solve(sweep);
  ASSERT_EQ(cold.status, Status::Ok);
  EXPECT_EQ(cold.cache, CacheOutcome::Miss);
  EXPECT_EQ(cold.widths_tried, 5);

  // Every width of the sweep is now cached individually.
  for (const int width : {16, 17, 18, 19, 20})
    EXPECT_EQ(solver.solve(d695_request(width, "rectpack")).cache,
              CacheOutcome::Hit)
        << width;

  // And the whole sweep replays as a pure hit, same bytes.
  const SolveResult warm = solver.solve(sweep);
  EXPECT_EQ(warm.cache, CacheOutcome::Hit);
  EXPECT_EQ(result_to_json(warm).dump_string(),
            result_to_json(cold).dump_string());
}

TEST(SolverCache, BatchResultsAreByteIdenticalWithCacheOnAndOff) {
  // The satellite contract: a batch (with internal repetition) produces
  // the identical results document with caching enabled or disabled.
  std::vector<SolveRequest> jobs = mixed_batch();
  jobs.push_back(d695_request(16, "rectpack"));  // duplicate of job 2
  jobs.push_back(d695_request(16, "enumerative"));
  jobs.back().options.max_tams = 4;  // duplicate of job 1

  const std::vector<SolveResult> uncached =
      Solver(SolverOptions::with_threads(2)).solve_batch(jobs);
  const auto cache = std::make_shared<ResultCache>();
  const std::vector<SolveResult> cached =
      Solver(SolverOptions::with_threads(2, cache)).solve_batch(jobs);
  EXPECT_EQ(results_to_json(cached), results_to_json(uncached));

  // Every cacheable job was consulted; the invalid job (index 4 from
  // mixed_batch) bypassed.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i == 4) continue;
    EXPECT_NE(cached[i].cache, CacheOutcome::Bypass) << i;
  }
  EXPECT_EQ(cached[4].cache, CacheOutcome::Bypass);  // invalid request
  // The duplicates were served from the cache at least once (exact
  // hit/miss split depends on scheduling at 2 threads — coalesced
  // duplicates also count as hits).
  EXPECT_GE(cache->stats().hits, 2u);
}

TEST(SolverCache, ConstrainedAndUnconstrainedRequestsNeverConflate) {
  // Same SOC/width/backend; the constrained ask must be its own cache
  // entry (distinct RequestKey), and a warm constrained re-ask must be
  // byte-identical to its cold run.
  const auto cache = std::make_shared<ResultCache>();
  const Solver solver(SolverOptions::with_threads(1, cache));

  SolveRequest plain = d695_request(16, "rectpack");
  SolveRequest constrained = plain;
  constrained.options.constraints.power.assign(10, 100);
  constrained.options.constraints.power_budget = 200;

  const SolveResult plain_cold = solver.solve(plain);
  ASSERT_EQ(plain_cold.status, Status::Ok);
  EXPECT_EQ(plain_cold.cache, CacheOutcome::Miss);

  const SolveResult constrained_cold = solver.solve(constrained);
  ASSERT_EQ(constrained_cold.status, Status::Ok);
  EXPECT_EQ(constrained_cold.cache, CacheOutcome::Miss)
      << "constrained ask must not hit the unconstrained entry";
  EXPECT_TRUE(constrained_cold.schedule_valid);
  EXPECT_GE(constrained_cold.outcome->testing_time,
            plain_cold.outcome->testing_time);

  const SolveResult constrained_warm = solver.solve(constrained);
  EXPECT_EQ(constrained_warm.cache, CacheOutcome::Hit);
  EXPECT_EQ(result_to_json(constrained_warm).dump_string(),
            result_to_json(constrained_cold).dump_string());
  const SolveResult plain_warm = solver.solve(plain);
  EXPECT_EQ(plain_warm.cache, CacheOutcome::Hit);
  EXPECT_EQ(result_to_json(plain_warm).dump_string(),
            result_to_json(plain_cold).dump_string());
  EXPECT_EQ(cache->stats().entries, 2u);
}

TEST(SolverApi, InvalidConstraintsAreAnInvalidRequest) {
  SolveRequest request = d695_request(16, "rectpack");
  request.options.constraints.power.assign(3, 10);  // 3 entries, 10 cores
  request.options.constraints.power_budget = 20;
  const SolveResult result = Solver().solve(request);
  EXPECT_EQ(result.status, Status::InvalidRequest);
  EXPECT_NE(result.error.find("invalid constraints"), std::string::npos);
  EXPECT_FALSE(result.has_outcome());

  // Structural problems are caught by validate() before any SOC loads.
  SolveRequest cyclic = d695_request(16, "rectpack");
  cyclic.options.constraints.precedence = {{0, 0}};
  EXPECT_NE(validate(cyclic).find("invalid constraints"), std::string::npos);

  // A lone negative budget is rejected, not silently unconstrained.
  SolveRequest negative = d695_request(16, "rectpack");
  negative.options.constraints.power_budget = -5;
  EXPECT_NE(validate(negative).find("power_budget must be >= 0"),
            std::string::npos);
}

TEST(SolverCache, DeadlineBoundRequestsBypassTheCache) {
  const auto cache = std::make_shared<ResultCache>();
  const Solver solver(SolverOptions::with_threads(1, cache));

  SolveRequest request;
  request.soc = "p93791";
  request.width = 48;
  request.backend = "enumerative";
  request.options.max_tams = 16;
  request.deadline_s = 0.01;
  const SolveResult result = solver.solve(request);
  EXPECT_EQ(result.status, Status::DeadlineExceeded);
  EXPECT_EQ(result.cache, CacheOutcome::Bypass);
  EXPECT_EQ(cache->stats().hits + cache->stats().misses, 0u);
  EXPECT_EQ(cache->stats().entries, 0u);
}

TEST(SolverCache, CancelledSolvesAreNotCached) {
  const auto cache = std::make_shared<ResultCache>();
  const Solver solver(SolverOptions::with_threads(1, cache));

  SolveRequest request = d695_request(32, "enumerative");
  request.options.max_tams = 16;
  CancelToken cancel;
  std::thread canceller([cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel.request_cancel();
  });
  const SolveResult result = solver.solve(request, cancel);
  canceller.join();
  if (result.status == Status::Cancelled) {
    // The interrupted best-so-far incumbent must not poison the cache.
    EXPECT_EQ(cache->stats().entries, 0u);
  } else {
    // The solve beat the canceller — then and only then it was cached.
    EXPECT_EQ(result.status, Status::Ok);
  }
}

}  // namespace
}  // namespace wtam::api
