// Cross-module property tests on randomized synthetic SOCs: for every
// seed, generate a small SOC and check end-to-end invariants that tie
// the wrapper model, the heuristics, the exact solvers, the scheduler
// and the bounds together.

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "core/co_optimizer.hpp"
#include "core/exhaustive.hpp"
#include "core/lower_bounds.hpp"
#include "core/power.hpp"
#include "core/schedule.hpp"
#include "core/test_time_table.hpp"
#include "pack/packed_schedule.hpp"
#include "pack/rectpack.hpp"
#include "soc/generator.hpp"
#include "soc/soc_io.hpp"

namespace wtam {
namespace {

soc::Soc random_soc(std::uint64_t seed) {
  common::Rng rng(seed * 6364136223846793005ULL + 1);
  soc::SyntheticSpec spec;
  spec.name = "fuzz" + std::to_string(seed);
  spec.seed = seed;
  spec.logic_cores = static_cast<int>(rng.uniform_int(2, 6));
  spec.logic.patterns = {rng.uniform_int(1, 20), rng.uniform_int(50, 400)};
  spec.logic.ios = {rng.uniform_int(2, 20), rng.uniform_int(30, 200)};
  spec.logic.chains = {1, rng.uniform_int(2, 10)};
  spec.logic.chain_len = {rng.uniform_int(1, 10), rng.uniform_int(20, 150)};
  spec.memory_cores = static_cast<int>(rng.uniform_int(0, 4));
  spec.memory.patterns = {rng.uniform_int(50, 200), rng.uniform_int(300, 3000)};
  spec.memory.ios = {rng.uniform_int(2, 10), rng.uniform_int(12, 60)};
  return soc::generate_soc(spec);
}

class RandomSocTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomSocTest, ParserRoundTripIsIdentity) {
  const soc::Soc original = random_soc(static_cast<std::uint64_t>(GetParam()));
  const soc::Soc parsed = soc::parse_soc_string(soc::write_soc_string(original));
  ASSERT_EQ(parsed.core_count(), original.core_count());
  for (int i = 0; i < original.core_count(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(parsed.cores[idx].name, original.cores[idx].name);
    EXPECT_EQ(parsed.cores[idx].test_patterns, original.cores[idx].test_patterns);
    EXPECT_EQ(parsed.cores[idx].num_inputs, original.cores[idx].num_inputs);
    EXPECT_EQ(parsed.cores[idx].num_outputs, original.cores[idx].num_outputs);
    EXPECT_EQ(parsed.cores[idx].scan_chains, original.cores[idx].scan_chains);
  }
}

TEST_P(RandomSocTest, TableIsMonotoneAndPositive) {
  const soc::Soc soc = random_soc(static_cast<std::uint64_t>(GetParam()));
  const core::TestTimeTable table(soc, 20);
  for (int i = 0; i < table.core_count(); ++i) {
    for (int w = 2; w <= 20; ++w) {
      EXPECT_LE(table.time(i, w), table.time(i, w - 1));
      EXPECT_GE(table.time(i, w), soc::min_test_time_bound(
                                      soc.cores[static_cast<std::size_t>(i)]));
    }
  }
}

TEST_P(RandomSocTest, FlowInvariants) {
  const soc::Soc soc = random_soc(static_cast<std::uint64_t>(GetParam()));
  const core::TestTimeTable table(soc, 16);
  core::CoOptimizeOptions options;
  options.search.max_tams = 4;
  const auto result = core::co_optimize(table, 16, options);
  const auto& arch = result.architecture;

  // Final step never loses to the heuristic.
  EXPECT_LE(arch.testing_time, result.heuristic.best.testing_time);
  // Width conserved, everyone assigned.
  EXPECT_EQ(arch.total_width(), 16);
  ASSERT_EQ(static_cast<int>(arch.assignment.size()), soc.core_count());
  std::vector<std::int64_t> loads(arch.widths.size(), 0);
  for (int i = 0; i < soc.core_count(); ++i) {
    const int tam = arch.assignment[static_cast<std::size_t>(i)];
    ASSERT_GE(tam, 0);
    ASSERT_LT(tam, arch.tam_count());
    loads[static_cast<std::size_t>(tam)] +=
        table.time(i, arch.widths[static_cast<std::size_t>(tam)]);
  }
  EXPECT_EQ(loads, arch.tam_times);
}

TEST_P(RandomSocTest, HeuristicSandwichedByExactAndBound) {
  const soc::Soc soc = random_soc(static_cast<std::uint64_t>(GetParam()));
  const core::TestTimeTable table(soc, 12);
  const auto exact = core::exhaustive_pnpaw(table, 12, 3, {});
  ASSERT_TRUE(exact.completed);

  core::CoOptimizeOptions options;
  options.search.max_tams = 3;
  const auto flow = core::co_optimize(table, 12, options);
  const auto bounds = core::testing_time_lower_bounds(table, 12);

  EXPECT_GE(flow.heuristic.best.testing_time, exact.best.testing_time);
  EXPECT_GE(flow.architecture.testing_time, exact.best.testing_time);
  EXPECT_GE(exact.best.testing_time, bounds.combined());
}

TEST_P(RandomSocTest, ScheduleAndPowerInvariants) {
  const soc::Soc soc = random_soc(static_cast<std::uint64_t>(GetParam()));
  const core::TestTimeTable table(soc, 12);
  const auto arch = core::co_optimize(table, 12, {}).architecture;
  const auto schedule = core::build_schedule(table, arch);
  EXPECT_EQ(schedule.makespan, arch.testing_time);

  const core::PowerVector power = core::scan_activity_power(soc);
  const std::int64_t peak = core::peak_power(schedule, power);
  const std::int64_t total =
      std::accumulate(power.begin(), power.end(), std::int64_t{0});
  EXPECT_LE(peak, total);

  // A budget at the unconstrained peak changes nothing.
  const auto same = core::schedule_with_power_limit(table, arch, power, peak);
  ASSERT_TRUE(same.feasible);
  EXPECT_EQ(same.schedule.makespan, schedule.makespan);
  EXPECT_EQ(same.idle_cycles, 0);

  // A tighter budget keeps the peak under it and never speeds the test up.
  const std::int64_t largest = *std::max_element(power.begin(), power.end());
  if (largest < peak) {
    const auto tight = core::schedule_with_power_limit(table, arch, power, largest);
    ASSERT_TRUE(tight.feasible);
    EXPECT_LE(tight.peak, largest);
    EXPECT_GE(tight.schedule.makespan, schedule.makespan);
  }
}

TEST_P(RandomSocTest, RectPackScheduleValidAndAboveLowerBound) {
  const soc::Soc soc = random_soc(static_cast<std::uint64_t>(GetParam()));
  const int width = 8 + GetParam() % 9;  // sweep strip widths 8..16
  const core::TestTimeTable table(soc, width);

  pack::RectPackOptions options;
  options.local_search_iterations = 200;  // keep the fuzz sweep fast
  options.seed = static_cast<std::uint64_t>(GetParam());
  const auto result = pack::rectpack_schedule(table, width, options);

  // The strict geometric validator accepts the packing...
  const auto issues = pack::validate_packed_schedule(table, result.schedule);
  EXPECT_TRUE(issues.empty()) << soc.name << " W=" << width << ": "
                              << (issues.empty() ? "" : issues.front());

  // ...and the makespan respects the §3 architecture-independent bound
  // LB = max(max_c T_c(W), ceil(sum_c area_c / W)).
  const auto bounds = core::testing_time_lower_bounds(table, width);
  EXPECT_GE(result.makespan, bounds.combined()) << soc.name << " W=" << width;
}

TEST_P(RandomSocTest, PartitionEvaluateStatsConsistent) {
  const soc::Soc soc = random_soc(static_cast<std::uint64_t>(GetParam()));
  const core::TestTimeTable table(soc, 14);
  core::PartitionEvaluateOptions options;
  options.max_tams = 4;
  const auto result = core::partition_evaluate(table, 14, options);
  for (const auto& stats : result.per_b) {
    EXPECT_EQ(stats.evaluated_to_completion + stats.aborted_by_tau,
              stats.partitions_unique);
    if (stats.tams == result.best_tams) {
      EXPECT_LE(result.best.testing_time, stats.best_time);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSocTest, ::testing::Range(1, 26));

}  // namespace
}  // namespace wtam
