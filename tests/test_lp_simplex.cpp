#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "lp/simplex.hpp"

namespace wtam::lp {
namespace {

constexpr double kTol = 1e-6;

Row make_row(std::vector<std::pair<int, double>> coeffs, RowSense sense,
             double rhs) {
  Row row;
  row.coeffs = std::move(coeffs);
  row.sense = sense;
  row.rhs = rhs;
  return row;
}

TEST(Simplex, SolvesBasicTwoVarProblem) {
  // min -x - 2y s.t. x + y <= 4, x <= 3, y <= 2  => x=2, y=2, obj=-6.
  Problem p = Problem::with_vars(2);
  p.objective = {-1.0, -2.0};
  p.rows.push_back(make_row({{0, 1.0}, {1, 1.0}}, RowSense::LessEqual, 4.0));
  p.upper = {3.0, 2.0};
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, -6.0, kTol);
  EXPECT_NEAR(s.x[0], 2.0, kTol);
  EXPECT_NEAR(s.x[1], 2.0, kTol);
}

TEST(Simplex, HandlesEqualityRows) {
  // min x + y s.t. x + 2y = 4, x,y >= 0 => y=2, x=0, obj=2.
  Problem p = Problem::with_vars(2);
  p.objective = {1.0, 1.0};
  p.rows.push_back(make_row({{0, 1.0}, {1, 2.0}}, RowSense::Equal, 4.0));
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, 2.0, kTol);
}

TEST(Simplex, HandlesGreaterEqualRows) {
  // min 2x + 3y s.t. x + y >= 5, x >= 0, y >= 0 => x=5, obj=10.
  Problem p = Problem::with_vars(2);
  p.objective = {2.0, 3.0};
  p.rows.push_back(make_row({{0, 1.0}, {1, 1.0}}, RowSense::GreaterEqual, 5.0));
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, 10.0, kTol);
  EXPECT_NEAR(s.x[0], 5.0, kTol);
}

TEST(Simplex, DetectsInfeasibility) {
  // x <= 1 and x >= 2 cannot both hold.
  Problem p = Problem::with_vars(1);
  p.objective = {1.0};
  p.rows.push_back(make_row({{0, 1.0}}, RowSense::LessEqual, 1.0));
  p.rows.push_back(make_row({{0, 1.0}}, RowSense::GreaterEqual, 2.0));
  EXPECT_EQ(solve(p).status, Status::Infeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x with x free above.
  Problem p = Problem::with_vars(1);
  p.objective = {-1.0};
  EXPECT_EQ(solve(p).status, Status::Unbounded);
}

TEST(Simplex, RespectsLowerBoundShift) {
  // min x with 2 <= x <= 7 => x=2.
  Problem p = Problem::with_vars(1);
  p.objective = {1.0};
  p.lower = {2.0};
  p.upper = {7.0};
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.x[0], 2.0, kTol);
}

TEST(Simplex, NegativeRhsRowsAreNormalized) {
  // min x s.t. -x <= -3  (i.e. x >= 3).
  Problem p = Problem::with_vars(1);
  p.objective = {1.0};
  p.rows.push_back(make_row({{0, -1.0}}, RowSense::LessEqual, -3.0));
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.x[0], 3.0, kTol);
}

TEST(Simplex, SolvesDegenerateProblem) {
  // Klee-Minty-ish degeneracy: several redundant constraints at the optimum.
  Problem p = Problem::with_vars(2);
  p.objective = {-1.0, -1.0};
  p.rows.push_back(make_row({{0, 1.0}}, RowSense::LessEqual, 1.0));
  p.rows.push_back(make_row({{1, 1.0}}, RowSense::LessEqual, 1.0));
  p.rows.push_back(make_row({{0, 1.0}, {1, 1.0}}, RowSense::LessEqual, 2.0));
  p.rows.push_back(make_row({{0, 1.0}, {1, 1.0}}, RowSense::LessEqual, 2.0));
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, -2.0, kTol);
}

TEST(Simplex, RedundantEqualityRowsDoNotBreakPhase1) {
  // Same equality twice: phase 1 leaves one artificial basic at zero.
  Problem p = Problem::with_vars(2);
  p.objective = {1.0, 2.0};
  p.rows.push_back(make_row({{0, 1.0}, {1, 1.0}}, RowSense::Equal, 3.0));
  p.rows.push_back(make_row({{0, 1.0}, {1, 1.0}}, RowSense::Equal, 3.0));
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, 3.0, kTol);  // all weight on x0
}

TEST(Simplex, RepeatedCoefficientsAreSummed) {
  // Row lists x twice: 0.5x + 0.5x <= 2 => x <= 2.
  Problem p = Problem::with_vars(1);
  p.objective = {-1.0};
  p.rows.push_back(make_row({{0, 0.5}, {0, 0.5}}, RowSense::LessEqual, 2.0));
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.x[0], 2.0, kTol);
}

TEST(Simplex, ValidatesBadIndices) {
  Problem p = Problem::with_vars(1);
  p.rows.push_back(make_row({{5, 1.0}}, RowSense::LessEqual, 1.0));
  EXPECT_THROW((void)solve(p), std::invalid_argument);
}

TEST(Simplex, ValidatesNaN) {
  Problem p = Problem::with_vars(1);
  p.objective = {std::nan("")};
  EXPECT_THROW((void)solve(p), std::invalid_argument);
}

TEST(Simplex, ValidatesInvertedBounds) {
  Problem p = Problem::with_vars(1);
  p.lower = {3.0};
  p.upper = {1.0};
  EXPECT_THROW((void)solve(p), std::invalid_argument);
}

TEST(Simplex, TransportationProblem) {
  // Classic 2x2 transportation: supplies {3, 4}, demands {2, 5},
  // costs {{8, 6}, {9, 5}}; optimum = 2*8 + 1*6 + 4*5 = 16+6+20 = 42?
  // Check: ship x11=2, x12=1, x22=4 -> cost 16 + 6 + 20 = 42.
  Problem p = Problem::with_vars(4);  // x11 x12 x21 x22
  p.objective = {8.0, 6.0, 9.0, 5.0};
  p.rows.push_back(make_row({{0, 1.0}, {1, 1.0}}, RowSense::Equal, 3.0));
  p.rows.push_back(make_row({{2, 1.0}, {3, 1.0}}, RowSense::Equal, 4.0));
  p.rows.push_back(make_row({{0, 1.0}, {2, 1.0}}, RowSense::Equal, 2.0));
  p.rows.push_back(make_row({{1, 1.0}, {3, 1.0}}, RowSense::Equal, 5.0));
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, 42.0, kTol);
}

/// Property sweep: random feasible LPs — the returned point must satisfy
/// every constraint, and must be at least as good as a known feasible point.
class SimplexRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomTest, OptimalIsFeasibleAndBeatsReference) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = static_cast<int>(rng.uniform_int(2, 6));
  const int m = static_cast<int>(rng.uniform_int(1, 5));

  // Construct a random feasible point and rows that admit it.
  std::vector<double> reference(static_cast<std::size_t>(n));
  for (auto& v : reference) v = static_cast<double>(rng.uniform_int(0, 5));

  Problem p = Problem::with_vars(n);
  for (int j = 0; j < n; ++j) {
    p.objective[static_cast<std::size_t>(j)] =
        static_cast<double>(rng.uniform_int(-5, 5));
    p.upper[static_cast<std::size_t>(j)] = 10.0;  // keep bounded
  }
  for (int r = 0; r < m; ++r) {
    Row row;
    row.sense = RowSense::LessEqual;
    double lhs_at_reference = 0.0;
    for (int j = 0; j < n; ++j) {
      const double c = static_cast<double>(rng.uniform_int(-3, 3));
      if (c != 0.0) row.coeffs.emplace_back(j, c);
      lhs_at_reference += c * reference[static_cast<std::size_t>(j)];
    }
    row.rhs = lhs_at_reference + static_cast<double>(rng.uniform_int(0, 4));
    p.rows.push_back(std::move(row));
  }

  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  // Feasibility of the returned point.
  for (const auto& row : p.rows) {
    double lhs = 0.0;
    for (const auto& [idx, val] : row.coeffs)
      lhs += val * s.x[static_cast<std::size_t>(idx)];
    EXPECT_LE(lhs, row.rhs + 1e-6);
  }
  for (int j = 0; j < n; ++j) {
    EXPECT_GE(s.x[static_cast<std::size_t>(j)], -1e-9);
    EXPECT_LE(s.x[static_cast<std::size_t>(j)], 10.0 + 1e-9);
  }
  // Optimality vs the known feasible reference point.
  double reference_obj = 0.0;
  for (int j = 0; j < n; ++j)
    reference_obj +=
        p.objective[static_cast<std::size_t>(j)] * reference[static_cast<std::size_t>(j)];
  EXPECT_LE(s.objective, reference_obj + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest, ::testing::Range(1, 41));

}  // namespace
}  // namespace wtam::lp
