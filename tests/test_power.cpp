#include <gtest/gtest.h>

#include <numeric>

#include "core/co_optimizer.hpp"
#include "core/power.hpp"
#include "core/test_time_table.hpp"
#include "soc/benchmarks.hpp"

namespace wtam::core {
namespace {

class PowerFixture : public ::testing::Test {
 protected:
  static const TestTimeTable& table() {
    static const soc::Soc soc = soc::d695();
    static const TestTimeTable table(soc, 32);
    return table;
  }
  static TamArchitecture architecture() {
    return co_optimize_fixed_b(table(), 32, 3, {}).architecture;
  }
  static PowerVector power() { return scan_activity_power(table().soc()); }
};

TEST_F(PowerFixture, ScanActivityModelValues) {
  const PowerVector p = power();
  ASSERT_EQ(p.size(), 10u);
  // c6288: 32+32 I/Os, no scan.
  EXPECT_EQ(p[0], 64);
  // s9234: 36+39 I/Os + 212 scan bits.
  EXPECT_EQ(p[3], 36 + 39 + 212);
}

TEST_F(PowerFixture, ProfileStepsAreConsistent) {
  const auto schedule = build_schedule(table(), architecture());
  const auto profile = power_profile(schedule, power());
  ASSERT_FALSE(profile.empty());
  for (const auto& step : profile) {
    EXPECT_LT(step.start, step.end);
    EXPECT_GT(step.power, 0);
  }
  // Steps are non-overlapping and ordered.
  for (std::size_t i = 1; i < profile.size(); ++i)
    EXPECT_LE(profile[i - 1].end, profile[i].start);
}

TEST_F(PowerFixture, InitialPowerIsSumOfFirstSessions) {
  // At t=0 every TAM starts its first core, so the first step's power is
  // the sum of those cores' powers.
  const auto arch = architecture();
  const auto schedule = build_schedule(table(), arch);
  const auto p = power();
  std::int64_t expected = 0;
  for (const auto& entry : schedule.entries)
    if (entry.start == 0) expected += p[static_cast<std::size_t>(entry.core)];
  const auto profile = power_profile(schedule, p);
  ASSERT_FALSE(profile.empty());
  EXPECT_EQ(profile.front().start, 0);
  EXPECT_EQ(profile.front().power, expected);
}

TEST_F(PowerFixture, PeakBoundsSanity) {
  const auto schedule = build_schedule(table(), architecture());
  const auto p = power();
  const std::int64_t peak = peak_power(schedule, p);
  const std::int64_t total = std::accumulate(p.begin(), p.end(), std::int64_t{0});
  const std::int64_t largest = *std::max_element(p.begin(), p.end());
  EXPECT_GE(peak, largest);  // the largest core is active at some point
  EXPECT_LE(peak, total);
}

TEST_F(PowerFixture, UnlimitedBudgetReproducesUnconstrainedSchedule) {
  const auto arch = architecture();
  const auto p = power();
  const std::int64_t total = std::accumulate(p.begin(), p.end(), std::int64_t{0});
  const auto result = schedule_with_power_limit(table(), arch, p, total);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.idle_cycles, 0);
  EXPECT_EQ(result.schedule.makespan, arch.testing_time);
}

TEST_F(PowerFixture, TightBudgetRespectedAtCostOfTime) {
  const auto arch = architecture();
  const auto p = power();
  const std::int64_t unconstrained_peak =
      peak_power(build_schedule(table(), arch), p);
  const std::int64_t limit = unconstrained_peak - 1;  // force serialization
  const auto result = schedule_with_power_limit(table(), arch, p, limit);
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.peak, limit);
  EXPECT_GE(result.schedule.makespan, arch.testing_time);
  EXPECT_GT(result.idle_cycles, 0);
}

TEST_F(PowerFixture, BudgetBelowSingleCoreIsInfeasible) {
  const auto arch = architecture();
  const auto p = power();
  const std::int64_t largest = *std::max_element(p.begin(), p.end());
  const auto result = schedule_with_power_limit(table(), arch, p, largest - 1);
  EXPECT_FALSE(result.feasible);
}

TEST_F(PowerFixture, MinimalBudgetFullySerializes) {
  // Budget == largest single power: sessions can never overlap two large
  // cores; with equality to the max, at least the biggest runs alone.
  const auto arch = architecture();
  const auto p = power();
  const std::int64_t largest = *std::max_element(p.begin(), p.end());
  const auto result = schedule_with_power_limit(table(), arch, p, largest);
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.peak, largest);
  // Fully or mostly serialized: makespan approaches the serial sum.
  EXPECT_GT(result.schedule.makespan, arch.testing_time);
}

TEST_F(PowerFixture, ConstrainedScheduleStillRunsEveryCoreOnce) {
  const auto arch = architecture();
  const auto p = power();
  const std::int64_t largest = *std::max_element(p.begin(), p.end());
  const auto result = schedule_with_power_limit(table(), arch, p, largest + 500);
  ASSERT_TRUE(result.feasible);
  std::vector<int> count(static_cast<std::size_t>(table().core_count()), 0);
  for (const auto& entry : result.schedule.entries)
    ++count[static_cast<std::size_t>(entry.core)];
  for (const int c : count) EXPECT_EQ(c, 1);
  // Per-TAM sequences stay disjoint.
  for (int tam = 0; tam < arch.tam_count(); ++tam) {
    std::int64_t clock = -1;
    for (const auto& entry : result.schedule.entries) {
      if (entry.tam != tam) continue;
      EXPECT_GE(entry.start, clock);
      clock = entry.end;
    }
  }
}

TEST_F(PowerFixture, PowerVectorSizeChecked) {
  const auto arch = architecture();
  PowerVector wrong(3, 10);
  EXPECT_THROW(
      (void)schedule_with_power_limit(table(), arch, wrong, 1000),
      std::invalid_argument);
}

TEST(PowerProfile, ThrowsOnShortPowerVector) {
  TestSchedule schedule;
  schedule.entries.push_back({5, 0, 0, 10});
  PowerVector p(2, 1);
  EXPECT_THROW((void)power_profile(schedule, p), std::invalid_argument);
}

// --- Span-level window helpers (shared by the packers and validator) ---

/// Brute force: max over every instant in [start, start + duration) of the
/// sum of covering spans.
std::int64_t brute_peak(const std::vector<PowerSpan>& spans,
                        std::int64_t start, std::int64_t duration) {
  std::int64_t peak = 0;
  for (std::int64_t t = start; t < start + duration; ++t) {
    std::int64_t total = 0;
    for (const auto& span : spans)
      if (span.start <= t && t < span.end) total += span.power;
    peak = std::max(peak, total);
  }
  return peak;
}

TEST(PowerSpans, WindowPeakMatchesBruteForce) {
  const std::vector<PowerSpan> spans = {
      {0, 4, 3}, {2, 6, 5}, {5, 9, 2}, {1, 8, 1}, {10, 12, 7}};
  for (std::int64_t start = 0; start <= 13; ++start)
    for (std::int64_t duration = 1; duration <= 13; ++duration)
      EXPECT_EQ(peak_power_over_window(spans, start, duration),
                brute_peak(spans, start, duration))
          << "window [" << start << ", " << start + duration << ")";
  EXPECT_EQ(peak_power_over_window(spans, 0, 0), 0);
  EXPECT_EQ(peak_power_over_window({}, 0, 100), 0);
}

TEST(PowerSpans, WindowFitsMatchesPeakDefinition) {
  const std::vector<PowerSpan> spans = {{0, 5, 4}, {3, 8, 2}, {6, 10, 5}};
  for (std::int64_t start = 0; start <= 11; ++start)
    for (std::int64_t duration = 1; duration <= 11; ++duration)
      for (std::int64_t power = 0; power <= 6; ++power)
        for (const std::int64_t budget : {1, 5, 7, 9, 12}) {
          const bool expected =
              brute_peak(spans, start, duration) + power <= budget;
          EXPECT_EQ(power_window_fits(spans, start, duration, power, budget),
                    expected)
              << "window [" << start << ", " << start + duration
              << ") power " << power << " budget " << budget;
        }
}

TEST(PowerSpans, WindowFitsUnconstrainedAndDegenerate) {
  const std::vector<PowerSpan> spans = {{0, 10, 100}};
  // budget <= 0 means unconstrained.
  EXPECT_TRUE(power_window_fits(spans, 0, 10, 1000, 0));
  EXPECT_TRUE(power_window_fits(spans, 0, 10, 1000, -1));
  // The rectangle alone may exceed the budget.
  EXPECT_FALSE(power_window_fits({}, 0, 10, 11, 10));
  // Empty window always fits when the rectangle's own power does.
  EXPECT_TRUE(power_window_fits(spans, 0, 0, 5, 6));
}

TEST(PowerSpans, GlobalPeakSweepLine) {
  EXPECT_EQ(peak_power(std::span<const PowerSpan>{}), 0);
  const std::vector<PowerSpan> spans = {
      {0, 4, 3}, {2, 6, 5}, {5, 9, 2}, {4, 4, 50}, {3, 2, 50}, {1, 7, 0}};
  // Degenerate (empty or reversed) and zero-power spans are ignored;
  // the true peak is 3 + 5 = 8 over [2, 4).
  EXPECT_EQ(peak_power(spans), 8);
  // Half-open: abutting spans never stack.
  const std::vector<PowerSpan> abut = {{0, 5, 4}, {5, 10, 4}};
  EXPECT_EQ(peak_power(abut), 4);
}

}  // namespace
}  // namespace wtam::core
