#include <gtest/gtest.h>

#include "core/test_time_table.hpp"
#include "core/time_provider.hpp"
#include "soc/benchmarks.hpp"
#include "wrapper/wrapper.hpp"

namespace wtam::core {
namespace {

TEST(TestTimeTable, RejectsBadWidth) {
  const soc::Soc soc = soc::d695();
  EXPECT_THROW((void)TestTimeTable(soc, 0), std::invalid_argument);
}

TEST(TestTimeTable, MonotoneNonIncreasingPerCore) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 64);
  for (int i = 0; i < table.core_count(); ++i)
    for (int w = 2; w <= 64; ++w)
      EXPECT_LE(table.time(i, w), table.time(i, w - 1))
          << soc.cores[static_cast<std::size_t>(i)].name << " w=" << w;
}

TEST(TestTimeTable, MatchesBestDesign) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 48);
  for (int i = 0; i < table.core_count(); ++i) {
    for (int w : {1, 3, 8, 17, 48}) {
      EXPECT_EQ(table.time(i, w),
                wrapper::best_design(soc.cores[static_cast<std::size_t>(i)], w)
                    .test_time);
    }
  }
}

TEST(TestTimeTable, UsedWidthAttainsTheTime) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 40);
  for (int i = 0; i < table.core_count(); ++i) {
    for (int w : {5, 16, 40}) {
      const int used = table.used_width(i, w);
      EXPECT_GE(used, 1);
      EXPECT_LE(used, w);
      EXPECT_EQ(
          wrapper::test_time(soc.cores[static_cast<std::size_t>(i)], used),
          table.time(i, w));
    }
  }
}

TEST(TestTimeTable, IndexChecks) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 16);
  EXPECT_THROW((void)table.time(-1, 4), std::out_of_range);
  EXPECT_THROW((void)table.time(10, 4), std::out_of_range);
  EXPECT_THROW((void)table.time(0, 0), std::out_of_range);
  EXPECT_THROW((void)table.time(0, 17), std::out_of_range);
}

TEST(TestTimeTable, TotalTimeIsColumnSum) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 16);
  std::int64_t expected = 0;
  for (int i = 0; i < table.core_count(); ++i) expected += table.time(i, 8);
  EXPECT_EQ(table.total_time(8), expected);
}

TEST(ExplicitTimeMatrix, LooksUpByWidth) {
  const ExplicitTimeMatrix matrix({8, 16, 32},
                                  {{200, 100, 50}, {200, 95, 75}});
  EXPECT_EQ(matrix.core_count(), 2);
  EXPECT_EQ(matrix.max_width(), 32);
  EXPECT_EQ(matrix.time(0, 16), 100);
  EXPECT_EQ(matrix.time(1, 8), 200);
}

TEST(ExplicitTimeMatrix, RejectsUnknownWidthAndBadCore) {
  const ExplicitTimeMatrix matrix({8}, {{1}});
  EXPECT_THROW((void)matrix.time(0, 9), std::out_of_range);
  EXPECT_THROW((void)matrix.time(2, 8), std::out_of_range);
}

TEST(ExplicitTimeMatrix, RejectsMalformedConstruction) {
  EXPECT_THROW(ExplicitTimeMatrix({}, {}), std::invalid_argument);
  EXPECT_THROW(ExplicitTimeMatrix({4, 4}, {{1, 2}}), std::invalid_argument);
  EXPECT_THROW(ExplicitTimeMatrix({0}, {{1}}), std::invalid_argument);
  EXPECT_THROW(ExplicitTimeMatrix({4, 8}, {{1}}), std::invalid_argument);
}

}  // namespace
}  // namespace wtam::core
