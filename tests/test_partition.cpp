#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "partition/partition.hpp"

namespace wtam::partition {
namespace {

TEST(CountExact, KnownSmallValues) {
  EXPECT_EQ(count_exact(1, 1), 1u);
  EXPECT_EQ(count_exact(5, 1), 1u);
  EXPECT_EQ(count_exact(5, 2), 2u);   // 1+4, 2+3
  EXPECT_EQ(count_exact(10, 4), 9u);
  EXPECT_EQ(count_exact(10, 3), 8u);
  EXPECT_EQ(count_exact(3, 4), 0u);   // more parts than units
}

TEST(CountExact, TwoPartsIsFloorHalf) {
  // The paper notes P(W, 2) = floor(W/2).
  for (int w = 2; w <= 80; ++w)
    EXPECT_EQ(count_exact(w, 2), static_cast<std::uint64_t>(w / 2)) << w;
}

TEST(CountExact, RejectsBadArguments) {
  EXPECT_THROW((void)count_exact(0, 1), std::invalid_argument);
  EXPECT_THROW((void)count_exact(5, 0), std::invalid_argument);
}

TEST(ForEachPartition, VisitsNonDecreasingSumsToTotal) {
  for_each_partition(12, 3, [](std::span<const int> parts) {
    int sum = 0;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      sum += parts[i];
      EXPECT_GE(parts[i], 1);
      if (i > 0) {
        EXPECT_LE(parts[i - 1], parts[i]);
      }
    }
    EXPECT_EQ(sum, 12);
    return true;
  });
}

TEST(ForEachPartition, NoDuplicates) {
  std::set<std::vector<int>> seen;
  const auto count = for_each_partition(20, 5, [&](std::span<const int> parts) {
    EXPECT_TRUE(seen.emplace(parts.begin(), parts.end()).second);
    return true;
  });
  EXPECT_EQ(count, seen.size());
}

TEST(ForEachPartition, EarlyStop) {
  std::uint64_t visited = 0;
  const auto count = for_each_partition(30, 3, [&](std::span<const int>) {
    ++visited;
    return visited < 5;
  });
  EXPECT_EQ(count, 5u);
  EXPECT_EQ(visited, 5u);
}

TEST(ForEachPartition, MorePartsThanUnitsVisitsNothing) {
  EXPECT_EQ(for_each_partition(3, 5, [](std::span<const int>) { return true; }),
            0u);
}

TEST(ForEachPartition, FigureThreeExampleOrder) {
  // For W = 10, B = 4 the first partitions are (1,1,1,7), (1,1,2,6), ...
  std::vector<std::vector<int>> first;
  for_each_partition(10, 4, [&](std::span<const int> parts) {
    first.emplace_back(parts.begin(), parts.end());
    return first.size() < 3;
  });
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0], (std::vector<int>{1, 1, 1, 7}));
  EXPECT_EQ(first[1], (std::vector<int>{1, 1, 2, 6}));
  EXPECT_EQ(first[2], (std::vector<int>{1, 1, 3, 5}));
}

/// Enumeration count equals the DP count across the full bench envelope.
class PartitionSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionSweepTest, EnumerationMatchesDpCount) {
  const auto [total, parts] = GetParam();
  const auto enumerated =
      for_each_partition(total, parts, [](std::span<const int>) { return true; });
  EXPECT_EQ(enumerated, count_exact(total, parts));
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndTams, PartitionSweepTest,
    ::testing::Combine(::testing::Values(8, 16, 24, 33, 44, 56, 64),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 8)));

TEST(Estimate, MatchesPaperTable1Column) {
  // Table 1 tabulates P(W, B) ~ W^(B-1)/(B!(B-1)!) for B = 6 and B = 8.
  EXPECT_NEAR(estimate(44, 6), 1909.0, 1.0);
  EXPECT_NEAR(estimate(48, 6), 2949.0, 1.0);
  EXPECT_NEAR(estimate(52, 6), 4401.0, 1.0);
  EXPECT_NEAR(estimate(56, 6), 6374.0, 1.0);
  EXPECT_NEAR(estimate(60, 6), 9000.0, 0.5);
  EXPECT_NEAR(estimate(64, 6), 12428.0, 1.0);
  EXPECT_NEAR(estimate(44, 8), 1571.0, 1.0);
  EXPECT_NEAR(estimate(64, 8), 21643.0, 1.5);
}

TEST(Estimate, ApproachesExactForLargeW) {
  // [10]: the asymptotic estimate is accurate for W >> B.
  const double exact = static_cast<double>(count_exact(200, 3));
  EXPECT_NEAR(estimate(200, 3) / exact, 1.0, 0.08);
}

TEST(RestrictedOdometer, UniqueEqualsExactCount) {
  for (const auto& [w, b] : {std::pair{10, 4}, {20, 3}, {24, 5}, {16, 2}}) {
    const OdometerStats stats = restricted_odometer_stats(w, b);
    EXPECT_EQ(stats.unique, count_exact(w, b)) << w << "," << b;
    EXPECT_EQ(stats.duplicates, stats.tuples - stats.unique);
  }
}

TEST(RestrictedOdometer, BoundRuleLeavesSomeDuplicates) {
  // The paper: "a sizeable number of repeated partitions is prevented" —
  // i.e. not all. For W=10, B=4 the odometer still emits e.g. (1,2,1,6).
  const OdometerStats stats = restricted_odometer_stats(10, 4);
  EXPECT_GT(stats.duplicates, 0u);
  // ...but far fewer than unrestricted composition enumeration.
  const ComparisonStats compositions = comparison_filter_stats(10, 4);
  EXPECT_LT(stats.tuples, compositions.compositions);
}

TEST(RestrictedOdometer, SinglePart) {
  const OdometerStats stats = restricted_odometer_stats(7, 1);
  EXPECT_EQ(stats.tuples, 1u);
  EXPECT_EQ(stats.unique, 1u);
}

TEST(ComparisonFilter, CompositionCountIsBinomial) {
  // Compositions of W into B positive parts: C(W-1, B-1).
  const ComparisonStats stats = comparison_filter_stats(10, 3);
  EXPECT_EQ(stats.compositions, 36u);  // C(9,2)
  EXPECT_EQ(stats.unique, count_exact(10, 3));
  EXPECT_GT(stats.stored_bytes, 0u);
}

TEST(ComparisonFilter, MemoryGrowsWithUnique) {
  const auto small = comparison_filter_stats(16, 4);
  const auto large = comparison_filter_stats(40, 4);
  EXPECT_GT(large.stored_bytes, small.stored_bytes);
}

TEST(MinPart, CountMatchesShiftedPartition) {
  // Parts >= m of W  <=>  parts >= 1 of W - B(m-1).
  EXPECT_EQ(count_exact_min(20, 3, 4), count_exact(11, 3));
  EXPECT_EQ(count_exact_min(10, 4, 1), count_exact(10, 4));
  EXPECT_EQ(count_exact_min(10, 4, 3), 0u);  // 4*3 > 10
}

TEST(MinPart, EnumerationHonorsFloor) {
  std::uint64_t visited = 0;
  const auto count =
      for_each_partition_min(24, 3, 5, [&](std::span<const int> parts) {
        ++visited;
        for (const int p : parts) EXPECT_GE(p, 5);
        int sum = 0;
        for (const int p : parts) sum += p;
        EXPECT_EQ(sum, 24);
        return true;
      });
  EXPECT_EQ(count, visited);
  EXPECT_EQ(count, count_exact_min(24, 3, 5));
}

TEST(MinPart, RejectsBadFloor) {
  EXPECT_THROW((void)count_exact_min(10, 2, 0), std::invalid_argument);
  EXPECT_THROW(
      (void)for_each_partition_min(10, 2, 0,
                                   [](std::span<const int>) { return true; }),
      std::invalid_argument);
}

}  // namespace
}  // namespace wtam::partition
