// Router mechanics against scripted workers (/bin/cat echoes every
// line, tiny sh scripts fake crashes and slow workers), so routing,
// id rewriting, op fan-out/merge, shedding, and crash replay are
// testable without paying for real solves. The full-stack fleet (real
// wtam_serve workers, byte-identity across fleet sizes, crash replay
// of real jobs) runs in cmake/cli_checks.cmake.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "api/json_value.hpp"
#include "common/thread_annotations.hpp"
#include "serve/router.hpp"

namespace wtam::serve {
namespace {

/// Thread-safe sink: collects response lines and lets the test block
/// until a count arrives (readers deliver from their own threads).
class Collector {
 public:
  void operator()(const std::string& line) {
    const common::MutexLock lock(mutex_);
    lines_.push_back(line);
  }

  /// Waits (bounded) until at least `count` lines have arrived.
  [[nodiscard]] bool wait_for(std::size_t count) {
    for (int i = 0; i < 2000; ++i) {
      {
        const common::MutexLock lock(mutex_);
        if (lines_.size() >= count) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  [[nodiscard]] std::vector<std::string> lines() {
    const common::MutexLock lock(mutex_);
    return lines_;
  }

 private:
  common::Mutex mutex_;
  std::vector<std::string> lines_;
};

std::vector<std::string> cat_worker() { return {"/bin/cat"}; }

RouterOptions cat_fleet(int workers, std::uint64_t queue_limit = 0) {
  RouterOptions options;
  for (int i = 0; i < workers; ++i)
    options.workers.push_back(WorkerSpec::local(cat_worker()));
  options.queue_limit = queue_limit;
  return options;
}

const api::JsonValue* find_line_with_id(
    const std::vector<std::string>& lines,
    std::vector<api::JsonValue>& storage, const std::string& id) {
  for (const std::string& line : lines) {
    storage.push_back(api::JsonValue::parse(line));
    const api::JsonValue* found = storage.back().find("id");
    if (found != nullptr &&
        found->kind() == api::JsonValue::Kind::String &&
        found->as_string() == id)
      return &storage.back();
  }
  return nullptr;
}

TEST(Router, RoutesJobsAndRestoresClientIds) {
  auto collector = std::make_shared<Collector>();
  Router router(cat_fleet(2),
                [collector](const std::string& line) { (*collector)(line); });
  // cat workers echo the rewritten request, so the "response" proves
  // both directions of the id rewrite: the wire line carried an
  // internal id, the emitted line carries the client's again.
  for (const char* id : {"alpha", "beta", "gamma", "delta"}) {
    std::string line = "{\"id\": \"";
    line += id;
    line += "\", \"soc\": \"d695\", \"width\": 32}";
    EXPECT_TRUE(router.handle_line(line));
  }
  ASSERT_TRUE(collector->wait_for(4));
  std::vector<api::JsonValue> storage;
  const std::vector<std::string> lines = collector->lines();
  for (const char* id : {"alpha", "beta", "gamma", "delta"}) {
    const api::JsonValue* response = find_line_with_id(lines, storage, id);
    ASSERT_NE(response, nullptr) << id;
    // The job body passed through unchanged.
    EXPECT_EQ(response->find("soc")->as_string(), "d695");
    EXPECT_EQ(response->find("width")->as_int(), 32);
  }
  const RouterCounters counters = router.counters();
  EXPECT_EQ(counters.routed, 4u);
  EXPECT_EQ(counters.shed, 0u);
  EXPECT_EQ(counters.respawns, 0u);
  EXPECT_EQ(counters.orphaned, 0u);
}

TEST(Router, SynthesizesIdsInArrivalOrder) {
  auto collector = std::make_shared<Collector>();
  Router router(cat_fleet(2),
                [collector](const std::string& line) { (*collector)(line); });
  EXPECT_TRUE(router.handle_line("{\"soc\": \"d695\", \"width\": 16}"));
  EXPECT_TRUE(router.handle_line("{\"soc\": \"d695\", \"width\": 17}"));
  ASSERT_TRUE(collector->wait_for(2));
  std::vector<api::JsonValue> storage;
  const std::vector<std::string> lines = collector->lines();
  // Arrival order fixes the synthesized ids regardless of fleet size —
  // part of the N=1/2/4 byte-identity story.
  EXPECT_NE(find_line_with_id(lines, storage, "job-1"), nullptr);
  EXPECT_NE(find_line_with_id(lines, storage, "job-2"), nullptr);
}

TEST(Router, MalformedClientLineIsAnsweredDirectly) {
  auto collector = std::make_shared<Collector>();
  Router router(cat_fleet(1),
                [collector](const std::string& line) { (*collector)(line); });
  EXPECT_TRUE(router.handle_line("{not json"));
  EXPECT_TRUE(router.handle_line("{\"op\": 5}"));
  ASSERT_TRUE(collector->wait_for(2));
  for (const std::string& line : collector->lines()) {
    const api::JsonValue value = api::JsonValue::parse(line);
    EXPECT_NE(value.find("error"), nullptr) << line;
  }
  EXPECT_EQ(router.counters().routed, 0u);
}

TEST(Router, OpFanOutMergesAcksAndAddsRouterSections) {
  auto collector = std::make_shared<Collector>();
  Router router(cat_fleet(2),
                [collector](const std::string& line) { (*collector)(line); });
  // cat echoes the op line itself, which doubles as a minimal ack.
  EXPECT_TRUE(router.handle_line("{\"op\": \"stats\"}"));
  ASSERT_TRUE(collector->wait_for(1));
  const api::JsonValue merged =
      api::JsonValue::parse(collector->lines().front());
  EXPECT_EQ(merged.find("op")->as_string(), "stats");
  EXPECT_EQ(merged.find("workers")->as_int(), 2);
  ASSERT_NE(merged.find("router"), nullptr);
  EXPECT_EQ(merged.find("router")->find("routed")->as_int(), 0);
}

TEST(Router, KillWorkerAcksAfterTheRespawnCompletes) {
  auto collector = std::make_shared<Collector>();
  Router router(cat_fleet(2),
                [collector](const std::string& line) { (*collector)(line); });
  EXPECT_TRUE(router.handle_line("{\"op\": \"kill_worker\", \"worker\": 0}"));
  ASSERT_TRUE(collector->wait_for(1));
  const api::JsonValue ack =
      api::JsonValue::parse(collector->lines().front());
  EXPECT_TRUE(ack.find("ok")->as_bool());
  EXPECT_TRUE(ack.find("respawned")->as_bool());
  // Synchronous contract: by ack time the respawn is counted and the
  // slot is live again — no racing the respawn window.
  EXPECT_EQ(router.counters().respawns, 1u);
  EXPECT_TRUE(router.handle_line(
      "{\"id\": \"after\", \"soc\": \"d695\", \"width\": 16}"));
  ASSERT_TRUE(collector->wait_for(2));
  std::vector<api::JsonValue> storage;
  EXPECT_NE(find_line_with_id(collector->lines(), storage, "after"), nullptr);
}

TEST(Router, KillWorkerOutOfRangeIsAnError) {
  auto collector = std::make_shared<Collector>();
  Router router(cat_fleet(1),
                [collector](const std::string& line) { (*collector)(line); });
  EXPECT_TRUE(router.handle_line("{\"op\": \"kill_worker\", \"worker\": 7}"));
  ASSERT_TRUE(collector->wait_for(1));
  const api::JsonValue value =
      api::JsonValue::parse(collector->lines().front());
  EXPECT_NE(value.find("error"), nullptr);
}

TEST(Router, RespawnsDeadWorkerAndReplaysInFlightJobs) {
  // First incarnation: consume one line and die without answering (a
  // crash with a job in flight). The flag file makes every respawn an
  // honest echo worker, so the replay completes.
  const std::string flag =
      ::testing::TempDir() + "router_respawn_flag_" +
      std::to_string(::getpid());
  std::remove(flag.c_str());
  const std::string script = "if [ ! -e '" + flag +
                             "' ]; then : > '" + flag +
                             "'; IFS= read -r line; exit 0; "
                             "else exec /bin/cat; fi";
  RouterOptions options;
  options.workers.push_back(WorkerSpec::local({"/bin/sh", "-c", script}));
  auto collector = std::make_shared<Collector>();
  Router router(std::move(options),
                [collector](const std::string& line) { (*collector)(line); });
  EXPECT_TRUE(router.handle_line(
      "{\"id\": \"survivor\", \"soc\": \"d695\", \"width\": 24}"));
  // The crash eats the job; the respawned cat echoes the replayed line.
  ASSERT_TRUE(collector->wait_for(1));
  std::vector<api::JsonValue> storage;
  const api::JsonValue* response =
      find_line_with_id(collector->lines(), storage, "survivor");
  ASSERT_NE(response, nullptr);
  EXPECT_EQ(response->find("width")->as_int(), 24);
  const RouterCounters counters = router.counters();
  EXPECT_EQ(counters.respawns, 1u);
  EXPECT_EQ(counters.replayed, 1u);
  std::remove(flag.c_str());
}

TEST(Router, ShedsWhenTheTargetWorkerIsAtItsQueueLimit) {
  // The worker holds the first job until a second line arrives, giving
  // a deterministic window in which the queue sits at its limit — no
  // timing assumptions.
  RouterOptions options;
  options.workers.push_back(WorkerSpec::local(
      {"/bin/sh", "-c",
       "IFS= read -r a; IFS= read -r b; "
       "printf '%s\\n' \"$a\" \"$b\"; exec /bin/cat"}));
  options.queue_limit = 1;
  auto collector = std::make_shared<Collector>();
  Router router(std::move(options),
                [collector](const std::string& line) { (*collector)(line); });
  EXPECT_TRUE(router.handle_line(
      "{\"id\": \"held\", \"soc\": \"d695\", \"width\": 16}"));
  // Worker 0 now has one job in flight; the limit is 1 → shed.
  EXPECT_TRUE(router.handle_line(
      "{\"id\": \"refused\", \"soc\": \"d695\", \"width\": 17}"));
  ASSERT_TRUE(collector->wait_for(1));
  std::vector<api::JsonValue> storage;
  const api::JsonValue* shed =
      find_line_with_id(collector->lines(), storage, "refused");
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(shed->find("status")->as_string(), "overloaded");
  EXPECT_NE(shed->find("error"), nullptr);
  // The op broadcast is the worker's second line: it releases the held
  // job and acks the stats, whose router section shows the shed.
  EXPECT_TRUE(router.handle_line("{\"op\": \"stats\"}"));
  ASSERT_TRUE(collector->wait_for(3));
  storage.clear();
  const api::JsonValue* released =
      find_line_with_id(collector->lines(), storage, "held");
  ASSERT_NE(released, nullptr);
  const RouterCounters counters = router.counters();
  EXPECT_EQ(counters.routed, 1u);
  EXPECT_EQ(counters.shed, 1u);
  bool saw_stats = false;
  for (const std::string& line : collector->lines()) {
    const api::JsonValue value = api::JsonValue::parse(line);
    const api::JsonValue* router_section = value.find("router");
    if (router_section == nullptr) continue;
    saw_stats = true;
    EXPECT_EQ(router_section->find("shed")->as_int(), 1);
  }
  EXPECT_TRUE(saw_stats);
}

TEST(Router, ShutdownFansOutMergesAndStopsTheFleet) {
  auto collector = std::make_shared<Collector>();
  Router router(cat_fleet(2),
                [collector](const std::string& line) { (*collector)(line); });
  EXPECT_FALSE(router.handle_line("{\"op\": \"shutdown\"}"));
  ASSERT_TRUE(collector->wait_for(1));
  const api::JsonValue ack =
      api::JsonValue::parse(collector->lines().back());
  EXPECT_EQ(ack.find("op")->as_string(), "shutdown");
  EXPECT_EQ(ack.find("workers")->as_int(), 2);
  // Idempotent: a second shutdown (or the EOF path) is a no-op.
  EXPECT_FALSE(router.handle_line("{\"op\": \"shutdown\"}"));
  router.shutdown();
}

TEST(Router, EmptyFleetIsRejected) {
  EXPECT_THROW(Router(RouterOptions{}, [](const std::string&) {}),
               std::invalid_argument);
}

TEST(Router, MissingWorkerBinaryFailsTheBoot) {
  RouterOptions options;
  options.workers.push_back(
      WorkerSpec::local({"/nonexistent/worker/binary/hopefully"}));
  EXPECT_THROW(Router(std::move(options), [](const std::string&) {}),
               std::runtime_error);
}

TEST(Router, PingIsAnsweredByTheRouterItselfAndEchoesSeq) {
  auto collector = std::make_shared<Collector>();
  Router router(cat_fleet(2),
                [collector](const std::string& line) { (*collector)(line); });
  EXPECT_TRUE(router.handle_line("{\"op\": \"ping\", \"seq\": 41}"));
  ASSERT_TRUE(collector->wait_for(1));
  const api::JsonValue ack =
      api::JsonValue::parse(collector->lines().front());
  EXPECT_EQ(ack.find("op")->as_string(), "ping");
  EXPECT_TRUE(ack.find("ok")->as_bool());
  EXPECT_EQ(ack.find("seq")->as_int(), 41);
  EXPECT_EQ(ack.find("workers")->as_int(), 2);
  // cat workers never saw a line: the router answers pings itself, so a
  // busy fleet cannot make the router look dead.
  EXPECT_EQ(router.counters().routed, 0u);
}

TEST(Router, HealthThreadSeversAWorkerThatNeverPongs) {
  // cat echoes the ping line verbatim — which IS a valid pong (op ping,
  // seq echoed), so a healthy cat worker survives the health thread.
  // A worker that swallows input (sh reading forever without printing)
  // misses its deadline, is severed, and comes back as a cat.
  const std::string flag =
      ::testing::TempDir() + "router_health_flag_" +
      std::to_string(::getpid());
  std::remove(flag.c_str());
  const std::string script = "if [ ! -e '" + flag + "' ]; then : > '" +
                             flag +
                             "'; while IFS= read -r line; do :; done; "
                             "else exec /bin/cat; fi";
  RouterOptions options;
  options.workers.push_back(WorkerSpec::local({"/bin/sh", "-c", script}));
  options.workers.push_back(WorkerSpec::local(cat_worker()));
  options.ping_interval = std::chrono::milliseconds(50);
  options.ping_deadline = std::chrono::milliseconds(200);
  auto collector = std::make_shared<Collector>();
  Router router(std::move(options),
                [collector](const std::string& line) { (*collector)(line); });
  // Wait (bounded) for the health thread to sever the mute worker and
  // for its replacement to boot. The respawn happens on the reader
  // thread after the sever lands, so poll for both counters.
  bool recovered = false;
  for (int i = 0; i < 2000 && !recovered; ++i) {
    const RouterCounters snap = router.counters();
    recovered = snap.health_severed >= 1 && snap.respawns >= 1;
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(recovered);
  EXPECT_GE(router.counters().pings, 1u);
  // The fleet still works end to end after the sever+respawn.
  EXPECT_TRUE(router.handle_line(
      "{\"id\": \"after-sever\", \"soc\": \"d695\", \"width\": 16}"));
  std::vector<api::JsonValue> storage;
  bool answered = false;
  for (int i = 0; i < 2000 && !answered; ++i) {
    answered = find_line_with_id(collector->lines(), storage,
                                 "after-sever") != nullptr;
    storage.clear();
    if (!answered) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(answered);
  std::remove(flag.c_str());
}

TEST(Router, ResizeWithoutAFleetFactoryIsRefused) {
  auto collector = std::make_shared<Collector>();
  Router router(cat_fleet(2),
                [collector](const std::string& line) { (*collector)(line); });
  EXPECT_TRUE(router.handle_line("{\"op\": \"resize\", \"workers\": 3}"));
  ASSERT_TRUE(collector->wait_for(1));
  const api::JsonValue value =
      api::JsonValue::parse(collector->lines().front());
  EXPECT_NE(value.find("error"), nullptr);
  EXPECT_EQ(router.counters().resizes, 0u);
}

TEST(Router, ResizeRebootsTheFleetAtTheNewSize) {
  RouterOptions options;
  options.workers = {WorkerSpec::local(cat_worker()),
                     WorkerSpec::local(cat_worker())};
  options.fleet_factory = [](std::size_t count) {
    std::vector<WorkerSpec> specs;
    for (std::size_t i = 0; i < count; ++i)
      specs.push_back(WorkerSpec::local(cat_worker()));
    return specs;
  };
  auto collector = std::make_shared<Collector>();
  Router router(std::move(options),
                [collector](const std::string& line) { (*collector)(line); });
  EXPECT_TRUE(router.handle_line("{\"op\": \"resize\", \"workers\": 3}"));
  ASSERT_TRUE(collector->wait_for(1));
  const api::JsonValue ack =
      api::JsonValue::parse(collector->lines().front());
  ASSERT_EQ(ack.find("op")->as_string(), "resize") << collector->lines().front();
  EXPECT_TRUE(ack.find("ok")->as_bool());
  EXPECT_EQ(ack.find("workers")->as_int(), 3);
  EXPECT_EQ(router.workers(), 3);
  EXPECT_EQ(router.counters().resizes, 1u);
  // The rebooted fleet routes jobs as before.
  EXPECT_TRUE(router.handle_line(
      "{\"id\": \"post-resize\", \"soc\": \"d695\", \"width\": 20}"));
  ASSERT_TRUE(collector->wait_for(2));
  std::vector<api::JsonValue> storage;
  EXPECT_NE(find_line_with_id(collector->lines(), storage, "post-resize"),
            nullptr);
}

}  // namespace
}  // namespace wtam::serve
