#include <gtest/gtest.h>

#include <numeric>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "soc/benchmarks.hpp"
#include "wrapper/wrapper.hpp"

namespace wtam::wrapper {
namespace {

soc::Core make_core(std::string name, std::int64_t patterns, int in, int out,
                    std::vector<int> chains, int bidirs = 0) {
  soc::Core core;
  core.name = std::move(name);
  core.test_patterns = patterns;
  core.num_inputs = in;
  core.num_outputs = out;
  core.num_bidirs = bidirs;
  core.scan_chains = std::move(chains);
  return core;
}

TEST(TestTimeFormula, MatchesPaperDefinition) {
  // T = (1 + max(si,so)) * p + min(si,so).
  EXPECT_EQ(test_time_formula(105, 54, 54), (1 + 54) * 105 + 54);
  EXPECT_EQ(test_time_formula(10, 3, 7), (1 + 7) * 10 + 3);
  EXPECT_EQ(test_time_formula(10, 7, 3), (1 + 7) * 10 + 3);
  EXPECT_EQ(test_time_formula(0, 5, 5), 5);
  EXPECT_EQ(test_time_formula(7, 0, 0), 7);
}

TEST(DesignWrapper, RejectsNonPositiveWidth) {
  const soc::Core core = make_core("x", 1, 1, 1, {});
  EXPECT_THROW((void)design_wrapper(core, 0), std::invalid_argument);
}

TEST(DesignWrapper, S9234ReachesKnownMinimum) {
  // The well-known d695 anchor: s9234 bottoms out at 5829 cycles.
  const soc::Core s9234 = soc::d695().cores[3];
  EXPECT_EQ(test_time(s9234, 8), 5829);
  EXPECT_EQ(test_time(s9234, 16), 5829);
  EXPECT_EQ(best_design(s9234, 64).test_time, 5829);
}

TEST(DesignWrapper, CombinationalCoreScalesWithWidth) {
  const soc::Core c6288 = soc::d695().cores[0];  // 12 patterns, 32 in, 32 out
  // At width 8: si = so = ceil(32/8) = 4 -> (1+4)*12 + 4 = 64.
  EXPECT_EQ(test_time(c6288, 8), 64);
  // At width 32: one cell per chain -> (1+1)*12 + 1 = 25.
  EXPECT_EQ(test_time(c6288, 32), 25);
}

TEST(DesignWrapper, SingleChainCoreIsFlat) {
  // s838: one internal chain of 32 dominates at any width >= 2.
  const soc::Core s838 = soc::d695().cores[2];
  const std::int64_t floor_time = soc::min_test_time_bound(s838);
  EXPECT_EQ(test_time(s838, 8), floor_time);
  EXPECT_EQ(test_time(s838, 64), floor_time);
}

TEST(DesignWrapper, ScanInDominatedByLongestChain) {
  const soc::Core core = make_core("c", 10, 5, 5, {100, 30, 30, 30});
  for (int w = 1; w <= 8; ++w) {
    const WrapperDesign design = design_wrapper(core, w);
    EXPECT_GE(design.scan_in_length, 100) << "w=" << w;
    EXPECT_GE(design.scan_out_length, 100) << "w=" << w;
  }
}

TEST(DesignWrapper, WidthOneConcatenatesEverything) {
  const soc::Core core = make_core("c", 4, 3, 2, {5, 6});
  const WrapperDesign design = design_wrapper(core, 1);
  EXPECT_EQ(design.scan_in_length, 5 + 6 + 3);
  EXPECT_EQ(design.scan_out_length, 5 + 6 + 2);
  EXPECT_EQ(design.used_width, 1);
}

TEST(DesignWrapper, CellsAreConserved) {
  const soc::Core core = make_core("c", 4, 13, 7, {9, 4, 4}, 3);
  const WrapperDesign design = design_wrapper(core, 5);
  std::int64_t in = 0;
  std::int64_t out = 0;
  std::int64_t bid = 0;
  for (const auto& chain : design.chains) {
    in += chain.input_cells;
    out += chain.output_cells;
    bid += chain.bidir_cells;
  }
  EXPECT_EQ(in, 13);
  EXPECT_EQ(out, 7);
  EXPECT_EQ(bid, 3);
}

TEST(DesignWrapper, InternalChainsAssignedExactlyOnce) {
  const soc::Core core = make_core("c", 4, 2, 2, {9, 4, 4, 7, 1});
  const WrapperDesign design = design_wrapper(core, 3);
  std::vector<int> seen;
  for (const auto& chain : design.chains) {
    std::int64_t bits = 0;
    for (const int idx : chain.internal_chain_indices) {
      seen.push_back(idx);
      bits += core.scan_chains[static_cast<std::size_t>(idx)];
    }
    EXPECT_EQ(bits, chain.scan_bits);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(DesignWrapper, SiSoAreTheChainMaxima) {
  const soc::Core core = make_core("c", 4, 10, 20, {8, 8});
  const WrapperDesign design = design_wrapper(core, 4);
  std::int64_t max_in = 0;
  std::int64_t max_out = 0;
  for (const auto& chain : design.chains) {
    max_in = std::max(max_in, chain.scan_in_length());
    max_out = std::max(max_out, chain.scan_out_length());
  }
  EXPECT_EQ(design.scan_in_length, max_in);
  EXPECT_EQ(design.scan_out_length, max_out);
}

TEST(DesignWrapper, BidirCellsCountOnBothSides) {
  const soc::Core core = make_core("c", 1, 0, 0, {}, 12);
  const WrapperDesign design = design_wrapper(core, 4);
  EXPECT_EQ(design.scan_in_length, 3);   // ceil(12/4)
  EXPECT_EQ(design.scan_out_length, 3);
}

TEST(DesignWrapper, UsedWidthReluctance) {
  // One long chain and shorter ones that fit under it: few chains needed.
  const soc::Core core = make_core("c", 10, 0, 0, {100, 30, 30, 30});
  const WrapperDesign design = design_wrapper(core, 16);
  EXPECT_EQ(design.scan_in_length, 100);
  EXPECT_LE(design.used_width, 2);  // {100} and {30+30+30}
}

TEST(DesignWrapper, UsedWidthNeverExceedsRequested) {
  const soc::Core core = soc::d695().cores[4];  // s38584
  for (int w = 1; w <= 40; ++w)
    EXPECT_LE(design_wrapper(core, w).used_width, w);
}

TEST(DesignWrapper, ZeroPatternCore) {
  const soc::Core core = make_core("z", 0, 4, 4, {8});
  const WrapperDesign design = design_wrapper(core, 2);
  EXPECT_EQ(design.test_time, design.scan_in_length < design.scan_out_length
                                  ? design.scan_in_length
                                  : design.scan_out_length);
}

TEST(BestDesign, MonotoneEnvelope) {
  const soc::Core core = soc::d695().cores[5];  // s13207
  std::int64_t previous = -1;
  for (int w = 1; w <= 64; ++w) {
    const std::int64_t t = best_design(core, w).test_time;
    if (previous >= 0) {
      EXPECT_LE(t, previous) << "w=" << w;
    }
    previous = t;
  }
}

TEST(BestDesign, ReachesFloorAtLargeWidth) {
  // The floor needs enough width for one cell per wrapper chain on the
  // I/O-heaviest core (c7552 has 207 inputs), so test beyond that.
  for (const auto& core : soc::d695().cores) {
    EXPECT_EQ(best_design(core, 300).test_time, soc::min_test_time_bound(core))
        << core.name;
  }
}

TEST(ParetoWidths, StrictlyDecreasingTimes) {
  const soc::Core core = soc::d695().cores[9];  // s38417
  const std::vector<int> widths = pareto_widths(core, 64);
  ASSERT_FALSE(widths.empty());
  EXPECT_EQ(widths.front(), 1);
  std::int64_t previous = -1;
  for (const int w : widths) {
    const std::int64_t t = test_time(core, w);
    if (previous >= 0) {
      EXPECT_LT(t, previous);
    }
    previous = t;
  }
}

TEST(ParetoWidths, FlatCoreHasSingleEntryAfterSaturation) {
  // s838 saturates immediately at width 2 (chain 32 + 34 inputs).
  const soc::Core s838 = soc::d695().cores[2];
  const std::vector<int> widths = pareto_widths(s838, 64);
  EXPECT_LE(widths.size(), 4u);
  EXPECT_LE(widths.back(), 4);
}

TEST(DesignWrapper, BfdCapacityRelaxation) {
  // {5,4,3,3,3} into 3 wrapper chains: the scheduling lower bound is
  // max(5, ceil(18/3)) = 6, but no 3-bin packing with capacity 6 exists
  // for BFD here — the loop must relax to 7 and still use 3 chains.
  const soc::Core core = make_core("relax", 10, 0, 0, {5, 4, 3, 3, 3});
  const WrapperDesign design = design_wrapper(core, 3);
  EXPECT_EQ(design.scan_in_length, 7);
  EXPECT_LE(design.used_width, 3);
  int non_empty = 0;
  for (const auto& chain : design.chains)
    if (!chain.empty()) ++non_empty;
  EXPECT_EQ(non_empty, 3);
}

TEST(DesignWrapperNaive, NeverBeatsBalancedDesign) {
  for (const auto& core : soc::d695().cores) {
    for (const int w : {2, 4, 8, 16}) {
      EXPECT_GE(design_wrapper_naive(core, w).test_time,
                design_wrapper(core, w).test_time)
          << core.name << " w=" << w;
    }
  }
}

TEST(DesignWrapperNaive, RoundRobinShape) {
  const soc::Core core = make_core("rr", 5, 4, 4, {10, 20, 30});
  const WrapperDesign design = design_wrapper_naive(core, 2);
  // Chains 0,2 -> wire 0 (10+30), chain 1 -> wire 1 (20).
  EXPECT_EQ(design.chains[0].scan_bits, 40);
  EXPECT_EQ(design.chains[1].scan_bits, 20);
  // Cells split evenly: 2 inputs + 2 outputs per wire.
  EXPECT_EQ(design.chains[0].input_cells, 2);
  EXPECT_EQ(design.chains[1].input_cells, 2);
  EXPECT_EQ(design.scan_in_length, 42);
  EXPECT_EQ(design.test_time,
            test_time_formula(5, 42, 42));
}

TEST(DesignWrapperNaive, PenaltyOnImbalancedChains) {
  // One long chain + shorts: round-robin stacks them badly at width 2.
  const soc::Core core = make_core("imb", 10, 0, 0, {100, 10, 90, 10});
  const auto balanced = design_wrapper(core, 2);
  const auto naive = design_wrapper_naive(core, 2);
  EXPECT_EQ(balanced.scan_in_length, 110);  // {100,10} | {90,10}
  EXPECT_EQ(naive.scan_in_length, 190);     // {100,90} | {10,10}
  EXPECT_GT(naive.test_time, balanced.test_time);
}

TEST(DesignWrapperNaive, RejectsNonPositiveWidth) {
  const soc::Core core = make_core("x", 1, 1, 1, {});
  EXPECT_THROW((void)design_wrapper_naive(core, 0), std::invalid_argument);
}

/// Property sweep over random cores: structural invariants at many widths.
class WrapperRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(WrapperRandomTest, InvariantsHoldAcrossWidths) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  soc::Core core;
  core.name = "random";
  core.test_patterns = rng.uniform_int(1, 500);
  core.num_inputs = static_cast<int>(rng.uniform_int(0, 120));
  core.num_outputs = static_cast<int>(rng.uniform_int(0, 120));
  core.num_bidirs = static_cast<int>(rng.uniform_int(0, 10));
  const int chains = static_cast<int>(rng.uniform_int(0, 12));
  for (int c = 0; c < chains; ++c)
    core.scan_chains.push_back(static_cast<int>(rng.uniform_int(1, 200)));
  if (core.functional_ios() == 0 && core.scan_chains.empty())
    core.num_inputs = 1;

  const std::int64_t total_bits = core.total_scan_bits();
  const int longest = core.longest_scan_chain();
  for (int w = 1; w <= 24; ++w) {
    const WrapperDesign design = design_wrapper(core, w);
    // si/so dominate the longest indivisible chain...
    EXPECT_GE(design.scan_in_length, longest);
    EXPECT_GE(design.scan_out_length, longest);
    // ...and the perfect-balance lower bounds.
    EXPECT_GE(design.scan_in_length,
              common::ceil_div(total_bits + core.num_inputs + core.num_bidirs, w));
    EXPECT_GE(design.scan_out_length,
              common::ceil_div(total_bits + core.num_outputs + core.num_bidirs, w));
    EXPECT_EQ(design.test_time,
              test_time_formula(core.test_patterns, design.scan_in_length,
                                design.scan_out_length));
    EXPECT_LE(design.used_width, w);
    EXPECT_EQ(static_cast<int>(design.chains.size()), w);
  }
  // The envelope respects the absolute floor.
  EXPECT_GE(best_design(core, 24).test_time,
            std::min(soc::min_test_time_bound(core),
                     best_design(core, 24).test_time));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WrapperRandomTest, ::testing::Range(1, 41));

}  // namespace
}  // namespace wtam::wrapper
