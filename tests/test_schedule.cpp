#include <gtest/gtest.h>

#include "core/co_optimizer.hpp"
#include "core/schedule.hpp"
#include "core/test_time_table.hpp"
#include "soc/benchmarks.hpp"
#include "wrapper/wrapper.hpp"

namespace wtam::core {
namespace {

class ScheduleFixture : public ::testing::Test {
 protected:
  static const TestTimeTable& table() {
    static const soc::Soc soc = soc::d695();
    static const TestTimeTable table(soc, 32);
    return table;
  }
  static TamArchitecture architecture() {
    return co_optimize_fixed_b(table(), 32, 3, {}).architecture;
  }
};

TEST_F(ScheduleFixture, MakespanEqualsArchitectureTestingTime) {
  const TamArchitecture arch = architecture();
  const TestSchedule schedule = build_schedule(table(), arch);
  EXPECT_EQ(schedule.makespan, arch.testing_time);
  EXPECT_EQ(schedule.tam_finish, arch.tam_times);
}

TEST_F(ScheduleFixture, EveryCoreScheduledExactlyOnce) {
  const TestSchedule schedule = build_schedule(table(), architecture());
  std::vector<int> count(static_cast<std::size_t>(table().core_count()), 0);
  for (const auto& entry : schedule.entries)
    ++count[static_cast<std::size_t>(entry.core)];
  for (const int c : count) EXPECT_EQ(c, 1);
}

TEST_F(ScheduleFixture, SessionsOnATamAreContiguousAndDisjoint) {
  const TamArchitecture arch = architecture();
  const TestSchedule schedule = build_schedule(table(), arch);
  for (int tam = 0; tam < arch.tam_count(); ++tam) {
    std::int64_t clock = 0;
    for (const auto& entry : schedule.entries) {
      if (entry.tam != tam) continue;
      EXPECT_EQ(entry.start, clock);  // back to back, no gaps
      EXPECT_GE(entry.end, entry.start);
      clock = entry.end;
    }
    EXPECT_EQ(clock, schedule.tam_finish[static_cast<std::size_t>(tam)]);
  }
}

TEST_F(ScheduleFixture, SessionDurationsMatchTable) {
  const TamArchitecture arch = architecture();
  const TestSchedule schedule = build_schedule(table(), arch);
  for (const auto& entry : schedule.entries) {
    const int width = arch.widths[static_cast<std::size_t>(entry.tam)];
    EXPECT_EQ(entry.end - entry.start, table().time(entry.core, width));
  }
}

TEST_F(ScheduleFixture, OrderPoliciesPreserveMakespan) {
  // Test-bus model: per-TAM order cannot change completion times.
  const TamArchitecture arch = architecture();
  const auto a = build_schedule(table(), arch, ScheduleOrder::AsAssigned);
  const auto b = build_schedule(table(), arch, ScheduleOrder::LongestFirst);
  const auto c = build_schedule(table(), arch, ScheduleOrder::ShortestFirst);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.makespan, c.makespan);
}

TEST_F(ScheduleFixture, LongestFirstOrdering) {
  const TamArchitecture arch = architecture();
  const auto schedule = build_schedule(table(), arch, ScheduleOrder::LongestFirst);
  for (int tam = 0; tam < arch.tam_count(); ++tam) {
    std::int64_t previous = std::numeric_limits<std::int64_t>::max();
    for (const auto& entry : schedule.entries) {
      if (entry.tam != tam) continue;
      const std::int64_t duration = entry.end - entry.start;
      EXPECT_LE(duration, previous);
      previous = duration;
    }
  }
}

TEST_F(ScheduleFixture, RejectsMalformedArchitecture) {
  TamArchitecture arch = architecture();
  arch.assignment[0] = 99;
  EXPECT_THROW((void)build_schedule(table(), arch), std::invalid_argument);
  TamArchitecture empty;
  EXPECT_THROW((void)build_schedule(table(), empty), std::invalid_argument);
  TamArchitecture short_assignment = architecture();
  short_assignment.assignment.pop_back();
  EXPECT_THROW((void)build_schedule(table(), short_assignment),
               std::invalid_argument);
}

TEST_F(ScheduleFixture, WireUtilizationBounds) {
  const TamArchitecture arch = architecture();
  const auto report = wire_utilization(table(), arch);
  ASSERT_EQ(report.size(), static_cast<std::size_t>(arch.tam_count()));
  for (const auto& u : report) {
    EXPECT_GE(u.max_used_width, 0);
    EXPECT_LE(u.max_used_width, u.width);
    EXPECT_EQ(u.idle_wires, u.width - u.max_used_width);
    EXPECT_GE(u.time_weighted_utilization, 0.0);
    EXPECT_LE(u.time_weighted_utilization, 1.0 + 1e-9);
  }
}

TEST_F(ScheduleFixture, UsedWidthMatchesWrapperDesigns) {
  const TamArchitecture arch = architecture();
  const auto report = wire_utilization(table(), arch);
  const auto& soc = table().soc();
  for (int tam = 0; tam < arch.tam_count(); ++tam) {
    int expected_max = 0;
    for (int i = 0; i < table().core_count(); ++i) {
      if (arch.assignment[static_cast<std::size_t>(i)] != tam) continue;
      const int w = arch.widths[static_cast<std::size_t>(tam)];
      const auto design =
          wrapper::best_design(soc.cores[static_cast<std::size_t>(i)], w);
      expected_max = std::max(expected_max, design.tam_width);
    }
    EXPECT_EQ(report[static_cast<std::size_t>(tam)].max_used_width, expected_max);
  }
}

TEST_F(ScheduleFixture, GanttRendersAllTams) {
  const TamArchitecture arch = architecture();
  const auto schedule = build_schedule(table(), arch);
  const std::string gantt = render_gantt(schedule, table().soc(), 40);
  for (int tam = 1; tam <= arch.tam_count(); ++tam)
    EXPECT_NE(gantt.find("TAM " + std::to_string(tam)), std::string::npos);
  EXPECT_NE(gantt.find("legend:"), std::string::npos);
  EXPECT_NE(gantt.find("c6288"), std::string::npos);
}

TEST(Schedule, EmptyGantt) {
  TestSchedule schedule;
  soc::Soc soc = soc::d695();
  EXPECT_EQ(render_gantt(schedule, soc), "(empty schedule)\n");
}

}  // namespace
}  // namespace wtam::core
