#include <gtest/gtest.h>

#include "core/co_optimizer.hpp"
#include "core/exhaustive.hpp"
#include "core/test_time_table.hpp"
#include "partition/partition.hpp"
#include "soc/benchmarks.hpp"

namespace wtam::core {
namespace {

TEST(Exhaustive, PawFindsTheGlobalOptimumOverPartitions) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 16);
  const auto result = exhaustive_paw(table, 16, 2, {});
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.partitions_total, partition::count_exact(16, 2));
  EXPECT_EQ(result.partitions_solved, result.partitions_total);
  // Verify against manual enumeration: solve each partition exactly.
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  partition::for_each_partition(16, 2, [&](std::span<const int> widths) {
    best = std::min(best,
                    solve_assignment_exact(table, widths).architecture.testing_time);
    return true;
  });
  EXPECT_EQ(result.best.testing_time, best);
}

TEST(Exhaustive, NeverWorseThanHeuristicFlow) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 24);
  const auto exhaustive = exhaustive_paw(table, 24, 3, {});
  ASSERT_TRUE(exhaustive.completed);
  const auto heuristic = co_optimize_fixed_b(table, 24, 3, {});
  EXPECT_LE(exhaustive.best.testing_time,
            heuristic.architecture.testing_time);
}

TEST(Exhaustive, PnpawCoversAllTamCounts) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 12);
  const auto result = exhaustive_pnpaw(table, 12, 3, {});
  ASSERT_TRUE(result.completed);
  std::uint64_t expected = 0;
  for (int b = 1; b <= 3; ++b) expected += partition::count_exact(12, b);
  EXPECT_EQ(result.partitions_total, expected);
  // P_NPAW dominates every fixed-B P_PAW answer.
  for (int b = 1; b <= 3; ++b) {
    const auto fixed = exhaustive_paw(table, 12, b, {});
    EXPECT_LE(result.best.testing_time, fixed.best.testing_time);
  }
}

TEST(Exhaustive, ZeroBudgetDoesNotComplete) {
  const soc::Soc soc = soc::p93791();
  const TestTimeTable table(soc, 32);
  ExhaustiveOptions options;
  options.time_budget_s = 0.0;
  const auto result = exhaustive_paw(table, 32, 3, options);
  EXPECT_FALSE(result.completed);
  EXPECT_LT(result.partitions_solved, result.partitions_total);
}

TEST(Exhaustive, SharedIncumbentSameAnswer) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 20);
  ExhaustiveOptions baseline;  // share_incumbent = false (faithful [8])
  ExhaustiveOptions shared;
  shared.share_incumbent = true;
  const auto a = exhaustive_paw(table, 20, 2, baseline);
  const auto b = exhaustive_paw(table, 20, 2, shared);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.best.testing_time, b.best.testing_time);
}

TEST(Exhaustive, IlpEngineMatchesCombinatorial) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 12);
  ExhaustiveOptions ilp_engine;
  ilp_engine.engine = ExactEngine::Ilp;
  const auto a = exhaustive_paw(table, 12, 2, {});
  const auto b = exhaustive_paw(table, 12, 2, ilp_engine);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.best.testing_time, b.best.testing_time);
}

TEST(Exhaustive, RejectsBadTams) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 8);
  EXPECT_THROW((void)exhaustive_paw(table, 8, 0, {}), std::invalid_argument);
  EXPECT_THROW((void)exhaustive_pnpaw(table, 8, 0, {}), std::invalid_argument);
}

}  // namespace
}  // namespace wtam::core
