#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace wtam::common {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, LogUniformWithinBoundsAndSpansDecades) {
  Rng rng(5);
  double lo_seen = 1e18;
  double hi_seen = 0;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.log_uniform(10.0, 10000.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 10000.0);
    lo_seen = std::min(lo_seen, v);
    hi_seen = std::max(hi_seen, v);
  }
  EXPECT_LT(lo_seen, 100.0);    // lower decade reached
  EXPECT_GT(hi_seen, 1000.0);   // upper decade reached
}

TEST(Rng, LogUniformRejectsNonPositiveLow) {
  Rng rng(1);
  EXPECT_THROW((void)rng.log_uniform(0.0, 10.0), std::invalid_argument);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(212, 16), 14);
}

TEST(MathUtil, CeilDivRejectsBadArguments) {
  EXPECT_THROW((void)ceil_div(1, 0), std::invalid_argument);
  EXPECT_THROW((void)ceil_div(-1, 2), std::invalid_argument);
}

TEST(MathUtil, NarrowToInt) {
  EXPECT_EQ(narrow_to_int(123), 123);
  EXPECT_THROW((void)narrow_to_int(std::int64_t{1} << 40), std::overflow_error);
}

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table("Title");
  table.set_header({"a", "bb"});
  table.add_row({"1", "2"});
  table.add_row({"10", "20"});
  std::ostringstream oss;
  table.print(oss);
  const std::string text = oss.str();
  EXPECT_NE(text.find("Title"), std::string::npos);
  EXPECT_NE(text.find("bb"), std::string::npos);
  EXPECT_NE(text.find("20"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable table("t");
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RejectsHeaderAfterRows) {
  TextTable table("t");
  table.set_header({"a"});
  table.add_row({"1"});
  EXPECT_THROW(table.set_header({"x"}), std::logic_error);
}

TEST(TextTable, LeftAlignmentPadsRight) {
  TextTable table("");
  table.set_header({"col"}, {Align::Left});
  table.add_row({"x"});
  std::ostringstream oss;
  table.print(oss);
  EXPECT_NE(oss.str().find("| x   |"), std::string::npos);
}

TEST(Format, FixedDecimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(Format, SignedPercent) {
  EXPECT_EQ(format_signed_percent(3.26), "+3.26");
  EXPECT_EQ(format_signed_percent(-9.86), "-9.86");
  EXPECT_EQ(format_signed_percent(0.0), "+0.00");
}

}  // namespace
}  // namespace wtam::common
