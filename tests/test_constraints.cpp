// core::ScheduleConstraints: the model (normalization, canonical form,
// validation), the end-to-end constrained golden run on d695, and the
// honest unsupported_constraint contract of the enumerative backend.

#include <gtest/gtest.h>

#include <algorithm>

#include "api/solver.hpp"
#include "core/backend.hpp"
#include "core/constraints.hpp"
#include "core/power.hpp"
#include "core/test_time_table.hpp"
#include "pack/packed_schedule.hpp"
#include "pack/rectpack.hpp"
#include "soc/benchmarks.hpp"

namespace wtam::core {
namespace {

ScheduleConstraints sample() {
  ScheduleConstraints constraints;
  constraints.power = {10, 20, 30};
  constraints.power_budget = 40;
  constraints.precedence = {{1, 2}, {0, 2}, {1, 2}};
  constraints.fixed = {{2, {0, 8}}};
  constraints.forbidden = {{1, {12, 16}}, {1, {4, 8}}};
  constraints.earliest = {{0, 100}};
  return constraints;
}

TEST(ScheduleConstraints, EmptyDetection) {
  EXPECT_TRUE(ScheduleConstraints{}.empty());
  EXPECT_FALSE(sample().empty());
  ScheduleConstraints only_precedence;
  only_precedence.precedence = {{0, 1}};
  EXPECT_FALSE(only_precedence.empty());
}

TEST(ScheduleConstraints, NormalizationSortsAndDedupes) {
  const ScheduleConstraints normal = normalized(sample());
  ASSERT_EQ(normal.precedence.size(), 2u);  // the duplicate collapsed
  EXPECT_EQ(normal.precedence[0], (PrecedencePair{0, 2}));
  EXPECT_EQ(normal.precedence[1], (PrecedencePair{1, 2}));
  ASSERT_EQ(normal.forbidden.size(), 2u);
  EXPECT_EQ(normal.forbidden[0].wires.lo, 4);  // sorted by (core, lo)
  EXPECT_EQ(normal.forbidden[1].wires.lo, 12);
}

TEST(ScheduleConstraints, CanonicalFormIsPinned) {
  // The canonical string feeds RequestKey hashes — a persistence format.
  EXPECT_EQ(canonical_constraints(ScheduleConstraints{}), "");
  EXPECT_EQ(canonical_constraints(sample()),
            "power=10:20:30;budget=40;prec=0>2,1>2;fixed=2@0-8;"
            "forbid=1@4-8,1@12-16;earliest=0@100");
  // Phrasing order does not matter: permuted inputs render identically.
  ScheduleConstraints permuted = sample();
  std::reverse(permuted.precedence.begin(), permuted.precedence.end());
  std::reverse(permuted.forbidden.begin(), permuted.forbidden.end());
  EXPECT_EQ(canonical_constraints(permuted), canonical_constraints(sample()));
}

TEST(ScheduleConstraints, ValidationAcceptsTheSample) {
  EXPECT_TRUE(validate_constraints(sample(), 3, 16).empty());
  // Structural-only validation (no model yet) also passes.
  EXPECT_TRUE(validate_constraints(sample(), -1, -1).empty());
}

TEST(ScheduleConstraints, ValidationCatchesEveryClass) {
  const auto issues_contain = [](const std::vector<std::string>& issues,
                                 const std::string& needle) {
    return std::any_of(issues.begin(), issues.end(),
                       [&](const std::string& issue) {
                         return issue.find(needle) != std::string::npos;
                       });
  };

  ScheduleConstraints bad = sample();
  bad.power_budget = 0;
  EXPECT_TRUE(issues_contain(validate_constraints(bad, 3, 16),
                             "without a positive power_budget"));

  bad = sample();
  bad.power = {10, 20};  // wrong length
  EXPECT_TRUE(
      issues_contain(validate_constraints(bad, 3, 16), "entries for 3 cores"));

  bad = sample();
  bad.power[1] = 99;  // exceeds the budget alone
  EXPECT_TRUE(
      issues_contain(validate_constraints(bad, 3, 16), "exceeds the budget"));

  bad = sample();
  bad.precedence.push_back({2, 2});
  EXPECT_TRUE(
      issues_contain(validate_constraints(bad, 3, 16), "self-dependency"));

  bad = sample();
  bad.precedence.push_back({2, 0});  // 0>2 exists, 2>0 closes a cycle
  EXPECT_TRUE(issues_contain(validate_constraints(bad, 3, 16), "cycle"));

  bad = sample();
  bad.precedence.push_back({0, 7});
  EXPECT_TRUE(
      issues_contain(validate_constraints(bad, 3, 16), "unknown core"));

  bad = sample();
  bad.fixed.push_back({0, {8, 4}});  // lo >= hi
  EXPECT_TRUE(issues_contain(validate_constraints(bad, 3, 16),
                             "0 <= lo < hi <= total width"));

  bad = sample();
  bad.fixed.push_back({2, {0, 4}});  // second fixed interval for core 2
  EXPECT_TRUE(issues_contain(validate_constraints(bad, 3, 16),
                             "more than one fixed interval"));

  bad = sample();
  bad.forbidden.push_back({2, {0, 16}});  // covers core 2's fixed window
  EXPECT_TRUE(
      issues_contain(validate_constraints(bad, 3, 16), "no allowed wires"));

  bad = sample();
  bad.earliest.push_back({1, -5});
  EXPECT_TRUE(issues_contain(validate_constraints(bad, 3, 16), "negative"));

  bad = sample();
  bad.earliest.push_back({0, 200});
  EXPECT_TRUE(issues_contain(validate_constraints(bad, 3, 16),
                             "more than one earliest_start"));
}

// ---- the ISSUE-5 acceptance golden: constrained d695 ------------------------

TEST(ConstrainedGolden, D695PowerBudgetRunIsValidAndSlower) {
  // Scan-activity powers with a budget that genuinely binds (exactly the
  // largest single core's draw, so the scan-heavy cores fully serialize):
  // the packer must produce a validator-clean schedule whose
  // instantaneous power never exceeds the budget, and it cannot beat the
  // unconstrained golden pin (22270 at W=32,
  // tests/test_golden_backends.cpp).
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 32);
  ScheduleConstraints constraints;
  constraints.power = scan_activity_power(soc_data);
  std::int64_t largest = 0;
  for (const std::int64_t p : constraints.power)
    largest = std::max(largest, p);
  constraints.power_budget = largest;

  pack::RectPackOptions options;
  options.constraints = constraints;
  const auto result = pack::rectpack_schedule(table, 32, options);

  const auto issues =
      pack::validate_packed_schedule(table, result.schedule, constraints);
  EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues.front());
  EXPECT_LE(pack::packed_peak_power(result.schedule, constraints.power),
            constraints.power_budget);
  EXPECT_GE(result.makespan, 22270);
}

TEST(ConstrainedGolden, EnumerativeHonorsThePowerBudget) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 32);
  ScheduleConstraints constraints;
  constraints.power = scan_activity_power(soc_data);
  std::int64_t largest = 0;
  for (const std::int64_t p : constraints.power)
    largest = std::max(largest, p);
  constraints.power_budget = largest + largest / 2;

  BackendOptions options;
  options.constraints = constraints;
  const BackendOutcome outcome =
      BackendRegistry::instance().at("enumerative").optimize(table, 32,
                                                             options);
  const auto issues =
      pack::validate_packed_schedule(table, outcome.schedule, constraints);
  EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues.front());
  EXPECT_LE(pack::packed_peak_power(outcome.schedule, constraints.power),
            constraints.power_budget);
  // The power-blind pin, delayed: never faster than the unconstrained run.
  EXPECT_GE(outcome.testing_time, 21566);
}

TEST(ConstrainedGolden, EnumerativeRejectsUnsupportedClassesHonestly) {
  BackendOptions options;
  options.constraints.precedence = {{0, 1}};
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 16);
  EXPECT_THROW((void)BackendRegistry::instance().at("enumerative").optimize(
                   table, 16, options),
               UnsupportedConstraintError);

  // Through the Solver the refusal is an invalid_request whose error
  // names the contract, never a silently unconstrained answer.
  api::SolveRequest request;
  request.soc = "d695";
  request.width = 16;
  request.backend = "enumerative";
  request.options.constraints.precedence = {{0, 1}};
  const api::SolveResult result = api::Solver().solve(request);
  EXPECT_EQ(result.status, api::Status::InvalidRequest);
  EXPECT_NE(result.error.find("unsupported_constraint"), std::string::npos);
  EXPECT_NE(result.error.find("precedence"), std::string::npos);
}

}  // namespace
}  // namespace wtam::core
