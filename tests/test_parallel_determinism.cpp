// The parallel search engines promise results bit-identical to the serial
// reference regardless of thread count (wall-clock cpu_s aside). These
// tests pin that contract on the real benchmark SOC, on seeded synthetic
// SOCs, and across the ablation switches, plus the ThreadPool substrate
// itself.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/exhaustive.hpp"
#include "core/partition_evaluate.hpp"
#include "core/test_time_table.hpp"
#include "soc/benchmarks.hpp"
#include "soc/generator.hpp"

namespace wtam::core {
namespace {

void expect_same_architecture(const TamArchitecture& serial,
                              const TamArchitecture& parallel) {
  EXPECT_EQ(serial.widths, parallel.widths);
  EXPECT_EQ(serial.assignment, parallel.assignment);
  EXPECT_EQ(serial.tam_times, parallel.tam_times);
  EXPECT_EQ(serial.testing_time, parallel.testing_time);
}

void expect_same_stats(const PartitionSearchStats& serial,
                       const PartitionSearchStats& parallel) {
  EXPECT_EQ(serial.tams, parallel.tams);
  EXPECT_EQ(serial.partitions_unique, parallel.partitions_unique);
  EXPECT_EQ(serial.evaluated_to_completion, parallel.evaluated_to_completion);
  EXPECT_EQ(serial.aborted_by_tau, parallel.aborted_by_tau);
  EXPECT_EQ(serial.best_time, parallel.best_time);
  EXPECT_EQ(serial.best_partition, parallel.best_partition);
}

void expect_bit_identical(const TestTimeProvider& table, int width,
                          const PartitionEvaluateOptions& base) {
  PartitionEvaluateOptions serial_options = base;
  serial_options.threads = 1;
  const auto serial = partition_evaluate(table, width, serial_options);
  for (const int threads : {2, 4, 8}) {
    PartitionEvaluateOptions parallel_options = base;
    parallel_options.threads = threads;
    const auto parallel = partition_evaluate(table, width, parallel_options);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same_architecture(serial.best, parallel.best);
    EXPECT_EQ(serial.best_tams, parallel.best_tams);
    ASSERT_EQ(serial.per_b.size(), parallel.per_b.size());
    for (std::size_t i = 0; i < serial.per_b.size(); ++i) {
      SCOPED_TRACE("B=" + std::to_string(serial.per_b[i].tams));
      expect_same_stats(serial.per_b[i], parallel.per_b[i]);
    }
  }
}

TEST(ParallelPartitionEvaluate, BitIdenticalOnD695) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 32);
  PartitionEvaluateOptions options;
  options.max_tams = 6;
  expect_bit_identical(table, 32, options);
}

TEST(ParallelPartitionEvaluate, BitIdenticalWithTinyChunks) {
  // chunk_size = 1 maximizes merge traffic and out-of-order completion.
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 24);
  PartitionEvaluateOptions options;
  options.max_tams = 5;
  options.chunk_size = 1;
  expect_bit_identical(table, 24, options);
}

TEST(ParallelPartitionEvaluate, BitIdenticalAcrossAblationSwitches) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 28);

  PartitionEvaluateOptions no_prune;
  no_prune.max_tams = 4;
  no_prune.prune_with_tau = false;
  expect_bit_identical(table, 28, no_prune);

  PartitionEvaluateOptions carried_tau;
  carried_tau.max_tams = 5;
  carried_tau.reset_tau_per_b = false;
  expect_bit_identical(table, 28, carried_tau);

  PartitionEvaluateOptions no_tiebreaks;
  no_tiebreaks.max_tams = 4;
  no_tiebreaks.widest_tam_tiebreak = false;
  no_tiebreaks.next_tam_core_tiebreak = false;
  expect_bit_identical(table, 28, no_tiebreaks);

  PartitionEvaluateOptions routed;
  routed.max_tams = 5;
  routed.min_tam_width = 3;
  expect_bit_identical(table, 28, routed);
}

TEST(ParallelPartitionEvaluate, BitIdenticalOnSeededSyntheticSocs) {
  for (const std::uint64_t seed : {7u, 23u, 101u}) {
    soc::SyntheticSpec spec;
    spec.name = "synthetic-" + std::to_string(seed);
    spec.seed = seed;
    spec.logic_cores = 6;
    spec.logic.patterns = {60, 900};
    spec.logic.ios = {20, 120};
    spec.logic.chains = {4, 16};
    spec.logic.chain_len = {30, 200};
    spec.memory_cores = 3;
    spec.memory.patterns = {200, 4000};
    spec.memory.ios = {30, 80};
    const soc::Soc soc = soc::generate_soc(spec);
    const TestTimeTable table(soc, 26);
    PartitionEvaluateOptions options;
    options.max_tams = 5;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    expect_bit_identical(table, 26, options);
  }
}

TEST(ParallelPartitionEvaluate, AutoThreadsRunsAndMatchesSerial) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 20);
  PartitionEvaluateOptions serial;
  serial.max_tams = 4;
  PartitionEvaluateOptions automatic = serial;
  automatic.threads = 0;  // hardware concurrency
  const auto a = partition_evaluate(table, 20, serial);
  const auto b = partition_evaluate(table, 20, automatic);
  expect_same_architecture(a.best, b.best);
  EXPECT_EQ(a.best_tams, b.best_tams);
}

TEST(ParallelPartitionEvaluate, RejectsBadOptions) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 16);
  PartitionEvaluateOptions negative_threads;
  negative_threads.threads = -1;
  EXPECT_THROW(partition_evaluate(table, 16, negative_threads),
               std::invalid_argument);
  PartitionEvaluateOptions zero_chunk;
  zero_chunk.chunk_size = 0;
  EXPECT_THROW(partition_evaluate(table, 16, zero_chunk),
               std::invalid_argument);
}

TEST(ParallelExhaustive, BitIdenticalBestOnD695) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 20);
  ExhaustiveOptions serial_options;
  const auto serial = exhaustive_paw(table, 20, 3, serial_options);
  ASSERT_TRUE(serial.completed);
  for (const int threads : {2, 4, 8}) {
    ExhaustiveOptions parallel_options;
    parallel_options.threads = threads;
    parallel_options.chunk_size = 2;
    const auto parallel = exhaustive_paw(table, 20, 3, parallel_options);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ASSERT_TRUE(parallel.completed);
    EXPECT_EQ(serial.partitions_total, parallel.partitions_total);
    EXPECT_EQ(serial.partitions_solved, parallel.partitions_solved);
    expect_same_architecture(serial.best, parallel.best);
  }
}

TEST(ParallelExhaustive, BitIdenticalPnpawWithSharedIncumbent) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 16);
  ExhaustiveOptions serial_options;
  serial_options.share_incumbent = true;
  const auto serial = exhaustive_pnpaw(table, 16, 3, serial_options);
  ASSERT_TRUE(serial.completed);
  ExhaustiveOptions parallel_options = serial_options;
  parallel_options.threads = 4;
  parallel_options.chunk_size = 1;
  const auto parallel = exhaustive_pnpaw(table, 16, 3, parallel_options);
  ASSERT_TRUE(parallel.completed);
  EXPECT_EQ(serial.partitions_solved, parallel.partitions_solved);
  expect_same_architecture(serial.best, parallel.best);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  common::ThreadPool pool(4);
  std::atomic<int> counter{0};
  // The pool has no join-all primitive by design; the ordered pipeline is
  // the synchronization layer, so use it to wait.
  common::OrderedChunkPipeline<int, int> pipeline(
      pool, [&](const int& value) { return counter.fetch_add(value) + value; },
      [](int&&) {}, 8);
  for (int i = 0; i < 100; ++i) pipeline.push(1);
  pipeline.finish();
  EXPECT_EQ(counter.load(), 100);
}

TEST(OrderedChunkPipeline, MergesInSubmissionOrder) {
  common::ThreadPool pool(8);
  std::vector<int> merged;
  common::OrderedChunkPipeline<int, int> pipeline(
      pool, [](const int& value) { return value; },
      [&](int&& value) { merged.push_back(value); }, 4);
  std::vector<int> expected(200);
  std::iota(expected.begin(), expected.end(), 0);
  for (const int value : expected) ASSERT_TRUE(pipeline.push(value));
  pipeline.finish();
  EXPECT_EQ(merged, expected);
}

TEST(OrderedChunkPipeline, PropagatesWorkerExceptions) {
  common::ThreadPool pool(2);
  common::OrderedChunkPipeline<int, int> pipeline(
      pool,
      [](const int& value) -> int {
        if (value == 13) throw std::runtime_error("unlucky");
        return value;
      },
      [](int&&) {}, 2);
  for (int i = 0; i < 64; ++i) {
    if (!pipeline.push(i)) break;  // pipeline reports failure to producer
  }
  EXPECT_THROW(pipeline.finish(), std::runtime_error);
}

}  // namespace
}  // namespace wtam::core
