// Concurrency stress suite — the dynamic cross-check of the static
// -Wthread-safety model (src/common/thread_annotations.hpp).
//
// These tests are sized to find interleaving bugs, not to prove
// throughput: many threads, many rounds, small work items, run under
// ThreadSanitizer in CI (WTAM_SANITIZE=thread; ctest label
// `concurrency`). Each scenario targets one protocol the serving stack
// depends on:
//   * ResultCache coalescing under contention (many threads, few keys);
//   * the abandoned-lead handoff (the trickiest protocol state: a leader
//     gives up and exactly one waiter must re-lead, the rest re-wait);
//   * Solver batches with cross-thread cancellation mid-flight;
//   * a wtam_serve-shaped worker pool hammering one request key through
//     a shared Solver + cache;
//   * stats() snapshot consistency while writers are hot;
//   * ThreadPool/OrderedChunkPipeline shutdown and error paths.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/request_key.hpp"
#include "api/result_cache.hpp"
#include "api/solver.hpp"
#include "common/thread_pool.hpp"

namespace wtam {
namespace {

// TSan multiplies every synchronization operation's cost; keep wall
// clock in check by shrinking rounds there (the interleaving coverage
// per round is what matters, not the total count).
#if defined(WTAM_UNDER_TSAN)
constexpr int kRounds = 8;
#elif defined(WTAM_UNDER_ASAN)
constexpr int kRounds = 12;
#else
constexpr int kRounds = 25;
#endif

api::RequestKey stress_key(int width) {
  api::RequestKey key;
  key.soc_hash = common::stable_hash_128("concurrency-stress-soc");
  key.width = width;
  key.backend = "rectpack";
  key.options = "stress=1";
  return key;
}

api::CachedSolve stress_solve(std::int64_t testing_time) {
  api::CachedSolve solve;
  solve.outcome.backend = "rectpack";
  solve.outcome.testing_time = testing_time;
  solve.outcome.details.emplace_back("pad", std::string(128, 'x'));
  solve.lower_bound = testing_time / 2;
  solve.schedule_valid = true;
  return solve;
}

/// The two-core SOC every solver-level stress test uses: cheap enough to
/// solve in well under a millisecond, so the contention dominates.
api::SolveRequest tiny_request(int width) {
  api::SolveRequest request;
  request.soc_inline =
      "soc stress\n"
      "core a patterns=10 inputs=4 outputs=4 scan=8,8\n"
      "core b patterns=20 inputs=2 outputs=3 scan=\n";
  request.width = width;
  request.backend = "rectpack";
  return request;
}

TEST(ConcurrencyStress, CacheCoalescingUnderContention) {
  // 6 threads hammer 3 keys for kRounds rounds. Whoever leads computes
  // and publishes; everyone else must be served the published value.
  // Between rounds the cache is cleared, so every round replays the
  // whole miss -> in-flight -> coalesce protocol.
  api::ResultCacheOptions options;
  options.shards = 2;  // force cross-shard and same-shard contention
  api::ResultCache cache(options);

  constexpr int kThreads = 6;
  std::atomic<int> mismatches{0};
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back([&cache, &mismatches, t] {
        for (int k = 0; k < 3; ++k) {
          const api::RequestKey key = stress_key(16 + k);
          const api::ResultCache::Fetch fetch = cache.begin_fetch(key);
          if (fetch.outcome == api::ResultCache::FetchOutcome::Lead) {
            // Stretch the in-flight window so followers really block.
            if (t % 2 == 0) std::this_thread::yield();
            cache.publish(fetch, stress_solve(1000 + k));
          } else if (!fetch.value.has_value() ||
                     fetch.value->outcome.testing_time != 1000 + k) {
            ++mismatches;
          }
        }
      });
    for (auto& thread : threads) thread.join();
    cache.clear();
  }
  EXPECT_EQ(mismatches.load(), 0);

  const api::ResultCacheStats stats = cache.stats();
  // Every fetch resolved as exactly one of hit (stored or coalesced) or
  // miss (lead) — the counters must account for all of them.
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kRounds * kThreads * 3));
  // Exactly one thread leads (and publishes) each round/key; everyone
  // else coalesces onto the in-flight entry or hits the stored one.
  EXPECT_EQ(stats.insertions, static_cast<std::uint64_t>(kRounds * 3));
}

TEST(ConcurrencyStress, AbandonedLeadHandoffUnderContention) {
  // Regression for the trickiest protocol state: the first leader of
  // each round abandons; of the threads blocked on it, exactly one must
  // re-lead (and publish) while the rest re-wait and get served. Run
  // many rounds so TSan sees the abandon/re-lead/notify interleavings.
  api::ResultCache cache;
  constexpr int kThreads = 5;

  for (int round = 0; round < kRounds; ++round) {
    const api::RequestKey key = stress_key(round % 7);
    std::atomic<int> leads{0};
    std::atomic<int> served{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back([&cache, &key, &leads, &served] {
        const api::ResultCache::Fetch fetch = cache.begin_fetch(key);
        if (fetch.outcome == api::ResultCache::FetchOutcome::Lead) {
          if (leads.fetch_add(1) == 0) {
            // First leader: give followers time to pile up, then walk
            // away. The handoff must elect exactly one new leader.
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            cache.abandon(fetch);
          } else {
            cache.publish(fetch, stress_solve(4242));
          }
        } else {
          ASSERT_TRUE(fetch.value.has_value());
          EXPECT_EQ(fetch.value->outcome.testing_time, 4242);
          ++served;
        }
      });
    for (auto& thread : threads) thread.join();

    // The abandoned round must still converge: either a re-leader
    // published (normal) or every other thread raced past the in-flight
    // window and led after the value was stored (then hits served them).
    ASSERT_GE(leads.load(), 1);
    if (leads.load() >= 2) {
      const auto hit = cache.lookup(key);
      ASSERT_TRUE(hit.has_value());
      EXPECT_EQ(hit->outcome.testing_time, 4242);
    }
    cache.clear();
  }
}

TEST(ConcurrencyStress, BatchSolvesWithCrossThreadCancellation) {
  // A 12-job batch on 4 workers with the cancel token fired from outside
  // mid-flight: jobs must come back Ok (finished before the token) or
  // Cancelled (with or without a best-so-far incumbent) — never hang,
  // never crash, never corrupt a result slot.
  auto cache = std::make_shared<api::ResultCache>();
  const api::Solver solver(api::SolverOptions::with_threads(4, cache));

  std::vector<api::SolveRequest> jobs;
  for (int i = 0; i < 12; ++i) {
    api::SolveRequest job = tiny_request(4 + (i % 5));
    job.id = "stress-" + std::to_string(i);
    jobs.push_back(std::move(job));
  }

  api::CancelToken cancel;
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    cancel.request_cancel();
  });
  const std::vector<api::SolveResult> results =
      solver.solve_batch(jobs, cancel);
  canceller.join();

  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].id, jobs[i].id);
    EXPECT_TRUE(results[i].status == api::Status::Ok ||
                results[i].status == api::Status::Cancelled)
        << to_string(results[i].status);
    if (results[i].status == api::Status::Ok) {
      EXPECT_TRUE(results[i].schedule_valid);
    }
  }
}

TEST(ConcurrencyStress, ServeStylePoolHammersOneKeyThroughSharedSolver) {
  // The wtam_serve shape: one shared Solver + cache, a worker pool, and
  // a burst of identical single-solve jobs racing on one request key.
  // The cache must compute the engine result exactly once per clear and
  // serve everyone byte-identical values.
  auto cache = std::make_shared<api::ResultCache>();
  const api::Solver solver(api::SolverOptions::with_threads(1, cache));
  constexpr int kJobs = 16;

  std::vector<api::SolveResult> results(kJobs);
  {
    common::CompletionLatch latch;
    common::ThreadPool pool(4);
    for (int i = 0; i < kJobs; ++i)
      pool.submit([&solver, &results, &latch, i] {
        results[static_cast<std::size_t>(i)] = solver.solve(tiny_request(8));
        // Publication of the slot to the main thread rides the latch's
        // lock hand-off, exactly like the rectpack walker join.
        latch.arrive();
      });
    latch.wait(kJobs);
  }

  for (const api::SolveResult& result : results) {
    ASSERT_EQ(result.status, api::Status::Ok);
    ASSERT_TRUE(result.has_outcome());
    EXPECT_EQ(result.outcome->testing_time, results[0].outcome->testing_time);
    EXPECT_TRUE(result.schedule_valid);
  }
  const api::ResultCacheStats stats = cache->stats();
  EXPECT_EQ(stats.insertions, 1u) << "identical jobs must coalesce";
  EXPECT_EQ(stats.hits + stats.misses, static_cast<std::uint64_t>(kJobs));
}

TEST(ConcurrencyStress, StatsSnapshotsStayConsistentUnderWrites) {
  // Readers poll stats() while writers publish/look up. Each snapshot
  // must be internally coherent: totals never run backwards between
  // consecutive snapshots (monotone counters), the gauges stay within
  // the configured budget, and the derived hit rate stays in [0, 1].
  api::ResultCacheOptions options;
  options.shards = 4;
  options.max_bytes = 1 << 20;
  api::ResultCache cache(options);

  std::atomic<bool> stop{false};
  std::thread reader([&cache, &stop] {
    std::uint64_t last_lookups = 0;
    std::uint64_t last_insertions = 0;
    while (!stop.load()) {
      const api::ResultCacheStats stats = cache.stats();
      const std::uint64_t lookups = stats.hits + stats.misses;
      EXPECT_GE(lookups, last_lookups);
      EXPECT_GE(stats.insertions, last_insertions);
      EXPECT_LE(stats.bytes, stats.max_bytes);
      EXPECT_GE(stats.hit_rate(), 0.0);
      EXPECT_LE(stats.hit_rate(), 1.0);
      last_lookups = lookups;
      last_insertions = stats.insertions;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(3);
  for (int t = 0; t < 3; ++t)
    writers.emplace_back([&cache, t] {
      for (int round = 0; round < kRounds * 4; ++round) {
        const api::RequestKey key = stress_key((t * 31 + round) % 11);
        const api::ResultCache::Fetch fetch = cache.begin_fetch(key);
        if (fetch.outcome == api::ResultCache::FetchOutcome::Lead)
          cache.publish(fetch, stress_solve(round));
        (void)cache.lookup(key);
      }
    });
  for (auto& writer : writers) writer.join();
  stop = true;
  reader.join();
}

TEST(ConcurrencyStress, ThreadPoolDrainsQueuedTasksOnShutdown) {
  // The pool's contract: tasks already queued when the destructor runs
  // still execute (workers drain the queue before exiting). A count
  // mismatch here means tasks were dropped — or TSan flags the
  // stop/drain handshake.
  std::atomic<int> ran{0};
  constexpr int kTasks = 64;
  {
    common::ThreadPool pool(3);
    for (int i = 0; i < kTasks; ++i)
      pool.submit([&ran] { ++ran; });
    // Destructor joins here with most tasks still queued.
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ConcurrencyStress, OrderedPipelineKeepsOrderAndReportsOneError) {
  // The pipeline under parallel stress: outcomes must merge strictly in
  // push order, and a mid-stream process error must surface exactly once
  // from finish() while later chunks still advance the merge cursor.
  common::ThreadPool pool(4);
  {
    std::vector<int> merged;
    common::OrderedChunkPipeline<int, int> pipeline(
        pool, [](const int& chunk) { return chunk * 2; },
        [&merged](int&& outcome) { merged.push_back(outcome); },
        /*max_in_flight=*/4);
    for (int i = 0; i < kRounds * 4; ++i) ASSERT_TRUE(pipeline.push(i));
    pipeline.finish();
    ASSERT_EQ(merged.size(), static_cast<std::size_t>(kRounds * 4));
    for (int i = 0; i < kRounds * 4; ++i) EXPECT_EQ(merged[i], i * 2);
  }
  {
    common::OrderedChunkPipeline<int, int> failing(
        pool,
        [](const int& chunk) {
          if (chunk == 5) throw std::runtime_error("chunk 5 failed");
          return chunk;
        },
        [](int&&) {}, /*max_in_flight=*/2);
    bool accepted = true;
    for (int i = 0; i < 32 && accepted; ++i) accepted = failing.push(i);
    EXPECT_THROW(failing.finish(), std::runtime_error);
    failing.finish();  // second finish: error already consumed, no rethrow
  }
}

}  // namespace
}  // namespace wtam
