#include <gtest/gtest.h>

#include "core/test_time_table.hpp"
#include "pack/rect_model.hpp"
#include "soc/benchmarks.hpp"
#include "wrapper/wrapper.hpp"

namespace wtam::pack {
namespace {

TEST(RectModel, MatchesParetoWidthsAndTableTimes) {
  const soc::Soc soc = soc::d695();
  const core::TestTimeTable table(soc, 32);
  const RectModel model = build_rect_model(table, 32);

  ASSERT_EQ(model.core_count(), soc.core_count());
  EXPECT_EQ(model.total_width, 32);
  for (int i = 0; i < soc.core_count(); ++i) {
    const auto expected =
        wrapper::pareto_widths(soc.cores[static_cast<std::size_t>(i)], 32);
    const auto& rects = model.candidates[static_cast<std::size_t>(i)];
    ASSERT_EQ(rects.size(), expected.size()) << "core " << i;
    for (std::size_t c = 0; c < rects.size(); ++c) {
      EXPECT_EQ(rects[c].core, i);
      EXPECT_EQ(rects[c].width, expected[c]);
      EXPECT_EQ(rects[c].time, table.time(i, expected[c]));
      // best_design at the candidate width agrees with the table envelope.
      EXPECT_EQ(rects[c].time,
                wrapper::best_design(soc.cores[static_cast<std::size_t>(i)],
                                     expected[c])
                    .test_time);
    }
  }
}

TEST(RectModel, CandidatesAreAStrictParetoFront) {
  const soc::Soc soc_data = soc::p31108();
  const core::TestTimeTable table(soc_data, 48);
  const RectModel model = build_rect_model(table, 48);
  for (const auto& rects : model.candidates) {
    ASSERT_FALSE(rects.empty());
    EXPECT_EQ(rects.front().width, 1);
    for (std::size_t c = 1; c < rects.size(); ++c) {
      EXPECT_LT(rects[c - 1].width, rects[c].width);
      EXPECT_GT(rects[c - 1].time, rects[c].time);  // strictly improving
    }
  }
}

TEST(RectModel, MinAreaRectAndTotalArea) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 24);
  const RectModel model = build_rect_model(table, 24);
  std::int64_t total = 0;
  for (int i = 0; i < model.core_count(); ++i) {
    const Rect& best = model.min_area_rect(i);
    for (const Rect& rect : model.candidates[static_cast<std::size_t>(i)])
      EXPECT_LE(best.area(), rect.area());
    total += best.area();
  }
  EXPECT_EQ(model.total_min_area(), total);
  EXPECT_GT(total, 0);
}

TEST(RectModel, RejectsWidthOutsideTableRange) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 16);
  EXPECT_THROW((void)build_rect_model(table, 0), std::invalid_argument);
  EXPECT_THROW((void)build_rect_model(table, 17), std::invalid_argument);
}

}  // namespace
}  // namespace wtam::pack
