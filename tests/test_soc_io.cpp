#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/hash.hpp"
#include "soc/benchmarks.hpp"
#include "soc/soc_io.hpp"

namespace wtam::soc {
namespace {

bool cores_equal(const Core& a, const Core& b) {
  return a.name == b.name && a.kind == b.kind &&
         a.test_patterns == b.test_patterns && a.num_inputs == b.num_inputs &&
         a.num_outputs == b.num_outputs && a.num_bidirs == b.num_bidirs &&
         a.scan_chains == b.scan_chains;
}

bool socs_equal(const Soc& a, const Soc& b) {
  if (a.name != b.name || a.cores.size() != b.cores.size()) return false;
  for (std::size_t i = 0; i < a.cores.size(); ++i)
    if (!cores_equal(a.cores[i], b.cores[i])) return false;
  return true;
}

TEST(SocIo, RoundTripD695) {
  const Soc original = d695();
  const Soc parsed = parse_soc_string(write_soc_string(original));
  EXPECT_TRUE(socs_equal(original, parsed));
}

TEST(SocIo, RoundTripSyntheticPhilips) {
  for (const Soc& original : {p21241(), p31108(), p93791()}) {
    const Soc parsed = parse_soc_string(write_soc_string(original));
    EXPECT_TRUE(socs_equal(original, parsed)) << original.name;
  }
}

TEST(SocIo, ParsesMinimalDocument) {
  const Soc soc = parse_soc_string(
      "# a comment\n"
      "soc tiny\n"
      "\n"
      "core alpha kind=logic patterns=7 inputs=3 outputs=2 bidirs=0 scan=5,6\n"
      "core beta kind=memory patterns=9 inputs=1 outputs=1 bidirs=0 scan=\n");
  EXPECT_EQ(soc.name, "tiny");
  ASSERT_EQ(soc.core_count(), 2);
  EXPECT_EQ(soc.cores[0].scan_chains, (std::vector<int>{5, 6}));
  EXPECT_EQ(soc.cores[1].kind, CoreKind::Memory);
  EXPECT_TRUE(soc.cores[1].scan_chains.empty());
}

TEST(SocIo, InlineCommentsAreStripped) {
  const Soc soc = parse_soc_string(
      "soc s # trailing comment\n"
      "core a patterns=1 inputs=1 outputs=1 # another\n");
  EXPECT_EQ(soc.core_count(), 1);
}

TEST(SocIo, DefaultsKindToLogic) {
  const Soc soc =
      parse_soc_string("soc s\ncore a patterns=1 inputs=1 outputs=0\n");
  EXPECT_EQ(soc.cores[0].kind, CoreKind::Logic);
}

TEST(SocIo, RejectsMissingSocLine) {
  EXPECT_THROW((void)parse_soc_string("core a patterns=1 inputs=1 outputs=1\n"),
               std::runtime_error);
}

TEST(SocIo, RejectsDuplicateSocLine) {
  EXPECT_THROW((void)parse_soc_string("soc a\nsoc b\n"), std::runtime_error);
}

TEST(SocIo, RejectsUnknownKeyword) {
  EXPECT_THROW((void)parse_soc_string("soc a\nmodule x\n"), std::runtime_error);
}

TEST(SocIo, RejectsUnknownKey) {
  EXPECT_THROW(
      (void)parse_soc_string("soc a\ncore x patterns=1 inputs=1 outputs=1 foo=3\n"),
      std::runtime_error);
}

TEST(SocIo, RejectsMissingPatterns) {
  EXPECT_THROW((void)parse_soc_string("soc a\ncore x inputs=1 outputs=1\n"),
               std::runtime_error);
}

TEST(SocIo, RejectsMalformedInteger) {
  EXPECT_THROW(
      (void)parse_soc_string("soc a\ncore x patterns=abc inputs=1 outputs=1\n"),
      std::runtime_error);
}

TEST(SocIo, RejectsBadKind) {
  EXPECT_THROW(
      (void)parse_soc_string("soc a\ncore x kind=dsp patterns=1 inputs=1 outputs=1\n"),
      std::runtime_error);
}

TEST(SocIo, RejectsSemanticViolations) {
  // Memory core with scan chains fails Soc::validate inside the parser.
  EXPECT_THROW(
      (void)parse_soc_string(
          "soc a\ncore x kind=memory patterns=1 inputs=1 outputs=1 scan=4\n"),
      std::runtime_error);
}

TEST(SocIo, ErrorMessageCarriesLineNumber) {
  try {
    (void)parse_soc_string("soc a\n\ncore x patterns=zz inputs=1 outputs=1\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(SocIo, ToleratesCrlfLineEndings) {
  // Files edited on Windows arrive with \r\n line endings; they must
  // parse identically to their Unix twins.
  const Soc soc = parse_soc_string(
      "soc tiny\r\n"
      "core alpha kind=logic patterns=7 inputs=3 outputs=2 bidirs=0 "
      "scan=5,6\r\n"
      "core beta kind=memory patterns=9 inputs=1 outputs=1 bidirs=0 scan=\r\n");
  EXPECT_EQ(soc.name, "tiny");
  ASSERT_EQ(soc.core_count(), 2);
  EXPECT_EQ(soc.cores[0].scan_chains, (std::vector<int>{5, 6}));
  EXPECT_TRUE(soc.cores[1].scan_chains.empty());
}

TEST(SocIo, ToleratesTrailingWhitespace) {
  const Soc soc = parse_soc_string(
      "soc padded  \t \n"
      "core a patterns=1 inputs=1 outputs=1 scan=4 \t\n");
  EXPECT_EQ(soc.name, "padded");
  ASSERT_EQ(soc.core_count(), 1);
  EXPECT_EQ(soc.cores[0].scan_chains, (std::vector<int>{4}));
}

TEST(SocIo, ToleratesUtf8ByteOrderMark) {
  const Soc soc = parse_soc_string(
      "\xef\xbb\xbfsoc bom\r\ncore a patterns=1 inputs=1 outputs=1\r\n");
  EXPECT_EQ(soc.name, "bom");
  EXPECT_EQ(soc.core_count(), 1);
}

TEST(SocIo, CrlfErrorsKeepAccurateLineNumbers) {
  try {
    (void)parse_soc_string("soc a\r\n\r\ncore x patterns=zz inputs=1 outputs=1\r\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(SocIo, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "wtam_test_roundtrip.soc";
  const Soc original = d695();
  save_soc_file(path.string(), original);
  const Soc loaded = load_soc_file(path.string());
  EXPECT_TRUE(socs_equal(original, loaded));
  std::filesystem::remove(path);
}

TEST(SocIo, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_soc_file("/nonexistent/path/x.soc"), std::runtime_error);
}

// ---- canonical bytes (the content-hash substrate) -------------------------

TEST(SocIoCanonical, CanonicalBytesIsAFixedPointForEveryBuiltIn) {
  // The round-trip guarantee the request-key layer stands on:
  // serializing, reparsing, and reserializing must reproduce the exact
  // bytes, for every built-in SOC — otherwise "the same SOC from a file"
  // and "the same SOC in memory" could hash apart.
  for (const Soc& original : {d695(), p21241(), p31108(), p93791()}) {
    const std::string bytes = canonical_bytes(original);
    const std::string round_tripped =
        canonical_bytes(parse_soc_string(bytes));
    EXPECT_EQ(round_tripped, bytes) << original.name;
  }
}

TEST(SocIoCanonical, BuiltInContentHashesArePinned) {
  // Pins the canonical serialization *and* the hash function at once:
  // any drift in either silently invalidates every persisted cache
  // key/log line, so a change here must be deliberate and re-justified
  // (same policy as the golden testing times).
  const auto hash_of = [](const Soc& soc) {
    return common::stable_hash_128(canonical_bytes(soc)).hex();
  };
  EXPECT_EQ(hash_of(d695()), "50b7104b26d5c3f4695a8654678f5f94");
  EXPECT_EQ(hash_of(p21241()), "c75a425e1c6ef03c563c3f11c21315df");
  EXPECT_EQ(hash_of(p31108()), "7b6b090915767a1b7be3c15a96940060");
  EXPECT_EQ(hash_of(p93791()), "86cf64bc97a474c9fcc05e6ea9d3969e");
}

TEST(SocIoCanonical, CanonicalBytesMatchesTheWriter) {
  const Soc soc = d695();
  EXPECT_EQ(canonical_bytes(soc), write_soc_string(soc));
}

}  // namespace
}  // namespace wtam::soc
