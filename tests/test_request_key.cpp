// Canonical request identity: equal work must yield equal RequestKeys
// however the request was phrased, and distinct work must not alias.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "api/request_key.hpp"
#include "api/solver.hpp"
#include "common/hash.hpp"
#include "soc/benchmarks.hpp"
#include "soc/soc_io.hpp"

namespace wtam::api {
namespace {

TEST(Hash128, StableAndWellFormed) {
  // Pinned digests: the content hash is a persistence format (cache keys
  // survive across processes in logs/metrics), so it must never drift.
  EXPECT_EQ(common::stable_hash_128("").hex(),
            "90853e894006730126973c63df706cba");
  EXPECT_EQ(common::stable_hash_128("abc").hex(),
            "d92e428e5577237feff638a2b4a948b7");
  EXPECT_EQ(common::stable_hash_128("abc"), common::stable_hash_128("abc"));
  EXPECT_NE(common::stable_hash_128("abc"), common::stable_hash_128("abd"));
  EXPECT_NE(common::stable_hash_128("a"), common::stable_hash_128("aa"));
  EXPECT_EQ(common::stable_hash_128("abc").hex().size(), 32u);
}

TEST(RequestKey, SameWorkSameKeyAcrossAllSocSources) {
  // The acceptance criterion: built-in name vs file vs inline vs
  // in-memory value all canonicalize to one key.
  const soc::Soc soc = soc::d695();
  const std::string text = soc::canonical_bytes(soc);
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "request_key_d695.soc";
  soc::save_soc_file(path.string(), soc);

  SolveRequest by_name;
  by_name.soc = "d695";
  by_name.width = 32;

  SolveRequest by_file = by_name;
  by_file.soc = path.string();

  SolveRequest by_inline = by_name;
  by_inline.soc.clear();
  by_inline.soc_inline = text;

  SolveRequest by_value = by_name;
  by_value.soc.clear();
  by_value.soc_value = soc;

  const RequestKey reference = request_keys(by_name).front();
  EXPECT_EQ(request_keys(by_file).front(), reference);
  EXPECT_EQ(request_keys(by_inline).front(), reference);
  EXPECT_EQ(request_keys(by_value).front(), reference);
  std::remove(path.string().c_str());
}

TEST(RequestKey, ThreadCountIsNormalizedAway) {
  // Engines are thread-count invariant by contract, so the execution
  // knob must not fragment the cache.
  SolveRequest serial;
  serial.soc = "d695";
  serial.width = 32;
  SolveRequest parallel = serial;
  parallel.options.threads = 8;
  EXPECT_EQ(request_keys(serial).front(), request_keys(parallel).front());
}

TEST(RequestKey, OnlyOptionsTheBackendConsumesCount) {
  // max_tams drives the enumerative search but is ignored by rectpack —
  // the canonical options reflect that, so rectpack points at different
  // max_tams coalesce while enumerative points stay distinct.
  SolveRequest request;
  request.soc = "d695";
  request.width = 24;
  request.backend = "rectpack";
  SolveRequest other = request;
  other.options.max_tams = 4;
  EXPECT_EQ(request_keys(request).front(), request_keys(other).front());

  request.backend = "enumerative";
  other.backend = "enumerative";
  EXPECT_NE(request_keys(request).front(), request_keys(other).front());

  // Options rectpack does consume must not alias.
  SolveRequest seeded;
  seeded.soc = "d695";
  seeded.width = 24;
  seeded.backend = "rectpack";
  SolveRequest reseeded = seeded;
  reseeded.options.rectpack.seed = 99;
  EXPECT_NE(request_keys(seeded).front(), request_keys(reseeded).front());
}

TEST(RequestKey, DistinctWorkDistinctKeys) {
  SolveRequest request;
  request.soc = "d695";
  request.width = 24;
  const RequestKey reference = request_keys(request).front();

  SolveRequest wider = request;
  wider.width = 25;
  EXPECT_NE(request_keys(wider).front(), reference);

  SolveRequest other_backend = request;
  other_backend.backend = "rectpack";
  EXPECT_NE(request_keys(other_backend).front(), reference);

  SolveRequest other_soc = request;
  other_soc.soc = "p21241";
  EXPECT_NE(request_keys(other_soc).front(), reference);
  // Different SOCs differ in the content hash specifically.
  EXPECT_NE(request_keys(other_soc).front().soc_hash, reference.soc_hash);
}

TEST(RequestKey, SweepExpandsToPerWidthKeys) {
  SolveRequest sweep;
  sweep.soc = "d695";
  sweep.width = 16;
  sweep.width_max = 20;
  const std::vector<RequestKey> keys = request_keys(sweep);
  ASSERT_EQ(keys.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(keys[static_cast<std::size_t>(i)].width, 16 + i);
    // Every per-width key equals the single-width request's key: a sweep
    // warms the cache for later single-width asks and vice versa.
    SolveRequest single = sweep;
    single.width = 16 + i;
    single.width_max = 0;
    EXPECT_EQ(request_keys(single).front(), keys[static_cast<std::size_t>(i)]);
  }
}

TEST(RequestKey, CanonicalTextFormIsStable) {
  SolveRequest request;
  request.soc = "d695";
  request.width = 32;
  const RequestKey key = request_keys(request).front();
  EXPECT_EQ(key.to_string(),
            "soc:50b7104b26d5c3f4695a8654678f5f94/w32/enumerative"
            "{max_tams=10,min_tams=1,run_final_step=1}");
}

TEST(RequestKey, ConstraintsChangeTheKeyForEveryBackend) {
  // The cache must never conflate constrained and unconstrained asks —
  // same SOC/width/backend, different canonical constraints, different
  // key; identical canonical constraints (any phrasing), identical key.
  for (const char* backend : {"enumerative", "rectpack"}) {
    SolveRequest plain;
    plain.soc = "d695";
    plain.width = 32;
    plain.backend = backend;

    SolveRequest constrained = plain;
    constrained.options.constraints.power.assign(10, 100);
    constrained.options.constraints.power_budget = 250;
    EXPECT_NE(request_keys(constrained).front(),
              request_keys(plain).front())
        << backend;

    SolveRequest tighter = constrained;
    tighter.options.constraints.power_budget = 200;
    EXPECT_NE(request_keys(tighter).front(),
              request_keys(constrained).front())
        << backend;
  }

  // Permuted phrasing normalizes to the same key.
  SolveRequest a;
  a.soc = "d695";
  a.width = 24;
  a.backend = "rectpack";
  a.options.constraints.precedence = {{0, 2}, {1, 2}};
  a.options.constraints.forbidden = {{3, {0, 4}}, {3, {8, 12}}};
  SolveRequest b = a;
  std::reverse(b.options.constraints.precedence.begin(),
               b.options.constraints.precedence.end());
  std::reverse(b.options.constraints.forbidden.begin(),
               b.options.constraints.forbidden.end());
  EXPECT_EQ(request_keys(a).front(), request_keys(b).front());
}

TEST(RequestKey, ConstrainedCanonicalTextFormIsPinned) {
  // Pinned digest: constrained keys are a persistence format exactly like
  // unconstrained ones (acceptance: ISSUE 5).
  SolveRequest request;
  request.soc = "d695";
  request.width = 32;
  request.backend = "rectpack";
  request.options.constraints.power = {10, 10, 10, 10, 10,
                                       10, 10, 10, 10, 10};
  request.options.constraints.power_budget = 25;
  request.options.constraints.precedence = {{0, 9}};
  const RequestKey key = request_keys(request).front();
  EXPECT_EQ(key.to_string(),
            "soc:50b7104b26d5c3f4695a8654678f5f94/w32/rectpack"
            "{constraints=power=10:10:10:10:10:10:10:10:10:10;budget=25;"
            "prec=0>9,rectpack_iterations=2000,rectpack_seed=1}");
  // And the unconstrained form is untouched (pinned in
  // CanonicalTextFormIsStable above) — pre-constraint cache keys survive.
}

TEST(RequestKey, ParseRoundTripsToString) {
  SolveRequest request;
  request.soc = "d695";
  request.width = 16;
  request.width_max = 48;
  for (const RequestKey& key : request_keys(request)) {
    const RequestKey parsed = RequestKey::parse(key.to_string());
    EXPECT_EQ(parsed, key);
    EXPECT_EQ(parsed.hash(), key.hash());
  }
  // Empty options round-trip too.
  RequestKey bare;
  bare.soc_hash = common::stable_hash_128("x");
  bare.width = 7;
  bare.backend = "rectpack";
  EXPECT_EQ(RequestKey::parse(bare.to_string()), bare);
}

TEST(RequestKey, ParseRejectsMalformedText) {
  const char* bad[] = {
      "",
      "soc:",
      "soc:zz",                                            // non-hex
      "soc:50b7104b26d5c3f4695a8654678f5f94",              // no width
      "soc:50b7104b26d5c3f4695a8654678f5f94/w/x{}",        // empty width
      "soc:50b7104b26d5c3f4695a8654678f5f94/w32",          // no backend
      "soc:50b7104b26d5c3f4695a8654678f5f94/w32/{}",       // empty backend
      "soc:50b7104b26d5c3f4695a8654678f5f94/w32/e{a=1",    // unclosed brace
      "soc:50b7104b26d5c3f4695a8654678f5f94/w32/e{a={b}}", // nested braces
      "bogus:50b7104b26d5c3f4695a8654678f5f94/w32/e{}",
  };
  for (const char* text : bad)
    EXPECT_THROW((void)RequestKey::parse(text), std::invalid_argument)
        << "accepted: " << text;
}

TEST(RequestKey, HashIsUsableForBucketing) {
  SolveRequest request;
  request.soc = "d695";
  request.width = 16;
  request.width_max = 48;
  const std::vector<RequestKey> keys = request_keys(request);
  // Distinct widths must spread across buckets, not collide trivially.
  std::uint64_t distinct = 0;
  for (std::size_t i = 1; i < keys.size(); ++i)
    if (keys[i].hash() != keys[0].hash()) ++distinct;
  EXPECT_EQ(distinct, keys.size() - 1);
}

}  // namespace
}  // namespace wtam::api
