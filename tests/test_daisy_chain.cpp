#include <gtest/gtest.h>

#include "core/co_optimizer.hpp"
#include "core/daisy_chain.hpp"
#include "core/test_time_table.hpp"
#include "soc/benchmarks.hpp"
#include "wrapper/wrapper.hpp"

namespace wtam::core {
namespace {

class DaisyFixture : public ::testing::Test {
 protected:
  static const soc::Soc& soc() {
    static const soc::Soc s = soc::d695();
    return s;
  }
  static TamArchitecture architecture() {
    static const TestTimeTable table(soc(), 32);
    return co_optimize_fixed_b(table, 32, 3, {}).architecture;
  }
};

TEST_F(DaisyFixture, NeverFasterThanTestBus) {
  // Bypass bits only add cycles; the bus model is the daisychain with
  // zero bypass overhead.
  const TamArchitecture arch = architecture();
  const auto daisy = evaluate_daisy_chain(soc(), arch);
  EXPECT_GE(daisy.testing_time, arch.testing_time);
  EXPECT_GT(daisy.bypass_overhead_cycles, 0);
}

TEST_F(DaisyFixture, SingleCorePerTamEqualsBusModel) {
  // With one core per TAM there is no bypass, so both models agree.
  soc::Soc three;
  three.name = "three";
  three.cores = {soc().cores[0], soc().cores[3], soc().cores[7]};
  const TestTimeTable table(three, 12);
  TamArchitecture arch;
  arch.widths = {4, 4, 4};
  arch.assignment = {0, 1, 2};
  arch.tam_times = {table.time(0, 4), table.time(1, 4), table.time(2, 4)};
  arch.testing_time =
      *std::max_element(arch.tam_times.begin(), arch.tam_times.end());
  const auto daisy = evaluate_daisy_chain(three, arch);
  EXPECT_EQ(daisy.testing_time, arch.testing_time);
  EXPECT_EQ(daisy.bypass_overhead_cycles, 0);
}

TEST_F(DaisyFixture, BypassPenaltyMatchesFormula) {
  // Two cores on one 4-wire chain: each pays exactly one bypass bit.
  soc::Soc two;
  two.name = "two";
  two.cores = {soc().cores[0], soc().cores[3]};  // c6288, s9234
  TamArchitecture arch;
  arch.widths = {4};
  arch.assignment = {0, 0};
  arch.tam_times = {0};

  const auto daisy = evaluate_daisy_chain(two, arch);
  std::int64_t expected = 0;
  for (const auto& core : two.cores) {
    const auto design = wrapper::best_design(core, 4);
    const std::int64_t longer =
        std::max(design.scan_in_length, design.scan_out_length) + 1;
    const std::int64_t shorter =
        std::min(design.scan_in_length, design.scan_out_length) + 1;
    expected += (1 + longer) * core.test_patterns + shorter;
  }
  EXPECT_EQ(daisy.testing_time, expected);
}

TEST_F(DaisyFixture, OverheadGrowsWithCoresPerChain) {
  // All ten cores on one TAM vs spread over two: more cores per chain
  // means more bypass overhead.
  TamArchitecture one;
  one.widths = {16};
  one.assignment.assign(10, 0);
  one.tam_times = {0};
  TamArchitecture two;
  two.widths = {8, 8};
  two.assignment = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  two.tam_times = {0, 0};
  const auto all_on_one = evaluate_daisy_chain(soc(), one);
  const auto spread = evaluate_daisy_chain(soc(), two);
  EXPECT_GT(all_on_one.bypass_overhead_cycles, spread.bypass_overhead_cycles);
}

TEST_F(DaisyFixture, RejectsMalformedInput) {
  TamArchitecture arch = architecture();
  arch.assignment[0] = 42;
  EXPECT_THROW((void)evaluate_daisy_chain(soc(), arch), std::invalid_argument);
  TamArchitecture empty;
  EXPECT_THROW((void)evaluate_daisy_chain(soc(), empty), std::invalid_argument);
  TamArchitecture wrong = architecture();
  wrong.assignment.pop_back();
  EXPECT_THROW((void)evaluate_daisy_chain(soc(), wrong), std::invalid_argument);
}

}  // namespace
}  // namespace wtam::core
