#include <gtest/gtest.h>

#include "soc/benchmarks.hpp"
#include "soc/soc.hpp"

namespace wtam::soc {
namespace {

Core make_core(std::string name, std::int64_t patterns, int in, int out,
               std::vector<int> chains) {
  Core core;
  core.name = std::move(name);
  core.test_patterns = patterns;
  core.num_inputs = in;
  core.num_outputs = out;
  core.scan_chains = std::move(chains);
  return core;
}

TEST(Core, TotalsAndAccessors) {
  const Core core = make_core("c", 10, 3, 4, {5, 7, 2});
  EXPECT_EQ(core.total_scan_bits(), 14);
  EXPECT_EQ(core.longest_scan_chain(), 7);
  EXPECT_EQ(core.functional_ios(), 7);
  EXPECT_TRUE(core.is_scan_testable());
}

TEST(Core, CombinationalCore) {
  const Core core = make_core("comb", 12, 32, 32, {});
  EXPECT_EQ(core.total_scan_bits(), 0);
  EXPECT_EQ(core.longest_scan_chain(), 0);
  EXPECT_FALSE(core.is_scan_testable());
}

TEST(Core, ValidateAcceptsGoodCore) {
  EXPECT_NO_THROW(make_core("ok", 5, 1, 1, {3}).validate());
}

TEST(Core, ValidateRejectsEmptyName) {
  Core core = make_core("x", 5, 1, 1, {});
  core.name.clear();
  EXPECT_THROW(core.validate(), std::invalid_argument);
}

TEST(Core, ValidateRejectsNegativePatterns) {
  EXPECT_THROW(make_core("x", -1, 1, 1, {}).validate(), std::invalid_argument);
}

TEST(Core, ValidateRejectsNegativeTerminals) {
  EXPECT_THROW(make_core("x", 1, -1, 1, {}).validate(), std::invalid_argument);
}

TEST(Core, ValidateRejectsNonPositiveChain) {
  EXPECT_THROW(make_core("x", 1, 1, 1, {0}).validate(), std::invalid_argument);
}

TEST(Core, ValidateRejectsMemoryWithScan) {
  Core core = make_core("m", 1, 1, 1, {4});
  core.kind = CoreKind::Memory;
  EXPECT_THROW(core.validate(), std::invalid_argument);
}

TEST(Core, ValidateRejectsUntestableCore) {
  // Patterns but no terminals and no scan: nothing to shift.
  EXPECT_THROW(make_core("x", 3, 0, 0, {}).validate(), std::invalid_argument);
}

TEST(Core, MinTestTimeBoundScanCore) {
  // Longest chain 7 dominates: (1+7)*10 + 7 = 87.
  const Core core = make_core("c", 10, 3, 4, {5, 7, 2});
  EXPECT_EQ(min_test_time_bound(core), 87);
}

TEST(Core, MinTestTimeBoundCombinational) {
  // si/so can shrink to one cell: (1+1)*12 + 1 = 25.
  const Core core = make_core("comb", 12, 32, 32, {});
  EXPECT_EQ(min_test_time_bound(core), 25);
}

TEST(Soc, ValidateRejectsEmpty) {
  Soc soc;
  soc.name = "empty";
  EXPECT_THROW(soc.validate(), std::invalid_argument);
}

TEST(Soc, TestComplexityIsVolumeOverThousand) {
  Soc soc;
  soc.name = "s";
  soc.cores = {make_core("a", 100, 10, 10, {30, 50}),  // 100*(20+80)=10000
               make_core("b", 50, 5, 5, {})};          // 50*10 = 500
  EXPECT_EQ(test_complexity(soc), 10);                 // (10000+500)/1000
}

TEST(Soc, D695HasTenLogicCores) {
  const Soc soc = d695();
  EXPECT_EQ(soc.core_count(), 10);
  for (const auto& core : soc.cores) EXPECT_EQ(core.kind, CoreKind::Logic);
}

TEST(Soc, D695KnownCoreData) {
  const Soc soc = d695();
  const Core& s9234 = soc.cores[3];
  EXPECT_EQ(s9234.name, "s9234");
  EXPECT_EQ(s9234.test_patterns, 105);
  EXPECT_EQ(s9234.total_scan_bits(), 212);
  EXPECT_EQ(s9234.longest_scan_chain(), 54);
  const Core& s35932 = soc.cores[8];
  EXPECT_EQ(s35932.scan_chains.size(), 32u);
  EXPECT_EQ(s35932.total_scan_bits(), 1728);
}

TEST(Soc, D695ComplexityOrderOfMagnitude) {
  // DESIGN.md: our volume formula yields ~669 on d695 (name says 695).
  const auto complexity = test_complexity(d695());
  EXPECT_GT(complexity, 600);
  EXPECT_LT(complexity, 800);
}

TEST(Soc, BalancedScanChains) {
  const auto chains = balanced_scan_chains(638, 16);
  ASSERT_EQ(chains.size(), 16u);
  std::int64_t total = 0;
  int lo = chains[0];
  int hi = chains[0];
  for (const int len : chains) {
    total += len;
    lo = std::min(lo, len);
    hi = std::max(hi, len);
  }
  EXPECT_EQ(total, 638);
  EXPECT_LE(hi - lo, 1);
}

TEST(Soc, BalancedScanChainsRejectsBadArgs) {
  EXPECT_THROW((void)balanced_scan_chains(10, 0), std::invalid_argument);
  EXPECT_THROW((void)balanced_scan_chains(3, 4), std::invalid_argument);
}

TEST(Soc, CoreDataRangesSeparatesKinds) {
  Soc soc;
  soc.name = "mix";
  Core logic = make_core("l", 100, 10, 20, {40, 10});
  Core memory = make_core("m", 5000, 30, 30, {});
  memory.kind = CoreKind::Memory;
  soc.cores = {logic, memory};

  const CoreDataRanges logic_ranges = core_data_ranges(soc, CoreKind::Logic);
  EXPECT_EQ(logic_ranges.core_count, 1);
  EXPECT_EQ(logic_ranges.test_patterns, (Range{100, 100}));
  EXPECT_EQ(logic_ranges.functional_ios, (Range{30, 30}));
  EXPECT_EQ(logic_ranges.scan_chain_count, (Range{2, 2}));
  ASSERT_TRUE(logic_ranges.scan_lengths.has_value());
  EXPECT_EQ(*logic_ranges.scan_lengths, (Range{10, 40}));

  const CoreDataRanges mem_ranges = core_data_ranges(soc, CoreKind::Memory);
  EXPECT_EQ(mem_ranges.core_count, 1);
  EXPECT_EQ(mem_ranges.test_patterns, (Range{5000, 5000}));
  EXPECT_FALSE(mem_ranges.scan_lengths.has_value());
}

}  // namespace
}  // namespace wtam::soc
