// Socket transport mechanics: endpoint parsing and the line framing
// that every multi-host conversation rides on. The framing tests drive
// a net::Connection from the raw peer end of a socketpair, so partial
// frames, dribbling writers, oversized lines, and mid-frame hangups are
// exact, not timing-dependent. (Tests sit outside the raw-socket lint
// scope; production code must go through src/net/.)

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "net/endpoint.hpp"
#include "net/socket.hpp"

namespace wtam::net {
namespace {

// ---- endpoint parsing ------------------------------------------------------

TEST(Endpoint, ParsesHostAndPort) {
  const Endpoint endpoint = parse_endpoint("127.0.0.1:8080");
  EXPECT_EQ(endpoint.host, "127.0.0.1");
  EXPECT_EQ(endpoint.port, 8080);
  EXPECT_EQ(endpoint.to_string(), "127.0.0.1:8080");
}

TEST(Endpoint, PortZeroMeansKernelAssigned) {
  EXPECT_EQ(parse_endpoint("localhost:0").port, 0);
}

TEST(Endpoint, AcceptsTheFullPortRange) {
  EXPECT_EQ(parse_endpoint("h:65535").port, 65535);
  EXPECT_EQ(parse_endpoint("h:1").port, 1);
}

TEST(Endpoint, RejectsMalformedSpellings) {
  EXPECT_THROW((void)parse_endpoint(""), std::invalid_argument);
  EXPECT_THROW((void)parse_endpoint("nohost"), std::invalid_argument);
  EXPECT_THROW((void)parse_endpoint(":80"), std::invalid_argument);
  EXPECT_THROW((void)parse_endpoint("host:"), std::invalid_argument);
  EXPECT_THROW((void)parse_endpoint("host:abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_endpoint("host:12x"), std::invalid_argument);
  EXPECT_THROW((void)parse_endpoint("host:65536"), std::invalid_argument);
  EXPECT_THROW((void)parse_endpoint("host:999999"), std::invalid_argument);
  // IPv6 literals carry extra colons; the parser refuses rather than
  // mis-splitting.
  EXPECT_THROW((void)parse_endpoint("::1:80"), std::invalid_argument);
  EXPECT_THROW((void)parse_endpoint("[::1]:80"), std::invalid_argument);
}

// ---- framing on a socketpair ----------------------------------------------

/// A Connection plus the raw peer fd the test writes through, so byte
/// boundaries are exactly what the test says they are.
struct FramedPair {
  std::unique_ptr<Connection> connection;
  int raw_fd = -1;

  explicit FramedPair(std::size_t max_line_bytes = 256) {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    connection = std::make_unique<Connection>(fds[0], max_line_bytes);
    raw_fd = fds[1];
  }

  ~FramedPair() {
    if (raw_fd >= 0) ::close(raw_fd);
  }

  void send_raw(const std::string& bytes) const {
    ASSERT_EQ(::send(raw_fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }

  void hang_up() {
    ::close(raw_fd);
    raw_fd = -1;
  }
};

TEST(Framing, ReassemblesAFrameSplitAcrossWrites) {
  FramedPair pair;
  pair.send_raw("{\"op\": ");
  pair.send_raw("\"stats\"");
  pair.send_raw("}\n");
  std::string line;
  ASSERT_EQ(pair.connection->read_line(line), ReadStatus::Line);
  EXPECT_EQ(line, "{\"op\": \"stats\"}");
}

TEST(Framing, SplitsMultipleFramesArrivingInOneWrite) {
  FramedPair pair;
  pair.send_raw("alpha\nbeta\ngam");
  pair.send_raw("ma\n");
  std::string line;
  ASSERT_EQ(pair.connection->read_line(line), ReadStatus::Line);
  EXPECT_EQ(line, "alpha");
  ASSERT_EQ(pair.connection->read_line(line), ReadStatus::Line);
  EXPECT_EQ(line, "beta");
  ASSERT_EQ(pair.connection->read_line(line), ReadStatus::Line);
  EXPECT_EQ(line, "gamma");
}

TEST(Framing, ByteAtATimeWriterStillFramesCorrectly) {
  FramedPair pair;
  const std::string message = "{\"id\": \"dribble\", \"width\": 32}";
  std::thread writer([&pair, &message] {
    for (const char byte : message) pair.send_raw(std::string(1, byte));
    pair.send_raw("\n");
  });
  std::string line;
  ASSERT_EQ(pair.connection->read_line(line), ReadStatus::Line);
  EXPECT_EQ(line, message);
  writer.join();
}

TEST(Framing, OversizedLineIsRejectedAndTheStreamResyncs) {
  FramedPair pair(/*max_line_bytes=*/16);
  pair.send_raw(std::string(64, 'x') + "\nok\n");
  std::string line;
  // The overlong frame is rejected without tearing the connection...
  ASSERT_EQ(pair.connection->read_line(line), ReadStatus::TooLong);
  // ...and the next frame after the newline arrives intact.
  ASSERT_EQ(pair.connection->read_line(line), ReadStatus::Line);
  EXPECT_EQ(line, "ok");
}

TEST(Framing, OversizedLineLargerThanTheBufferStillResyncs) {
  FramedPair pair(/*max_line_bytes=*/16);
  // No newline for a while: the reader must keep discarding without
  // growing its buffer past the bound.
  pair.send_raw(std::string(100, 'a'));
  pair.send_raw(std::string(100, 'b') + "\nafter\n");
  std::string line;
  ASSERT_EQ(pair.connection->read_line(line), ReadStatus::TooLong);
  ASSERT_EQ(pair.connection->read_line(line), ReadStatus::Line);
  EXPECT_EQ(line, "after");
}

TEST(Framing, AbruptDisconnectMidFrameDeliversTheFinalPartialLine) {
  FramedPair pair;
  pair.send_raw("complete\nunterminated");
  std::string line;
  ASSERT_EQ(pair.connection->read_line(line), ReadStatus::Line);
  EXPECT_EQ(line, "complete");
  pair.hang_up();
  // The unterminated tail still counts as a line (matches stdin
  // semantics)...
  ASSERT_EQ(pair.connection->read_line(line), ReadStatus::Line);
  EXPECT_EQ(line, "unterminated");
  // ...and only then does the stream report EOF, forever.
  EXPECT_EQ(pair.connection->read_line(line), ReadStatus::Eof);
  EXPECT_EQ(pair.connection->read_line(line), ReadStatus::Eof);
}

TEST(Framing, ImmediateDisconnectIsAPlainEof) {
  FramedPair pair;
  pair.hang_up();
  std::string line;
  EXPECT_EQ(pair.connection->read_line(line), ReadStatus::Eof);
}

TEST(Framing, WriteLineAppendsExactlyOneNewline) {
  FramedPair pair;
  EXPECT_TRUE(pair.connection->write_line("{\"ok\": true}"));
  char buffer[64] = {};
  const ssize_t n = ::recv(pair.raw_fd, buffer, sizeof(buffer), 0);
  EXPECT_EQ(std::string(buffer, static_cast<std::size_t>(n)),
            "{\"ok\": true}\n");
}

TEST(Framing, WritesFromManyThreadsNeverInterleave) {
  FramedPair pair(1u << 20);
  constexpr int kThreads = 4;
  constexpr int kLines = 50;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&pair, t] {
      const std::string payload(64, static_cast<char>('a' + t));
      for (int i = 0; i < kLines; ++i)
        (void)pair.connection->write_line(payload);
    });
  // Drain concurrently so the writers never block on a full buffer.
  std::string received;
  char chunk[4096];
  while (received.size() < kThreads * kLines * 65u) {
    const ssize_t n = ::recv(pair.raw_fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0);
    received.append(chunk, static_cast<std::size_t>(n));
  }
  for (std::thread& writer : writers) writer.join();
  // Every received line is one writer's payload, whole.
  std::size_t start = 0;
  int count = 0;
  for (std::size_t newline = received.find('\n'); newline != std::string::npos;
       newline = received.find('\n', start)) {
    const std::string line = received.substr(start, newline - start);
    start = newline + 1;
    ASSERT_EQ(line.size(), 64u);
    for (const char byte : line) ASSERT_EQ(byte, line.front());
    ++count;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

TEST(Framing, ShutdownBothUnblocksABlockedReader) {
  FramedPair pair;
  std::atomic<bool> unblocked{false};
  std::thread reader([&pair, &unblocked] {
    std::string line;
    // No data ever arrives: only the shutdown can release this read.
    (void)pair.connection->read_line(line);
    unblocked.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(unblocked.load());
  pair.connection->shutdown_both();
  reader.join();
  EXPECT_TRUE(unblocked.load());
  // Writes after the shutdown fail cleanly instead of crashing.
  EXPECT_FALSE(pair.connection->write_line("late"));
}

// ---- listener + real TCP ---------------------------------------------------

TEST(Listener, PortZeroBindsAnEphemeralPortAndRoundTrips) {
  Listener listener(parse_endpoint("127.0.0.1:0"));
  const Endpoint bound = listener.local_endpoint();
  EXPECT_GT(bound.port, 0);

  std::unique_ptr<Connection> server;
  std::thread acceptor([&listener, &server] { server = listener.accept(); });
  std::unique_ptr<Connection> client = Connection::connect(bound);
  acceptor.join();
  ASSERT_NE(server, nullptr);
  ASSERT_NE(client, nullptr);

  EXPECT_TRUE(client->write_line("{\"op\": \"ping\"}"));
  std::string line;
  ASSERT_EQ(server->read_line(line), ReadStatus::Line);
  EXPECT_EQ(line, "{\"op\": \"ping\"}");
  EXPECT_TRUE(server->write_line("{\"op\": \"ping\", \"ok\": true}"));
  ASSERT_EQ(client->read_line(line), ReadStatus::Line);
  EXPECT_EQ(line, "{\"op\": \"ping\", \"ok\": true}");

  listener.stop();
}

TEST(Listener, StopUnblocksABlockedAccept) {
  Listener listener(parse_endpoint("127.0.0.1:0"));
  std::unique_ptr<Connection> accepted;
  std::atomic<bool> returned{false};
  std::thread acceptor([&listener, &accepted, &returned] {
    accepted = listener.accept();
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(returned.load());
  listener.stop();
  acceptor.join();
  EXPECT_TRUE(returned.load());
  EXPECT_EQ(accepted, nullptr);
  // Post-stop accepts return immediately.
  EXPECT_EQ(listener.accept(), nullptr);
}

TEST(Listener, ConnectToAClosedPortFails) {
  // Bind then immediately stop: the port is (briefly) known-dead.
  Endpoint dead;
  {
    Listener listener(parse_endpoint("127.0.0.1:0"));
    dead = listener.local_endpoint();
    listener.stop();
  }
  EXPECT_THROW((void)Connection::connect(dead), std::runtime_error);
}

}  // namespace
}  // namespace wtam::net
