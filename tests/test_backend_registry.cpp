#include <gtest/gtest.h>

#include "core/backend.hpp"
#include "core/co_optimizer.hpp"
#include "core/lower_bounds.hpp"
#include "core/test_time_table.hpp"
#include "pack/packed_schedule.hpp"
#include "soc/benchmarks.hpp"

namespace wtam::core {
namespace {

TEST(BackendRegistry, BuiltInsAreRegistered) {
  const auto names = BackendRegistry::instance().names();
  // Later tests may add their own backends; the built-ins always lead.
  ASSERT_GE(names.size(), 2u);
  EXPECT_EQ(names[0], "enumerative");
  EXPECT_EQ(names[1], "rectpack");
  for (const auto& name : names) {
    const auto* backend = BackendRegistry::instance().find(name);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->name(), name);
    EXPECT_FALSE(backend->description().empty());
  }
  // backends() is the one-scan listing: same order, same objects.
  const auto listed = BackendRegistry::instance().backends();
  ASSERT_EQ(listed.size(), names.size());
  for (std::size_t i = 0; i < listed.size(); ++i)
    EXPECT_EQ(listed[i]->name(), names[i]);
}

TEST(BackendRegistry, UnknownNameThrowsListingKnownOnes) {
  EXPECT_EQ(BackendRegistry::instance().find("annealing"), nullptr);
  try {
    (void)BackendRegistry::instance().at("annealing");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("annealing"), std::string::npos);
    EXPECT_NE(what.find("enumerative"), std::string::npos);
    EXPECT_NE(what.find("rectpack"), std::string::npos);
  }
}

namespace {

class NamedDummy : public OptimizerBackend {
 public:
  NamedDummy(std::string_view name, std::string_view description)
      : name_(name), description_(description) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return description_;
  }
  [[nodiscard]] BackendOutcome optimize(const TestTimeTable&, int,
                                        const BackendOptions&,
                                        const SolveContext&) const override {
    return {};
  }

 private:
  std::string_view name_;
  std::string_view description_;
};

}  // namespace

TEST(BackendRegistry, RejectsConflictingAndNullRegistration) {
  // A different backend under a taken name names the incumbent precisely.
  try {
    BackendRegistry::instance().register_backend(
        std::make_unique<NamedDummy>("enumerative", "dup"));
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("enumerative"), std::string::npos);
    // The message quotes the existing backend's description.
    EXPECT_NE(what.find("Partition_evaluate"), std::string::npos);
  }
  EXPECT_THROW(BackendRegistry::instance().register_backend(nullptr),
               std::invalid_argument);
}

TEST(BackendRegistry, ReRegistrationIsIdempotent) {
  // True on this process's first registration, false under
  // --gtest_repeat (the singleton registry persists) — the point is that
  // either way the call is safe and the registry ends in the same state.
  const bool newly_registered = BackendRegistry::instance().register_backend(
      std::make_unique<NamedDummy>("test-dummy", "idempotence probe"));
  const auto count = BackendRegistry::instance().names().size();
  // Same name + same description: a no-op, repeatable from any test.
  EXPECT_FALSE(BackendRegistry::instance().register_backend(
      std::make_unique<NamedDummy>("test-dummy", "idempotence probe")));
  EXPECT_FALSE(BackendRegistry::instance().register_backend(
      std::make_unique<NamedDummy>("test-dummy", "idempotence probe")));
  EXPECT_EQ(BackendRegistry::instance().names().size(), count);
  ASSERT_NE(BackendRegistry::instance().find("test-dummy"), nullptr);
  if (newly_registered) {
    EXPECT_EQ(BackendRegistry::instance().names().back(), "test-dummy");
  }
  // Same name, different backend: still a hard error.
  EXPECT_THROW(BackendRegistry::instance().register_backend(
                   std::make_unique<NamedDummy>("test-dummy", "impostor")),
               std::invalid_argument);
}

TEST(BackendRegistry, EnumerativeOutcomeMatchesCoOptimize) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 32);
  // Backend-seam test: the registry's raw optimize() is exactly what is
  // under test here (api::Solver layers on top of it).
  const auto outcome =
      BackendRegistry::instance().at("enumerative").optimize(table, 32, {});
  const auto reference = co_optimize(table, 32, {});

  EXPECT_EQ(outcome.backend, "enumerative");
  EXPECT_EQ(outcome.testing_time, reference.architecture.testing_time);
  ASSERT_TRUE(outcome.architecture.has_value());
  EXPECT_EQ(outcome.architecture->widths, reference.architecture.widths);
  EXPECT_EQ(outcome.architecture->assignment,
            reference.architecture.assignment);
  // The unified schedule reproduces the architecture's makespan and is
  // geometry-clean.
  EXPECT_EQ(outcome.schedule.makespan, outcome.testing_time);
  EXPECT_TRUE(pack::validate_packed_schedule(table, outcome.schedule).empty());
}

TEST(BackendRegistry, EveryBackendProducesAValidScheduleAboveTheBound) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 24);
  const auto bound = testing_time_lower_bounds(table, 24).combined();
  for (const auto& name : BackendRegistry::instance().names()) {
    if (name == "test-dummy") continue;  // inert probe from the test above
    const auto outcome =
        BackendRegistry::instance().at(name).optimize(table, 24, {});
    EXPECT_EQ(outcome.backend, name);
    EXPECT_TRUE(pack::validate_packed_schedule(table, outcome.schedule).empty())
        << name;
    EXPECT_EQ(outcome.schedule.makespan, outcome.testing_time) << name;
    EXPECT_GE(outcome.testing_time, bound) << name;
    EXPECT_GE(outcome.cpu_s, 0.0);
    EXPECT_FALSE(outcome.details.empty()) << name;
  }
}

}  // namespace
}  // namespace wtam::core
