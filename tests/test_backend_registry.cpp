#include <gtest/gtest.h>

#include "core/backend.hpp"
#include "core/co_optimizer.hpp"
#include "core/lower_bounds.hpp"
#include "core/test_time_table.hpp"
#include "pack/packed_schedule.hpp"
#include "soc/benchmarks.hpp"

namespace wtam::core {
namespace {

TEST(BackendRegistry, BuiltInsAreRegistered) {
  const auto names = BackendRegistry::instance().names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "enumerative");
  EXPECT_EQ(names[1], "rectpack");
  for (const auto& name : names) {
    const auto* backend = BackendRegistry::instance().find(name);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->name(), name);
    EXPECT_FALSE(backend->description().empty());
  }
}

TEST(BackendRegistry, UnknownNameThrowsListingKnownOnes) {
  EXPECT_EQ(BackendRegistry::instance().find("annealing"), nullptr);
  try {
    (void)BackendRegistry::instance().at("annealing");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("annealing"), std::string::npos);
    EXPECT_NE(what.find("enumerative"), std::string::npos);
    EXPECT_NE(what.find("rectpack"), std::string::npos);
  }
}

TEST(BackendRegistry, RejectsDuplicateAndNullRegistration) {
  class Dummy final : public OptimizerBackend {
    [[nodiscard]] std::string_view name() const noexcept override {
      return "enumerative";  // collides with the built-in
    }
    [[nodiscard]] std::string_view description() const noexcept override {
      return "dup";
    }
    [[nodiscard]] BackendOutcome optimize(const TestTimeTable&, int,
                                          const BackendOptions&) const override {
      return {};
    }
  };
  EXPECT_THROW(
      BackendRegistry::instance().register_backend(std::make_unique<Dummy>()),
      std::invalid_argument);
  EXPECT_THROW(BackendRegistry::instance().register_backend(nullptr),
               std::invalid_argument);
}

TEST(BackendRegistry, EnumerativeOutcomeMatchesCoOptimize) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 32);
  const auto outcome = run_backend("enumerative", table, 32);
  const auto reference = co_optimize(table, 32, {});

  EXPECT_EQ(outcome.backend, "enumerative");
  EXPECT_EQ(outcome.testing_time, reference.architecture.testing_time);
  ASSERT_TRUE(outcome.architecture.has_value());
  EXPECT_EQ(outcome.architecture->widths, reference.architecture.widths);
  EXPECT_EQ(outcome.architecture->assignment,
            reference.architecture.assignment);
  // The unified schedule reproduces the architecture's makespan and is
  // geometry-clean.
  EXPECT_EQ(outcome.schedule.makespan, outcome.testing_time);
  EXPECT_TRUE(pack::validate_packed_schedule(table, outcome.schedule).empty());
}

TEST(BackendRegistry, EveryBackendProducesAValidScheduleAboveTheBound) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 24);
  const auto bound = testing_time_lower_bounds(table, 24).combined();
  for (const auto& name : BackendRegistry::instance().names()) {
    const auto outcome = run_backend(name, table, 24);
    EXPECT_EQ(outcome.backend, name);
    EXPECT_TRUE(pack::validate_packed_schedule(table, outcome.schedule).empty())
        << name;
    EXPECT_EQ(outcome.schedule.makespan, outcome.testing_time) << name;
    EXPECT_GE(outcome.testing_time, bound) << name;
    EXPECT_GE(outcome.cpu_s, 0.0);
    EXPECT_FALSE(outcome.details.empty()) << name;
  }
}

}  // namespace
}  // namespace wtam::core
