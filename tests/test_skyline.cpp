#include <gtest/gtest.h>

#include "pack/skyline.hpp"

namespace wtam::pack {
namespace {

TEST(Skyline, StartsFlatAtZero) {
  const Skyline sky(8);
  EXPECT_EQ(sky.total_width(), 8);
  EXPECT_EQ(sky.makespan(), 0);
  const auto spot = sky.best_spot(8);
  EXPECT_EQ(spot.wire, 0);
  EXPECT_EQ(spot.start, 0);
}

TEST(Skyline, BottomLeftPrefersLowestThenLeftmost) {
  Skyline sky(6);
  sky.place(0, 2, 100);  // wires 0-1 busy until 100
  sky.place(4, 2, 50);   // wires 4-5 busy until 50

  // A 2-wide rectangle fits at time 0 only on wires 2-3.
  auto spot = sky.best_spot(2);
  EXPECT_EQ(spot.wire, 2);
  EXPECT_EQ(spot.start, 0);

  // A 3-wide rectangle: windows are [0,3)=100, [1,4)=100, [2,5)=50,
  // [3,6)=50 — lowest is 50, leftmost such window starts at wire 2.
  spot = sky.best_spot(3);
  EXPECT_EQ(spot.wire, 2);
  EXPECT_EQ(spot.start, 50);

  // Full width must wait for the tallest wire.
  spot = sky.best_spot(6);
  EXPECT_EQ(spot.wire, 0);
  EXPECT_EQ(spot.start, 100);
}

TEST(Skyline, PlaceRaisesOnlyTheWindow) {
  Skyline sky(4);
  sky.place(1, 2, 10);
  EXPECT_EQ(sky.free_time(0), 0);
  EXPECT_EQ(sky.free_time(1), 10);
  EXPECT_EQ(sky.free_time(2), 10);
  EXPECT_EQ(sky.free_time(3), 0);
  EXPECT_EQ(sky.makespan(), 10);

  // Placing below an already-raised wire never lowers it.
  sky.place(1, 1, 5);
  EXPECT_EQ(sky.free_time(1), 10);
}

TEST(Skyline, ClearResets) {
  Skyline sky(3);
  sky.place(0, 3, 7);
  sky.clear();
  EXPECT_EQ(sky.makespan(), 0);
}

TEST(Skyline, RejectsBadArguments) {
  EXPECT_THROW(Skyline(0), std::invalid_argument);
  Skyline sky(4);
  EXPECT_THROW((void)sky.best_spot(0), std::invalid_argument);
  EXPECT_THROW((void)sky.best_spot(5), std::invalid_argument);
  EXPECT_THROW(sky.place(2, 3, 1), std::invalid_argument);
}

}  // namespace
}  // namespace wtam::pack
