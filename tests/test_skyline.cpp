#include <gtest/gtest.h>

#include "pack/skyline.hpp"

namespace wtam::pack {
namespace {

TEST(Skyline, StartsFlatAtZero) {
  const Skyline sky(8);
  EXPECT_EQ(sky.total_width(), 8);
  EXPECT_EQ(sky.makespan(), 0);
  const auto spot = sky.best_spot(8);
  EXPECT_EQ(spot.wire, 0);
  EXPECT_EQ(spot.start, 0);
}

TEST(Skyline, BottomLeftPrefersLowestThenLeftmost) {
  Skyline sky(6);
  sky.place(0, 2, 100);  // wires 0-1 busy until 100
  sky.place(4, 2, 50);   // wires 4-5 busy until 50

  // A 2-wide rectangle fits at time 0 only on wires 2-3.
  auto spot = sky.best_spot(2);
  EXPECT_EQ(spot.wire, 2);
  EXPECT_EQ(spot.start, 0);

  // A 3-wide rectangle: windows are [0,3)=100, [1,4)=100, [2,5)=50,
  // [3,6)=50 — lowest is 50, leftmost such window starts at wire 2.
  spot = sky.best_spot(3);
  EXPECT_EQ(spot.wire, 2);
  EXPECT_EQ(spot.start, 50);

  // Full width must wait for the tallest wire.
  spot = sky.best_spot(6);
  EXPECT_EQ(spot.wire, 0);
  EXPECT_EQ(spot.start, 100);
}

TEST(Skyline, PlaceRaisesOnlyTheWindow) {
  Skyline sky(4);
  sky.place(1, 2, 10);
  EXPECT_EQ(sky.free_time(0), 0);
  EXPECT_EQ(sky.free_time(1), 10);
  EXPECT_EQ(sky.free_time(2), 10);
  EXPECT_EQ(sky.free_time(3), 0);
  EXPECT_EQ(sky.makespan(), 10);

  // Placing below an already-raised wire never lowers it.
  sky.place(1, 1, 5);
  EXPECT_EQ(sky.free_time(1), 10);
}

TEST(Skyline, ClearResets) {
  Skyline sky(3);
  sky.place(0, 3, 7);
  sky.clear();
  EXPECT_EQ(sky.makespan(), 0);
}

TEST(Skyline, RejectsBadArguments) {
  EXPECT_THROW(Skyline(0), std::invalid_argument);
  Skyline sky(4);
  EXPECT_THROW((void)sky.best_spot(0), std::invalid_argument);
  EXPECT_THROW((void)sky.best_spot(5), std::invalid_argument);
  EXPECT_THROW(sky.place(2, 3, 1), std::invalid_argument);
}

TEST(Skyline, FullWidthRectanglesStack) {
  // A full-width rectangle always lands on the makespan, wire 0; a
  // sequence of them serializes perfectly.
  Skyline sky(8);
  for (const std::int64_t duration : {10, 25, 5}) {
    const auto spot = sky.best_spot(8);
    EXPECT_EQ(spot.wire, 0);
    EXPECT_EQ(spot.start, sky.makespan());
    sky.place(spot.wire, 8, spot.start + duration);
  }
  EXPECT_EQ(sky.makespan(), 40);
  // Even after an uneven partial placement, full width waits for the top.
  sky.place(3, 2, 100);
  EXPECT_EQ(sky.best_spot(8).start, 100);
}

TEST(Skyline, WidthOneStripDegeneratesToASerialLane) {
  Skyline sky(1);
  EXPECT_EQ(sky.best_spot(1).wire, 0);
  sky.place(0, 1, 7);
  EXPECT_EQ(sky.best_spot(1).start, 7);
  sky.place(0, 1, 7 + 3);
  EXPECT_EQ(sky.makespan(), 10);
  // The constrained query agrees on the degenerate strip.
  Skyline::SpotQuery query;
  query.width = 1;
  query.duration = 4;
  const auto spot = sky.best_spot(query);
  ASSERT_TRUE(spot.has_value());
  EXPECT_EQ(spot->wire, 0);
  EXPECT_EQ(spot->start, 10);
}

TEST(Skyline, SlidingWindowMaxOverShrinkingSegments) {
  // A strictly descending staircase: segments of decreasing height where
  // every window's max is its leftmost wire. The monotone deque must
  // evict exactly one candidate per step.
  Skyline sky(6);
  for (int wire = 0; wire < 6; ++wire)
    sky.place(wire, 1, 60 - 10 * wire);  // heights 60,50,40,30,20,10
  for (int width = 1; width <= 6; ++width) {
    const auto spot = sky.best_spot(width);
    // The lowest window of any width hugs the right edge; its max is its
    // leftmost (tallest) wire.
    EXPECT_EQ(spot.wire, 6 - width) << "width=" << width;
    EXPECT_EQ(spot.start, 60 - 10 * (6 - width)) << "width=" << width;
  }
  // Shrink the last segment to a single low wire and re-query: windows
  // that include wire 5 are capped by their interior maxima.
  sky.place(5, 1, 55);  // now 60,50,40,30,20,55
  const auto spot = sky.best_spot(2);
  EXPECT_EQ(spot.wire, 3);  // [30,20] — max 30, the lowest 2-window
  EXPECT_EQ(spot.start, 30);
}

TEST(Skyline, ConstrainedQueryHonorsWindowsAndForbiddenRows) {
  Skyline sky(8);
  Skyline::SpotQuery query;
  query.width = 2;
  query.duration = 10;
  query.window = {4, 8};  // fixed interval: right half only
  const auto right = sky.best_spot(query);
  ASSERT_TRUE(right.has_value());
  EXPECT_EQ(right->wire, 4);

  const std::vector<core::WireInterval> forbidden = {{4, 6}};
  query.forbidden = &forbidden;
  const auto shifted = sky.best_spot(query);
  ASSERT_TRUE(shifted.has_value());
  EXPECT_EQ(shifted->wire, 6);

  query.width = 3;  // no 3-wide run inside [6, 8)
  EXPECT_FALSE(sky.best_spot(query).has_value());

  query.width = 2;
  query.min_start = 123;  // precedence floor lifts the start
  const auto floored = sky.best_spot(query);
  ASSERT_TRUE(floored.has_value());
  EXPECT_EQ(floored->start, 123);
}

TEST(Skyline, PowerRejectionAtExactlyAtBudgetBoundaries) {
  Skyline sky(8);
  sky.place(0, 2, 0, 10, /*power=*/3);  // [0,10) draws 3 of budget 5
  Skyline::SpotQuery query;
  query.width = 2;
  query.duration = 5;
  query.power_budget = 5;

  // Exactly at budget: 3 + 2 == 5 fits, start 0 allowed.
  query.power = 2;
  auto spot = sky.best_spot(query);
  ASSERT_TRUE(spot.has_value());
  EXPECT_EQ(spot->start, 0);

  // One unit over: 3 + 3 > 5, the start is delayed to the span end.
  query.power = 3;
  spot = sky.best_spot(query);
  ASSERT_TRUE(spot.has_value());
  EXPECT_EQ(spot->start, 10);

  // Exactly the whole budget alone still fits (after the running span).
  query.power = 5;
  spot = sky.best_spot(query);
  ASSERT_TRUE(spot.has_value());
  EXPECT_EQ(spot->start, 10);

  // More than the budget can never fit anywhere.
  query.power = 6;
  EXPECT_FALSE(sky.best_spot(query).has_value());

  // A window that only brushes the busy span's end is not delayed.
  query.power = 3;
  query.min_start = 10;
  spot = sky.best_spot(query);
  ASSERT_TRUE(spot.has_value());
  EXPECT_EQ(spot->start, 10);
}

TEST(Skyline, PrecomputedBlockedPrefixMatchesRebuiltMask) {
  // A caller-provided prefix mask (rectpack's ConstraintPlan path) must
  // answer exactly like the query that rebuilds the mask from window +
  // forbidden, on a non-flat skyline.
  Skyline sky(8);
  sky.place(0, 3, 7);
  sky.place(5, 2, 4);

  Skyline::SpotQuery rebuilt;
  rebuilt.width = 2;
  rebuilt.duration = 10;
  rebuilt.window = {1, 8};
  const std::vector<core::WireInterval> forbidden = {{3, 5}};
  rebuilt.forbidden = &forbidden;

  // blocked wires: 0 (window), 3, 4 (forbidden) -> prefix counts.
  std::vector<int> prefix(9, 0);
  const std::vector<int> blocked = {1, 0, 0, 1, 1, 0, 0, 0};
  for (int w = 0; w < 8; ++w)
    prefix[static_cast<std::size_t>(w) + 1] =
        prefix[static_cast<std::size_t>(w)] + blocked[static_cast<std::size_t>(w)];
  Skyline::SpotQuery precomputed = rebuilt;
  precomputed.blocked_prefix = &prefix;

  const auto a = sky.best_spot(rebuilt);
  const auto b = sky.best_spot(precomputed);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->wire, b->wire);
  EXPECT_EQ(a->start, b->start);
  // Wires {1, 2} are free at 7, {5, 6, 7} at 4: the lower window wins.
  EXPECT_EQ(a->wire, 5);
  EXPECT_EQ(a->start, 4);

  // A mask of the wrong size is a caller bug, reported loudly.
  std::vector<int> short_mask(3, 0);
  Skyline::SpotQuery bad = rebuilt;
  bad.blocked_prefix = &short_mask;
  EXPECT_THROW((void)sky.best_spot(bad), std::invalid_argument);
}

TEST(Skyline, ClearResetsPowerTimelineToo) {
  Skyline sky(4);
  sky.place(0, 4, 0, 10, 5);
  sky.clear();
  Skyline::SpotQuery query;
  query.width = 4;
  query.duration = 5;
  query.power = 5;
  query.power_budget = 5;
  const auto spot = sky.best_spot(query);
  ASSERT_TRUE(spot.has_value());
  EXPECT_EQ(spot->start, 0);
}

}  // namespace
}  // namespace wtam::pack
