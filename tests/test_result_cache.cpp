// ResultCache contract: LRU eviction under a byte budget, hit/miss
// accounting, and cross-thread coalescing of identical in-flight work.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/request_key.hpp"
#include "api/result_cache.hpp"

namespace wtam::api {
namespace {

RequestKey key_for(int width) {
  RequestKey key;
  key.soc_hash = common::stable_hash_128("result-cache-test-soc");
  key.width = width;
  key.backend = "enumerative";
  key.options = "max_tams=10,min_tams=1,run_final_step=1";
  return key;
}

/// A CachedSolve whose approx_bytes is dominated by `payload` bytes of
/// detail text, so tests can reason about the byte budget.
CachedSolve solve_of_size(std::int64_t testing_time, std::size_t payload) {
  CachedSolve solve;
  solve.outcome.backend = "enumerative";
  solve.outcome.testing_time = testing_time;
  solve.outcome.details.emplace_back("pad", std::string(payload, 'x'));
  solve.lower_bound = testing_time / 2;
  solve.schedule_valid = true;
  return solve;
}

/// begin_fetch that must lead (test invariant), then publish `solve`.
void lead_and_publish(ResultCache& cache, const RequestKey& key,
                      CachedSolve solve) {
  const ResultCache::Fetch fetch = cache.begin_fetch(key);
  ASSERT_EQ(fetch.outcome, ResultCache::FetchOutcome::Lead);
  cache.publish(fetch, std::move(solve));
}

TEST(ResultCache, StoresAndServesByteEqualEntries) {
  ResultCache cache;
  const RequestKey key = key_for(32);
  EXPECT_FALSE(cache.lookup(key).has_value());

  lead_and_publish(cache, key, solve_of_size(21566, 64));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->outcome.testing_time, 21566);
  EXPECT_EQ(hit->lower_bound, 21566 / 2);
  EXPECT_TRUE(hit->schedule_valid);

  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);  // the failed lookup + the Lead fetch
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 1.0 / 3.0);
}

TEST(ResultCache, LruEvictionUnderATightByteBudget) {
  // One shard, a budget that holds exactly 3 of the equal-size entries:
  // inserting the fourth must evict the least recently used, only that.
  const std::size_t entry_bytes = solve_of_size(1, 1024).approx_bytes();
  ResultCacheOptions options;
  options.shards = 1;
  options.max_bytes = 3 * entry_bytes + entry_bytes / 2;
  ResultCache cache(options);

  for (const int width : {1, 2, 3})
    lead_and_publish(cache, key_for(width), solve_of_size(width, 1024));
  EXPECT_EQ(cache.stats().entries, 3u);

  // Touch 1 and 3 so 2 is the LRU entry.
  EXPECT_TRUE(cache.lookup(key_for(1)).has_value());
  EXPECT_TRUE(cache.lookup(key_for(3)).has_value());

  lead_and_publish(cache, key_for(4), solve_of_size(4, 1024));
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_LE(stats.bytes, options.max_bytes);

  EXPECT_FALSE(cache.lookup(key_for(2)).has_value()) << "LRU entry survived";
  EXPECT_TRUE(cache.lookup(key_for(1)).has_value());
  EXPECT_TRUE(cache.lookup(key_for(3)).has_value());
  EXPECT_TRUE(cache.lookup(key_for(4)).has_value());
}

TEST(ResultCache, OversizedEntriesAreNotStored) {
  ResultCacheOptions options;
  options.shards = 1;
  options.max_bytes = 4096;
  ResultCache cache(options);
  lead_and_publish(cache, key_for(1), solve_of_size(1, 1 << 20));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.lookup(key_for(1)).has_value());
}

TEST(ResultCache, ClearDropsEverything) {
  ResultCache cache;
  for (const int width : {1, 2, 3})
    lead_and_publish(cache, key_for(width), solve_of_size(width, 64));
  EXPECT_EQ(cache.stats().entries, 3u);
  cache.clear();
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_FALSE(cache.lookup(key_for(1)).has_value());
}

TEST(ResultCache, IdenticalInFlightRequestsCoalesceAcrossThreads) {
  ResultCache cache;
  const RequestKey key = key_for(32);

  // The leader claims the key, then holds the computation open while the
  // followers arrive; they must block and then receive the published
  // value — not recompute.
  const ResultCache::Fetch lead = cache.begin_fetch(key);
  ASSERT_EQ(lead.outcome, ResultCache::FetchOutcome::Lead);

  std::atomic<int> arrived{0};
  std::atomic<int> served{0};
  std::vector<std::thread> followers;
  followers.reserve(4);
  for (int i = 0; i < 4; ++i)
    followers.emplace_back([&cache, &key, &arrived, &served] {
      ++arrived;
      const ResultCache::Fetch fetch = cache.begin_fetch(key);
      // Never Lead: the key is claimed for the follower's whole
      // lifetime. (Coalesced normally; a maximally delayed follower may
      // observe the already-published entry as a Hit.)
      EXPECT_NE(fetch.outcome, ResultCache::FetchOutcome::Lead);
      ASSERT_TRUE(fetch.value.has_value());
      EXPECT_EQ(fetch.value->outcome.testing_time, 777);
      ++served;
    });

  // Publish only after every follower is at most one statement away from
  // the fetch, so they (virtually always) block on the in-flight entry.
  while (arrived.load() < 4) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  cache.publish(lead, solve_of_size(777, 64));
  for (auto& follower : followers) follower.join();

  EXPECT_EQ(served.load(), 4);
  const ResultCacheStats stats = cache.stats();
  EXPECT_GE(stats.coalesced, 1u);   // at least one genuinely blocked wait
  EXPECT_EQ(stats.hits, 4u);        // every follower served without compute
  EXPECT_EQ(stats.misses, 1u);      // the single Lead
  EXPECT_EQ(stats.insertions, 1u);  // computed exactly once
}

TEST(ResultCache, CoalescedWaitsHonorTheInterruptPoll) {
  // A cancelled caller must not ride out the leader's whole solve: the
  // interrupt callback is polled during the wait and ends it.
  ResultCache cache;
  const RequestKey key = key_for(64);
  const ResultCache::Fetch lead = cache.begin_fetch(key);
  ASSERT_EQ(lead.outcome, ResultCache::FetchOutcome::Lead);

  std::atomic<bool> cancelled{false};
  std::thread waiter([&cache, &key, &cancelled] {
    const ResultCache::Fetch fetch =
        cache.begin_fetch(key, [&cancelled] { return cancelled.load(); });
    EXPECT_EQ(fetch.outcome, ResultCache::FetchOutcome::Interrupted);
    EXPECT_FALSE(fetch.value.has_value());
    EXPECT_EQ(fetch.ticket, nullptr);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  cancelled = true;
  waiter.join();  // returns promptly even though the lead is still open
  cache.abandon(lead);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCache, AbandonedLeadHandsTheKeyToAWaiter) {
  ResultCache cache;
  const RequestKey key = key_for(48);

  const ResultCache::Fetch lead = cache.begin_fetch(key);
  ASSERT_EQ(lead.outcome, ResultCache::FetchOutcome::Lead);

  std::thread waiter([&cache, &key] {
    // Blocks on the doomed leader, then must become the new leader and
    // complete the work itself.
    const ResultCache::Fetch fetch = cache.begin_fetch(key);
    EXPECT_EQ(fetch.outcome, ResultCache::FetchOutcome::Lead);
    cache.publish(fetch, solve_of_size(123, 64));
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  cache.abandon(lead);
  waiter.join();

  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->outcome.testing_time, 123);
  // Nothing was stored by the abandoned lead.
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(ResultCache, ResetStatsZeroesCountersButKeepsGauges) {
  ResultCache cache;
  lead_and_publish(cache, key_for(32), solve_of_size(100, 64));
  lead_and_publish(cache, key_for(33), solve_of_size(200, 64));
  (void)cache.lookup(key_for(32));
  ASSERT_GT(cache.stats().hits, 0u);
  ASSERT_GT(cache.stats().misses, 0u);

  cache.reset_stats();
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  // Gauges describe live state, not history: entries survive the reset.
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.bytes, 0u);
  // Counting restarts cleanly from zero.
  (void)cache.lookup(key_for(32));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ResultCache, InsertAndExportRoundTrip) {
  ResultCache cache;
  cache.insert(key_for(32), solve_of_size(100, 64));
  cache.insert(key_for(33), solve_of_size(200, 64));
  EXPECT_EQ(cache.stats().insertions, 2u);
  EXPECT_EQ(cache.stats().entries, 2u);

  // insert replaces in place (no duplicate entries, bytes stay sane).
  cache.insert(key_for(32), solve_of_size(300, 64));
  EXPECT_EQ(cache.stats().entries, 2u);
  const auto replaced = cache.lookup(key_for(32));
  ASSERT_TRUE(replaced.has_value());
  EXPECT_EQ(replaced->outcome.testing_time, 300);

  const auto entries = cache.export_entries();
  ASSERT_EQ(entries.size(), 2u);
  for (const auto& [key, value] : entries) {
    const auto direct = cache.lookup(key);
    ASSERT_TRUE(direct.has_value());
    EXPECT_EQ(direct->outcome.testing_time, value.outcome.testing_time);
  }

  // A fresh cache populated from the export serves the same values —
  // the persistence layer's save/load contract in miniature.
  ResultCache copy;
  for (const auto& [key, value] : entries) copy.insert(key, value);
  const auto from_copy = copy.lookup(key_for(33));
  ASSERT_TRUE(from_copy.has_value());
  EXPECT_EQ(from_copy->outcome.testing_time, 200);
}

TEST(ResultCache, InsertRespectsBudgetAndOversizeRules) {
  ResultCacheOptions options;
  options.shards = 1;
  options.max_bytes = 4096;
  ResultCache cache(options);
  // An entry bigger than the whole budget is not stored.
  cache.insert(key_for(1), solve_of_size(1, 1 << 20));
  EXPECT_EQ(cache.stats().entries, 0u);
  // Filling past the budget evicts LRU tails.
  for (int w = 2; w < 12; ++w) cache.insert(key_for(w), solve_of_size(w, 800));
  const ResultCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 4096u);
}

}  // namespace
}  // namespace wtam::api
