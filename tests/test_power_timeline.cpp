// Differential tests for core::PowerTimeline against the flat-span
// helpers it replaced on the constrained-packing hot path (ISSUE-10).
// The timeline must compute exactly the same profile function — the
// packers' determinism pins (golden testing times, parallel/serial
// bit-identity) rest on this equivalence — so every query is checked
// against a brute-force span-scan oracle over seeded random histories,
// including the old candidate-probing earliest-feasible-start algorithm
// and boundary cases exactly at the budget.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "core/power.hpp"

namespace wtam::core {
namespace {

/// The pre-timeline algorithm, verbatim in spirit: probe `from` plus
/// every span end after it, in sorted order, and return the first
/// power-feasible start (falling back to the profile horizon).
std::int64_t oracle_earliest_fit(const std::vector<PowerSpan>& spans,
                                 std::int64_t from, std::int64_t duration,
                                 std::int64_t power, std::int64_t budget) {
  if (budget <= 0 || spans.empty()) return from;
  std::vector<std::int64_t> candidates;
  candidates.push_back(from);
  for (const PowerSpan& span : spans)
    if (span.end > from) candidates.push_back(span.end);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (const std::int64_t start : candidates)
    if (power_window_fits(spans, start, duration, power, budget)) return start;
  std::int64_t horizon = from;
  for (const PowerSpan& span : spans) horizon = std::max(horizon, span.end);
  return horizon;
}

void check_invariants(const PowerTimeline& timeline) {
  const auto& points = timeline.breakpoints();
  for (std::size_t i = 1; i < points.size(); ++i) {
    ASSERT_LT(points[i - 1].time, points[i].time) << "times must increase";
    ASSERT_NE(points[i - 1].load, points[i].load)
        << "adjacent equal loads must be coalesced (index " << i << ")";
  }
  if (!points.empty()) {
    ASSERT_NE(points.front().load, 0)
        << "a leading zero-load breakpoint is redundant";
    ASSERT_EQ(points.back().load, 0) << "every span ends, so the tail is 0";
  }
}

TEST(PowerTimeline, EmptyTimelineAnswersLikeEmptySpanList) {
  PowerTimeline timeline;
  EXPECT_TRUE(timeline.empty());
  EXPECT_EQ(timeline.peak(), 0);
  EXPECT_EQ(timeline.peak_over_window(0, 100), 0);
  EXPECT_TRUE(timeline.window_fits(5, 10, 3, 4));
  EXPECT_FALSE(timeline.window_fits(5, 10, 5, 4));  // own draw over budget
  EXPECT_EQ(timeline.earliest_fit(7, 10, 3, 4), 7);
}

TEST(PowerTimeline, IgnoresEmptySpansAndZeroPower) {
  PowerTimeline timeline;
  timeline.add(5, 5, 3);   // empty interval
  timeline.add(9, 4, 3);   // inverted interval
  timeline.add(0, 10, 0);  // zero draw
  EXPECT_TRUE(timeline.empty());
  EXPECT_THROW(timeline.add(0, 10, -1), std::invalid_argument);
}

TEST(PowerTimeline, CoalescesAdjacentEqualLoads) {
  PowerTimeline timeline;
  // Two abutting spans of equal draw: one plateau, two breakpoints.
  timeline.add(0, 10, 4);
  timeline.add(10, 20, 4);
  ASSERT_EQ(timeline.breakpoints().size(), 2u);
  EXPECT_EQ(timeline.breakpoints()[0].time, 0);
  EXPECT_EQ(timeline.breakpoints()[0].load, 4);
  EXPECT_EQ(timeline.breakpoints()[1].time, 20);
  EXPECT_EQ(timeline.breakpoints()[1].load, 0);
  // Filling a notch between two equal shoulders melts all interior
  // breakpoints into one plateau.
  PowerTimeline notch;
  notch.add(0, 30, 2);
  notch.add(0, 10, 3);
  notch.add(20, 30, 3);
  notch.add(10, 20, 3);
  ASSERT_EQ(notch.breakpoints().size(), 2u);
  EXPECT_EQ(notch.breakpoints()[0].load, 5);
  check_invariants(notch);
}

TEST(PowerTimeline, ExactBudgetBoundaries) {
  PowerTimeline timeline;
  timeline.add(10, 20, 6);
  // 6 + 4 == 10: exactly at the budget fits; one unit more does not.
  EXPECT_TRUE(timeline.window_fits(10, 10, 4, 10));
  EXPECT_FALSE(timeline.window_fits(10, 10, 5, 10));
  EXPECT_FALSE(timeline.window_fits(10, 10, 4, 9));
  // A window abutting the busy interval on either side never sees it
  // (half-open spans).
  EXPECT_TRUE(timeline.window_fits(0, 10, 4, 4));
  EXPECT_TRUE(timeline.window_fits(20, 10, 4, 4));
  // earliest_fit lands exactly on the drop breakpoint ([0, 10) would
  // abut the busy span and fit immediately, so overlap it).
  EXPECT_EQ(timeline.earliest_fit(5, 10, 5, 10), 20);
  EXPECT_EQ(timeline.earliest_fit(5, 10, 4, 10), 5);
  // budget <= 0 means unconstrained.
  EXPECT_TRUE(timeline.window_fits(10, 10, 100, 0));
  EXPECT_EQ(timeline.earliest_fit(3, 10, 100, 0), 3);
}

TEST(PowerTimeline, RandomizedDifferentialAgainstSpanOracle) {
  for (const std::uint64_t seed : {7u, 19u, 101u, 4242u}) {
    common::Rng rng(seed);
    PowerTimeline timeline;
    std::vector<PowerSpan> spans;
    for (int step = 0; step < 400; ++step) {
      // Mostly place, sometimes query-only; tight ranges force overlap,
      // abutment, and shared endpoints.
      const std::int64_t start = rng.uniform_int(0, 60);
      const std::int64_t length = rng.uniform_int(0, 12);
      const std::int64_t power = rng.uniform_int(0, 5);
      if (rng.uniform_int(0, 3) != 0) {
        timeline.add(start, start + length, power);
        if (length > 0 && power > 0)
          spans.push_back({start, start + length, power});
        ASSERT_NO_FATAL_FAILURE(check_invariants(timeline));
        ASSERT_EQ(timeline.peak(), peak_power(spans))
            << "seed " << seed << " step " << step;
      }
      const std::int64_t q_start = rng.uniform_int(-4, 80);
      const std::int64_t q_duration = rng.uniform_int(0, 16);
      const std::int64_t q_power = rng.uniform_int(0, 6);
      const std::int64_t q_budget = rng.uniform_int(0, 14);
      ASSERT_EQ(timeline.peak_over_window(q_start, q_duration),
                q_duration <= 0
                    ? 0
                    : peak_power_over_window(spans, q_start, q_duration))
          << "seed " << seed << " step " << step;
      ASSERT_EQ(
          timeline.window_fits(q_start, q_duration, q_power, q_budget),
          power_window_fits(spans, q_start, q_duration, q_power, q_budget))
          << "seed " << seed << " step " << step;
      if (q_duration > 0) {
        ASSERT_EQ(
            timeline.earliest_fit(q_start, q_duration, q_power, q_budget),
            oracle_earliest_fit(spans, q_start, q_duration, q_power, q_budget))
            << "seed " << seed << " step " << step << " from " << q_start
            << " dur " << q_duration << " power " << q_power << " budget "
            << q_budget;
      }
    }
    timeline.clear();
    EXPECT_TRUE(timeline.empty());
    EXPECT_EQ(timeline.peak(), 0);
  }
}

}  // namespace
}  // namespace wtam::core
