#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sched/lpt.hpp"

namespace wtam::sched {
namespace {

TEST(Lpt, SingleMachineSumsEverything) {
  const std::vector<std::int64_t> jobs = {3, 1, 4, 1, 5};
  const Schedule s = lpt(jobs, 1);
  EXPECT_EQ(s.makespan, 14);
  EXPECT_EQ(s.loads.size(), 1u);
}

TEST(Lpt, ClassicTwoMachineExample) {
  // {5,4,3,3,3} on 2 machines: LPT -> {5,3,3}=11? No: 5|4, 3->4+3=7,
  // 3->5+3=8, 3->7+3=10 => loads {8,10}, makespan 10. Optimal is 9.
  const std::vector<std::int64_t> jobs = {5, 4, 3, 3, 3};
  const Schedule s = lpt(jobs, 2);
  EXPECT_EQ(s.makespan, 10);
  EXPECT_EQ(optimal_makespan(jobs, 2), 9);
}

TEST(Lpt, AssignmentsCoverAllJobs) {
  const std::vector<std::int64_t> jobs = {7, 2, 9, 4, 4, 1};
  const Schedule s = lpt(jobs, 3);
  ASSERT_EQ(s.machine_of.size(), jobs.size());
  std::vector<std::int64_t> loads(3, 0);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_GE(s.machine_of[i], 0);
    ASSERT_LT(s.machine_of[i], 3);
    loads[static_cast<std::size_t>(s.machine_of[i])] += jobs[i];
  }
  EXPECT_EQ(loads, s.loads);
}

TEST(Lpt, MoreMachinesThanJobs) {
  const std::vector<std::int64_t> jobs = {4, 2};
  const Schedule s = lpt(jobs, 5);
  EXPECT_EQ(s.makespan, 4);
}

TEST(Lpt, EmptyJobList) {
  const Schedule s = lpt({}, 3);
  EXPECT_EQ(s.makespan, 0);
}

TEST(Lpt, RejectsBadArguments) {
  const std::vector<std::int64_t> one = {1};
  EXPECT_THROW((void)lpt(one, 0), std::invalid_argument);
  const std::vector<std::int64_t> negative = {-1};
  EXPECT_THROW((void)lpt(negative, 1), std::invalid_argument);
}

TEST(LowerBound, MaxOfLargestJobAndAverage) {
  const std::vector<std::int64_t> jobs = {9, 1, 1, 1};
  EXPECT_EQ(makespan_lower_bound(jobs, 2), 9);   // largest job
  EXPECT_EQ(makespan_lower_bound(jobs, 4), 9);
  const std::vector<std::int64_t> even = {3, 3, 3, 3};
  EXPECT_EQ(makespan_lower_bound(even, 2), 6);   // ceil(total/m)
}

TEST(OptimalMakespan, MatchesHandComputedCases) {
  EXPECT_EQ(optimal_makespan(std::vector<std::int64_t>{3, 3, 2, 2, 2}, 2), 6);
  EXPECT_EQ(optimal_makespan(std::vector<std::int64_t>{10}, 4), 10);
  EXPECT_EQ(optimal_makespan({}, 2), 0);
}

/// Property sweep: LPT is within 4/3 - 1/(3m) of optimal, and both respect
/// the lower bound.
class LptRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(LptRandomTest, GuaranteeHolds) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  const int machines = static_cast<int>(rng.uniform_int(2, 4));
  const int n = static_cast<int>(rng.uniform_int(3, 10));
  std::vector<std::int64_t> jobs(static_cast<std::size_t>(n));
  for (auto& j : jobs) j = rng.uniform_int(1, 50);

  const std::int64_t lpt_makespan = lpt(jobs, machines).makespan;
  const std::int64_t opt = optimal_makespan(jobs, machines);
  const std::int64_t lb = makespan_lower_bound(jobs, machines);

  EXPECT_GE(opt, lb);
  EXPECT_GE(lpt_makespan, opt);
  // Graham's bound: LPT <= (4/3 - 1/(3m)) OPT.
  const double bound = (4.0 / 3.0 - 1.0 / (3.0 * machines)) *
                       static_cast<double>(opt);
  EXPECT_LE(static_cast<double>(lpt_makespan), bound + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LptRandomTest, ::testing::Range(1, 51));

}  // namespace
}  // namespace wtam::sched
