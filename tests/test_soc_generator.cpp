#include <gtest/gtest.h>

#include "soc/benchmarks.hpp"
#include "soc/generator.hpp"
#include "wrapper/wrapper.hpp"

namespace wtam::soc {
namespace {

TEST(Generator, Deterministic) {
  const Soc a = p21241();
  const Soc b = p21241();
  ASSERT_EQ(a.core_count(), b.core_count());
  for (int i = 0; i < a.core_count(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(a.cores[idx].test_patterns, b.cores[idx].test_patterns);
    EXPECT_EQ(a.cores[idx].scan_chains, b.cores[idx].scan_chains);
  }
}

struct PublishedRow {
  Soc soc;
  int total_cores;
  int logic_cores;
  int memory_cores;
  Range logic_patterns, logic_ios, logic_chains, logic_lengths;
  Range memory_patterns, memory_ios;
};

class PublishedRangesTest : public ::testing::TestWithParam<int> {
 protected:
  static PublishedRow row(int which) {
    switch (which) {
      case 0:  // Table 4
        return {p21241(), 28, 22, 6,
                {1, 785},    {37, 1197}, {1, 31}, {1, 400},
                {222, 12324}, {52, 148}};
      case 1:  // Table 8
        return {p31108(), 19, 4, 15,
                {210, 745},  {109, 428}, {1, 29}, {8, 806},
                {128, 12236}, {11, 87}};
      default:  // Table 14
        return {p93791(), 32, 14, 18,
                {11, 6127},  {109, 813}, {11, 46}, {1, 521},
                {42, 3085},  {21, 396}};
    }
  }
};

TEST_P(PublishedRangesTest, CoreCountsMatchPaper) {
  const PublishedRow expected = row(GetParam());
  EXPECT_EQ(expected.soc.core_count(), expected.total_cores);
  const auto logic = core_data_ranges(expected.soc, CoreKind::Logic);
  const auto memory = core_data_ranges(expected.soc, CoreKind::Memory);
  EXPECT_EQ(logic.core_count, expected.logic_cores);
  EXPECT_EQ(memory.core_count, expected.memory_cores);
}

TEST_P(PublishedRangesTest, LogicRangesMatchPaperExactly) {
  const PublishedRow expected = row(GetParam());
  const auto logic = core_data_ranges(expected.soc, CoreKind::Logic);
  EXPECT_EQ(logic.test_patterns, expected.logic_patterns);
  EXPECT_EQ(logic.functional_ios, expected.logic_ios);
  EXPECT_EQ(logic.scan_chain_count, expected.logic_chains);
  ASSERT_TRUE(logic.scan_lengths.has_value());
  EXPECT_EQ(*logic.scan_lengths, expected.logic_lengths);
}

TEST_P(PublishedRangesTest, MemoryRangesMatchPaperExactly) {
  const PublishedRow expected = row(GetParam());
  const auto memory = core_data_ranges(expected.soc, CoreKind::Memory);
  EXPECT_EQ(memory.test_patterns, expected.memory_patterns);
  EXPECT_EQ(memory.functional_ios, expected.memory_ios);
  EXPECT_EQ(memory.scan_chain_count, (Range{0, 0}));
  EXPECT_FALSE(memory.scan_lengths.has_value());
}

TEST_P(PublishedRangesTest, EveryCoreInsideItsClassRanges) {
  const PublishedRow expected = row(GetParam());
  for (const auto& core : expected.soc.cores) {
    if (core.kind == CoreKind::Logic) {
      EXPECT_GE(core.test_patterns, expected.logic_patterns.min);
      EXPECT_LE(core.test_patterns, expected.logic_patterns.max);
      EXPECT_GE(core.functional_ios(), expected.logic_ios.min);
      EXPECT_LE(core.functional_ios(), expected.logic_ios.max);
      for (const int len : core.scan_chains) {
        EXPECT_GE(len, expected.logic_lengths.min);
        EXPECT_LE(len, expected.logic_lengths.max);
      }
    } else {
      EXPECT_GE(core.test_patterns, expected.memory_patterns.min);
      EXPECT_LE(core.test_patterns, expected.memory_patterns.max);
      EXPECT_TRUE(core.scan_chains.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Tables4_8_14, PublishedRangesTest,
                         ::testing::Values(0, 1, 2));

TEST(Generator, P31108Core18IsThePaperBottleneck) {
  const Soc soc = p31108();
  const Core& core18 = soc.cores[17];  // core 18, 1-based
  EXPECT_EQ(core18.test_patterns, 729);
  EXPECT_EQ(core18.longest_scan_chain(), 745);
  // Minimal testing time (1+745)*729 + 745 = 544579, reached at width 10.
  EXPECT_EQ(min_test_time_bound(core18), 544579);
  EXPECT_EQ(wrapper::test_time(core18, 10), 544579);
  EXPECT_GT(wrapper::test_time(core18, 9), 544579);
  EXPECT_EQ(wrapper::test_time(core18, 32), 544579);
}

TEST(Generator, P31108OnlyCore18ReachesTheFloor) {
  const Soc soc = p31108();
  for (int i = 0; i < soc.core_count(); ++i) {
    if (i == 17) continue;
    EXPECT_LT(min_test_time_bound(soc.cores[static_cast<std::size_t>(i)]),
              544579)
        << soc.cores[static_cast<std::size_t>(i)].name;
  }
}

TEST(Generator, VolumeCalibrationIsClose) {
  const auto check = [](const Soc& soc, std::int64_t target) {
    std::int64_t volume = 0;
    for (const auto& core : soc.cores)
      volume +=
          core.test_patterns * (core.functional_ios() + core.total_scan_bits());
    const double ratio =
        static_cast<double>(volume) / static_cast<double>(target);
    EXPECT_GT(ratio, 0.9) << soc.name;
    EXPECT_LT(ratio, 1.1) << soc.name;
  };
  check(p21241(), *p21241_spec().target_volume);
  check(p93791(), *p93791_spec().target_volume);
  // p31108's target excludes the hand-built anchor core.
  Soc p = p31108();
  p.cores.erase(p.cores.begin() + 17);
  check(p, *p31108_spec().target_volume);
}

TEST(Generator, FloorCapHonored) {
  const auto check = [](const Soc& soc, std::int64_t cap, int skip = -1) {
    for (int i = 0; i < soc.core_count(); ++i) {
      if (i == skip) continue;
      EXPECT_LE(min_test_time_bound(soc.cores[static_cast<std::size_t>(i)]), cap)
          << soc.name << " core " << i;
    }
  };
  check(p21241(), *p21241_spec().core_floor_time_cap);
  check(p93791(), *p93791_spec().core_floor_time_cap);
  check(p31108(), *p31108_spec().core_floor_time_cap, /*skip=*/17);
}

TEST(Generator, CustomSpecSmall) {
  SyntheticSpec spec;
  spec.name = "mini";
  spec.seed = 99;
  spec.logic_cores = 4;
  spec.logic.patterns = {10, 100};
  spec.logic.ios = {8, 40};
  spec.logic.chains = {1, 4};
  spec.logic.chain_len = {5, 50};
  spec.memory_cores = 2;
  spec.memory.patterns = {100, 1000};
  spec.memory.ios = {4, 20};
  const Soc soc = generate_soc(spec);
  EXPECT_EQ(soc.core_count(), 6);
  EXPECT_NO_THROW(soc.validate());
  const auto logic = core_data_ranges(soc, CoreKind::Logic);
  EXPECT_EQ(logic.test_patterns, (Range{10, 100}));
  EXPECT_EQ(logic.functional_ios, (Range{8, 40}));
}

TEST(Generator, RejectsBadSpecs) {
  SyntheticSpec spec;
  spec.name = "bad";
  EXPECT_THROW((void)generate_soc(spec), std::invalid_argument);  // 0 cores
  spec.logic_cores = 1;
  spec.logic.patterns = {10, 5};  // inverted
  EXPECT_THROW((void)generate_soc(spec), std::invalid_argument);
  spec.logic.patterns = {10, 20};
  spec.logic.chains = {0, 0};  // logic needs scan chains
  spec.logic.ios = {4, 8};
  spec.logic.chain_len = {1, 4};
  EXPECT_THROW((void)generate_soc(spec), std::invalid_argument);
}

TEST(Generator, DifferentSeedsGiveDifferentSocs) {
  SyntheticSpec spec = p93791_spec();
  spec.seed = 1;
  const Soc a = generate_soc(spec);
  spec.seed = 2;
  const Soc b = generate_soc(spec);
  bool any_difference = false;
  for (int i = 0; i < a.core_count(); ++i)
    if (a.cores[static_cast<std::size_t>(i)].test_patterns !=
        b.cores[static_cast<std::size_t>(i)].test_patterns)
      any_difference = true;
  EXPECT_TRUE(any_difference);
}

// ---- constrained scenarios --------------------------------------------------

ConstrainedScenarioSpec small_scenario_spec() {
  ConstrainedScenarioSpec spec;
  spec.soc.name = "constrained_synth";
  spec.soc.seed = 7;
  spec.soc.logic_cores = 6;
  spec.soc.logic.patterns = {20, 200};
  spec.soc.logic.ios = {10, 80};
  spec.soc.logic.chains = {1, 6};
  spec.soc.logic.chain_len = {10, 90};
  spec.soc.memory_cores = 3;
  spec.soc.memory.patterns = {50, 800};
  spec.soc.memory.ios = {8, 40};
  spec.seed = 99;
  spec.core_power = {50, 500};
  spec.power_budget_fraction = 0.4;
  spec.precedence_edges = 6;
  return spec;
}

TEST(ConstrainedScenario, DeterministicAndAlwaysFeasible) {
  const ConstrainedScenario a =
      generate_constrained_scenario(small_scenario_spec());
  const ConstrainedScenario b =
      generate_constrained_scenario(small_scenario_spec());
  EXPECT_EQ(a.constraints, b.constraints);
  EXPECT_EQ(a.soc.core_count(), b.soc.core_count());

  // The generated constraints must validate against the generated SOC at
  // any width — the whole point of the generator is ready-to-run
  // constrained inputs.
  EXPECT_EQ(static_cast<int>(a.constraints.power.size()), a.soc.core_count());
  for (const int width : {8, 32})
    EXPECT_TRUE(core::validate_constraints(a.constraints, a.soc.core_count(),
                                           width)
                    .empty())
        << "width " << width;

  // Powers land in the requested range and the budget clears every core.
  std::int64_t largest = 0;
  for (const std::int64_t p : a.constraints.power) {
    EXPECT_GE(p, 50);
    EXPECT_LE(p, 500);
    largest = std::max(largest, p);
  }
  EXPECT_GE(a.constraints.power_budget, largest);

  // The precedence DAG is acyclic by construction and normalized.
  for (const auto& pair : a.constraints.precedence)
    EXPECT_LT(pair.before, pair.after);
  EXPECT_EQ(a.constraints, core::normalized(a.constraints));
}

TEST(ConstrainedScenario, DifferentSeedsDifferentConstraints) {
  ConstrainedScenarioSpec other = small_scenario_spec();
  other.seed = 100;
  EXPECT_NE(generate_constrained_scenario(small_scenario_spec()).constraints,
            generate_constrained_scenario(other).constraints);
}

TEST(ConstrainedScenario, GeneratedPowersAreSeededPerSoc) {
  const Soc soc = d695();
  const core::PowerVector a = generate_core_powers(soc, {10, 20}, 1);
  const core::PowerVector b = generate_core_powers(soc, {10, 20}, 1);
  const core::PowerVector c = generate_core_powers(soc, {10, 20}, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  ASSERT_EQ(static_cast<int>(a.size()), soc.core_count());
  for (const std::int64_t p : a) {
    EXPECT_GE(p, 10);
    EXPECT_LE(p, 20);
  }
}

TEST(ConstrainedScenario, RejectsBadSpecs) {
  ConstrainedScenarioSpec bad = small_scenario_spec();
  bad.precedence_edges = -1;
  EXPECT_THROW((void)generate_constrained_scenario(bad),
               std::invalid_argument);
  ConstrainedScenarioSpec bad_power = small_scenario_spec();
  bad_power.core_power = {500, 50};  // hi < lo
  EXPECT_THROW((void)generate_constrained_scenario(bad_power),
               std::invalid_argument);
}

}  // namespace
}  // namespace wtam::soc
