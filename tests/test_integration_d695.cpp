// End-to-end reproduction checks on SOC d695 against the paper's Table 2
// and Table 3. Our embedded d695 data is reconstructed from the ITC'02
// literature; a handful of testing times match the paper exactly (34455,
// 42952, 30032, 15442, ...) and the rest sit within a few percent, so
// these tests assert a +-5% envelope around the published values plus the
// structural invariants of the two-step flow.

#include <gtest/gtest.h>

#include "core/co_optimizer.hpp"
#include "core/exhaustive.hpp"
#include "core/test_time_table.hpp"
#include "soc/benchmarks.hpp"

namespace wtam::core {
namespace {

class D695Fixture : public ::testing::Test {
 protected:
  static const TestTimeTable& table() {
    static const soc::Soc soc = soc::d695();
    static const TestTimeTable table(soc, 64);
    return table;
  }
};

struct PaperRow {
  int width;
  std::int64_t paper_time;  // T_new of Table 2(b)/(d)
};

void expect_within(std::int64_t measured, std::int64_t paper, double rel,
                   const std::string& what) {
  const double lo = static_cast<double>(paper) * (1.0 - rel);
  const double hi = static_cast<double>(paper) * (1.0 + rel);
  EXPECT_GE(static_cast<double>(measured), lo) << what;
  EXPECT_LE(static_cast<double>(measured), hi) << what;
}

TEST_F(D695Fixture, Table2bTwoTamCoOptimization) {
  const std::vector<PaperRow> rows = {{16, 45055}, {24, 34455}, {32, 25828},
                                      {40, 22848}, {48, 22804}, {56, 18940},
                                      {64, 18869}};
  for (const auto& row : rows) {
    const auto result = co_optimize_fixed_b(table(), row.width, 2, {});
    expect_within(result.architecture.testing_time, row.paper_time, 0.05,
                  "W=" + std::to_string(row.width));
  }
}

TEST_F(D695Fixture, Table2dThreeTamCoOptimization) {
  const std::vector<PaperRow> rows = {{16, 42952}, {24, 30032}, {32, 24851},
                                      {40, 18448}, {48, 17581}, {56, 15510},
                                      {64, 15442}};
  for (const auto& row : rows) {
    const auto result = co_optimize_fixed_b(table(), row.width, 3, {});
    expect_within(result.architecture.testing_time, row.paper_time, 0.05,
                  "W=" + std::to_string(row.width));
  }
}

TEST_F(D695Fixture, Table2aExhaustiveTwoTams) {
  const std::vector<PaperRow> rows = {{16, 45055}, {24, 29501}, {32, 25442},
                                      {40, 21359}, {48, 19938}, {56, 18434},
                                      {64, 18205}};
  for (const auto& row : rows) {
    const auto result = exhaustive_paw(table(), row.width, 2, {});
    ASSERT_TRUE(result.completed);
    expect_within(result.best.testing_time, row.paper_time, 0.05,
                  "W=" + std::to_string(row.width));
  }
}

TEST_F(D695Fixture, FinalStepNeverWorseThanHeuristic) {
  for (int w = 16; w <= 64; w += 8) {
    const auto result = co_optimize(table(), w, {});
    EXPECT_LE(result.architecture.testing_time,
              result.heuristic.best.testing_time)
        << "W=" << w;
  }
}

TEST_F(D695Fixture, HeuristicNeverBeatsExhaustive) {
  for (int w : {16, 24, 32}) {
    for (int b : {2, 3}) {
      const auto exact = exhaustive_paw(table(), w, b, {});
      ASSERT_TRUE(exact.completed);
      const auto heuristic = co_optimize_fixed_b(table(), w, b, {});
      EXPECT_GE(heuristic.architecture.testing_time, exact.best.testing_time)
          << "W=" << w << " B=" << b;
    }
  }
}

TEST_F(D695Fixture, Table3MoreTamsHelp) {
  // Table 3: with B free (up to 10), testing times at W >= 48 beat the
  // best fixed-B<=3 results of Table 2.
  CoOptimizeOptions options;
  options.search.max_tams = 10;
  const auto free_b = co_optimize(table(), 56, options);
  const auto fixed_2 = co_optimize_fixed_b(table(), 56, 2, {});
  const auto fixed_3 = co_optimize_fixed_b(table(), 56, 3, {});
  EXPECT_LE(free_b.architecture.testing_time,
            fixed_2.architecture.testing_time);
  EXPECT_LE(free_b.architecture.testing_time,
            fixed_3.architecture.testing_time);
  // Paper Table 3 reaches 12941 at W=56 with 5 TAMs; ours should be in
  // that neighbourhood.
  expect_within(free_b.architecture.testing_time, 12941, 0.10, "W=56 free B");
}

TEST_F(D695Fixture, TestingTimeDecreasesWithTotalWidth) {
  // More TAM wires never hurt the co-optimized architecture.
  std::int64_t previous = std::numeric_limits<std::int64_t>::max();
  CoOptimizeOptions options;
  options.search.max_tams = 6;
  for (int w = 16; w <= 64; w += 8) {
    const auto result = co_optimize(table(), w, options);
    EXPECT_LE(result.architecture.testing_time, previous) << "W=" << w;
    previous = result.architecture.testing_time;
  }
}

TEST_F(D695Fixture, ArchitectureIsWellFormed) {
  const auto result = co_optimize(table(), 48, {});
  const auto& arch = result.architecture;
  EXPECT_EQ(arch.total_width(), 48);
  ASSERT_EQ(static_cast<int>(arch.assignment.size()), table().core_count());
  for (const int tam : arch.assignment) {
    EXPECT_GE(tam, 0);
    EXPECT_LT(tam, arch.tam_count());
  }
}

TEST_F(D695Fixture, HeuristicCpuTimeIsSmall) {
  // The heuristic flow on d695 takes ~1s in the paper (333 MHz); on any
  // modern machine it must be well under a second. Sanitizer builds pay
  // an order-of-magnitude slowdown, so the wall-clock assertion is
  // skipped there (the correctness of the result is still checked
  // everywhere else).
  CoOptimizeOptions options;
  options.search.max_tams = 10;
  const auto result = co_optimize(table(), 64, options);
#if !defined(WTAM_UNDER_SANITIZERS)
  EXPECT_LT(result.total_cpu_s(), 5.0);
#endif
  EXPECT_GT(result.architecture.testing_time, 0);
}

}  // namespace
}  // namespace wtam::core
