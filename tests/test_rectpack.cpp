#include <gtest/gtest.h>

#include "core/lower_bounds.hpp"
#include "core/test_time_table.hpp"
#include "pack/packed_schedule.hpp"
#include "pack/rectpack.hpp"
#include "soc/benchmarks.hpp"

namespace wtam::pack {
namespace {

TEST(RectPack, ValidAndBoundedOnAllBuiltInSocs) {
  for (const soc::Soc& soc :
       {soc::d695(), soc::p21241(), soc::p31108(), soc::p93791()}) {
    for (const int width : {16, 32}) {
      const core::TestTimeTable table(soc, width);
      const auto result = rectpack_schedule(table, width);
      EXPECT_TRUE(validate_packed_schedule(table, result.schedule).empty())
          << soc.name << " W=" << width;
      EXPECT_EQ(result.makespan, result.schedule.makespan);
      EXPECT_GE(result.makespan,
                core::testing_time_lower_bounds(table, width).combined())
          << soc.name << " W=" << width;
      EXPECT_FALSE(result.seed_ordering.empty());
      EXPECT_GT(result.repacks, 0);
    }
  }
}

TEST(RectPack, DeterministicForAFixedSeed) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 32);
  const auto a = rectpack_schedule(table, 32);
  const auto b = rectpack_schedule(table, 32);
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.schedule.placements.size(), b.schedule.placements.size());
  for (std::size_t i = 0; i < a.schedule.placements.size(); ++i) {
    EXPECT_EQ(a.schedule.placements[i].core, b.schedule.placements[i].core);
    EXPECT_EQ(a.schedule.placements[i].wire, b.schedule.placements[i].wire);
    EXPECT_EQ(a.schedule.placements[i].start, b.schedule.placements[i].start);
  }
}

TEST(RectPack, LargerSearchBudgetNeverHurts) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 32);
  RectPackOptions small;
  small.local_search_iterations = 100;
  RectPackOptions large;
  large.local_search_iterations = 2000;
  // Walkers use per-seed RNG streams, so a bigger budget only extends
  // trajectories and the walk-phase best is monotone; this deterministic
  // pair of budgets pins that the end-of-walk hole-fill compaction does
  // not break it here.
  EXPECT_GE(rectpack_schedule(table, 32, small).makespan,
            rectpack_schedule(table, 32, large).makespan);
}

TEST(RectPack, GreedyOnlyModeStillValid) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 24);
  RectPackOptions options;
  options.local_search_iterations = 0;
  const auto result = rectpack_schedule(table, 24, options);
  EXPECT_TRUE(validate_packed_schedule(table, result.schedule).empty());
}

TEST(RectPack, NarrowStripDegeneratesGracefully) {
  // W=1: every rectangle is 1 wide; the packing is a single serial lane.
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 1);
  const auto result = rectpack_schedule(table, 1);
  EXPECT_TRUE(validate_packed_schedule(table, result.schedule).empty());
  std::int64_t serial = 0;
  for (int i = 0; i < table.core_count(); ++i) serial += table.time(i, 1);
  EXPECT_EQ(result.makespan, serial);
}

TEST(RectPack, RejectsWidthOutsideTableRange) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 16);
  EXPECT_THROW((void)rectpack_schedule(table, 17), std::invalid_argument);
}

}  // namespace
}  // namespace wtam::pack
