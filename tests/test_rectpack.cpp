#include <gtest/gtest.h>

#include "core/lower_bounds.hpp"
#include "core/test_time_table.hpp"
#include "pack/packed_schedule.hpp"
#include "pack/rectpack.hpp"
#include "soc/benchmarks.hpp"

namespace wtam::pack {
namespace {

TEST(RectPack, ValidAndBoundedOnAllBuiltInSocs) {
  for (const soc::Soc& soc :
       {soc::d695(), soc::p21241(), soc::p31108(), soc::p93791()}) {
    for (const int width : {16, 32}) {
      const core::TestTimeTable table(soc, width);
      const auto result = rectpack_schedule(table, width);
      EXPECT_TRUE(validate_packed_schedule(table, result.schedule).empty())
          << soc.name << " W=" << width;
      EXPECT_EQ(result.makespan, result.schedule.makespan);
      EXPECT_GE(result.makespan,
                core::testing_time_lower_bounds(table, width).combined())
          << soc.name << " W=" << width;
      EXPECT_FALSE(result.seed_ordering.empty());
      EXPECT_GT(result.repacks, 0);
    }
  }
}

TEST(RectPack, DeterministicForAFixedSeed) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 32);
  const auto a = rectpack_schedule(table, 32);
  const auto b = rectpack_schedule(table, 32);
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.schedule.placements.size(), b.schedule.placements.size());
  for (std::size_t i = 0; i < a.schedule.placements.size(); ++i) {
    EXPECT_EQ(a.schedule.placements[i].core, b.schedule.placements[i].core);
    EXPECT_EQ(a.schedule.placements[i].wire, b.schedule.placements[i].wire);
    EXPECT_EQ(a.schedule.placements[i].start, b.schedule.placements[i].start);
  }
}

TEST(RectPack, LargerSearchBudgetNeverHurts) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 32);
  RectPackOptions small;
  small.local_search_iterations = 100;
  RectPackOptions large;
  large.local_search_iterations = 2000;
  // Walkers use per-seed RNG streams, so a bigger budget only extends
  // trajectories and the walk-phase best is monotone; this deterministic
  // pair of budgets pins that the end-of-walk hole-fill compaction does
  // not break it here.
  EXPECT_GE(rectpack_schedule(table, 32, small).makespan,
            rectpack_schedule(table, 32, large).makespan);
}

TEST(RectPack, GreedyOnlyModeStillValid) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 24);
  RectPackOptions options;
  options.local_search_iterations = 0;
  const auto result = rectpack_schedule(table, 24, options);
  EXPECT_TRUE(validate_packed_schedule(table, result.schedule).empty());
}

TEST(RectPack, NarrowStripDegeneratesGracefully) {
  // W=1: every rectangle is 1 wide; the packing is a single serial lane.
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 1);
  const auto result = rectpack_schedule(table, 1);
  EXPECT_TRUE(validate_packed_schedule(table, result.schedule).empty());
  std::int64_t serial = 0;
  for (int i = 0; i < table.core_count(); ++i) serial += table.time(i, 1);
  EXPECT_EQ(result.makespan, serial);
}

TEST(RectPack, RejectsWidthOutsideTableRange) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 16);
  EXPECT_THROW((void)rectpack_schedule(table, 17), std::invalid_argument);
}

void expect_identical_schedules(const RectPackResult& a,
                                const RectPackResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.seed_ordering, b.seed_ordering);
  EXPECT_EQ(a.repacks, b.repacks);
  ASSERT_EQ(a.schedule.placements.size(), b.schedule.placements.size());
  for (std::size_t i = 0; i < a.schedule.placements.size(); ++i) {
    EXPECT_EQ(a.schedule.placements[i].core, b.schedule.placements[i].core);
    EXPECT_EQ(a.schedule.placements[i].width, b.schedule.placements[i].width);
    EXPECT_EQ(a.schedule.placements[i].wire, b.schedule.placements[i].wire);
    EXPECT_EQ(a.schedule.placements[i].start, b.schedule.placements[i].start);
    EXPECT_EQ(a.schedule.placements[i].end, b.schedule.placements[i].end);
  }
}

TEST(RectPack, ParallelWalkersBitIdenticalToSerial) {
  // The per-seed walkers run on a ThreadPool with a deterministic
  // seed-order merge — the same contract as the parallel partition
  // search: any thread count, byte-identical schedules.
  const soc::Soc soc_data = soc::d695();
  for (const int width : {24, 32}) {
    const core::TestTimeTable table(soc_data, width);
    RectPackOptions serial;
    serial.threads = 1;
    // A reduced budget keeps the sanitizer runs fast; the identity
    // contract is budget-independent (same walkers, same merge).
    serial.local_search_iterations = 400;
    const auto reference = rectpack_schedule(table, width, serial);
    for (const int threads : {2, 4, 0 /* hardware */}) {
      RectPackOptions parallel = serial;
      parallel.threads = threads;
      const auto result = rectpack_schedule(table, width, parallel);
      SCOPED_TRACE("W=" + std::to_string(width) +
                   " threads=" + std::to_string(threads));
      expect_identical_schedules(reference, result);
    }
  }
}

TEST(RectPack, ParallelConstrainedAlsoBitIdentical) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 32);
  RectPackOptions serial;
  serial.local_search_iterations = 400;
  serial.constraints.power.assign(10, 100);
  serial.constraints.power_budget = 250;
  serial.constraints.precedence = {{0, 5}, {1, 5}};
  RectPackOptions parallel = serial;
  parallel.threads = 4;
  expect_identical_schedules(rectpack_schedule(table, 32, serial),
                             rectpack_schedule(table, 32, parallel));
}

TEST(RectPack, PreCancelledRunBitIdenticalAcrossThreadCounts) {
  // A context cancelled before the run is the one deterministic
  // interrupt case: every walker stops after its first greedy pack, and
  // the parallel merge must mirror the serial loop (stop at the first
  // interrupted walker) so results stay byte-identical.
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 24);
  core::SolveContext context;
  context.cancel.request_cancel();
  RectPackOptions serial;
  serial.context = &context;
  RectPackOptions parallel = serial;
  parallel.threads = 4;
  const auto a = rectpack_schedule(table, 24, serial);
  const auto b = rectpack_schedule(table, 24, parallel);
  EXPECT_EQ(a.interrupt, core::SolveInterrupt::Cancelled);
  EXPECT_EQ(b.interrupt, core::SolveInterrupt::Cancelled);
  expect_identical_schedules(a, b);
}

TEST(RectPack, PowerBudgetCapsConcurrency) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 32);
  RectPackOptions options;
  options.constraints.power.assign(10, 100);
  options.constraints.power_budget = 200;  // at most two cores at once
  const auto result = rectpack_schedule(table, 32, options);
  EXPECT_TRUE(validate_packed_schedule(table, result.schedule,
                                       options.constraints)
                  .empty());
  EXPECT_LE(packed_peak_power(result.schedule, options.constraints.power),
            options.constraints.power_budget);
  // Two-at-a-time cannot beat the unconstrained packer.
  const auto unconstrained = rectpack_schedule(table, 32);
  EXPECT_GE(result.makespan, unconstrained.makespan);
}

TEST(RectPack, HonorsEveryConstraintClassAtOnce) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 24);
  RectPackOptions options;
  auto& constraints = options.constraints;
  constraints.power.assign(10, 50);
  constraints.power_budget = 160;
  constraints.precedence = {{2, 7}, {0, 7}, {7, 9}};
  constraints.fixed = {{4, {0, 12}}};
  constraints.forbidden = {{5, {0, 6}}, {5, {20, 24}}};
  constraints.earliest = {{3, 4000}};
  const auto result = rectpack_schedule(table, 24, options);
  const auto issues =
      validate_packed_schedule(table, result.schedule, constraints);
  EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues.front());

  // Spot-check the classes directly, not only through the validator.
  const PackedPlacement* placements[10] = {};
  for (const auto& p : result.schedule.placements)
    placements[p.core] = &p;
  EXPECT_GE(placements[7]->start, placements[2]->end);
  EXPECT_GE(placements[7]->start, placements[0]->end);
  EXPECT_GE(placements[9]->start, placements[7]->end);
  EXPECT_GE(placements[4]->wire, 0);
  EXPECT_LE(placements[4]->wire + placements[4]->width, 12);
  EXPECT_TRUE(placements[5]->wire >= 6 &&
              placements[5]->wire + placements[5]->width <= 20);
  EXPECT_GE(placements[3]->start, 4000);
}

TEST(RectPack, RejectsInvalidConstraints) {
  const soc::Soc soc_data = soc::d695();
  const core::TestTimeTable table(soc_data, 16);
  RectPackOptions cyclic;
  cyclic.constraints.precedence = {{0, 1}, {1, 0}};
  EXPECT_THROW((void)rectpack_schedule(table, 16, cyclic),
               std::invalid_argument);
  RectPackOptions hot;
  hot.constraints.power.assign(10, 100);
  hot.constraints.power_budget = 50;  // a single core exceeds the budget
  EXPECT_THROW((void)rectpack_schedule(table, 16, hot),
               std::invalid_argument);
}

}  // namespace
}  // namespace wtam::pack
