#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ilp/branch_and_bound.hpp"

namespace wtam::ilp {
namespace {

constexpr double kTol = 1e-6;

lp::Row make_row(std::vector<std::pair<int, double>> coeffs, lp::RowSense sense,
                 double rhs) {
  lp::Row row;
  row.coeffs = std::move(coeffs);
  row.sense = sense;
  row.rhs = rhs;
  return row;
}

/// 0/1 knapsack as a min problem: min -sum(v_i x_i) s.t. sum(w_i x_i) <= C.
Problem knapsack(const std::vector<double>& values,
                 const std::vector<double>& weights, double capacity) {
  const int n = static_cast<int>(values.size());
  Problem p;
  p.lp = lp::Problem::with_vars(n);
  p.is_integer.assign(static_cast<std::size_t>(n), true);
  lp::Row row;
  row.sense = lp::RowSense::LessEqual;
  row.rhs = capacity;
  for (int j = 0; j < n; ++j) {
    p.lp.objective[static_cast<std::size_t>(j)] = -values[static_cast<std::size_t>(j)];
    p.lp.upper[static_cast<std::size_t>(j)] = 1.0;
    row.coeffs.emplace_back(j, weights[static_cast<std::size_t>(j)]);
  }
  p.lp.rows.push_back(std::move(row));
  return p;
}

/// Brute force over all 0/1 vectors (n <= ~16).
double brute_force_binary(const Problem& p) {
  const int n = p.lp.num_vars;
  double best = std::numeric_limits<double>::infinity();
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool feasible = true;
    for (const auto& row : p.lp.rows) {
      double lhs = 0.0;
      for (const auto& [idx, val] : row.coeffs)
        lhs += val * ((mask >> idx) & 1);
      if (row.sense == lp::RowSense::LessEqual && lhs > row.rhs + 1e-9)
        feasible = false;
      if (row.sense == lp::RowSense::GreaterEqual && lhs < row.rhs - 1e-9)
        feasible = false;
      if (row.sense == lp::RowSense::Equal && std::abs(lhs - row.rhs) > 1e-9)
        feasible = false;
      if (!feasible) break;
    }
    if (!feasible) continue;
    double obj = 0.0;
    for (int j = 0; j < n; ++j)
      obj += p.lp.objective[static_cast<std::size_t>(j)] * ((mask >> j) & 1);
    best = std::min(best, obj);
  }
  return best;
}

TEST(BranchAndBound, SolvesSmallKnapsack) {
  // values {10, 13, 7}, weights {3, 4, 2}, cap 5 => take items 1+3 (17).
  const Problem p = knapsack({10, 13, 7}, {3, 4, 2}, 5);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, -17.0, kTol);
  EXPECT_NEAR(s.x[0], 1.0, kTol);
  EXPECT_NEAR(s.x[1], 0.0, kTol);
  EXPECT_NEAR(s.x[2], 1.0, kTol);
}

TEST(BranchAndBound, LpRelaxationFractionalButIpIntegral) {
  // LP relaxation would take half of item 2; IP must not.
  const Problem p = knapsack({6, 10}, {3, 6}, 8);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, -10.0, kTol);  // item 2 alone
}

TEST(BranchAndBound, DetectsInfeasibleIp) {
  // x1 + x2 = 1.5 has no 0/1 solution (equality with binaries).
  Problem p;
  p.lp = lp::Problem::with_vars(2);
  p.is_integer = {true, true};
  p.lp.upper = {1.0, 1.0};
  p.lp.rows.push_back(make_row({{0, 1.0}, {1, 1.0}}, lp::RowSense::Equal, 1.5));
  EXPECT_EQ(solve(p).status, Status::Infeasible);
}

TEST(BranchAndBound, DetectsLpInfeasibleRoot) {
  Problem p;
  p.lp = lp::Problem::with_vars(1);
  p.is_integer = {true};
  p.lp.rows.push_back(make_row({{0, 1.0}}, lp::RowSense::GreaterEqual, 2.0));
  p.lp.upper = {1.0};
  EXPECT_EQ(solve(p).status, Status::Infeasible);
}

TEST(BranchAndBound, ReportsUnboundedRoot) {
  Problem p;
  p.lp = lp::Problem::with_vars(1);
  p.is_integer = {false};
  p.lp.objective = {-1.0};
  EXPECT_EQ(solve(p).status, Status::Unbounded);
}

TEST(BranchAndBound, MixedIntegerProblem) {
  // min -x - y, x integer in [0,3], y continuous in [0, 2.5], x + y <= 4.2.
  Problem p;
  p.lp = lp::Problem::with_vars(2);
  p.is_integer = {true, false};
  p.lp.objective = {-1.0, -1.0};
  p.lp.upper = {3.0, 2.5};
  p.lp.rows.push_back(make_row({{0, 1.0}, {1, 1.0}}, lp::RowSense::LessEqual, 4.2));
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  // x=3 (integer), y=1.2 => -4.2; or x=2, y=2.2 => -4.2. Same objective.
  EXPECT_NEAR(s.objective, -4.2, kTol);
  EXPECT_NEAR(s.x[0], std::round(s.x[0]), 1e-6);
}

TEST(BranchAndBound, IncumbentHintIsReturnedWhenOptimal) {
  const Problem p = knapsack({10, 13, 7}, {3, 4, 2}, 5);
  Options options;
  std::vector<double> hint = {1.0, 0.0, 1.0};  // the optimum
  options.incumbent_hint = hint;
  const Solution s = solve(p, options);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, -17.0, kTol);
}

TEST(BranchAndBound, IncumbentHintSizeMismatchThrows) {
  const Problem p = knapsack({1, 2}, {1, 1}, 1);
  Options options;
  options.incumbent_hint = std::vector<double>{1.0};
  EXPECT_THROW((void)solve(p, options), std::invalid_argument);
}

TEST(BranchAndBound, NodeLimitReturnsFeasibleWithHint) {
  // Capacity 5 makes the root LP fractional (2/3 of the 10-value item), so
  // the search must branch — and immediately trips the 1-node limit.
  const Problem p = knapsack({10, 13, 7, 9, 4}, {3, 4, 2, 3, 1}, 5);
  Options options;
  options.max_nodes = 1;
  options.incumbent_hint = std::vector<double>{0.0, 0.0, 0.0, 0.0, 0.0};
  const Solution s = solve(p, options);
  EXPECT_EQ(s.status, Status::Feasible);  // limit, incumbent available
}

TEST(BranchAndBound, IntegralObjectiveRoundingStillOptimal) {
  const Problem p = knapsack({3, 5, 7}, {2, 3, 4}, 6);
  Options options;
  options.objective_is_integral = true;
  const Solution s = solve(p, options);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, brute_force_binary(p), kTol);
}

TEST(BranchAndBound, ValidatesIsIntegerSize) {
  Problem p;
  p.lp = lp::Problem::with_vars(2);
  p.is_integer = {true};  // wrong size
  EXPECT_THROW((void)solve(p), std::invalid_argument);
}

/// Property sweep: random binary programs vs brute force.
class IlpRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(IlpRandomTest, MatchesBruteForce) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const int n = static_cast<int>(rng.uniform_int(2, 10));
  const int m = static_cast<int>(rng.uniform_int(1, 4));

  Problem p;
  p.lp = lp::Problem::with_vars(n);
  p.is_integer.assign(static_cast<std::size_t>(n), true);
  for (int j = 0; j < n; ++j) {
    p.lp.objective[static_cast<std::size_t>(j)] =
        static_cast<double>(rng.uniform_int(-9, 9));
    p.lp.upper[static_cast<std::size_t>(j)] = 1.0;
  }
  for (int r = 0; r < m; ++r) {
    lp::Row row;
    row.sense = lp::RowSense::LessEqual;
    double weight_sum = 0.0;
    for (int j = 0; j < n; ++j) {
      const double c = static_cast<double>(rng.uniform_int(0, 5));
      if (c != 0.0) row.coeffs.emplace_back(j, c);
      weight_sum += c;
    }
    // rhs between 0 and the full weight: always feasible (all-zero).
    row.rhs = static_cast<double>(rng.uniform_int(
        0, static_cast<std::int64_t>(weight_sum)));
    p.lp.rows.push_back(std::move(row));
  }

  const double expected = brute_force_binary(p);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, expected, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpRandomTest, ::testing::Range(1, 31));

}  // namespace
}  // namespace wtam::ilp
