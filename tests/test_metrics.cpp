// Metrics registry contract: exact counts under contention, documented
// histogram bucket boundaries, deterministic snapshots, and thread-safe
// trace recording. The contention tests carry the `concurrency` ctest
// label so the TSan CI job exercises the sharded-slot locking.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wtam::obs {
namespace {

// --- exactness under contention -------------------------------------------

TEST(MetricsConcurrency, CounterIsExactUnderContention) {
  // The CI serve smoke asserts scraped counters equal jobs submitted, so
  // a lost increment is a correctness bug, not noise.
  MetricsRegistry registry;
  Counter& counter = registry.counter("contended");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.increment();
    });
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(counter.value(),
            static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(MetricsConcurrency, HistogramTotalsAreExactUnderContention) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("contended_ns");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&histogram, t] {
      // Distinct per-thread values so sum/min/max are all checkable.
      for (int i = 0; i < kPerThread; ++i)
        histogram.record(t * kPerThread + i);
    });
  for (auto& thread : threads) thread.join();

  const HistogramData data = histogram.merged();
  const std::int64_t n = static_cast<std::int64_t>(kThreads) * kPerThread;
  EXPECT_EQ(data.count, n);
  EXPECT_EQ(data.sum, n * (n - 1) / 2);  // 0 + 1 + ... + n-1
  EXPECT_EQ(data.min, 0);
  EXPECT_EQ(data.max, n - 1);
}

TEST(MetricsConcurrency, RegistryLookupRacesResolveToOneMetric) {
  // register-on-first-use from many threads must agree on one Counter.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back(
        [&registry] { registry.counter("shared").increment(); });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("shared").value(), kThreads);
}

TEST(MetricsConcurrency, TraceRecordsFromManyThreads) {
  SolveTrace trace;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&trace, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const SpanTimer span(&trace, "stage-" + std::to_string(t));
      }
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(trace.spans().size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

// --- histogram bucketing ---------------------------------------------------

TEST(Histogram, UnitBucketsAreExact) {
  // Values 0..7 each get their own bucket: [v, v+1).
  for (std::int64_t v = 0; v < 8; ++v) {
    const int index = Histogram::bucket_index(v);
    EXPECT_EQ(index, static_cast<int>(v));
    const auto [lo, hi] = Histogram::bucket_bounds(index);
    EXPECT_EQ(lo, v);
    EXPECT_EQ(hi, v + 1);
  }
}

TEST(Histogram, BucketBoundsContainTheirValues) {
  // Every probed value must land in a bucket whose [lo, hi) contains it
  // — probe each power of two, its neighbors, and mid-octave points.
  std::vector<std::int64_t> probes = {0, 1, 7, 8, 9};
  for (int shift = 4; shift < 63; ++shift) {
    const std::int64_t pow2 = std::int64_t{1} << shift;
    probes.push_back(pow2 - 1);
    probes.push_back(pow2);
    probes.push_back(pow2 + 1);
    probes.push_back(pow2 + pow2 / 2);  // mid-octave
  }
  probes.push_back(std::numeric_limits<std::int64_t>::max());
  for (const std::int64_t value : probes) {
    const int index = Histogram::bucket_index(value);
    ASSERT_GE(index, 0) << value;
    ASSERT_LT(index, kHistogramBuckets) << value;
    const auto [lo, hi] = Histogram::bucket_bounds(index);
    EXPECT_LE(lo, value) << "bucket " << index;
    // The top bucket's hi clamps to INT64_MAX, closing the range there.
    if (hi != std::numeric_limits<std::int64_t>::max()) {
      EXPECT_GT(hi, value) << "bucket " << index;
    }
  }
}

TEST(Histogram, BucketsTileContiguously) {
  // Each bucket's hi is the next bucket's lo: no gaps, no overlaps.
  for (int index = 0; index + 1 < kHistogramBuckets; ++index) {
    const auto [lo, hi] = Histogram::bucket_bounds(index);
    EXPECT_LT(lo, hi) << "bucket " << index;
    EXPECT_EQ(hi, Histogram::bucket_bounds(index + 1).first)
        << "bucket " << index;
  }
}

TEST(Histogram, RelativeErrorIsBounded) {
  // Log-linear with 8 sub-buckets per octave: width(bucket)/lo <= 1/8
  // above the unit range, so any quantile is within 12.5% of truth.
  for (const std::int64_t value : {100, 1000, 1000000, 123456789}) {
    const auto [lo, hi] = Histogram::bucket_bounds(
        Histogram::bucket_index(value));
    EXPECT_LE(static_cast<double>(hi - lo) / static_cast<double>(lo), 0.125)
        << value;
  }
}

TEST(Histogram, NegativeValuesClampToZero) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("clamped");
  histogram.record(-5);
  const HistogramData data = histogram.merged();
  EXPECT_EQ(data.count, 1);
  EXPECT_EQ(data.min, 0);
  EXPECT_EQ(data.max, 0);
}

TEST(Histogram, SingleSampleQuantilesAreExact) {
  // Quantiles clamp to the observed [min, max], so one sample reports
  // itself exactly at every percentile.
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("single");
  histogram.record(12345);
  const HistogramData data = histogram.merged();
  EXPECT_EQ(data.quantile(0.5), 12345.0);
  EXPECT_EQ(data.quantile(0.99), 12345.0);
}

TEST(Histogram, QuantilesOrderedAndWithinRange) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("spread");
  for (std::int64_t v = 1; v <= 1000; ++v) histogram.record(v * 1000);
  const HistogramData data = histogram.merged();
  const double p50 = data.quantile(0.5);
  const double p90 = data.quantile(0.9);
  const double p99 = data.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, static_cast<double>(data.min));
  EXPECT_LE(p99, static_cast<double>(data.max));
  // Within the documented 12.5% relative error of the true ranks.
  EXPECT_NEAR(p50, 500500.0, 500500.0 * 0.125);
  EXPECT_NEAR(p99, 990000.0, 990000.0 * 0.125);
}

// --- snapshots -------------------------------------------------------------

TEST(MetricsRegistry, SnapshotIsSortedAndDeterministic) {
  MetricsRegistry registry;
  // Registered intentionally out of name order.
  registry.counter("z.last").increment(3);
  registry.counter("a.first").increment(1);
  registry.gauge("m.middle").set(7);
  registry.histogram("h.lat_ns").record(42);

  const MetricsSnapshot first = registry.snapshot();
  ASSERT_EQ(first.counters.size(), 2u);
  EXPECT_EQ(first.counters[0].name, "a.first");
  EXPECT_EQ(first.counters[0].value, 1);
  EXPECT_EQ(first.counters[1].name, "z.last");
  EXPECT_EQ(first.counters[1].value, 3);
  ASSERT_EQ(first.gauges.size(), 1u);
  EXPECT_EQ(first.gauges[0].value, 7);
  ASSERT_EQ(first.histograms.size(), 1u);
  EXPECT_EQ(first.histograms[0].count, 1);
  EXPECT_EQ(first.histograms[0].p50, 42.0);

  // Same state -> identical snapshot (names AND values), so two scrapes
  // of a quiet server render byte-identical expositions.
  const MetricsSnapshot second = registry.snapshot();
  EXPECT_EQ(to_prometheus(first), to_prometheus(second));
}

TEST(MetricsRegistry, ResetZeroesValuesKeepsNames) {
  MetricsRegistry registry;
  registry.counter("events").increment(5);
  registry.gauge("level").set(9);
  registry.histogram("lat_ns").record(100);
  registry.reset();
  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].value, 0);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, 0);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 0);
}

TEST(Prometheus, SanitizesNamesAndTypesSamples) {
  MetricsRegistry registry;
  registry.counter("serve.jobs_accepted").increment(2);
  registry.gauge("serve.queue_depth").set(1);
  registry.histogram("serve.job_ns").record(1000);
  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE serve_jobs_accepted counter"),
            std::string::npos);
  EXPECT_NE(text.find("serve_jobs_accepted 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_job_ns summary"), std::string::npos);
  EXPECT_NE(text.find("serve_job_ns{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("serve_job_ns_count 1"), std::string::npos);
  // No unsanitized '.' may survive in a sample name.
  EXPECT_EQ(text.find("serve."), std::string::npos);
}

}  // namespace
}  // namespace wtam::obs
