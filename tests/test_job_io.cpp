#include <gtest/gtest.h>

#include <stdexcept>

#include "api/job_io.hpp"
#include "api/json_value.hpp"

namespace wtam::api {
namespace {

// ---- JsonValue: parser ----------------------------------------------------

TEST(JsonValue, ParsesScalarsObjectsAndArrays) {
  const JsonValue document = JsonValue::parse(
      R"({"name": "désign \"x\"", "n": -42, "pi": 3.5e1,)"
      R"( "flag": true, "none": null, "list": [1, 2, 3], "empty": {}})");
  ASSERT_TRUE(document.is_object());
  EXPECT_EQ(document.find("name")->as_string(), "d\xC3\xA9sign \"x\"");
  EXPECT_EQ(document.find("n")->as_int(), -42);
  EXPECT_DOUBLE_EQ(document.find("pi")->as_double(), 35.0);
  EXPECT_TRUE(document.find("flag")->as_bool());
  EXPECT_TRUE(document.find("none")->is_null());
  ASSERT_TRUE(document.find("list")->is_array());
  EXPECT_EQ(document.find("list")->elements().size(), 3u);
  EXPECT_EQ(document.find("list")->elements()[2].as_int(), 3);
  EXPECT_TRUE(document.find("empty")->members().empty());
  EXPECT_EQ(document.find("missing"), nullptr);
}

TEST(JsonValue, ReportsErrorsWithPosition) {
  const auto expect_error = [](const std::string& text,
                               const std::string& fragment) {
    try {
      (void)JsonValue::parse(text);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_error("{", "unexpected end of input");
  expect_error("{\"a\": 1,}", "expected object key string");
  expect_error("[1, 2", "unexpected end of input");
  expect_error("[1] trailing", "trailing characters");
  expect_error("{\"a\": 1 \"b\": 2}", "expected ','");
  expect_error("\"unterminated", "unterminated string");
  expect_error("nul", "invalid literal");
  // Strict number grammar (what jq/Python/CMake's string(JSON) accept).
  expect_error("01", "leading zero");
  expect_error("[.5]", "invalid number");
  expect_error("[1.]", "digits required after '.'");
  expect_error("[1e]", "digits required in exponent");
  expect_error("[-]", "invalid number");
  expect_error("{\"a\": 1, \"a\": 2}", "duplicate object key");
  // Positions are line:column.
  expect_error("{\n  \"a\": oops\n}", "2:8");
}

TEST(JsonValue, DumpParseRoundTripPreservesStructure) {
  JsonValue document = JsonValue::object();
  document.set("text", JsonValue::string("line1\nline2\t\"quoted\""));
  document.set("int", JsonValue::number(std::int64_t{1} << 40));
  document.set("neg", JsonValue::number(std::int64_t{-7}));
  JsonValue array = JsonValue::array();
  array.push(JsonValue::boolean(false));
  array.push(JsonValue{});
  document.set("mixed", std::move(array));

  const JsonValue reparsed = JsonValue::parse(document.dump_string());
  EXPECT_EQ(reparsed.find("text")->as_string(), "line1\nline2\t\"quoted\"");
  EXPECT_EQ(reparsed.find("int")->as_int(), std::int64_t{1} << 40);
  EXPECT_EQ(reparsed.find("neg")->as_int(), -7);
  EXPECT_FALSE(reparsed.find("mixed")->elements()[0].as_bool());
  EXPECT_TRUE(reparsed.find("mixed")->elements()[1].is_null());
  // Deterministic writer: dumping twice is byte-identical.
  EXPECT_EQ(document.dump_string(), document.dump_string());
}

TEST(JsonValue, CompactDumpIsSingleLineAndReparses) {
  JsonValue document = JsonValue::object();
  document.set("id", JsonValue::string("a\nb"));  // newline must be escaped
  document.set("n", JsonValue::number(std::int64_t{42}));
  JsonValue nested = JsonValue::array();
  nested.push(JsonValue::boolean(true));
  nested.push(JsonValue::object());
  document.set("nested", std::move(nested));

  const std::string line = document.dump_compact_string();
  // The NDJSON contract: one response per line, however deep the value.
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line, R"({"id": "a\nb", "n": 42, "nested": [true, {}]})");
  const JsonValue reparsed = JsonValue::parse(line);
  EXPECT_EQ(reparsed.find("id")->as_string(), "a\nb");
  EXPECT_EQ(reparsed.find("n")->as_int(), 42);
}

// ---- jobs files -----------------------------------------------------------

TEST(JobIo, ParsesAFullJobAndAppliesDefaults) {
  const auto jobs = parse_jobs(R"({"jobs": [
    {"id": "a", "soc": "d695", "width": 32, "backend": "rectpack",
     "width_max": 48, "min_tams": 2, "max_tams": 6, "threads": 2,
     "run_final_step": false, "rectpack_iterations": 100,
     "rectpack_seed": 9, "deadline_s": 1.5, "priority": 3, "tag": "t"},
    {"soc": "p21241", "width": 16}
  ]})");
  ASSERT_EQ(jobs.size(), 2u);
  const SolveRequest& full = jobs[0];
  EXPECT_EQ(full.id, "a");
  EXPECT_EQ(full.soc, "d695");
  EXPECT_EQ(full.width, 32);
  EXPECT_EQ(full.width_max, 48);
  EXPECT_EQ(full.backend, "rectpack");
  EXPECT_EQ(full.options.min_tams, 2);
  EXPECT_EQ(full.options.max_tams, 6);
  EXPECT_EQ(full.options.threads, 2);
  EXPECT_FALSE(full.options.run_final_step);
  EXPECT_EQ(full.options.rectpack.local_search_iterations, 100);
  EXPECT_EQ(full.options.rectpack.seed, 9u);
  ASSERT_TRUE(full.deadline_s.has_value());
  EXPECT_DOUBLE_EQ(*full.deadline_s, 1.5);
  EXPECT_EQ(full.priority, 3);
  EXPECT_EQ(full.tag, "t");

  const SolveRequest& defaults = jobs[1];
  EXPECT_EQ(defaults.backend, "enumerative");
  EXPECT_EQ(defaults.width_max, 0);
  EXPECT_EQ(defaults.options.max_tams, 10);
  EXPECT_FALSE(defaults.deadline_s.has_value());
}

TEST(JobIo, AcceptsBareArrayDocuments) {
  const auto jobs = parse_jobs(R"([{"soc": "d695", "width": 8}])");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].soc, "d695");
}

TEST(JobIo, RejectsUnknownAndMalformedFields) {
  const auto expect_bad = [](const std::string& text,
                             const std::string& fragment) {
    try {
      (void)parse_jobs(text);
      FAIL() << "expected error for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_bad(R"([{"soc": "d695", "width": 8, "widht_max": 16}])",
             "unknown field 'widht_max'");
  expect_bad(R"([{"soc": "d695"}])", "'width' is required");
  expect_bad(R"([{"soc": "d695", "width": 0}])", "out of range");
  expect_bad(R"([{"soc": "d695", "width": 8, "deadline_s": -1}])",
             "must be > 0");
  expect_bad(R"([{"soc": "d695", "width": "eight"}])", "must be an integer");
  expect_bad(R"({"no_jobs": []})", "must have a 'jobs' array");
  // Errors name the offending job by position.
  expect_bad(R"([{"soc": "d695", "width": 8}, {"soc": "x"}])", "job 2");
}

TEST(JobIo, JobRoundTripsThroughJson) {
  SolveRequest request;
  request.id = "round-trip";
  request.soc = "p93791";
  request.width = 24;
  request.width_max = 32;
  request.backend = "rectpack";
  request.options.min_tams = 2;
  request.options.threads = 4;
  request.options.rectpack.seed = 5'000'000'000ULL;  // above 2^31: must survive
  request.deadline_s = 0.25;
  request.priority = -1;
  request.tag = "nightly";

  const auto jobs = parse_jobs(jobs_to_json({request}));
  ASSERT_EQ(jobs.size(), 1u);
  const SolveRequest& back = jobs[0];
  EXPECT_EQ(back.id, request.id);
  EXPECT_EQ(back.soc, request.soc);
  EXPECT_EQ(back.width, request.width);
  EXPECT_EQ(back.width_max, request.width_max);
  EXPECT_EQ(back.backend, request.backend);
  EXPECT_EQ(back.options.min_tams, request.options.min_tams);
  EXPECT_EQ(back.options.threads, request.options.threads);
  EXPECT_EQ(back.options.rectpack.seed, request.options.rectpack.seed);
  EXPECT_DOUBLE_EQ(*back.deadline_s, *request.deadline_s);
  EXPECT_EQ(back.priority, request.priority);
  EXPECT_EQ(back.tag, request.tag);
}

TEST(JobIo, ConstraintsBlockRoundTripsThroughJson) {
  SolveRequest request;
  request.id = "constrained";
  request.soc = "d695";
  request.width = 32;
  request.backend = "rectpack";
  auto& constraints = request.options.constraints;
  constraints.power = {100, 90, 80, 70, 60, 50, 40, 30, 20, 10};
  constraints.power_budget = 250;
  constraints.precedence = {{0, 2}, {1, 2}};
  constraints.fixed = {{3, {0, 8}}};
  constraints.forbidden = {{4, {8, 16}}, {4, {24, 32}}};
  constraints.earliest = {{5, 12345}};

  const auto jobs = parse_jobs(jobs_to_json({request}));
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].options.constraints, constraints);

  // An absent block stays absent (empty constraints are not serialized).
  SolveRequest plain;
  plain.soc = "d695";
  plain.width = 8;
  EXPECT_EQ(jobs_to_json({plain}).find("constraints"), std::string::npos);
}

TEST(JobIo, ConstraintsParsingIsStrict) {
  const auto parse_constrained_job = [](const std::string& block) {
    return parse_jobs(R"({"jobs": [{"soc": "d695", "width": 8,)"
                      R"( "constraints": )" +
                      block + "}]}");
  };
  // Happy path.
  EXPECT_EQ(parse_constrained_job(
                R"({"power": [1, 2], "power_budget": 3,)"
                R"( "precedence": [[0, 1]], "earliest_start": [[1, 9]]})")
                .at(0)
                .options.constraints.precedence.size(),
            1u);
  // Unknown keys inside the block fail loudly.
  EXPECT_THROW((void)parse_constrained_job(R"({"powerr": [1]})"),
               std::runtime_error);
  // Malformed shapes fail loudly.
  EXPECT_THROW((void)parse_constrained_job(R"("power")"), std::runtime_error);
  EXPECT_THROW((void)parse_constrained_job(R"({"power": 3})"),
               std::runtime_error);
  EXPECT_THROW((void)parse_constrained_job(R"({"precedence": [[0]]})"),
               std::runtime_error);
  EXPECT_THROW((void)parse_constrained_job(R"({"fixed": [[0, 1]]})"),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse_constrained_job(R"({"forbidden": [[0, 1, "x"]]})"),
      std::runtime_error);
  EXPECT_THROW(
      (void)parse_constrained_job(R"({"earliest_start": [[0, -1]]})"),
      std::runtime_error);
  EXPECT_THROW((void)parse_constrained_job(R"({"fixed": [[0, 1, 999]]})"),
               std::runtime_error);  // wire index outside [0, 256]
  EXPECT_THROW((void)parse_constrained_job(R"({"power_budget": -5})"),
               std::runtime_error);  // negative budgets fail at parse time
}

// GCC 12's -Wmaybe-uninitialized misfires on the engaged optional<Soc>
// here (the famous optional+string false positive; job_to_json only ever
// reads has_value() on it).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
TEST(JobIo, InMemorySocValueIsNotSerializable) {
  SolveRequest request;
  request.soc_value.emplace();
  request.width = 8;
  EXPECT_THROW((void)job_to_json(request), std::invalid_argument);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

// ---- results files --------------------------------------------------------

TEST(JobIo, ResultsJsonIsDeterministicAndParsesBack) {
  SolveResult ok;
  ok.status = Status::Ok;
  ok.id = "job-1";
  ok.soc_name = "d695";
  ok.core_count = 10;
  ok.backend = "rectpack";
  ok.width = 32;
  ok.widths_tried = 1;
  ok.outcome.emplace();
  ok.outcome->backend = "rectpack";
  ok.outcome->testing_time = 22270;
  ok.outcome->cpu_s = 0.123;  // must NOT appear without include_timing
  ok.outcome->details.emplace_back("repacks", "41");
  ok.lower_bound = 21000;
  ok.schedule_valid = true;
  ok.wall_s = 0.456;

  SolveResult bad;
  bad.status = Status::InvalidRequest;
  bad.id = "job-2";
  bad.backend = "enumerative";
  bad.error = "width must be in 1..256";

  const std::string text = results_to_json({ok, bad});
  EXPECT_EQ(text, results_to_json({ok, bad}));  // byte-identical
  EXPECT_EQ(text.find("cpu_s"), std::string::npos);
  EXPECT_EQ(text.find("wall_s"), std::string::npos);

  const JsonValue document = JsonValue::parse(text);
  EXPECT_EQ(document.find("schema")->as_string(), "wtam-batch-results-v1");
  EXPECT_EQ(document.find("jobs")->as_int(), 2);
  const auto& results = document.find("results")->elements();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].find("status")->as_string(), "ok");
  EXPECT_EQ(results[0].find("testing_time")->as_int(), 22270);
  EXPECT_EQ(results[0].find("details")->find("repacks")->as_string(), "41");
  EXPECT_TRUE(results[0].find("schedule_valid")->as_bool());
  EXPECT_EQ(results[1].find("status")->as_string(), "invalid_request");
  EXPECT_NE(results[1].find("error"), nullptr);
  EXPECT_EQ(results[1].find("testing_time"), nullptr);

  ResultsWriteOptions with_timing;
  with_timing.include_timing = true;
  const std::string timed = results_to_json({ok, bad}, with_timing);
  EXPECT_NE(timed.find("cpu_s"), std::string::npos);
  EXPECT_NE(timed.find("wall_s"), std::string::npos);
}

TEST(JobIo, CacheProvenanceIsOptInLikeTiming) {
  SolveResult hit;
  hit.status = Status::Ok;
  hit.id = "job-1";
  hit.backend = "rectpack";
  hit.cache = CacheOutcome::Hit;

  // Off the canonical bytes by default, so results stay byte-identical
  // with the cache on or off.
  EXPECT_EQ(results_to_json({hit}).find("\"cache\""), std::string::npos);

  ResultsWriteOptions with_cache;
  with_cache.include_cache = true;
  const std::string text = results_to_json({hit}, with_cache);
  const JsonValue document = JsonValue::parse(text);
  EXPECT_EQ(document.find("results")->elements()[0].find("cache")->as_string(),
            "hit");

  hit.cache = CacheOutcome::Bypass;
  EXPECT_NE(results_to_json({hit}, with_cache).find("\"cache\": \"bypass\""),
            std::string::npos);
}

TEST(JobIo, StatusStringsRoundTrip) {
  for (const Status status :
       {Status::Ok, Status::InvalidRequest, Status::DeadlineExceeded,
        Status::Cancelled, Status::InternalError}) {
    const auto parsed = parse_status(to_string(status));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, status);
  }
  EXPECT_FALSE(parse_status("no_such_status").has_value());
}

}  // namespace
}  // namespace wtam::api
