#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/assignment_exact.hpp"
#include "core/core_assign.hpp"
#include "core/test_time_table.hpp"
#include "core/time_provider.hpp"
#include "soc/benchmarks.hpp"

namespace wtam::core {
namespace {

/// Brute-force optimal makespan for an explicit matrix (n <= ~10).
std::int64_t brute_force(const TestTimeProvider& table,
                         const std::vector<int>& widths) {
  const int n = table.core_count();
  const int b = static_cast<int>(widths.size());
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  std::vector<int> assignment(static_cast<std::size_t>(n), 0);
  std::int64_t combos = 1;
  for (int i = 0; i < n; ++i) combos *= b;
  for (std::int64_t code = 0; code < combos; ++code) {
    std::int64_t rest = code;
    std::vector<std::int64_t> loads(static_cast<std::size_t>(b), 0);
    for (int i = 0; i < n; ++i) {
      const int j = static_cast<int>(rest % b);
      rest /= b;
      loads[static_cast<std::size_t>(j)] +=
          table.time(i, widths[static_cast<std::size_t>(j)]);
    }
    best = std::min(best, *std::max_element(loads.begin(), loads.end()));
  }
  return best;
}

ExplicitTimeMatrix figure2_matrix() {
  return ExplicitTimeMatrix({32, 16, 8}, {
                                             {50, 100, 200},
                                             {75, 95, 200},
                                             {90, 100, 150},
                                             {60, 75, 80},
                                             {120, 120, 125},
                                         });
}

TEST(AssignmentExact, Figure2Optimum) {
  const ExplicitTimeMatrix matrix = figure2_matrix();
  const std::vector<int> widths = {32, 16, 8};
  const std::int64_t expected = brute_force(matrix, widths);
  for (const auto engine : {ExactEngine::BranchAndBound, ExactEngine::Ilp}) {
    ExactOptions options;
    options.engine = engine;
    const ExactResult result = solve_assignment_exact(matrix, widths, options);
    EXPECT_TRUE(result.proven_optimal);
    EXPECT_EQ(result.architecture.testing_time, expected);
  }
}

TEST(AssignmentExact, NeverWorseThanHeuristic) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 32);
  for (const auto& widths :
       {std::vector<int>{8, 8}, {6, 10}, {4, 12, 16}, {8, 8, 8, 8}}) {
    const auto heuristic = core_assign(table, widths);
    const auto exact = solve_assignment_exact(table, widths);
    EXPECT_TRUE(exact.proven_optimal);
    EXPECT_LE(exact.architecture.testing_time,
              heuristic.architecture.testing_time);
  }
}

TEST(AssignmentExact, TamTimesConsistent) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 16);
  const std::vector<int> widths = {6, 10};
  const auto result = solve_assignment_exact(table, widths);
  std::vector<std::int64_t> recomputed(widths.size(), 0);
  for (int i = 0; i < table.core_count(); ++i) {
    const int j = result.architecture.assignment[static_cast<std::size_t>(i)];
    recomputed[static_cast<std::size_t>(j)] +=
        table.time(i, widths[static_cast<std::size_t>(j)]);
  }
  EXPECT_EQ(recomputed, result.architecture.tam_times);
  EXPECT_EQ(result.architecture.testing_time,
            *std::max_element(recomputed.begin(), recomputed.end()));
}

TEST(AssignmentExact, UpperBoundHintBelowOptimumKeepsHeuristic) {
  const ExplicitTimeMatrix matrix = figure2_matrix();
  const std::vector<int> widths = {32, 16, 8};
  const std::int64_t optimum = brute_force(matrix, widths);
  ExactOptions options;
  options.upper_bound_hint = optimum - 50;  // unattainable
  const ExactResult result = solve_assignment_exact(matrix, widths, options);
  // Nothing better than the hint exists; search completes with the
  // heuristic assignment (time >= optimum).
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_GE(result.architecture.testing_time, optimum);
}

TEST(AssignmentExact, UpperBoundHintAboveOptimumStillFindsOptimum) {
  const ExplicitTimeMatrix matrix = figure2_matrix();
  const std::vector<int> widths = {32, 16, 8};
  const std::int64_t optimum = brute_force(matrix, widths);
  ExactOptions options;
  options.upper_bound_hint = optimum + 100;
  const ExactResult result = solve_assignment_exact(matrix, widths, options);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.architecture.testing_time, optimum);
}

TEST(AssignmentExact, NodeLimitReportsNotProven) {
  // Instance where the heuristic is provably suboptimal (LPT's classic
  // {3,3,2,2,2}-on-2-machines miss: heuristic 7, optimum 6), so the search
  // must recurse — and a 2-node limit cuts it off before it can prove
  // anything.
  const ExplicitTimeMatrix matrix({8, 9}, {{3, 3},
                                           {3, 3},
                                           {2, 2},
                                           {2, 2},
                                           {2, 2}});
  ExactOptions options;
  options.max_nodes = 2;
  const auto result =
      solve_assignment_exact(matrix, std::vector<int>{8, 9}, options);
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_GT(result.architecture.testing_time, 0);  // heuristic still returned

  // Sanity: without the limit the optimum of 6 is found and proven.
  const auto full = solve_assignment_exact(matrix, std::vector<int>{8, 9}, {});
  EXPECT_TRUE(full.proven_optimal);
  EXPECT_EQ(full.architecture.testing_time, 6);
}

TEST(BuildAssignmentIlp, ModelShape) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 16);
  const std::vector<int> widths = {6, 10};
  const ilp::Problem problem = build_assignment_ilp(table, widths);
  const int n = table.core_count();
  // N*B binaries + tau.
  EXPECT_EQ(problem.lp.num_vars, n * 2 + 1);
  EXPECT_FALSE(problem.is_integer[static_cast<std::size_t>(n * 2)]);
  // B makespan rows + N assignment rows (complexity O(N) as in §3.2).
  EXPECT_EQ(problem.lp.rows.size(), static_cast<std::size_t>(2 + n));
}

TEST(BuildAssignmentIlp, RejectsEmptyWidths) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 16);
  EXPECT_THROW((void)build_assignment_ilp(table, std::vector<int>{}),
               std::invalid_argument);
}

/// Property sweep: both engines match brute force on random instances.
class ExactRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(ExactRandomTest, EnginesMatchBruteForce) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u);
  const int n = static_cast<int>(rng.uniform_int(3, 8));
  const int b = static_cast<int>(rng.uniform_int(2, 3));
  std::vector<int> widths(static_cast<std::size_t>(b));
  std::vector<std::vector<std::int64_t>> rows(static_cast<std::size_t>(n));
  // Distinct widths 4, 8, 12...
  for (int j = 0; j < b; ++j) widths[static_cast<std::size_t>(j)] = 4 * (j + 1);
  for (auto& row : rows) {
    row.resize(static_cast<std::size_t>(b));
    // Non-increasing in width to mimic real T(w) tables: fill from the
    // widest TAM backwards, adding a non-negative increment each step.
    std::int64_t t = rng.uniform_int(50, 400);
    for (int j = b - 1; j >= 0; --j) {
      row[static_cast<std::size_t>(j)] = t;
      t += rng.uniform_int(0, 150);
    }
  }

  const ExplicitTimeMatrix matrix(widths, rows);
  const std::int64_t expected = brute_force(matrix, widths);
  for (const auto engine : {ExactEngine::BranchAndBound, ExactEngine::Ilp}) {
    ExactOptions options;
    options.engine = engine;
    const ExactResult result = solve_assignment_exact(matrix, widths, options);
    EXPECT_TRUE(result.proven_optimal);
    EXPECT_EQ(result.architecture.testing_time, expected)
        << "engine=" << static_cast<int>(engine);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactRandomTest, ::testing::Range(1, 26));

}  // namespace
}  // namespace wtam::core
