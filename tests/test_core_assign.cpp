#include <gtest/gtest.h>

#include "core/core_assign.hpp"
#include "core/test_time_table.hpp"
#include "core/time_provider.hpp"
#include "soc/benchmarks.hpp"

namespace wtam::core {
namespace {

/// The worked example of Figure 2(a): five cores, TAMs of width 32/16/8.
ExplicitTimeMatrix figure2_matrix() {
  return ExplicitTimeMatrix({32, 16, 8}, {
                                             {50, 100, 200},   // core 1
                                             {75, 95, 200},    // core 2
                                             {90, 100, 150},   // core 3
                                             {60, 75, 80},     // core 4
                                             {120, 120, 125},  // core 5
                                         });
}

TEST(CoreAssign, Figure2FinalAssignment) {
  const ExplicitTimeMatrix matrix = figure2_matrix();
  const std::vector<int> widths = {32, 16, 8};
  const CoreAssignResult result = core_assign(matrix, widths);
  ASSERT_FALSE(result.aborted);
  // Figure 2(b): cores 1..5 -> TAMs 2, 3, 2, 1, 1 (1-based).
  EXPECT_EQ(result.architecture.assignment, (std::vector<int>{1, 2, 1, 0, 0}));
  // "The testing times on TAMs 1, 2, and 3 are 180, 200, and 200."
  EXPECT_EQ(result.architecture.tam_times, (std::vector<std::int64_t>{180, 200, 200}));
  EXPECT_EQ(result.architecture.testing_time, 200);
}

TEST(CoreAssign, Figure2CoreTieBreakUsesNextNarrowerTam) {
  // Disabling the rule flips the Core-1-vs-Core-3 choice on TAM 2: the tie
  // then resolves to the lowest index (core 1 as well) — so instead verify
  // the rule on a matrix where it changes the outcome.
  const ExplicitTimeMatrix matrix({16, 8}, {
                                               {100, 150},  // core 0
                                               {100, 200},  // core 1
                                           });
  const std::vector<int> widths = {16, 8};
  CoreAssignOptions with_rule;
  const auto a = core_assign(matrix, widths, with_rule);
  // Tie on TAM 1 (both 100); core 1 is slower on the 8-bit TAM, so it is
  // assigned first to the 16-bit TAM; core 0 then goes to the 8-bit TAM.
  EXPECT_EQ(a.architecture.assignment, (std::vector<int>{1, 0}));

  CoreAssignOptions without_rule;
  without_rule.next_tam_core_tiebreak = false;
  const auto b = core_assign(matrix, widths, without_rule);
  EXPECT_EQ(b.architecture.assignment, (std::vector<int>{0, 1}));
  // The rule strictly helps here.
  EXPECT_LT(a.architecture.testing_time, b.architecture.testing_time);
}

TEST(CoreAssign, WidestTamTieBreak) {
  // Both TAMs empty; the wider one must be seeded first.
  const ExplicitTimeMatrix matrix({16, 8}, {{10, 30}});
  const std::vector<int> widths = {8, 16};  // deliberately narrow-first
  const auto result = core_assign(matrix, widths);
  EXPECT_EQ(result.architecture.assignment, (std::vector<int>{1}));
}

TEST(CoreAssign, SingleTamAccumulatesAll) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 32);
  const std::vector<int> widths = {32};
  const auto result = core_assign(table, widths);
  EXPECT_EQ(result.architecture.testing_time, table.total_time(32));
}

TEST(CoreAssign, EarlyAbortWhenBestKnownReached) {
  const ExplicitTimeMatrix matrix = figure2_matrix();
  const std::vector<int> widths = {32, 16, 8};
  CoreAssignOptions options;
  options.best_known = 150;  // below the achievable 200
  const auto result = core_assign(matrix, widths, options);
  EXPECT_TRUE(result.aborted);
  EXPECT_GE(result.architecture.testing_time, 150);
}

TEST(CoreAssign, NoAbortWhenBestKnownHigh) {
  const ExplicitTimeMatrix matrix = figure2_matrix();
  const std::vector<int> widths = {32, 16, 8};
  CoreAssignOptions options;
  options.best_known = 201;
  const auto result = core_assign(matrix, widths, options);
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.architecture.testing_time, 200);
}

TEST(CoreAssign, AbortAtExactEquality) {
  // Lines 18-20 use >=: reaching tau exactly aborts too.
  const ExplicitTimeMatrix matrix = figure2_matrix();
  const std::vector<int> widths = {32, 16, 8};
  CoreAssignOptions options;
  options.best_known = 200;
  EXPECT_TRUE(core_assign(matrix, widths, options).aborted);
}

TEST(CoreAssign, EveryCoreAssignedExactlyOnce) {
  const soc::Soc soc = soc::p21241();
  const TestTimeTable table(soc, 32);
  const std::vector<int> widths = {10, 10, 12};
  const auto result = core_assign(table, widths);
  ASSERT_FALSE(result.aborted);
  std::vector<std::int64_t> recomputed(widths.size(), 0);
  for (int i = 0; i < table.core_count(); ++i) {
    const int j = result.architecture.assignment[static_cast<std::size_t>(i)];
    ASSERT_GE(j, 0);
    ASSERT_LT(j, 3);
    recomputed[static_cast<std::size_t>(j)] +=
        table.time(i, widths[static_cast<std::size_t>(j)]);
  }
  EXPECT_EQ(recomputed, result.architecture.tam_times);
}

TEST(CoreAssign, LargestCoreGoesToWidestTamFirst) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 32);
  const std::vector<int> widths = {32, 16, 8};
  const auto result = core_assign(table, widths);
  // The first selection happens on the empty, widest TAM (32) and takes the
  // core with the largest T(32): s13207 (index 5).
  EXPECT_EQ(result.architecture.assignment[5], 0);
}

TEST(CoreAssign, RejectsBadWidths) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 16);
  EXPECT_THROW((void)core_assign(table, std::vector<int>{}),
               std::invalid_argument);
  EXPECT_THROW((void)core_assign(table, std::vector<int>{0}),
               std::invalid_argument);
  EXPECT_THROW((void)core_assign(table, std::vector<int>{17}),
               std::invalid_argument);
}

TEST(FormatHelpers, PartitionAndAssignmentNotation) {
  EXPECT_EQ(format_partition(std::vector<int>{5, 5, 6}), "5+5+6");
  EXPECT_EQ(format_partition(std::vector<int>{16}), "16");
  // [5]-style vector: entries are 1-based TAM numbers.
  EXPECT_EQ(format_assignment(std::vector<int>{1, 2, 1, 0, 0}), "(2,3,2,1,1)");
}

TEST(TamArchitecture, Accessors) {
  TamArchitecture arch;
  arch.widths = {8, 16};
  EXPECT_EQ(arch.tam_count(), 2);
  EXPECT_EQ(arch.total_width(), 24);
}

}  // namespace
}  // namespace wtam::core
