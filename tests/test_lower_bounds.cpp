#include <gtest/gtest.h>

#include "core/co_optimizer.hpp"
#include "core/exhaustive.hpp"
#include "core/lower_bounds.hpp"
#include "core/test_time_table.hpp"
#include "soc/benchmarks.hpp"

namespace wtam::core {
namespace {

TEST(LowerBounds, BoundsNeverExceedExhaustiveOptimum) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 32);
  for (int w : {8, 16, 24, 32}) {
    const auto bounds = testing_time_lower_bounds(table, w);
    const auto exact = exhaustive_pnpaw(table, w, 3, {});
    ASSERT_TRUE(exact.completed);
    EXPECT_LE(bounds.combined(), exact.best.testing_time) << "W=" << w;
  }
}

TEST(LowerBounds, P31108PlateauIsTheBottleneckBound) {
  const soc::Soc soc = soc::p31108();
  const TestTimeTable table(soc, 64);
  const auto bounds = testing_time_lower_bounds(table, 64);
  EXPECT_EQ(bounds.bottleneck_core, 544579);
  EXPECT_EQ(bounds.bottleneck_core_index, 17);  // Core 18
  // And the optimizer provably attains it: gap == 0.
  CoOptimizeOptions options;
  options.search.max_tams = 6;
  const auto result = co_optimize(table, 64, options);
  EXPECT_DOUBLE_EQ(
      optimality_gap(bounds, result.architecture.testing_time), 0.0);
}

TEST(LowerBounds, VolumeBoundDominatesAtSmallWidths) {
  // At small W the volume bound is the binding one for work-heavy SOCs.
  const soc::Soc soc = soc::p93791();
  const TestTimeTable table(soc, 64);
  const auto narrow = testing_time_lower_bounds(table, 16);
  EXPECT_GT(narrow.volume, narrow.bottleneck_core);
}

TEST(LowerBounds, BottleneckMatchesTableColumn) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 24);
  const auto bounds = testing_time_lower_bounds(table, 24);
  std::int64_t expected = 0;
  for (int i = 0; i < table.core_count(); ++i)
    expected = std::max(expected, table.time(i, 24));
  EXPECT_EQ(bounds.bottleneck_core, expected);
}

TEST(LowerBounds, MonotoneNonIncreasingInWidth) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 48);
  std::int64_t previous = std::numeric_limits<std::int64_t>::max();
  for (int w = 4; w <= 48; w += 4) {
    const auto bounds = testing_time_lower_bounds(table, w);
    EXPECT_LE(bounds.combined(), previous) << "W=" << w;
    previous = bounds.combined();
  }
}

TEST(LowerBounds, GapComputation) {
  LowerBounds bounds;
  bounds.bottleneck_core = 100;
  bounds.volume = 80;
  EXPECT_DOUBLE_EQ(optimality_gap(bounds, 110), 0.10);
  EXPECT_DOUBLE_EQ(optimality_gap(bounds, 100), 0.0);
}

TEST(LowerBounds, RejectsBadArguments) {
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 16);
  EXPECT_THROW((void)testing_time_lower_bounds(table, 0), std::invalid_argument);
  EXPECT_THROW((void)testing_time_lower_bounds(table, 17), std::invalid_argument);
  LowerBounds zero;
  EXPECT_THROW((void)optimality_gap(zero, 10), std::invalid_argument);
}

TEST(LowerBounds, D695GapIsSmallAtModerateWidths) {
  // The co-optimizer should land within ~25% of the information-theoretic
  // bound on d695 (the bound itself is not tight).
  const soc::Soc soc = soc::d695();
  const TestTimeTable table(soc, 48);
  CoOptimizeOptions options;
  options.search.max_tams = 8;
  const auto result = co_optimize(table, 48, options);
  const auto bounds = testing_time_lower_bounds(table, 48);
  EXPECT_LT(optimality_gap(bounds, result.architecture.testing_time), 0.40);
}

}  // namespace
}  // namespace wtam::core
