// Cache persistence contract: exact payload codec, atomic save, warm
// boot (a reloaded cache serves a repeat sweep entirely from hits, byte
// for byte), version-strict headers, and torn-tail salvage.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/cache_store.hpp"
#include "api/job_io.hpp"
#include "api/result_cache.hpp"
#include "api/solver.hpp"
#include "common/hash.hpp"

namespace wtam::api {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "wtam_cache_persist_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(out)) << path;
}

/// A fully-populated solve (schedule, architecture, details) so the
/// codec round-trip exercises every field.
CachedSolve full_solve(int seed) {
  CachedSolve solve;
  solve.lower_bound = 1000 + seed;
  solve.schedule_valid = (seed % 2) == 0;
  solve.outcome.backend = "enumerative";
  solve.outcome.testing_time = 40000 + seed * 7;
  solve.outcome.cpu_s = 0.25 + seed * 0.125;
  solve.outcome.interrupt = core::SolveInterrupt::None;
  solve.outcome.schedule.total_width = 32;
  solve.outcome.schedule.makespan = 40000 + seed * 7;
  for (int i = 0; i < 3 + seed % 3; ++i)
    solve.outcome.schedule.placements.push_back(
        {i, 8, i * 8, i * 100, i * 100 + 900 + seed});
  core::TamArchitecture arch;
  arch.widths = {16, 8, 8};
  arch.assignment = {0, 1, 2, 0, 1};
  arch.tam_times = {30000, 20000 + seed, 10000};
  arch.testing_time = 40000 + seed * 7;
  solve.outcome.architecture = arch;
  solve.outcome.details.emplace_back("tams", "3");
  solve.outcome.details.emplace_back("note", "seed=" + std::to_string(seed));
  return solve;
}

RequestKey key_of(int width) {
  RequestKey key;
  key.soc_hash = common::stable_hash_128("persist-test-soc");
  key.width = width;
  key.backend = "enumerative";
  key.options = "max_tams=10,min_tams=1,run_final_step=1";
  return key;
}

TEST(CacheStore, PayloadCodecRoundTripsEveryField) {
  for (int seed = 0; seed < 4; ++seed) {
    const CachedSolve original = full_solve(seed);
    const std::string payload = encode_cached_solve(original);
    const CachedSolve decoded = decode_cached_solve(payload);

    EXPECT_EQ(decoded.lower_bound, original.lower_bound);
    EXPECT_EQ(decoded.schedule_valid, original.schedule_valid);
    EXPECT_EQ(decoded.outcome.backend, original.outcome.backend);
    EXPECT_EQ(decoded.outcome.testing_time, original.outcome.testing_time);
    EXPECT_EQ(decoded.outcome.cpu_s, original.outcome.cpu_s);
    EXPECT_EQ(decoded.outcome.interrupt, original.outcome.interrupt);
    EXPECT_EQ(decoded.outcome.schedule.total_width,
              original.outcome.schedule.total_width);
    EXPECT_EQ(decoded.outcome.schedule.makespan,
              original.outcome.schedule.makespan);
    ASSERT_EQ(decoded.outcome.schedule.placements.size(),
              original.outcome.schedule.placements.size());
    for (std::size_t i = 0; i < decoded.outcome.schedule.placements.size();
         ++i) {
      const auto& a = decoded.outcome.schedule.placements[i];
      const auto& b = original.outcome.schedule.placements[i];
      EXPECT_EQ(a.core, b.core);
      EXPECT_EQ(a.width, b.width);
      EXPECT_EQ(a.wire, b.wire);
      EXPECT_EQ(a.start, b.start);
      EXPECT_EQ(a.end, b.end);
    }
    ASSERT_TRUE(decoded.outcome.architecture.has_value());
    EXPECT_EQ(decoded.outcome.architecture->widths,
              original.outcome.architecture->widths);
    EXPECT_EQ(decoded.outcome.architecture->assignment,
              original.outcome.architecture->assignment);
    EXPECT_EQ(decoded.outcome.architecture->tam_times,
              original.outcome.architecture->tam_times);
    EXPECT_EQ(decoded.outcome.architecture->testing_time,
              original.outcome.architecture->testing_time);
    EXPECT_EQ(decoded.outcome.details, original.outcome.details);

    // Exact codec: re-encoding reproduces the payload byte for byte.
    EXPECT_EQ(encode_cached_solve(decoded), payload);
  }
}

TEST(CacheStore, PayloadDecoderRejectsCorruptBytes) {
  CachedSolve no_arch = full_solve(1);
  no_arch.outcome.architecture.reset();
  for (const CachedSolve& solve : {full_solve(0), no_arch}) {
    const std::string payload = encode_cached_solve(solve);
    // Truncation at any prefix must throw, never read out of range.
    for (std::size_t cut = 0; cut < payload.size(); ++cut)
      EXPECT_THROW((void)decode_cached_solve(payload.substr(0, cut)),
                   std::runtime_error)
          << "cut at " << cut;
    // Trailing garbage is a malformed record, not silently ignored.
    EXPECT_THROW((void)decode_cached_solve(payload + "x"), std::runtime_error);
  }
}

TEST(CacheStore, SaveLoadSaveIsByteIdentical) {
  ResultCache cache;
  for (int w = 8; w < 24; ++w) cache.insert(key_of(w), full_solve(w));

  const std::string first_path = temp_path("first.snapshot");
  const CacheSaveStats saved = save_cache_file(cache, first_path);
  EXPECT_EQ(saved.entries, 16u);
  EXPECT_EQ(saved.bytes, read_file(first_path).size());

  ResultCache reloaded;
  const CacheLoadStats loaded = load_cache_file(reloaded, first_path);
  EXPECT_TRUE(loaded.found);
  EXPECT_TRUE(loaded.clean_tail);
  EXPECT_EQ(loaded.entries_loaded, 16u);
  EXPECT_EQ(loaded.entries_rejected, 0u);

  const std::string second_path = temp_path("second.snapshot");
  (void)save_cache_file(reloaded, second_path);
  EXPECT_EQ(read_file(first_path), read_file(second_path));
}

TEST(CacheStore, MissingFileIsAFreshBoot) {
  ResultCache cache;
  const CacheLoadStats stats =
      load_cache_file(cache, temp_path("never-written.snapshot"));
  EXPECT_FALSE(stats.found);
  EXPECT_EQ(stats.entries_loaded, 0u);
  EXPECT_TRUE(stats.clean_tail);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(CacheStore, ForeignOrFutureVersionHeaderThrows) {
  const std::string path = temp_path("foreign.snapshot");
  ResultCache cache;
  const std::vector<std::string> foreign = {
      "WTAMCACHE9\nrecords-from-the-future", "{\"not\": \"a cache\"}",
      "short"};
  for (const std::string& bytes : foreign) {
    write_file(path, bytes);
    EXPECT_THROW((void)load_cache_file(cache, path), std::runtime_error)
        << "accepted header of: " << bytes;
  }
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(CacheStore, TornTailsSalvageTheValidPrefix) {
  ResultCache cache;
  constexpr int kEntries = 5;
  for (int w = 1; w <= kEntries; ++w) cache.insert(key_of(w), full_solve(w));
  const std::string path = temp_path("torn.snapshot");
  (void)save_cache_file(cache, path);
  const std::string blob = read_file(path);

  // Recover the record boundaries by walking the framing: after the
  // 11-byte magic, each record is [u32 klen][key][u32 plen][payload][u64].
  const auto u32_at = [&blob](std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(blob[at + static_cast<std::size_t>(i)]))
           << (8 * i);
    return v;
  };
  std::vector<std::size_t> boundaries{11};  // end of magic = record 0 start
  while (boundaries.back() < blob.size()) {
    std::size_t at = boundaries.back();
    const std::uint32_t klen = u32_at(at);
    at += 4 + klen;
    const std::uint32_t plen = u32_at(at);
    at += 4 + plen + 8;
    boundaries.push_back(at);
  }
  ASSERT_EQ(boundaries.size(), static_cast<std::size_t>(kEntries) + 1);
  ASSERT_EQ(boundaries.back(), blob.size());

  const std::string torn_path = temp_path("torn-cut.snapshot");
  for (std::size_t record = 0; record < boundaries.size(); ++record) {
    const std::size_t boundary = boundaries[record];
    // Cut exactly at the boundary (clean), and a few bytes either side
    // (torn): the loader must salvage every record before the cut.
    for (const std::ptrdiff_t delta : {-3, -1, 0, +1, +3}) {
      const std::ptrdiff_t position =
          static_cast<std::ptrdiff_t>(boundary) + delta;
      if (position < 11 ||
          position > static_cast<std::ptrdiff_t>(blob.size()))
        continue;
      const auto cut = static_cast<std::size_t>(position);
      write_file(torn_path, blob.substr(0, cut));

      ResultCache salvage;
      const CacheLoadStats stats = load_cache_file(salvage, torn_path);
      EXPECT_TRUE(stats.found);
      // Every record that ends at or before the cut survives; anything
      // after is the (possibly empty) torn tail.
      std::size_t complete = 0;
      for (std::size_t k = 1; k < boundaries.size(); ++k)
        if (boundaries[k] <= cut) ++complete;
      const bool on_boundary =
          std::find(boundaries.begin(), boundaries.end(), cut) !=
          boundaries.end();
      EXPECT_EQ(stats.entries_loaded, complete)
          << "cut at " << cut << " (boundary " << boundary << " delta "
          << delta << ")";
      EXPECT_EQ(stats.entries_rejected, 0u);
      EXPECT_EQ(stats.clean_tail, on_boundary) << "cut at " << cut;
      EXPECT_EQ(salvage.stats().entries, complete);
    }
  }
}

TEST(CacheStore, ChecksumCleanButUndecodableRecordIsSkipped) {
  // Hand-build a snapshot: good record, checksummed-garbage record,
  // good record. The middle one must be rejected without poisoning the
  // rest of the file (its framing is intact).
  const auto put_u32 = [](std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  };
  const auto put_u64 = [](std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  };
  const auto append_record = [&](std::string& out, const std::string& key,
                                 const std::string& payload) {
    put_u32(out, static_cast<std::uint32_t>(key.size()));
    out += key;
    put_u32(out, static_cast<std::uint32_t>(payload.size()));
    out += payload;
    put_u64(out, common::stable_hash_128(key + payload).word());
  };

  std::string blob = "WTAMCACHE1\n";
  append_record(blob, key_of(1).to_string(),
                encode_cached_solve(full_solve(1)));
  append_record(blob, key_of(2).to_string(), "garbage-payload");
  append_record(blob, key_of(3).to_string(),
                encode_cached_solve(full_solve(3)));

  const std::string path = temp_path("skew.snapshot");
  write_file(path, blob);
  ResultCache cache;
  const CacheLoadStats stats = load_cache_file(cache, path);
  EXPECT_EQ(stats.entries_loaded, 2u);
  EXPECT_EQ(stats.entries_rejected, 1u);
  EXPECT_TRUE(stats.clean_tail);
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(2)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(3)).has_value());
}

TEST(CacheStore, WarmBootServesARepeatSweepEntirelyFromHits) {
  // The acceptance scenario in miniature: run a d695 width sweep cold,
  // snapshot the cache, boot a fresh solver from the snapshot, re-run
  // the identical sweep — every width must hit, and the result JSON
  // must be byte-identical to the cold run.
  SolveRequest sweep;
  sweep.id = "warm-boot";
  sweep.soc = "d695";
  sweep.width = 10;
  sweep.width_max = 23;  // 14 widths
  sweep.backend = "rectpack";
  sweep.options.rectpack.local_search_iterations = 8;  // keep the test fast

  ResultsWriteOptions json_options;  // no timing: byte-stable output

  const auto cold_cache = std::make_shared<ResultCache>();
  std::string cold_json;
  {
    const Solver solver(SolverOptions::with_threads(1, cold_cache));
    const SolveResult cold = solver.solve(sweep);
    ASSERT_EQ(cold.status, Status::Ok);
    EXPECT_EQ(cold.cache, CacheOutcome::Miss);
    cold_json = result_to_json(cold, json_options).dump_compact_string();
  }
  const ResultCacheStats cold_stats = cold_cache->stats();
  EXPECT_EQ(cold_stats.insertions, 14u);

  const std::string path = temp_path("warm-boot.snapshot");
  const CacheSaveStats saved = save_cache_file(*cold_cache, path);
  EXPECT_EQ(saved.entries, 14u);

  const auto warm_cache = std::make_shared<ResultCache>();
  const CacheLoadStats loaded = load_cache_file(*warm_cache, path);
  ASSERT_TRUE(loaded.clean_tail);
  ASSERT_EQ(loaded.entries_loaded, 14u);
  warm_cache->reset_stats();  // count only the warm sweep below

  const Solver warm_solver(SolverOptions::with_threads(1, warm_cache));
  const SolveResult warm = warm_solver.solve(sweep);
  ASSERT_EQ(warm.status, Status::Ok);
  EXPECT_EQ(warm.cache, CacheOutcome::Hit);
  EXPECT_EQ(result_to_json(warm, json_options).dump_compact_string(),
            cold_json);

  const ResultCacheStats warm_stats = warm_cache->stats();
  EXPECT_EQ(warm_stats.hits, 14u);
  EXPECT_EQ(warm_stats.misses, 0u);
  EXPECT_EQ(warm_stats.insertions, 0u);  // reset after load; no new solves
  EXPECT_EQ(warm_stats.entries, 14u);
}

}  // namespace
}  // namespace wtam::api
