#include <gtest/gtest.h>

#include <stdexcept>

#include <sys/wait.h>

#include "common/subprocess.hpp"

namespace wtam::common {
namespace {

TEST(Subprocess, EchoRoundTripAndCleanExit) {
  Subprocess cat({"/bin/cat"});
  EXPECT_TRUE(cat.running());
  EXPECT_GT(cat.pid(), 0);

  EXPECT_TRUE(cat.write_line("hello"));
  EXPECT_TRUE(cat.write_line("world"));
  const auto first = cat.read_line();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "hello");
  const auto second = cat.read_line();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, "world");

  // EOF on stdin: cat drains and exits 0; our read side sees EOF.
  cat.close_stdin();
  EXPECT_FALSE(cat.read_line().has_value());
  const int status = cat.wait();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_FALSE(cat.running());
}

TEST(Subprocess, MissingBinaryThrows) {
  EXPECT_THROW(Subprocess({"/definitely/not/a/binary"}), std::runtime_error);
}

TEST(Subprocess, EmptyArgvThrows) {
  EXPECT_THROW(Subprocess({}), std::invalid_argument);
}

TEST(Subprocess, KillSurfacesAsEof) {
  Subprocess cat({"/bin/cat"});
  cat.kill();
  // The reader observes the death as EOF, not a hang or a signal.
  EXPECT_FALSE(cat.read_line().has_value());
  const int status = cat.wait();
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  EXPECT_FALSE(cat.running());
}

TEST(Subprocess, WriteToDeadChildFailsInsteadOfSignaling) {
  Subprocess child({"/bin/sh", "-c", "exit 0"});
  (void)child.wait();
  // The pipe's read end is gone: the write reports failure (EPIPE is
  // ignored process-wide), it must not kill this test with SIGPIPE.
  EXPECT_FALSE(child.write_line("anyone there?"));
  EXPECT_FALSE(child.write_line("still no"));
}

TEST(Subprocess, UnterminatedFinalLineIsReturned) {
  Subprocess child({"/bin/sh", "-c", "printf 'no-newline'"});
  const auto line = child.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "no-newline");
  EXPECT_FALSE(child.read_line().has_value());
}

TEST(Subprocess, CloseStdinIsIdempotent) {
  Subprocess cat({"/bin/cat"});
  cat.close_stdin();
  cat.close_stdin();
  EXPECT_FALSE(cat.write_line("after close"));
  EXPECT_FALSE(cat.read_line().has_value());
}

}  // namespace
}  // namespace wtam::common
