// End-to-end checks on the synthetic Philips SOCs. Absolute testing times
// are not comparable to the paper (the SOCs are reconstructions; see
// DESIGN.md §3), but the documented *shapes* are:
//   * p31108 plateaus at exactly 544579 cycles from W=40 / B>=3 onward,
//     bottlenecked by Core 18 (Tables 11-13);
//   * p21241 keeps improving with more TAMs (B up to 5-6 at W=56) —
//     Table 7's headline;
//   * testing times sit on the paper's cycle scale for all three SOCs.

#include <gtest/gtest.h>

#include "core/co_optimizer.hpp"
#include "core/exhaustive.hpp"
#include "core/test_time_table.hpp"
#include "soc/benchmarks.hpp"

namespace wtam::core {
namespace {

constexpr std::int64_t kP31108Floor = 544579;

TEST(P31108, PlateauAt544579FromWidth40) {
  const soc::Soc soc = soc::p31108();
  const TestTimeTable table(soc, 64);
  CoOptimizeOptions options;
  options.search.max_tams = 6;
  for (int w : {40, 48, 56, 64}) {
    const auto result = co_optimize(table, w, options);
    EXPECT_EQ(result.architecture.testing_time, kP31108Floor) << "W=" << w;
  }
}

TEST(P31108, AboveFloorBelowWidth40) {
  const soc::Soc soc = soc::p31108();
  const TestTimeTable table(soc, 32);
  CoOptimizeOptions options;
  options.search.max_tams = 6;
  for (int w : {16, 24, 32}) {
    const auto result = co_optimize(table, w, options);
    EXPECT_GT(result.architecture.testing_time, kP31108Floor) << "W=" << w;
  }
}

TEST(P31108, FloorIsCore18MinTime) {
  const soc::Soc soc = soc::p31108();
  EXPECT_EQ(soc::min_test_time_bound(soc.cores[17]), kP31108Floor);
  // No architecture can beat the floor whatever the width.
  const TestTimeTable table(soc, 64);
  const auto result = co_optimize(table, 64, {});
  EXPECT_GE(result.architecture.testing_time, kP31108Floor);
}

TEST(P31108, Core18AloneOnItsTamAtThePlateau) {
  // Paper §4.3: at the plateau Core 18 sits on a TAM of >= 10 bits with no
  // other core assigned to it.
  const soc::Soc soc = soc::p31108();
  const TestTimeTable table(soc, 64);
  CoOptimizeOptions options;
  options.search.max_tams = 6;
  const auto result = co_optimize(table, 48, options);
  ASSERT_EQ(result.architecture.testing_time, kP31108Floor);
  const int tam18 = result.architecture.assignment[17];
  EXPECT_GE(result.architecture.widths[static_cast<std::size_t>(tam18)], 10);
  for (int i = 0; i < soc.core_count(); ++i) {
    if (i == 17) continue;
    EXPECT_NE(result.architecture.assignment[static_cast<std::size_t>(i)], tam18)
        << "core " << i << " shares Core 18's TAM";
  }
}

TEST(P31108, TestingTimesOnPaperScale) {
  // Paper Table 10 (B=2): 1080940 @ W=16 down to 700939 @ W=64.
  const soc::Soc soc = soc::p31108();
  const TestTimeTable table(soc, 64);
  const auto at16 = co_optimize_fixed_b(table, 16, 2, {});
  EXPECT_GT(at16.architecture.testing_time, 600'000);
  EXPECT_LT(at16.architecture.testing_time, 2'000'000);
}

TEST(P21241, MoreTamsKeepHelping) {
  // Table 7: at W=56 the best architecture uses 5-6 TAMs and is ~40%
  // faster than the best B<=2 result.
  const soc::Soc soc = soc::p21241();
  const TestTimeTable table(soc, 56);
  CoOptimizeOptions wide;
  wide.search.max_tams = 8;
  const auto free_b = co_optimize(table, 56, wide);
  const auto two = co_optimize_fixed_b(table, 56, 2, {});
  EXPECT_GE(free_b.heuristic.best_tams, 4);
  EXPECT_LT(static_cast<double>(free_b.architecture.testing_time),
            0.75 * static_cast<double>(two.architecture.testing_time));
}

TEST(P21241, HeuristicRunsInSeconds) {
  // §3.1: "upto ten TAMs within a few minutes" on a 333 MHz machine; ours
  // must be far faster even at B <= 10.
  const soc::Soc soc = soc::p21241();
  const TestTimeTable table(soc, 40);
  CoOptimizeOptions options;
  options.search.max_tams = 10;
  options.run_final_step = false;
  const auto result = co_optimize(table, 40, options);
  // Sanitizer builds pay an order-of-magnitude slowdown, so the
  // wall-clock assertion is skipped there (as in test_integration_d695).
#if !defined(WTAM_UNDER_SANITIZERS)
  EXPECT_LT(result.heuristic_cpu_s, 30.0);
#endif
  EXPECT_GT(result.heuristic.per_b.size(), 8u);
}

TEST(P93791, TwoAndThreeTamResultsOnPaperScale) {
  // Tables 16/18: 1.95M..0.47M cycles over W=16..64.
  const soc::Soc soc = soc::p93791();
  const TestTimeTable table(soc, 64);
  const auto at16 = co_optimize_fixed_b(table, 16, 2, {});
  EXPECT_GT(at16.architecture.testing_time, 1'000'000);
  EXPECT_LT(at16.architecture.testing_time, 3'000'000);
  const auto at64 = co_optimize_fixed_b(table, 64, 3, {});
  EXPECT_GT(at64.architecture.testing_time, 300'000);
  EXPECT_LT(at64.architecture.testing_time, 700'000);
  EXPECT_LT(at64.architecture.testing_time, at16.architecture.testing_time);
}

TEST(P93791, ExhaustiveBeatsOrMatchesHeuristicWhereFeasible) {
  const soc::Soc soc = soc::p93791();
  const TestTimeTable table(soc, 24);
  const auto exact = exhaustive_paw(table, 24, 2, {});
  ASSERT_TRUE(exact.completed);
  const auto heuristic = co_optimize_fixed_b(table, 24, 2, {});
  EXPECT_LE(exact.best.testing_time, heuristic.architecture.testing_time);
}

TEST(AllPhilipsSocs, FinalStepImprovesOrMatchesHeuristic) {
  for (const soc::Soc& soc : {soc::p21241(), soc::p31108(), soc::p93791()}) {
    const TestTimeTable table(soc, 32);
    const auto result = co_optimize(table, 32, {});
    EXPECT_LE(result.architecture.testing_time,
              result.heuristic.best.testing_time)
        << soc.name;
  }
}

}  // namespace
}  // namespace wtam::core
