// Small integer helpers shared across modules.

#pragma once

#include <cstdint>
#include <stdexcept>

namespace wtam::common {

/// ceil(a / b) for non-negative a and positive b.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  if (b <= 0) throw std::invalid_argument("ceil_div: divisor must be positive");
  if (a < 0) throw std::invalid_argument("ceil_div: dividend must be non-negative");
  return (a + b - 1) / b;
}

/// Saturating check that a fits into int; SOC dimensions are small, so any
/// overflow here indicates corrupted input rather than a legitimate design.
[[nodiscard]] constexpr int narrow_to_int(std::int64_t value) {
  if (value < INT32_MIN || value > INT32_MAX)
    throw std::overflow_error("narrow_to_int: value out of int range");
  return static_cast<int>(value);
}

}  // namespace wtam::common
