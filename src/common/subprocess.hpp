// Line-oriented child-process transport (the router's worker channel).
//
// A Subprocess is one spawned child with its stdin/stdout connected to
// the parent over pipes, wrapped for the NDJSON protocols this repo
// speaks: the parent writes request lines and reads response lines, and
// the child's exit is observable without blocking. This is the ONLY
// place in the tree allowed to call fork/exec (tools/wtam_lint.py
// enforces it): process spawning concentrates the signal handling,
// fd hygiene, and reaping subtleties that scattered popen() calls get
// wrong — stderr passes through to the parent's stderr so worker
// diagnostics stay visible.
//
// Concurrency contract (matches the router's one-writer/one-reader
// shape):
//   * write_line is safe from any thread (serialized by an internal
//     mutex; EINTR-retried; SIGPIPE is ignored process-wide the first
//     time a Subprocess is constructed, so a dead child yields a false
//     return, not a signal);
//   * read_line must be called by at most ONE thread at a time — it is
//     the reader thread's blocking loop; the buffer is deliberately
//     unsynchronized;
//   * running()/kill()/wait() are safe from any thread (child state is
//     mutex-guarded; waitpid is only ever called under that mutex, so
//     the pid is reaped exactly once).
//
// Spawn failures (missing binary, not executable) are detected reliably
// via a CLOEXEC status pipe — the constructor throws std::runtime_error
// with the child's errno text instead of leaving a zombie that dies on
// its first read.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <sys/types.h>
#include <vector>

#include "common/thread_annotations.hpp"

namespace wtam::common {

class Subprocess {
 public:
  /// Spawns `argv` (argv[0] = binary path, resolved via PATH) with
  /// stdin/stdout piped to this object. Throws std::invalid_argument on
  /// an empty argv and std::runtime_error when the pipes, fork, or exec
  /// fail.
  explicit Subprocess(std::vector<std::string> argv);

  /// Kills (SIGKILL) a still-running child, closes the pipes, reaps.
  ~Subprocess();

  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// Writes `line` plus a trailing newline atomically with respect to
  /// other write_line calls. Returns false when the child's stdin is
  /// gone (child exited or close_stdin() was called) — the caller
  /// decides whether that is a crash (router: respawn) or a shutdown.
  bool write_line(std::string_view line);

  /// Blocking read of the next newline-terminated line (the newline is
  /// stripped; a final unterminated line is returned as-is). nullopt on
  /// EOF — the child closed stdout, almost always by exiting. Single
  /// reader only; see the concurrency contract above.
  [[nodiscard]] std::optional<std::string> read_line();

  /// Closes the child's stdin — the NDJSON idiom for "no more requests"
  /// (wtam_serve treats EOF as drain-and-exit). Idempotent.
  void close_stdin();

  /// True while the child has neither exited nor been reaped. Non-
  /// blocking (WNOHANG); a child observed dead stays dead.
  [[nodiscard]] bool running();

  /// SIGKILLs the child if it still runs (no-op afterwards). The reader
  /// thread sees EOF shortly after.
  void kill();

  /// Blocks until the child exits and returns its raw waitpid status
  /// (use WIFEXITED/WEXITSTATUS). Idempotent: later calls return the
  /// recorded status.
  int wait();

  [[nodiscard]] pid_t pid() const noexcept { return pid_; }

 private:
  /// waitpid under state_mutex_; `block` chooses WNOHANG or not.
  void reap_locked(bool block) WTAM_REQUIRES(state_mutex_);

  pid_t pid_ = -1;

  Mutex write_mutex_;
  int stdin_fd_ WTAM_GUARDED_BY(write_mutex_) = -1;

  // Reader-thread-only state (single reader by contract, so no lock).
  int stdout_fd_ = -1;
  std::string read_buffer_;
  bool saw_eof_ = false;

  mutable Mutex state_mutex_;
  bool reaped_ WTAM_GUARDED_BY(state_mutex_) = false;
  int exit_status_ WTAM_GUARDED_BY(state_mutex_) = 0;
};

}  // namespace wtam::common
