// Deterministic pseudo-random number generation for workload synthesis.
//
// The synthetic Philips SOCs (p21241/p31108/p93791) must be bit-identical
// across runs and platforms, so we ship our own generator instead of
// relying on implementation-defined std::default_random_engine or the
// unspecified rounding of std::uniform_int_distribution.

#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace wtam::common {

/// splitmix64: used to expand a single seed into a full xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
  [[nodiscard]] constexpr std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return lo + static_cast<std::int64_t>(draw % span);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] constexpr double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Log-uniform value in [lo, hi]; lo must be > 0. Used for pattern
  /// counts, which span several decades in the published range tables.
  [[nodiscard]] double log_uniform(double lo, double hi) {
    if (lo <= 0.0 || hi < lo)
      throw std::invalid_argument("Rng::log_uniform: need 0 < lo <= hi");
    const double log_lo = std::log(lo);
    const double log_hi = std::log(hi);
    return std::exp(log_lo + (log_hi - log_lo) * uniform01());
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace wtam::common
