#include "common/subprocess.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

namespace wtam::common {

namespace {

/// A dead child's pipe must surface as a failed write, not a fatal
/// SIGPIPE — done once, process-wide, before the first spawn.
void ignore_sigpipe_once() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

[[noreturn]] void throw_errno(const std::string& what, int error) {
  throw std::runtime_error("Subprocess: " + what + ": " +
                           std::strerror(error));
}

}  // namespace

Subprocess::Subprocess(std::vector<std::string> argv) {
  if (argv.empty())
    throw std::invalid_argument("Subprocess: empty argv");
  ignore_sigpipe_once();

  int to_child[2] = {-1, -1};    // parent writes [1] -> child stdin [0]
  int from_child[2] = {-1, -1};  // child stdout [1] -> parent reads [0]
  // Exec status channel: CLOEXEC, so a successful exec closes it silently
  // and a failed exec reports the child's errno — the only reliable way
  // to turn "no such binary" into a constructor exception.
  int status_pipe[2] = {-1, -1};
  if (::pipe(to_child) != 0) throw_errno("pipe(stdin)", errno);
  if (::pipe(from_child) != 0) {
    close_quietly(to_child[0]);
    close_quietly(to_child[1]);
    throw_errno("pipe(stdout)", errno);
  }
  if (::pipe(status_pipe) != 0 ||
      ::fcntl(status_pipe[0], F_SETFD, FD_CLOEXEC) != 0 ||
      ::fcntl(status_pipe[1], F_SETFD, FD_CLOEXEC) != 0) {
    const int error = errno;
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1], status_pipe[0], status_pipe[1]})
      close_quietly(fd);
    throw_errno("pipe(status)", error);
  }

  const pid_t child = ::fork();
  if (child < 0) {
    const int error = errno;
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1], status_pipe[0], status_pipe[1]})
      close_quietly(fd);
    throw_errno("fork", error);
  }

  if (child == 0) {
    // Child: wire the pipes to stdin/stdout, restore default SIGPIPE
    // (the parent's SIG_IGN would leak through exec), and become argv.
    ::signal(SIGPIPE, SIG_DFL);
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    for (const int fd :
         {to_child[0], to_child[1], from_child[0], from_child[1],
          status_pipe[0]})
      close_quietly(fd);
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (std::string& arg : argv) args.push_back(arg.data());
    args.push_back(nullptr);
    ::execvp(args[0], args.data());
    // Exec failed: ship errno to the parent and die without running any
    // of the parent's atexit machinery.
    const int error = errno;
    ssize_t ignored = ::write(status_pipe[1], &error, sizeof(error));
    (void)ignored;
    ::_exit(127);
  }

  // Parent.
  pid_ = child;
  close_quietly(to_child[0]);
  close_quietly(from_child[1]);
  close_quietly(status_pipe[1]);
  {
    const MutexLock lock(write_mutex_);
    stdin_fd_ = to_child[1];
  }
  stdout_fd_ = from_child[0];

  int exec_errno = 0;
  ssize_t n = 0;
  do {
    n = ::read(status_pipe[0], &exec_errno, sizeof(exec_errno));
  } while (n < 0 && errno == EINTR);
  close_quietly(status_pipe[0]);
  if (n > 0) {
    // Exec failed; the child already _exit(127)ed. Reap and throw.
    {
      const MutexLock lock(state_mutex_);
      reap_locked(true);
    }
    close_stdin();
    close_quietly(stdout_fd_);
    stdout_fd_ = -1;
    throw_errno("exec " + argv[0], exec_errno);
  }
}

Subprocess::~Subprocess() {
  {
    const MutexLock lock(state_mutex_);
    if (!reaped_) {
      ::kill(pid_, SIGKILL);
      reap_locked(true);
    }
  }
  close_stdin();
  close_quietly(stdout_fd_);
}

bool Subprocess::write_line(std::string_view line) {
  std::string buffer;
  buffer.reserve(line.size() + 1);
  buffer.append(line);
  buffer.push_back('\n');

  const MutexLock lock(write_mutex_);
  if (stdin_fd_ < 0) return false;
  std::size_t written = 0;
  while (written < buffer.size()) {
    const ssize_t n = ::write(stdin_fd_, buffer.data() + written,
                              buffer.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      // EPIPE (child died) or a real I/O error: this channel is done.
      ::close(stdin_fd_);
      stdin_fd_ = -1;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> Subprocess::read_line() {
  for (;;) {
    const std::size_t newline = read_buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = read_buffer_.substr(0, newline);
      read_buffer_.erase(0, newline + 1);
      return line;
    }
    if (saw_eof_ || stdout_fd_ < 0) {
      if (read_buffer_.empty()) return std::nullopt;
      std::string line = std::move(read_buffer_);
      read_buffer_.clear();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::read(stdout_fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      saw_eof_ = true;  // undifferentiated I/O error: treat as EOF
      continue;
    }
    if (n == 0) {
      saw_eof_ = true;
      continue;
    }
    read_buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void Subprocess::close_stdin() {
  const MutexLock lock(write_mutex_);
  if (stdin_fd_ >= 0) {
    ::close(stdin_fd_);
    stdin_fd_ = -1;
  }
}

bool Subprocess::running() {
  const MutexLock lock(state_mutex_);
  if (!reaped_) reap_locked(false);
  return !reaped_;
}

void Subprocess::kill() {
  const MutexLock lock(state_mutex_);
  if (!reaped_) ::kill(pid_, SIGKILL);
}

int Subprocess::wait() {
  const MutexLock lock(state_mutex_);
  if (!reaped_) reap_locked(true);
  return exit_status_;
}

void Subprocess::reap_locked(bool block) {
  int status = 0;
  pid_t result = 0;
  do {
    result = ::waitpid(pid_, &status, block ? 0 : WNOHANG);
  } while (result < 0 && errno == EINTR);
  if (result == pid_) {
    reaped_ = true;
    exit_status_ = status;
  }
}

}  // namespace wtam::common
