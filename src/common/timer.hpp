// Wall-clock stopwatch used for all reported CPU-time columns.

#pragma once

#include <chrono>

namespace wtam::common {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  /// Elapsed time since construction/restart, in seconds.
  [[nodiscard]] double elapsed_s() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept { return elapsed_s() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wtam::common
