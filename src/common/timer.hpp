// Wall-clock stopwatch used for all reported CPU-time columns, plus the
// one place raw steady_clock reads are allowed to live: wtam_lint's
// raw-clock-now rule bans std::chrono::*_clock::now() everywhere else so
// all timing flows through this instrumented path (steady_now() for
// deadline arithmetic, Stopwatch/ScopedTimer for durations).

#pragma once

#include <chrono>
#include <cstdint>

namespace wtam::common {

/// The single sanctioned "what time is it" read. Steady (monotonic) by
/// construction — wall-clock dates never enter the library.
[[nodiscard]] inline std::chrono::steady_clock::time_point
steady_now() noexcept {
  return std::chrono::steady_clock::now();
}

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  /// Elapsed time since construction/restart, in seconds.
  [[nodiscard]] double elapsed_s() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept { return elapsed_s() * 1e3; }

  /// Elapsed time in integer nanoseconds — the unit the obs histograms
  /// record in.
  [[nodiscard]] std::int64_t elapsed_ns() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII timer that records its lifetime into a histogram on destruction.
/// Histogram is any type with record_ns(std::int64_t) — a template so
/// common/ stays independent of obs/ (obs::Histogram is the intended
/// instantiation). A null histogram disables recording; elapsed_s()/
/// elapsed_ns() still work, which lets existing cpu_s call sites route
/// their one Stopwatch through the instrumented path:
///
///   common::ScopedTimer<obs::Histogram> timer(&histogram);
///   ...
///   out.cpu_s = timer.elapsed_s();   // recorded into `histogram` on scope exit
template <typename Histogram>
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) noexcept
      : histogram_(histogram) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->record_ns(watch_.elapsed_ns());
  }

  [[nodiscard]] double elapsed_s() const noexcept { return watch_.elapsed_s(); }
  [[nodiscard]] std::int64_t elapsed_ns() const noexcept {
    return watch_.elapsed_ns();
  }

 private:
  Stopwatch watch_;
  Histogram* histogram_;
};

}  // namespace wtam::common
