#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace wtam::common {

void TextTable::set_header(std::vector<std::string> names, std::vector<Align> aligns) {
  if (!rows_.empty())
    throw std::logic_error("TextTable::set_header: rows already added");
  if (!aligns.empty() && aligns.size() != names.size())
    throw std::invalid_argument("TextTable::set_header: alignment count mismatch");
  header_ = std::move(names);
  if (aligns.empty()) {
    aligns_.assign(header_.size(), Align::Right);
  } else {
    aligns_ = std::move(aligns);
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("TextTable::add_row: cell count mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() { rows_.emplace_back(); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto rule = [&os, &widths] {
    os << '+';
    for (const auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      const std::size_t pad = widths[c] - text.size();
      if (aligns_[c] == Align::Right)
        os << ' ' << std::string(pad, ' ') << text << ' ';
      else
        os << ' ' << text << std::string(pad, ' ') << ' ';
      os << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) {
    if (row.empty())
      rule();
    else
      emit(row);
  }
  rule();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  table.print(os);
  return os;
}

std::string format_fixed(double value, int decimals) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(decimals) << value;
  return oss.str();
}

std::string format_signed_percent(double value, int decimals) {
  std::ostringstream oss;
  oss << (value >= 0 ? "+" : "") << std::fixed << std::setprecision(decimals) << value;
  return oss.str();
}

}  // namespace wtam::common
