// A deliberately simple fixed-size thread pool plus an ordered chunk
// pipeline — the concurrency substrate for the parallel partition search.
//
// Design notes:
//   * no work stealing, no per-thread queues: the search dispatches
//     fixed-size chunks whose cost is large next to one mutex round-trip,
//     so a single locked deque is not a bottleneck;
//   * for_each_chunk_ordered() is the pattern both parallel engines share:
//     a producer enumerates work into chunks, workers process chunks
//     concurrently, and outcomes are merged strictly in submission order.
//     In-order merging is what lets the searches reproduce the serial
//     algorithm's statistics bit for bit (see partition_evaluate.cpp);
//   * the producer blocks once `max_in_flight` chunks are outstanding, so
//     enumeration never races ahead of evaluation by more than a bounded
//     amount of memory.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace wtam::common {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(int threads) {
    if (threads < 1) threads = 1;
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    task_ready_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Enqueues a task. Tasks must not throw through the pool; wrap
  /// exception-prone work (for_each_chunk_ordered does this for you).
  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(task));
    }
    task_ready_.notify_one();
  }

  /// Number of hardware threads, never reported as less than 1.
  [[nodiscard]] static int hardware_threads() noexcept {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Producer/worker/merger pipeline with strictly ordered merging.
///
/// The producer push()es chunks from its own thread; each chunk is
/// processed concurrently by `process` on the pool, and `merge` sees the
/// outcomes in exactly the order the chunks were pushed (the merger runs
/// under an internal lock on whichever thread deposits the next-in-order
/// outcome). At most `max_in_flight` chunks are unmerged at any time, so
/// the producer never races ahead by more than bounded memory. Exceptions
/// from any stage are rethrown from finish() on the producer's thread.
template <typename Chunk, typename Outcome>
class OrderedChunkPipeline {
 public:
  OrderedChunkPipeline(ThreadPool& pool,
                       std::function<Outcome(const Chunk&)> process,
                       std::function<void(Outcome&&)> merge,
                       std::size_t max_in_flight)
      : pool_(pool),
        process_(std::move(process)),
        merge_(std::move(merge)),
        max_in_flight_(max_in_flight < 1 ? 1 : max_in_flight) {}

  OrderedChunkPipeline(const OrderedChunkPipeline&) = delete;
  OrderedChunkPipeline& operator=(const OrderedChunkPipeline&) = delete;

  /// finish() must have run before destruction; it is called here as a
  /// safety net for exception paths on the producer side.
  ~OrderedChunkPipeline() {
    try {
      finish();
    } catch (...) {
      // finish() already ran and rethrew once, or the producer is
      // unwinding; either way the error has an owner.
    }
  }

  /// Submits a chunk; blocks while `max_in_flight` chunks are unmerged.
  /// Returns false once any stage has failed — the producer should stop.
  bool push(Chunk chunk) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      space_or_done_.wait(
          lock, [&] { return in_flight_ < max_in_flight_ || error_; });
      if (error_) return false;
      ++in_flight_;
    }
    const std::uint64_t seq = sequence_++;
    // The chunk is moved into the task; the outcome is deposited under
    // the lock and merged in order by whichever worker closes the gap.
    // The task notifies under the lock and touches no member afterwards,
    // so finish()+destruction cannot race a late member access.
    pool_.submit([this, seq, work = std::move(chunk)]() mutable {
      Outcome outcome{};
      std::exception_ptr process_error;
      try {
        outcome = process_(work);
      } catch (...) {
        process_error = std::current_exception();
        // The (empty) outcome slot below still advances the merge order.
      }
      const std::lock_guard<std::mutex> lock(mutex_);
      if (process_error && !error_) error_ = process_error;
      pending_.emplace(seq, std::move(outcome));
      drain_merges();
      space_or_done_.notify_all();
    });
    return true;
  }

  /// Waits until every pushed chunk is merged; rethrows the first error.
  void finish() {
    std::unique_lock<std::mutex> lock(mutex_);
    space_or_done_.wait(lock, [&] { return in_flight_ == 0; });
    if (error_) {
      std::exception_ptr error = error_;
      error_ = nullptr;  // rethrow exactly once
      std::rethrow_exception(error);
    }
  }

 private:
  /// Requires mutex_ held. Merges every ready outcome in submission
  /// order; merging is expected to be cheap next to processing.
  void drain_merges() {
    for (auto it = pending_.find(next_merge_); it != pending_.end();
         it = pending_.find(next_merge_)) {
      Outcome outcome = std::move(it->second);
      pending_.erase(it);
      if (!error_) {
        try {
          merge_(std::move(outcome));
        } catch (...) {
          error_ = std::current_exception();
        }
      }
      ++next_merge_;
      --in_flight_;
    }
  }

  ThreadPool& pool_;
  const std::function<Outcome(const Chunk&)> process_;
  const std::function<void(Outcome&&)> merge_;
  const std::size_t max_in_flight_;

  std::mutex mutex_;
  std::condition_variable space_or_done_;
  std::map<std::uint64_t, Outcome> pending_;  // processed, not yet merged
  std::uint64_t next_merge_ = 0;
  std::size_t in_flight_ = 0;  // pushed, not yet merged
  std::uint64_t sequence_ = 0;
  std::exception_ptr error_;
};

}  // namespace wtam::common
