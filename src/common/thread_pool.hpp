// A deliberately simple fixed-size thread pool plus an ordered chunk
// pipeline — the concurrency substrate for the parallel partition search.
//
// Design notes:
//   * no work stealing, no per-thread queues: the search dispatches
//     fixed-size chunks whose cost is large next to one mutex round-trip,
//     so a single locked deque is not a bottleneck;
//   * for_each_chunk_ordered() is the pattern both parallel engines share:
//     a producer enumerates work into chunks, workers process chunks
//     concurrently, and outcomes are merged strictly in submission order.
//     In-order merging is what lets the searches reproduce the serial
//     algorithm's statistics bit for bit (see partition_evaluate.cpp);
//   * the producer blocks once `max_in_flight` chunks are outstanding, so
//     enumeration never races ahead of evaluation by more than a bounded
//     amount of memory.
//
// All shared state is annotated for Clang's -Wthread-safety analysis
// (see common/thread_annotations.hpp for the locking discipline).

#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"

namespace wtam::common {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(int threads) {
    if (threads < 1) threads = 1;
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      const MutexLock lock(mutex_);
      stopping_ = true;
    }
    task_ready_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Enqueues a task. Tasks must not throw through the pool; wrap
  /// exception-prone work (for_each_chunk_ordered does this for you).
  void submit(std::function<void()> task) {
    {
      const MutexLock lock(mutex_);
      queue_.push_back(std::move(task));
    }
    task_ready_.notify_one();
  }

  /// Number of hardware threads, never reported as less than 1.
  [[nodiscard]] static int hardware_threads() noexcept {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        const MutexLock lock(mutex_);
        while (!stopping_ && queue_.empty()) task_ready_.wait(mutex_);
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  Mutex mutex_;
  CondVar task_ready_;
  std::deque<std::function<void()>> queue_ WTAM_GUARDED_BY(mutex_);
  bool stopping_ WTAM_GUARDED_BY(mutex_) = false;
  // Written by the constructor, joined and destroyed by the destructor —
  // owner-thread-only by construction, so deliberately unguarded.
  std::vector<std::thread> workers_;
};

/// Fan-out/join accounting for "submit N tasks, wait for all N" call
/// sites (parallel rectpack walkers, Solver batches). Each task calls
/// arrive() exactly once — record_error() first if it failed; the owner
/// blocks in wait() and rethrows the first recorded error afterwards via
/// take_error(). Notifying under the lock is deliberate: the waiter
/// cannot wake, see the final count, and destroy the latch while a
/// worker is still inside notify.
class CompletionLatch {
 public:
  void arrive() {
    const MutexLock lock(mutex_);
    ++done_;
    done_changed_.notify_all();
  }

  /// Records the first failure; later ones are dropped (one owner, one
  /// rethrow).
  void record_error(std::exception_ptr error) {
    const MutexLock lock(mutex_);
    if (!error_) error_ = std::move(error);
  }

  /// Blocks until arrive() has been called `expected` times.
  void wait(std::size_t expected) {
    const MutexLock lock(mutex_);
    while (done_ < expected) done_changed_.wait(mutex_);
  }

  /// The first recorded error (null if none); call after wait().
  [[nodiscard]] std::exception_ptr take_error() {
    const MutexLock lock(mutex_);
    std::exception_ptr error = error_;
    error_ = nullptr;
    return error;
  }

 private:
  Mutex mutex_;
  CondVar done_changed_;
  std::size_t done_ WTAM_GUARDED_BY(mutex_) = 0;
  std::exception_ptr error_ WTAM_GUARDED_BY(mutex_);
};

/// Producer/worker/merger pipeline with strictly ordered merging.
///
/// The producer push()es chunks from its own thread; each chunk is
/// processed concurrently by `process` on the pool, and `merge` sees the
/// outcomes in exactly the order the chunks were pushed (the merger runs
/// under an internal lock on whichever thread deposits the next-in-order
/// outcome). At most `max_in_flight` chunks are unmerged at any time, so
/// the producer never races ahead by more than bounded memory. Exceptions
/// from any stage are rethrown from finish() on the producer's thread.
template <typename Chunk, typename Outcome>
class OrderedChunkPipeline {
 public:
  OrderedChunkPipeline(ThreadPool& pool,
                       std::function<Outcome(const Chunk&)> process,
                       std::function<void(Outcome&&)> merge,
                       std::size_t max_in_flight)
      : pool_(pool),
        process_(std::move(process)),
        merge_(std::move(merge)),
        max_in_flight_(max_in_flight < 1 ? 1 : max_in_flight) {}

  OrderedChunkPipeline(const OrderedChunkPipeline&) = delete;
  OrderedChunkPipeline& operator=(const OrderedChunkPipeline&) = delete;

  /// finish() must have run before destruction; it is called here as a
  /// safety net for exception paths on the producer side.
  ~OrderedChunkPipeline() {
    try {
      finish();
    } catch (...) {
      // finish() already ran and rethrew once, or the producer is
      // unwinding; either way the error has an owner.
    }
  }

  /// Submits a chunk; blocks while `max_in_flight` chunks are unmerged.
  /// Returns false once any stage has failed — the producer should stop.
  bool push(Chunk chunk) {
    std::uint64_t seq = 0;
    {
      const MutexLock lock(mutex_);
      while (in_flight_ >= max_in_flight_ && !error_)
        space_or_done_.wait(mutex_);
      if (error_) return false;
      ++in_flight_;
      seq = sequence_++;
    }
    // The chunk is moved into the task; the outcome is deposited under
    // the lock and merged in order by whichever worker closes the gap.
    // The task notifies under the lock and touches no member afterwards,
    // so finish()+destruction cannot race a late member access.
    pool_.submit([this, seq, work = std::move(chunk)]() mutable {
      Outcome outcome{};
      std::exception_ptr process_error;
      try {
        outcome = process_(work);
      } catch (...) {
        // Deposited into error_ below so finish() rethrows it on the
        // producer's thread; the (empty) outcome slot still advances
        // the merge order.
        process_error = std::current_exception();
      }
      const MutexLock lock(mutex_);
      if (process_error && !error_) error_ = process_error;
      pending_.emplace(seq, std::move(outcome));
      drain_merges();
      space_or_done_.notify_all();
    });
    return true;
  }

  /// Waits until every pushed chunk is merged; rethrows the first error.
  void finish() {
    std::exception_ptr error;
    {
      const MutexLock lock(mutex_);
      while (in_flight_ != 0) space_or_done_.wait(mutex_);
      error = error_;
      error_ = nullptr;  // rethrow exactly once
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  /// Merges every ready outcome in submission order; merging is expected
  /// to be cheap next to processing.
  void drain_merges() WTAM_REQUIRES(mutex_) {
    for (auto it = pending_.find(next_merge_); it != pending_.end();
         it = pending_.find(next_merge_)) {
      Outcome outcome = std::move(it->second);
      pending_.erase(it);
      if (!error_) {
        try {
          merge_(std::move(outcome));
        } catch (...) {
          // First merge failure wins; kept for finish() to rethrow.
          error_ = std::current_exception();
        }
      }
      ++next_merge_;
      --in_flight_;
    }
  }

  ThreadPool& pool_;
  const std::function<Outcome(const Chunk&)> process_;
  const std::function<void(Outcome&&)> merge_;
  const std::size_t max_in_flight_;

  Mutex mutex_;
  CondVar space_or_done_;
  /// Processed, not yet merged.
  std::map<std::uint64_t, Outcome> pending_ WTAM_GUARDED_BY(mutex_);
  std::uint64_t next_merge_ WTAM_GUARDED_BY(mutex_) = 0;
  /// Pushed, not yet merged.
  std::size_t in_flight_ WTAM_GUARDED_BY(mutex_) = 0;
  std::uint64_t sequence_ WTAM_GUARDED_BY(mutex_) = 0;
  std::exception_ptr error_ WTAM_GUARDED_BY(mutex_);
};

}  // namespace wtam::common
