// Stable, non-cryptographic content hashing for canonical request keys.
//
// The result cache and request-identity layer key work by the *content*
// of a SOC's canonical serialization, so the hash must be identical
// across runs, platforms, and compilers — std::hash gives no such
// guarantee. This is a simple two-lane construction (an FNV-1a lane and
// an independently mixed multiply-rotate lane, cross-avalanched with the
// splitmix64 finalizer). 128 bits keeps accidental collisions out of
// reach for any realistic cache population; it is NOT collision
// resistant against adversaries.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace wtam::common {

/// splitmix64 finalizer — the standard 64-bit avalanche mix.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// A 128-bit digest, ordered and hashable; hex() is the canonical
/// 32-character lowercase rendering used in logs and request-key text.
struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] constexpr bool operator==(const Hash128&) const noexcept =
      default;
  [[nodiscard]] constexpr auto operator<=>(const Hash128&) const noexcept =
      default;

  /// One well-mixed word for bucketing (shard choice, unordered maps).
  [[nodiscard]] constexpr std::uint64_t word() const noexcept {
    return mix64(hi ^ (lo * 0x9e3779b97f4a7c15ULL));
  }

  [[nodiscard]] std::string hex() const {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i)
      out[static_cast<std::size_t>(i)] = kDigits[(hi >> (60 - 4 * i)) & 0xF];
    for (int i = 0; i < 16; ++i)
      out[static_cast<std::size_t>(16 + i)] =
          kDigits[(lo >> (60 - 4 * i)) & 0xF];
    return out;
  }
};

/// Hashes `bytes` byte-by-byte (endianness-independent by construction).
/// Stable across runs and platforms; pinned by tests against the built-in
/// SOCs' canonical serializations.
[[nodiscard]] constexpr Hash128 stable_hash_128(
    std::string_view bytes) noexcept {
  // Lane 1: FNV-1a 64.
  std::uint64_t h1 = 0xcbf29ce484222325ULL;
  // Lane 2: multiply-rotate accumulator with unrelated constants, so a
  // lane-1 collision does not imply a lane-2 collision.
  std::uint64_t h2 = 0x2545f4914f6cdd1dULL;
  for (const char c : bytes) {
    const auto b = static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h1 = (h1 ^ b) * 0x00000100000001b3ULL;
    h2 ^= b + 0x9e3779b97f4a7c15ULL + (h2 << 6) + (h2 >> 2);
    h2 = (h2 << 29) | (h2 >> 35);
  }
  // Length stamp + cross-lane avalanche: equal prefixes of different
  // lengths and swapped-lane states must not collide trivially.
  const auto n = static_cast<std::uint64_t>(bytes.size());
  Hash128 digest;
  digest.hi = mix64(h1 + 0x9e3779b97f4a7c15ULL * n + h2);
  digest.lo = mix64(h2 ^ (h1 * 0x00000100000001b3ULL) ^ n);
  return digest;
}

}  // namespace wtam::common
