// Fixed-width text tables for the bench harness: every paper table is
// regenerated as one of these, so formatting lives in exactly one place.

#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace wtam::common {

enum class Align { Left, Right };

/// Monospace table with a header row, column alignment, and a title.
/// Cells are strings; callers format numbers (so benches control precision).
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  /// Define the columns; must be called before add_row.
  void set_header(std::vector<std::string> names,
                  std::vector<Align> aligns = {});

  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal separator after the most recently added row.
  void add_separator();

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

std::ostream& operator<<(std::ostream& os, const TextTable& table);

/// Format helpers used throughout the bench harness.
[[nodiscard]] std::string format_fixed(double value, int decimals);
/// "+3.26" / "-9.86" percentage-delta format used in the paper's tables.
[[nodiscard]] std::string format_signed_percent(double value, int decimals = 2);

}  // namespace wtam::common
