// Portable Clang Thread Safety annotations plus the annotated locking
// primitives the whole codebase uses.
//
// Clang's -Wthread-safety analysis turns the locking discipline that
// used to live in comments into compile errors: every shared field says
// which mutex guards it (WTAM_GUARDED_BY), every function that expects a
// lock held says so (WTAM_REQUIRES), and the analysis proves each access
// happens under the right lock. Under GCC (or any compiler without the
// attributes) every macro expands to nothing, so the annotations are
// free documentation there.
//
// libstdc++'s std::mutex carries no capability attributes, so the
// analysis cannot see through it. The wrappers below (common::Mutex,
// common::MutexLock, common::CondVar) mirror the reference
// implementation in Clang's Thread Safety Analysis documentation and are
// the only locking primitives library code should use — tools/wtam_lint.py
// rejects raw std::mutex / std::condition_variable members outside this
// header.
//
// Locking discipline (the house rules the annotations enforce):
//   * Every mutex-protected field is declared WTAM_GUARDED_BY(its_mutex);
//     a class that declares a Mutex member must annotate what it guards.
//   * Lock scopes are expressed with MutexLock (never manual
//     lock()/unlock() pairs) so the analysis — and the reader — sees the
//     critical section as a block.
//   * Condition waits go through CondVar::wait/wait_for, which are
//     annotated WTAM_REQUIRES(mutex): the wait atomically releases and
//     reacquires, so from the caller's point of view the lock is held at
//     every observation point. Wait predicates are written as inline
//     `while` loops in the annotated scope, not as lambdas, because the
//     analysis does not propagate capabilities into lambda bodies.
//   * Multi-field reads (stats snapshots, counter pairs) happen inside
//     one critical section per protection domain — never field-by-field —
//     so observers get consistent snapshots, not torn ones.
//   * Lock ordering: leaf mutexes only. No code path in this repo
//     acquires two annotated mutexes at once except ResultCache's
//     shard-then-flight hand-offs, which are documented at the site and
//     never nest in the opposite order.

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// Attribute detection: Clang exposes thread-safety attributes through
// __has_attribute; everything else compiles the macros away.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define WTAM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef WTAM_THREAD_ANNOTATION
#define WTAM_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex" names it in warnings).
#define WTAM_CAPABILITY(x) WTAM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose lifetime equals a critical section.
#define WTAM_SCOPED_CAPABILITY WTAM_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read/written with the given mutex held.
#define WTAM_GUARDED_BY(x) WTAM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given mutex.
#define WTAM_PT_GUARDED_BY(x) WTAM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the mutex(es) to be held on entry (and exit).
#define WTAM_REQUIRES(...) \
  WTAM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the mutex(es); they must not already be held.
#define WTAM_ACQUIRE(...) \
  WTAM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the mutex(es); they must be held on entry.
#define WTAM_RELEASE(...) \
  WTAM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the mutex iff it returns the given value.
#define WTAM_TRY_ACQUIRE(...) \
  WTAM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the mutex(es) (deadlock-prevention assertion).
#define WTAM_EXCLUDES(...) WTAM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Documents required relative acquisition order between mutexes.
#define WTAM_ACQUIRED_BEFORE(...) \
  WTAM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define WTAM_ACQUIRED_AFTER(...) \
  WTAM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define WTAM_RETURN_CAPABILITY(x) WTAM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot model; every use must carry
/// a comment saying why the access is nonetheless safe.
#define WTAM_NO_THREAD_SAFETY_ANALYSIS \
  WTAM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace wtam::common {

/// std::mutex with capability attributes so -Wthread-safety can track
/// it. Same cost, same semantics; the analysis is compile-time only.
class WTAM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() WTAM_ACQUIRE() { mutex_.lock(); }
  void unlock() WTAM_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() WTAM_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII critical section over a Mutex (the std::lock_guard shape, made
/// visible to the analysis as a scoped capability).
class WTAM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) WTAM_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() WTAM_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with common::Mutex. wait()/wait_for() are
/// annotated WTAM_REQUIRES(mutex): the wait releases and reacquires
/// atomically, so callers hold the lock at every point they can observe —
/// the analysis treats the critical section as unbroken, which is exactly
/// the invariant predicates rely on. Callers loop on their predicate
/// inline:
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);   // ready_ is WTAM_GUARDED_BY(mutex_)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible — loop on the
  /// predicate). The caller's critical section logically continues.
  void wait(Mutex& mutex) WTAM_REQUIRES(mutex) WTAM_NO_THREAD_SAFETY_ANALYSIS {
    // Safe despite the suppression: the underlying wait releases
    // mutex.mutex_ only while blocked and has reacquired it by return,
    // so the REQUIRES contract holds at every observable point.
    std::unique_lock<std::mutex> inner(mutex.mutex_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();  // ownership stays with the caller's scope
  }

  /// Timed wait; returns false on timeout, true when notified. Same
  /// held-throughout contract as wait().
  template <class Rep, class Period>
  bool wait_for(Mutex& mutex, const std::chrono::duration<Rep, Period>& d)
      WTAM_REQUIRES(mutex) WTAM_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> inner(mutex.mutex_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(inner, d);
    inner.release();
    return status == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace wtam::common
