// Dense two-phase primal simplex solver.
//
// The paper's exact P_AW model was solved with lp_solve [2]; no external
// solver is available in this environment, so this module provides the
// linear-programming substrate from scratch. The LPs arising here are tiny
// by LP standards (<= ~400 variables, <= ~400 rows after bound rows), so a
// dense tableau with Dantzig pricing and a Bland anti-cycling fallback is
// both simple and fast.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wtam::lp {

enum class RowSense { LessEqual, Equal, GreaterEqual };

/// One linear constraint: sum(coeffs) sense rhs. Coefficients are sparse
/// (variable index, value) pairs; repeated indices are summed.
struct Row {
  std::vector<std::pair<int, double>> coeffs;
  RowSense sense = RowSense::LessEqual;
  double rhs = 0.0;
};

/// minimize objective . x  subject to rows, lower <= x <= upper.
/// Default bounds are [0, +inf); use infinity() for a free upper bound.
struct Problem {
  int num_vars = 0;
  std::vector<double> objective;  ///< size num_vars
  std::vector<Row> rows;
  std::vector<double> lower;  ///< size num_vars (default 0)
  std::vector<double> upper;  ///< size num_vars (default +inf)

  [[nodiscard]] static double infinity() noexcept;

  /// Creates a problem with n variables, zero objective, default bounds.
  [[nodiscard]] static Problem with_vars(int n);

  /// Throws std::invalid_argument on malformed input (sizes, indices, NaN).
  void validate() const;
};

enum class Status {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
};

struct Solution {
  Status status = Status::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;
  std::int64_t iterations = 0;
};

[[nodiscard]] std::string to_string(Status status);

struct SimplexOptions {
  std::int64_t max_iterations = 200'000;
  double feasibility_tol = 1e-8;
  double optimality_tol = 1e-9;
  /// Switch from Dantzig to Bland pivoting after this many iterations
  /// without objective progress (anti-cycling).
  int stall_threshold = 64;
};

/// Solves the problem; never throws on solvable-but-degenerate inputs,
/// throws std::invalid_argument on malformed problems.
[[nodiscard]] Solution solve(const Problem& problem,
                             const SimplexOptions& options = {});

}  // namespace wtam::lp
