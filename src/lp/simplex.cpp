#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace wtam::lp {

double Problem::infinity() noexcept {
  return std::numeric_limits<double>::infinity();
}

Problem Problem::with_vars(int n) {
  if (n < 0) throw std::invalid_argument("Problem::with_vars: negative n");
  Problem p;
  p.num_vars = n;
  p.objective.assign(static_cast<std::size_t>(n), 0.0);
  p.lower.assign(static_cast<std::size_t>(n), 0.0);
  p.upper.assign(static_cast<std::size_t>(n), infinity());
  return p;
}

void Problem::validate() const {
  const auto n = static_cast<std::size_t>(num_vars);
  if (objective.size() != n || lower.size() != n || upper.size() != n)
    throw std::invalid_argument("lp::Problem: vector sizes != num_vars");
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isnan(objective[i]) || std::isnan(lower[i]) || std::isnan(upper[i]))
      throw std::invalid_argument("lp::Problem: NaN coefficient");
    if (lower[i] > upper[i])
      throw std::invalid_argument("lp::Problem: lower > upper bound");
  }
  for (const auto& row : rows) {
    if (std::isnan(row.rhs)) throw std::invalid_argument("lp::Problem: NaN rhs");
    for (const auto& [idx, val] : row.coeffs) {
      if (idx < 0 || idx >= num_vars)
        throw std::invalid_argument("lp::Problem: coefficient index out of range");
      if (std::isnan(val))
        throw std::invalid_argument("lp::Problem: NaN coefficient");
    }
  }
}

std::string to_string(Status status) {
  switch (status) {
    case Status::Optimal: return "optimal";
    case Status::Infeasible: return "infeasible";
    case Status::Unbounded: return "unbounded";
    case Status::IterationLimit: return "iteration-limit";
  }
  return "unknown";
}

namespace {

/// Internal dense tableau. Variables are laid out as
///   [0, n)                      shifted structural variables (x - lower)
///   [n, n + num_slack)          slack/surplus variables
///   [n + num_slack, total)      artificial variables (phase 1 only)
/// The tableau has one row per constraint plus an objective row; the last
/// column is the RHS.
class Tableau {
 public:
  Tableau(const Problem& problem, const SimplexOptions& options)
      : options_(options) {
    build(problem);
  }

  Solution run(const Problem& problem) {
    Solution result;
    // Phase 1: minimize the sum of artificials.
    if (num_artificial_ > 0) {
      set_phase1_objective();
      const Status phase1 = optimize(result.iterations);
      if (phase1 == Status::IterationLimit) {
        result.status = phase1;
        return result;
      }
      if (objective_value() > options_.feasibility_tol) {
        result.status = Status::Infeasible;
        return result;
      }
      drive_out_artificials();
    }
    // Phase 2: the real objective.
    set_phase2_objective();
    const Status phase2 = optimize(result.iterations);
    result.status = phase2;
    if (phase2 != Status::Optimal) return result;

    result.x.assign(static_cast<std::size_t>(problem.num_vars), 0.0);
    for (int r = 0; r < rows_; ++r) {
      const int var = basis_[static_cast<std::size_t>(r)];
      if (var < problem.num_vars)
        result.x[static_cast<std::size_t>(var)] = rhs(r);
    }
    result.objective = 0.0;
    for (int j = 0; j < problem.num_vars; ++j) {
      result.x[static_cast<std::size_t>(j)] += problem.lower[static_cast<std::size_t>(j)];
      result.objective += problem.objective[static_cast<std::size_t>(j)] *
                          result.x[static_cast<std::size_t>(j)];
    }
    return result;
  }

 private:
  // --- construction ------------------------------------------------------

  void build(const Problem& problem) {
    // Shift variables by their lower bounds and add explicit rows for
    // finite upper bounds; x' = x - l, 0 <= x' <= u - l.
    struct NormRow {
      std::vector<double> dense;
      RowSense sense;
      double rhs;
    };
    const int n = problem.num_vars;
    std::vector<NormRow> norm;
    norm.reserve(problem.rows.size() + static_cast<std::size_t>(n));
    for (const auto& row : problem.rows) {
      NormRow nr{std::vector<double>(static_cast<std::size_t>(n), 0.0), row.sense,
                 row.rhs};
      for (const auto& [idx, val] : row.coeffs) {
        nr.dense[static_cast<std::size_t>(idx)] += val;
        nr.rhs -= val * problem.lower[static_cast<std::size_t>(idx)];
      }
      norm.push_back(std::move(nr));
    }
    for (int j = 0; j < n; ++j) {
      const double range = problem.upper[static_cast<std::size_t>(j)] -
                           problem.lower[static_cast<std::size_t>(j)];
      if (std::isfinite(range)) {
        NormRow nr{std::vector<double>(static_cast<std::size_t>(n), 0.0),
                   RowSense::LessEqual, range};
        nr.dense[static_cast<std::size_t>(j)] = 1.0;
        norm.push_back(std::move(nr));
      }
    }

    rows_ = static_cast<int>(norm.size());
    // Count slack and artificial columns.
    num_slack_ = 0;
    num_artificial_ = 0;
    for (auto& nr : norm) {
      if (nr.rhs < 0) {  // normalize to non-negative RHS
        for (auto& v : nr.dense) v = -v;
        nr.rhs = -nr.rhs;
        if (nr.sense == RowSense::LessEqual)
          nr.sense = RowSense::GreaterEqual;
        else if (nr.sense == RowSense::GreaterEqual)
          nr.sense = RowSense::LessEqual;
      }
      if (nr.sense != RowSense::Equal) ++num_slack_;
      if (nr.sense != RowSense::LessEqual) ++num_artificial_;
    }

    structural_ = n;
    cols_ = structural_ + num_slack_ + num_artificial_;
    width_ = cols_ + 1;  // + RHS column
    a_.assign(static_cast<std::size_t>(rows_ + 1) * static_cast<std::size_t>(width_), 0.0);
    basis_.assign(static_cast<std::size_t>(rows_), -1);

    int slack = structural_;
    int artificial = structural_ + num_slack_;
    for (int r = 0; r < rows_; ++r) {
      const auto& nr = norm[static_cast<std::size_t>(r)];
      for (int j = 0; j < n; ++j) at(r, j) = nr.dense[static_cast<std::size_t>(j)];
      rhs(r) = nr.rhs;
      switch (nr.sense) {
        case RowSense::LessEqual:
          at(r, slack) = 1.0;
          basis_[static_cast<std::size_t>(r)] = slack++;
          break;
        case RowSense::GreaterEqual:
          at(r, slack) = -1.0;
          ++slack;
          at(r, artificial) = 1.0;
          basis_[static_cast<std::size_t>(r)] = artificial++;
          break;
        case RowSense::Equal:
          at(r, artificial) = 1.0;
          basis_[static_cast<std::size_t>(r)] = artificial++;
          break;
      }
    }
  }

  // --- objective rows -----------------------------------------------------

  void set_phase1_objective() {
    // Objective row = -(sum of rows whose basic variable is artificial),
    // so that reduced costs of the artificial basis are zero.
    std::fill(obj_row(), obj_row() + width_, 0.0);
    for (int r = 0; r < rows_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] >= structural_ + num_slack_) {
        for (int c = 0; c < width_; ++c) obj(c) -= at(r, c);
        // The artificial's own column should read zero cost.
      }
    }
    // Artificial columns carry cost 1; after the subtraction above their
    // reduced costs are 1 - 1 = 0 for basic ones. Make non-basic artificial
    // columns cost-correct too:
    for (int c = structural_ + num_slack_; c < cols_; ++c) obj(c) += 1.0;
    phase1_ = true;
  }

  void set_phase2_objective() {
    std::fill(obj_row(), obj_row() + width_, 0.0);
    for (int j = 0; j < structural_; ++j) obj(j) = objective_coeff_[static_cast<std::size_t>(j)];
    // Forbid artificials from re-entering.
    // (They are excluded in pricing when phase1_ is false.)
    // Eliminate the basic columns from the objective row.
    for (int r = 0; r < rows_; ++r) {
      const int var = basis_[static_cast<std::size_t>(r)];
      const double cost = obj(var);
      if (cost != 0.0)
        for (int c = 0; c < width_; ++c) obj(c) -= cost * at(r, c);
    }
    phase1_ = false;
  }

 public:
  void set_objective_coeffs(std::vector<double> coeffs) {
    objective_coeff_ = std::move(coeffs);
  }

 private:
  // --- simplex iterations --------------------------------------------------

  Status optimize(std::int64_t& iteration_counter) {
    int stall = 0;
    double last_objective = objective_value();
    for (std::int64_t it = 0; it < options_.max_iterations; ++it) {
      const bool bland = stall > options_.stall_threshold;
      const int entering = pick_entering(bland);
      if (entering < 0) return Status::Optimal;
      const int leaving_row = pick_leaving(entering, bland);
      if (leaving_row < 0) return Status::Unbounded;
      pivot(leaving_row, entering);
      ++iteration_counter;
      const double now = objective_value();
      if (now < last_objective - options_.optimality_tol) {
        stall = 0;
        last_objective = now;
      } else {
        ++stall;
      }
    }
    return Status::IterationLimit;
  }

  [[nodiscard]] int pick_entering(bool bland) const {
    const int limit = phase1_ ? cols_ : structural_ + num_slack_;
    if (bland) {
      for (int c = 0; c < limit; ++c)
        if (obj(c) < -options_.optimality_tol) return c;
      return -1;
    }
    int best = -1;
    double best_cost = -options_.optimality_tol;
    for (int c = 0; c < limit; ++c) {
      if (obj(c) < best_cost) {
        best_cost = obj(c);
        best = c;
      }
    }
    return best;
  }

  [[nodiscard]] int pick_leaving(int entering, bool bland) const {
    int best_row = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    int best_var = std::numeric_limits<int>::max();
    for (int r = 0; r < rows_; ++r) {
      const double coeff = at(r, entering);
      if (coeff <= options_.feasibility_tol) continue;
      const double ratio = rhs(r) / coeff;
      const int var = basis_[static_cast<std::size_t>(r)];
      const bool better =
          ratio < best_ratio - 1e-12 ||
          (bland && ratio < best_ratio + 1e-12 && var < best_var);
      if (better) {
        best_ratio = ratio;
        best_row = r;
        best_var = var;
      }
    }
    return best_row;
  }

  void pivot(int row, int col) {
    const double pivot_value = at(row, col);
    for (int c = 0; c < width_; ++c) at(row, c) /= pivot_value;
    for (int r = 0; r <= rows_; ++r) {
      if (r == row) continue;
      const double factor = (r == rows_) ? obj(col) : at(r, col);
      if (factor == 0.0) continue;
      double* target = (r == rows_) ? obj_row() : row_ptr(r);
      const double* source = row_ptr(row);
      for (int c = 0; c < width_; ++c) target[c] -= factor * source[c];
    }
    basis_[static_cast<std::size_t>(row)] = col;
  }

  /// After phase 1, pivot any artificial still in the basis out (or drop
  /// its redundant row by leaving it at zero).
  void drive_out_artificials() {
    for (int r = 0; r < rows_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] < structural_ + num_slack_) continue;
      // Find any non-artificial column with a nonzero entry in this row.
      int col = -1;
      for (int c = 0; c < structural_ + num_slack_; ++c) {
        if (std::abs(at(r, c)) > options_.feasibility_tol) {
          col = c;
          break;
        }
      }
      if (col >= 0) pivot(r, col);
      // Otherwise the row is 0 = 0 (redundant); keep the artificial basic
      // at value 0 — harmless because pricing excludes artificials in
      // phase 2 and the row can never bind.
    }
  }

  // --- layout helpers ------------------------------------------------------

  [[nodiscard]] double& at(int r, int c) {
    return a_[static_cast<std::size_t>(r) * static_cast<std::size_t>(width_) +
              static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double at(int r, int c) const {
    return a_[static_cast<std::size_t>(r) * static_cast<std::size_t>(width_) +
              static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double* row_ptr(int r) {
    return a_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(width_);
  }
  [[nodiscard]] double* obj_row() { return row_ptr(rows_); }
  [[nodiscard]] double& obj(int c) { return *(obj_row() + c); }
  [[nodiscard]] double obj(int c) const { return at(rows_, c); }
  [[nodiscard]] double& rhs(int r) { return at(r, cols_); }
  [[nodiscard]] double rhs(int r) const { return at(r, cols_); }
  [[nodiscard]] double objective_value() const { return -at(rows_, cols_); }

  SimplexOptions options_;
  std::vector<double> a_;
  std::vector<int> basis_;
  std::vector<double> objective_coeff_;
  int rows_ = 0;
  int cols_ = 0;
  int width_ = 0;
  int structural_ = 0;
  int num_slack_ = 0;
  int num_artificial_ = 0;
  bool phase1_ = false;
};

}  // namespace

Solution solve(const Problem& problem, const SimplexOptions& options) {
  problem.validate();
  Tableau tableau(problem, options);
  tableau.set_objective_coeffs(problem.objective);
  return tableau.run(problem);
}

}  // namespace wtam::lp
