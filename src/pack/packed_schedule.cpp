#include "pack/packed_schedule.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/power.hpp"

namespace wtam::pack {

namespace {

std::string placement_label(const PackedPlacement& p) {
  std::ostringstream out;
  out << "core " << p.core << " (wires [" << p.wire << "," << p.wire + p.width
      << "), cycles [" << p.start << "," << p.end << "))";
  return out.str();
}

}  // namespace

void sort_placements(std::vector<PackedPlacement>& placements) {
  std::sort(placements.begin(), placements.end(),
            [](const PackedPlacement& a, const PackedPlacement& b) {
              return a.start != b.start ? a.start < b.start : a.wire < b.wire;
            });
}

std::vector<std::string> validate_packed_schedule(
    const core::TestTimeTable& table, const PackedSchedule& schedule) {
  std::vector<std::string> issues;
  const auto complain = [&issues](const std::string& message) {
    issues.push_back(message);
  };

  if (schedule.total_width < 1 || schedule.total_width > table.max_width()) {
    complain("total_width " + std::to_string(schedule.total_width) +
             " outside the table's range [1, " +
             std::to_string(table.max_width()) + "]");
    return issues;  // nothing else is meaningful
  }

  std::vector<int> times_placed(static_cast<std::size_t>(table.core_count()), 0);
  std::int64_t max_end = 0;
  for (const auto& p : schedule.placements) {
    if (p.core < 0 || p.core >= table.core_count()) {
      complain("unknown core index " + std::to_string(p.core));
      continue;
    }
    ++times_placed[static_cast<std::size_t>(p.core)];
    if (p.width < 1 || p.width > table.max_width())
      complain(placement_label(p) + ": width outside the table's range");
    if (p.wire < 0 || p.wire + p.width > schedule.total_width)
      complain(placement_label(p) + ": wire interval outside the strip");
    if (p.start < 0 || p.start >= p.end)
      complain(placement_label(p) + ": empty or negative time interval");
    if (p.width >= 1 && p.width <= table.max_width() &&
        p.end - p.start != table.time(p.core, p.width))
      complain(placement_label(p) + ": duration " +
               std::to_string(p.end - p.start) + " != T_" +
               std::to_string(p.core) + "(" + std::to_string(p.width) +
               ") = " + std::to_string(table.time(p.core, p.width)));
    max_end = std::max(max_end, p.end);
  }

  for (int i = 0; i < table.core_count(); ++i) {
    const int n = times_placed[static_cast<std::size_t>(i)];
    if (n == 0) complain("core " + std::to_string(i) + " never placed");
    if (n > 1)
      complain("core " + std::to_string(i) + " placed " + std::to_string(n) +
               " times");
  }

  for (std::size_t a = 0; a < schedule.placements.size(); ++a) {
    for (std::size_t b = a + 1; b < schedule.placements.size(); ++b) {
      const auto& pa = schedule.placements[a];
      const auto& pb = schedule.placements[b];
      const bool wires_overlap =
          pa.wire < pb.wire + pb.width && pb.wire < pa.wire + pa.width;
      const bool time_overlap = pa.start < pb.end && pb.start < pa.end;
      if (wires_overlap && time_overlap)
        complain("overlap: " + placement_label(pa) + " and " +
                 placement_label(pb));
    }
  }

  if (schedule.makespan != max_end)
    complain("makespan " + std::to_string(schedule.makespan) +
             " != max placement end " + std::to_string(max_end));
  return issues;
}

std::int64_t packed_peak_power(const PackedSchedule& schedule,
                               const core::PowerVector& power) {
  // Feed the placements into the same incremental timeline the packers
  // maintain on their hot path; its running peak is the sweep-line value
  // the old span-list core::peak_power computed.
  core::PowerTimeline timeline;
  for (const auto& p : schedule.placements) {
    if (p.core < 0 || p.core >= static_cast<int>(power.size()))
      throw std::invalid_argument(
          "packed_peak_power: power vector too small for " +
          placement_label(p));
    timeline.add(p.start, p.end, power[static_cast<std::size_t>(p.core)]);
  }
  return timeline.peak();
}

std::vector<std::string> validate_packed_schedule(
    const core::TestTimeTable& table, const PackedSchedule& schedule,
    const core::ScheduleConstraints& constraints) {
  std::vector<std::string> issues =
      validate_packed_schedule(table, schedule);
  if (constraints.empty()) return issues;
  const auto complain = [&issues](const std::string& message) {
    issues.push_back(message);
  };

  // A schedule cannot be valid "under" constraints that are themselves
  // malformed or infeasible for this model.
  for (const auto& issue : core::validate_constraints(
           constraints, table.core_count(), schedule.total_width))
    complain("constraints: " + issue);

  // Per-core first placement, for the pairwise/interval checks; indexing
  // problems were already reported by the geometric pass.
  std::vector<const PackedPlacement*> placed(
      static_cast<std::size_t>(table.core_count()), nullptr);
  for (const auto& p : schedule.placements) {
    if (p.core < 0 || p.core >= table.core_count()) continue;
    auto& slot = placed[static_cast<std::size_t>(p.core)];
    if (slot == nullptr) slot = &p;
  }

  if (constraints.has_power() &&
      static_cast<int>(constraints.power.size()) == table.core_count() &&
      std::all_of(constraints.power.begin(), constraints.power.end(),
                  [](std::int64_t p) { return p >= 0; })) {
    // Negative draws were already reported as a constraints issue above;
    // skipping the sweep keeps the validator's never-throws contract now
    // that packed_peak_power rejects them.
    // Sweep only the placements with known cores — an unknown index was
    // already reported above, and the validator's contract is to return
    // every violation, never to throw.
    PackedSchedule known = schedule;
    std::erase_if(known.placements, [&](const PackedPlacement& p) {
      return p.core < 0 || p.core >= table.core_count();
    });
    const std::int64_t peak = packed_peak_power(known, constraints.power);
    if (peak > constraints.power_budget)
      complain("peak power " + std::to_string(peak) +
               " exceeds the budget " +
               std::to_string(constraints.power_budget));
  }

  for (const auto& pair : constraints.precedence) {
    if (pair.before < 0 || pair.before >= table.core_count() ||
        pair.after < 0 || pair.after >= table.core_count())
      continue;  // reported above
    const PackedPlacement* before =
        placed[static_cast<std::size_t>(pair.before)];
    const PackedPlacement* after = placed[static_cast<std::size_t>(pair.after)];
    if (before == nullptr || after == nullptr) continue;  // "never placed"
    if (after->start < before->end)
      complain("precedence " + std::to_string(pair.before) + ">" +
               std::to_string(pair.after) + " violated: core " +
               std::to_string(pair.after) + " starts at " +
               std::to_string(after->start) + " before core " +
               std::to_string(pair.before) + " ends at " +
               std::to_string(before->end));
  }

  for (const auto& entry : constraints.fixed) {
    if (entry.core < 0 || entry.core >= table.core_count()) continue;
    const PackedPlacement* p = placed[static_cast<std::size_t>(entry.core)];
    if (p == nullptr) continue;
    if (p->wire < entry.wires.lo || p->wire + p->width > entry.wires.hi)
      complain("fixed interval violated: " + placement_label(*p) +
               " outside wires [" + std::to_string(entry.wires.lo) + "," +
               std::to_string(entry.wires.hi) + ")");
  }

  for (const auto& entry : constraints.forbidden) {
    if (entry.core < 0 || entry.core >= table.core_count()) continue;
    const PackedPlacement* p = placed[static_cast<std::size_t>(entry.core)];
    if (p == nullptr) continue;
    if (p->wire < entry.wires.hi && entry.wires.lo < p->wire + p->width)
      complain("forbidden interval violated: " + placement_label(*p) +
               " overlaps wires [" + std::to_string(entry.wires.lo) + "," +
               std::to_string(entry.wires.hi) + ")");
  }

  for (const auto& entry : constraints.earliest) {
    if (entry.core < 0 || entry.core >= table.core_count()) continue;
    const PackedPlacement* p = placed[static_cast<std::size_t>(entry.core)];
    if (p == nullptr) continue;
    if (p->start < entry.cycle)
      complain("earliest_start violated: " + placement_label(*p) +
               " starts before cycle " + std::to_string(entry.cycle));
  }

  return issues;
}

void require_valid(const core::TestTimeTable& table,
                   const PackedSchedule& schedule) {
  const auto issues = validate_packed_schedule(table, schedule);
  if (issues.empty()) return;
  std::ostringstream out;
  out << "invalid packed schedule (" << issues.size() << " issue"
      << (issues.size() == 1 ? "" : "s") << "):";
  for (const auto& issue : issues) out << "\n  - " << issue;
  throw std::runtime_error(out.str());
}

PackedSchedule from_architecture(const core::TestTimeTable& table,
                                 const core::TamArchitecture& architecture) {
  PackedSchedule schedule;
  schedule.total_width = architecture.total_width();

  int lane_start = 0;
  for (int tam = 0; tam < architecture.tam_count(); ++tam) {
    const int width = architecture.widths[static_cast<std::size_t>(tam)];
    std::int64_t clock = 0;
    for (int i = 0; i < table.core_count(); ++i) {
      if (architecture.assignment[static_cast<std::size_t>(i)] != tam) continue;
      const std::int64_t duration = table.time(i, width);
      schedule.placements.push_back(
          {i, width, lane_start, clock, clock + duration});
      clock += duration;
    }
    schedule.makespan = std::max(schedule.makespan, clock);
    lane_start += width;
  }

  sort_placements(schedule.placements);
  return schedule;
}

PackedSchedule from_schedule(const core::TamArchitecture& architecture,
                             const core::TestSchedule& schedule) {
  PackedSchedule packed;
  packed.total_width = architecture.total_width();

  // Lane start of each TAM: the widths stacked left to right, exactly as
  // from_architecture lays them out.
  std::vector<int> lane_start(
      static_cast<std::size_t>(architecture.tam_count()), 0);
  int offset = 0;
  for (int tam = 0; tam < architecture.tam_count(); ++tam) {
    lane_start[static_cast<std::size_t>(tam)] = offset;
    offset += architecture.widths[static_cast<std::size_t>(tam)];
  }

  for (const auto& entry : schedule.entries) {
    if (entry.tam < 0 || entry.tam >= architecture.tam_count())
      throw std::invalid_argument(
          "from_schedule: entry references TAM " + std::to_string(entry.tam) +
          " outside the architecture");
    packed.placements.push_back(
        {entry.core, architecture.widths[static_cast<std::size_t>(entry.tam)],
         lane_start[static_cast<std::size_t>(entry.tam)], entry.start,
         entry.end});
    packed.makespan = std::max(packed.makespan, entry.end);
  }

  sort_placements(packed.placements);
  return packed;
}

double strip_utilization(const PackedSchedule& schedule) {
  if (schedule.makespan <= 0 || schedule.total_width < 1) return 0.0;
  std::int64_t covered = 0;
  for (const auto& p : schedule.placements)
    covered += static_cast<std::int64_t>(p.width) * (p.end - p.start);
  return static_cast<double>(covered) /
         (static_cast<double>(schedule.total_width) *
          static_cast<double>(schedule.makespan));
}

std::string render_packed_gantt(const PackedSchedule& schedule,
                                const soc::Soc& soc, int columns) {
  if (columns < 10) columns = 10;
  if (schedule.makespan == 0 || schedule.total_width < 1)
    return "(empty schedule)\n";
  const double scale =
      static_cast<double>(columns) / static_cast<double>(schedule.makespan);

  // Paint every wire's row, then collapse runs of identical rows.
  std::vector<std::string> rows(
      static_cast<std::size_t>(schedule.total_width),
      std::string(static_cast<std::size_t>(columns), '.'));
  for (const auto& p : schedule.placements) {
    auto from = static_cast<int>(static_cast<double>(p.start) * scale);
    auto to = static_cast<int>(static_cast<double>(p.end) * scale);
    from = std::clamp(from, 0, columns - 1);
    to = std::clamp(to, from + 1, columns);
    const char label = static_cast<char>('A' + p.core % 26);
    for (int wire = p.wire; wire < p.wire + p.width; ++wire) {
      auto& row = rows[static_cast<std::size_t>(wire)];
      for (int c = from; c < to; ++c) row[static_cast<std::size_t>(c)] = label;
      row[static_cast<std::size_t>(from)] = '|';
    }
  }

  std::ostringstream out;
  int run_start = 0;
  for (int wire = 0; wire < schedule.total_width; ++wire) {
    const bool last = wire + 1 == schedule.total_width;
    if (!last && rows[static_cast<std::size_t>(wire + 1)] ==
                     rows[static_cast<std::size_t>(run_start)])
      continue;
    if (run_start == wire)
      out << "wire  " << run_start + 1;
    else
      out << "wires " << run_start + 1 << "-" << wire + 1;
    out << "\t" << rows[static_cast<std::size_t>(run_start)] << "\n";
    run_start = wire + 1;
  }
  out << "makespan " << schedule.makespan << "\nlegend:";
  std::vector<bool> mentioned(soc.cores.size(), false);
  for (const auto& p : schedule.placements) {
    const auto idx = static_cast<std::size_t>(p.core);
    if (idx < mentioned.size() && !mentioned[idx]) {
      mentioned[idx] = true;
      out << ' ' << static_cast<char>('A' + p.core % 26) << '='
          << soc.cores[idx].name;
    }
  }
  out << "\n";
  return out.str();
}

}  // namespace wtam::pack
