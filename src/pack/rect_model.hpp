// Rectangle model of wrapper/TAM co-optimization (follow-on work to the
// source paper: Islam et al., arXiv:1008.3320 and Babu et al.,
// arXiv:1008.4448).
//
// Instead of committing a core to the full width of a shared TAM, each
// core i is modeled as a *set of candidate rectangles*: one rectangle
// (w x T_i(w)) per Pareto-optimal wrapper width w (wrapper::pareto_widths
// — widths at which the effective testing time strictly improves). A test
// schedule is then a packing of one rectangle per core into the W-wide
// strip of TAM wires x time; the strip height reached is the SOC testing
// time. Widths between Pareto points only waste wires (the source paper's
// §1 idle-wire argument), so they are never candidates.

#pragma once

#include <cstdint>
#include <vector>

#include "core/test_time_table.hpp"

namespace wtam::pack {

/// One candidate rectangle: core `core` wrapped at `width` wires tests in
/// `time` cycles and occupies width * time wire-cycles of the strip.
struct Rect {
  int core = 0;
  int width = 0;
  std::int64_t time = 0;

  [[nodiscard]] std::int64_t area() const noexcept {
    return static_cast<std::int64_t>(width) * time;
  }
};

/// All cores' candidate rectangles for a strip of `total_width` wires.
struct RectModel {
  int total_width = 0;
  /// candidates[i]: core i's rectangles, widths strictly increasing and
  /// times strictly decreasing (the Pareto front of P_W).
  std::vector<std::vector<Rect>> candidates;

  [[nodiscard]] int core_count() const noexcept {
    return static_cast<int>(candidates.size());
  }

  /// The minimum-area candidate of core `core` (the rectangle a
  /// test-data-volume argument charges the core for).
  [[nodiscard]] const Rect& min_area_rect(int core) const;

  /// Sum over cores of min_area_rect().area() — the strip area any
  /// packing must cover at least (lower-bound LB2 of [8] in rectangle
  /// terms).
  [[nodiscard]] std::int64_t total_min_area() const noexcept;
};

/// Derives the rectangle model from the memoized testing-time table:
/// candidate widths are the strict-improvement points of the table's
/// monotone envelope (identical to wrapper::pareto_widths), candidate
/// times the envelope values (identical to wrapper::best_design's testing
/// time). Throws std::invalid_argument when total_width is outside
/// [1, table.max_width()].
[[nodiscard]] RectModel build_rect_model(const core::TestTimeTable& table,
                                         int total_width);

}  // namespace wtam::pack
