// Rectangle-packing wrapper/TAM co-optimizer (the arXiv:1008.3320 /
// arXiv:1008.4448 line of follow-on work to the source paper).
//
// Each core contributes one rectangle chosen from its Pareto candidates
// (rect_model.hpp); rectangles are packed bottom-left onto the W-wide
// skyline (skyline.hpp). The packer is seeded with several deterministic
// orderings from the rectangle-packing literature (area-decreasing,
// normalized-diagonal-decreasing, bottleneck-time-decreasing,
// width-decreasing), each packed greedily with the candidate that
// finishes earliest, and the best seed is refined by a
// width-adjust-and-repack local search: cores on the critical path are
// forced to wider (faster) candidates, promoted to the front of the
// packing order, or swapped with seeded-random peers, and the whole strip
// is repacked after every move. Fully deterministic for a fixed seed.

#pragma once

#include <cstdint>
#include <string>

#include "core/solve_context.hpp"
#include "core/test_time_table.hpp"
#include "pack/packed_schedule.hpp"
#include "pack/rect_model.hpp"

namespace wtam::pack {

struct RectPackOptions {
  /// Total local-search repack budget, split evenly across the seed
  /// orderings' walkers (each walker runs at least 25 iterations).
  int local_search_iterations = 2000;
  /// Seed for the perturbation stream (results are deterministic per seed).
  std::uint64_t seed = 1;
  /// Cooperative cancellation/deadline, polled once per local-search
  /// iteration. The first seed ordering is always packed greedily before
  /// the first poll, so an interrupted run still returns a complete,
  /// validator-clean schedule. nullptr = run the full budget.
  const core::SolveContext* context = nullptr;
};

struct RectPackResult {
  PackedSchedule schedule;
  std::int64_t makespan = 0;
  std::string seed_ordering;  ///< seed ordering of the walker that found it
  int repacks = 0;            ///< greedy packs performed in total
  double cpu_s = 0.0;
  /// None when the full iteration budget ran; otherwise why the walkers
  /// stopped early (`schedule` is the best found up to that point).
  core::SolveInterrupt interrupt = core::SolveInterrupt::None;
};

/// Packs `table`'s cores into a strip of `total_width` wires. Throws
/// std::invalid_argument when total_width is outside the table's range.
/// The returned schedule always passes validate_packed_schedule.
[[nodiscard]] RectPackResult rectpack_schedule(
    const core::TestTimeTable& table, int total_width,
    const RectPackOptions& options = {});

}  // namespace wtam::pack
