// Rectangle-packing wrapper/TAM co-optimizer (the arXiv:1008.3320 /
// arXiv:1008.4448 line of follow-on work to the source paper).
//
// Each core contributes one rectangle chosen from its Pareto candidates
// (rect_model.hpp); rectangles are packed bottom-left onto the W-wide
// skyline (skyline.hpp). The packer is seeded with several deterministic
// orderings from the rectangle-packing literature (area-decreasing,
// normalized-diagonal-decreasing, bottleneck-time-decreasing,
// width-decreasing), each packed greedily with the candidate that
// finishes earliest, and the best seed is refined by a
// width-adjust-and-repack local search: cores on the critical path are
// forced to wider (faster) candidates, promoted to the front of the
// packing order, or swapped with seeded-random peers, and the whole strip
// is repacked after every move. Fully deterministic for a fixed seed.
//
// The engine is constraint-complete (core::ScheduleConstraints): packing
// orders are projected onto the precedence DAG, every placement goes
// through the skyline's constrained spot search (power-over-time budget,
// fixed/forbidden wire intervals, earliest starts), local-search moves
// that would violate a constraint are skipped, and the hole-filling
// compaction re-validates its repack before offering it. The per-seed
// walkers are embarrassingly parallel: with threads > 1 they run on a
// common::ThreadPool and are merged deterministically in seed order, so
// results are bit-identical to the serial run at any thread count (the
// same contract as the parallel partition search).

#pragma once

#include <cstdint>
#include <string>

#include "core/constraints.hpp"
#include "core/solve_context.hpp"
#include "core/test_time_table.hpp"
#include "pack/packed_schedule.hpp"
#include "pack/rect_model.hpp"

namespace wtam::pack {

struct RectPackOptions {
  /// Total local-search repack budget, split evenly across the seed
  /// orderings' walkers (each walker runs at least 25 iterations).
  int local_search_iterations = 2000;
  /// Seed for the perturbation stream (results are deterministic per seed).
  std::uint64_t seed = 1;
  /// Worker threads for the per-seed walkers (1 = serial; 0 = one per
  /// hardware thread). Results are bit-identical at any thread count.
  int threads = 1;
  /// Scenario constraints the packing must honor; must validate against
  /// the table (rectpack_schedule throws std::invalid_argument
  /// otherwise). Empty = the unconstrained packer, unchanged.
  core::ScheduleConstraints constraints;
  /// Cooperative cancellation/deadline, polled once per local-search
  /// iteration. The first seed ordering is always packed greedily before
  /// the first poll, so an interrupted run still returns a complete,
  /// validator-clean schedule. nullptr = run the full budget.
  const core::SolveContext* context = nullptr;
};

struct RectPackResult {
  PackedSchedule schedule;
  std::int64_t makespan = 0;
  std::string seed_ordering;  ///< seed ordering of the walker that found it
  int repacks = 0;            ///< greedy packs performed in total
  double cpu_s = 0.0;
  /// None when the full iteration budget ran; otherwise why the walkers
  /// stopped early (`schedule` is the best found up to that point).
  core::SolveInterrupt interrupt = core::SolveInterrupt::None;
};

/// Packs `table`'s cores into a strip of `total_width` wires. Throws
/// std::invalid_argument when total_width is outside the table's range or
/// options.constraints do not validate for this model. The returned
/// schedule always passes validate_packed_schedule, including the
/// constraint-aware overload when constraints are set.
[[nodiscard]] RectPackResult rectpack_schedule(
    const core::TestTimeTable& table, int total_width,
    const RectPackOptions& options = {});

}  // namespace wtam::pack
