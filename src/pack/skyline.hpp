// Skyline (bottom-left) placement engine for strip packing.
//
// The strip has `total_width` wires on the x-axis and time growing
// upward. The skyline tracks, per wire, the earliest cycle at which the
// wire is free. Placing a w-wide rectangle means choosing a contiguous
// window of w wires; the rectangle must start at the window's maximum
// free time (rectangles never float below the skyline, so placements can
// never overlap — at the cost of leaving holes, the classic skyline
// trade-off). best_spot returns the bottom-left-justified choice: the
// window with the minimum start time, ties broken to the leftmost wire.
//
// The skyline is also the constraint-checking placement engine of the
// pack subsystem: the SpotQuery form of best_spot restricts the search to
// an allowed wire window, rejects windows touching forbidden intervals,
// floors the start at a precedence/earliest-start bound, and — when a
// power budget is given — delays the start until the strip-wide
// instantaneous power (tracked per placement via the power-aware place
// overload) admits the rectangle for its whole duration. A constrained
// placement may therefore float above the skyline; that is safe (nothing
// below the skyline is ever free) and the hole-filling compaction of the
// rectpack engine reclaims what it can.
//
// The constrained spot search is the engine's single-query hot path, so
// everything invariant per placement or per pack is kept out of it: the
// power profile lives in an incremental core::PowerTimeline updated per
// place() (not rescanned per query) and probed once per query (the
// earliest-feasible-start function is monotone, so the minimal window
// base decides the start for every window), the blocked-wire masks can
// be precomputed once per pack and borrowed through SpotQuery, and the
// per-query scratch (mask fallback, window bases) is reused across
// calls. The scratch makes best_spot logically-const-but-mutable:
// a Skyline is single-owner state (one per packing walker) and is NOT
// safe for concurrent queries on the same instance.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/constraints.hpp"
#include "core/power.hpp"  // core::PowerSpan + the window-feasibility helpers

namespace wtam::pack {

class Skyline {
 public:
  /// Throws std::invalid_argument for total_width < 1.
  explicit Skyline(int total_width);

  [[nodiscard]] int total_width() const noexcept {
    return static_cast<int>(free_time_.size());
  }

  /// Earliest free cycle of a single wire.
  [[nodiscard]] std::int64_t free_time(int wire) const {
    return free_time_[static_cast<std::size_t>(wire)];
  }

  struct Spot {
    int wire = 0;            ///< leftmost wire of the chosen window
    std::int64_t start = 0;  ///< earliest cycle the rectangle can start
  };

  /// Bottom-left spot for a `width`-wide rectangle. Throws
  /// std::invalid_argument when width is outside [1, total_width].
  [[nodiscard]] Spot best_spot(int width) const;

  /// One constrained placement query: the unconstrained search plus every
  /// restriction the constraint layer can impose on a single rectangle.
  struct SpotQuery {
    int width = 1;
    /// Rectangle time extent — the window the power check sweeps.
    std::int64_t duration = 1;
    /// Earliest allowed start (precedence and earliest-start folded in by
    /// the caller).
    std::int64_t min_start = 0;
    /// Allowed wire range [lo, hi); hi = -1 means the whole strip.
    core::WireInterval window{0, -1};
    /// Wire intervals the rectangle must not touch (non-owning; may be
    /// null for none — queries are built in hot packing loops, so the
    /// constraint lists are referenced rather than copied).
    const std::vector<core::WireInterval>* forbidden = nullptr;
    /// This rectangle's power draw and the strip-wide budget; budget 0 =
    /// power-unconstrained.
    std::int64_t power = 0;
    std::int64_t power_budget = 0;
    /// Optional precomputed blocked-wire mask: prefix counts with
    /// blocked_prefix[w] = number of blocked wires < w (size
    /// total_width() + 1). When set, best_spot uses it directly instead
    /// of rebuilding the mask from `window`/`forbidden` — rectpack's
    /// ConstraintPlan builds one per wire-constrained core once per pack.
    /// Non-owning; must be consistent with `window`/`forbidden`.
    const std::vector<int>* blocked_prefix = nullptr;
  };

  /// Constrained bottom-left spot: minimum feasible start, ties to the
  /// leftmost wire. The start is the first cycle >= the window's skyline
  /// and min_start at which the power profile stays within budget for the
  /// whole duration. Returns nullopt when no window of `width` allowed
  /// wires exists (or the rectangle's own power exceeds the budget).
  /// Throws std::invalid_argument for width outside [1, total_width] or a
  /// malformed window.
  [[nodiscard]] std::optional<Spot> best_spot(const SpotQuery& query) const;

  /// Marks wires [wire, wire + width) busy until `end`. The caller places
  /// at a spot from best_spot, so free times only ever grow.
  void place(int wire, int width, std::int64_t end);

  /// Power-aware placement: additionally records the rectangle on the
  /// power timeline consulted by constrained best_spot calls (only when
  /// `power` > 0 — zero-power rectangles cannot affect any budget).
  void place(int wire, int width, std::int64_t start, std::int64_t end,
             std::int64_t power);

  /// Highest skyline point — the makespan of everything placed so far.
  [[nodiscard]] std::int64_t makespan() const noexcept;

  /// The incremental strip power profile fed by the power-aware place()
  /// overload (exposed for tests and benches).
  [[nodiscard]] const core::PowerTimeline& power_timeline() const noexcept {
    return power_timeline_;
  }

  void clear() noexcept;

 private:
  std::vector<std::int64_t> free_time_;
  /// Placed rectangles' contributions to the strip power profile,
  /// maintained incrementally (coalesced breakpoints, O(log n) lookups)
  /// instead of as a rescanned span list.
  core::PowerTimeline power_timeline_;

  // Reusable per-query scratch: zero steady-state allocations on the
  // constrained hot path. Logically const (query-local state only); see
  // the class comment for the single-owner threading contract.
  mutable std::vector<int> monotone_window_;  ///< deque storage, both paths
  mutable std::vector<char> blocked_scratch_;
  mutable std::vector<int> blocked_prefix_scratch_;
  /// Per-left-position window base starts (-1 = window blocked), filled
  /// by the constrained search's first pass so the single power probe and
  /// the leftmost tie-break run without re-walking the skyline.
  mutable std::vector<std::int64_t> window_base_;
};

}  // namespace wtam::pack
