// Skyline (bottom-left) placement engine for strip packing.
//
// The strip has `total_width` wires on the x-axis and time growing
// upward. The skyline tracks, per wire, the earliest cycle at which the
// wire is free. Placing a w-wide rectangle means choosing a contiguous
// window of w wires; the rectangle must start at the window's maximum
// free time (rectangles never float below the skyline, so placements can
// never overlap — at the cost of leaving holes, the classic skyline
// trade-off). best_spot returns the bottom-left-justified choice: the
// window with the minimum start time, ties broken to the leftmost wire.

#pragma once

#include <cstdint>
#include <vector>

namespace wtam::pack {

class Skyline {
 public:
  /// Throws std::invalid_argument for total_width < 1.
  explicit Skyline(int total_width);

  [[nodiscard]] int total_width() const noexcept {
    return static_cast<int>(free_time_.size());
  }

  /// Earliest free cycle of a single wire.
  [[nodiscard]] std::int64_t free_time(int wire) const {
    return free_time_[static_cast<std::size_t>(wire)];
  }

  struct Spot {
    int wire = 0;            ///< leftmost wire of the chosen window
    std::int64_t start = 0;  ///< earliest cycle the rectangle can start
  };

  /// Bottom-left spot for a `width`-wide rectangle. Throws
  /// std::invalid_argument when width is outside [1, total_width].
  [[nodiscard]] Spot best_spot(int width) const;

  /// Marks wires [wire, wire + width) busy until `end`. The caller places
  /// at a spot from best_spot, so free times only ever grow.
  void place(int wire, int width, std::int64_t end);

  /// Highest skyline point — the makespan of everything placed so far.
  [[nodiscard]] std::int64_t makespan() const noexcept;

  void clear() noexcept;

 private:
  std::vector<std::int64_t> free_time_;
};

}  // namespace wtam::pack
