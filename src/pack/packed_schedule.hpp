// Wire-level test schedules ("packings") and their strict validator.
//
// A PackedSchedule places every core's chosen rectangle at an explicit
// wire interval and time interval of the W x time strip. It generalizes
// the fixed-TAM schedules of core/schedule.hpp: a test-bus architecture
// is the special case where the wire intervals are the static TAM lanes
// (see from_architecture), while rectangle packing reassigns wires over
// time. The validator is deliberately strict — every geometric and
// model-consistency property is checked, so optimizer bugs surface as
// hard errors instead of silently optimistic makespans.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/constraints.hpp"
#include "core/schedule.hpp"
#include "core/tam_types.hpp"
#include "core/test_time_table.hpp"
#include "soc/soc.hpp"

namespace wtam::pack {

/// One core's test session: wires [wire, wire + width) for cycles
/// [start, end).
struct PackedPlacement {
  int core = 0;
  int width = 0;
  int wire = 0;
  std::int64_t start = 0;
  std::int64_t end = 0;
};

struct PackedSchedule {
  int total_width = 0;
  std::vector<PackedPlacement> placements;  ///< sorted by (start, wire)
  std::int64_t makespan = 0;
};

/// Sorts `placements` into the canonical (start, wire) order that
/// PackedSchedule::placements documents; every producer must use this so
/// schedules from different backends compare field-by-field.
void sort_placements(std::vector<PackedPlacement>& placements);

/// Checks `schedule` against the model and returns every violation found
/// (empty = valid):
///   * total_width within the table's range;
///   * every core placed exactly once, no unknown core indices;
///   * each placement inside the strip: wire >= 0, width >= 1,
///     wire + width <= total_width, 0 <= start < end;
///   * durations honest: end - start == table.time(core, width);
///   * no two placements overlap in both wires and time;
///   * makespan == max end over placements.
[[nodiscard]] std::vector<std::string> validate_packed_schedule(
    const core::TestTimeTable& table, const PackedSchedule& schedule);

/// Constraint-aware validation: every geometric check above plus one
/// violation class per constraint kind, so a schedule is only "valid"
/// when it honors the whole ScheduleConstraints block:
///   * the instantaneous power of concurrently running placements never
///     exceeds the budget (exact sweep over the profile);
///   * every precedence pair holds (after.start >= before.end);
///   * fixed-interval cores stay inside their interval;
///   * forbidden intervals are never touched;
///   * earliest-start floors are respected.
/// Malformed constraints (bad indices, infeasible budget, ...) are
/// reported as violations too — a schedule cannot be "valid under"
/// constraints that do not validate. Empty constraints reduce to the
/// geometric validator exactly.
[[nodiscard]] std::vector<std::string> validate_packed_schedule(
    const core::TestTimeTable& table, const PackedSchedule& schedule,
    const core::ScheduleConstraints& constraints);

/// Exact peak of the schedule's instantaneous power profile under
/// `power` (0 for an empty schedule). Throws std::invalid_argument when
/// a placement's core has no power entry.
[[nodiscard]] std::int64_t packed_peak_power(const PackedSchedule& schedule,
                                             const core::PowerVector& power);

/// Throws std::runtime_error listing all violations; no-op when valid.
void require_valid(const core::TestTimeTable& table,
                   const PackedSchedule& schedule);

/// Lowers a test-bus architecture to a packing: TAM j becomes the static
/// wire lane [sum of widths before j, +width_j), with its cores placed
/// sequentially in assignment order. The result has the architecture's
/// testing time as makespan and always validates.
[[nodiscard]] PackedSchedule from_architecture(
    const core::TestTimeTable& table, const core::TamArchitecture& architecture);

/// Lowers an explicit test-bus schedule (possibly with power-constrained
/// start delays, core::schedule_with_power_limit) to a packing: each
/// entry keeps its scheduled [start, end) on its TAM's static wire lane.
/// Throws std::invalid_argument when an entry's TAM index is outside the
/// architecture.
[[nodiscard]] PackedSchedule from_schedule(
    const core::TamArchitecture& architecture,
    const core::TestSchedule& schedule);

/// Fraction of the occupied strip (total_width * makespan wire-cycles)
/// covered by placements — the rectangle-packing efficiency metric.
[[nodiscard]] double strip_utilization(const PackedSchedule& schedule);

/// ASCII Gantt chart of the packing: time on the x-axis, one row per wire
/// (runs of wires with identical occupancy are collapsed into "wires a-b"
/// rows), `columns` wide. Cores are labeled A..Z cyclically with a legend,
/// as in core::render_gantt.
[[nodiscard]] std::string render_packed_gantt(const PackedSchedule& schedule,
                                              const soc::Soc& soc,
                                              int columns = 64);

}  // namespace wtam::pack
