#include "pack/skyline.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace wtam::pack {

Skyline::Skyline(int total_width) {
  if (total_width < 1)
    throw std::invalid_argument("Skyline: total_width must be >= 1");
  free_time_.assign(static_cast<std::size_t>(total_width), 0);
}

Skyline::Spot Skyline::best_spot(int width) const {
  if (width < 1 || width > total_width())
    throw std::invalid_argument("Skyline::best_spot: width outside strip");

  // Sliding-window maximum of the per-wire free times (monotone deque of
  // wire indices whose free times decrease), minimized over windows.
  Spot best{0, 0};
  bool have_best = false;
  std::deque<int> window;  // candidate maxima, front = current max
  for (int wire = 0; wire < total_width(); ++wire) {
    while (!window.empty() &&
           free_time_[static_cast<std::size_t>(window.back())] <=
               free_time_[static_cast<std::size_t>(wire)])
      window.pop_back();
    window.push_back(wire);
    const int left = wire - width + 1;
    if (left < 0) continue;
    if (window.front() < left) window.pop_front();
    const std::int64_t start =
        free_time_[static_cast<std::size_t>(window.front())];
    if (!have_best || start < best.start) {
      best = {left, start};
      have_best = true;
    }
  }
  return best;
}

std::int64_t Skyline::earliest_power_feasible(std::int64_t from,
                                              std::int64_t duration,
                                              std::int64_t power,
                                              std::int64_t budget) const {
  if (budget <= 0 || power_spans_.empty()) return from;

  // Candidate starts: `from` itself and every recorded span end after it
  // (the strip power only ever drops at span ends, so the earliest
  // feasible start is one of these). Feasibility per candidate is the
  // shared window check (core::power_window_fits).
  std::vector<std::int64_t> candidates{from};
  for (const core::PowerSpan& span : power_spans_)
    if (span.end > from) candidates.push_back(span.end);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  for (const std::int64_t start : candidates)
    if (core::power_window_fits(power_spans_, start, duration, power, budget))
      return start;
  // Unreachable for power <= budget: past the last span end the profile
  // is zero and that end is a candidate. Defensive fallback:
  std::int64_t horizon = from;
  for (const core::PowerSpan& span : power_spans_)
    horizon = std::max(horizon, span.end);
  return horizon;
}

std::optional<Skyline::Spot> Skyline::best_spot(const SpotQuery& query) const {
  if (query.width < 1 || query.width > total_width())
    throw std::invalid_argument("Skyline::best_spot: width outside strip");
  const int window_lo = query.window.lo;
  const int window_hi =
      query.window.hi < 0 ? total_width() : query.window.hi;
  if (window_lo < 0 || window_lo >= window_hi || window_hi > total_width())
    throw std::invalid_argument("Skyline::best_spot: malformed wire window");
  if (query.duration < 1)
    throw std::invalid_argument("Skyline::best_spot: duration must be >= 1");
  if (query.power_budget > 0 && query.power > query.power_budget)
    return std::nullopt;  // this rectangle alone can never fit the budget

  // Wires a window may not touch: outside the allowed range or inside a
  // forbidden interval. A prefix count turns the per-window check into
  // O(1); the common power-only query (full window, nothing forbidden)
  // skips the mask entirely.
  const bool wires_constrained =
      window_lo != 0 || window_hi != total_width() ||
      (query.forbidden != nullptr && !query.forbidden->empty());
  std::vector<int> blocked_prefix;
  if (wires_constrained) {
    blocked_prefix.assign(static_cast<std::size_t>(total_width()) + 1, 0);
    std::vector<char> blocked(static_cast<std::size_t>(total_width()), 0);
    for (int wire = 0; wire < total_width(); ++wire)
      if (wire < window_lo || wire >= window_hi)
        blocked[static_cast<std::size_t>(wire)] = 1;
    if (query.forbidden != nullptr)
      for (const core::WireInterval& interval : *query.forbidden)
        for (int wire = std::max(0, interval.lo);
             wire < std::min(total_width(), interval.hi); ++wire)
          blocked[static_cast<std::size_t>(wire)] = 1;
    for (int wire = 0; wire < total_width(); ++wire)
      blocked_prefix[static_cast<std::size_t>(wire) + 1] =
          blocked_prefix[static_cast<std::size_t>(wire)] +
          blocked[static_cast<std::size_t>(wire)];
  }

  // The power-feasible start depends only on the window's base time, and
  // the skyline takes few distinct values across a strip — memoize per
  // base so the span sweep runs once per distinct time, not per wire.
  std::vector<std::pair<std::int64_t, std::int64_t>> feasible_cache;
  const auto feasible_start = [&](std::int64_t from) {
    if (query.power_budget <= 0) return from;
    for (const auto& [base, start] : feasible_cache)
      if (base == from) return start;
    const std::int64_t start = earliest_power_feasible(
        from, query.duration, query.power, query.power_budget);
    feasible_cache.emplace_back(from, start);
    return start;
  };

  std::optional<Spot> best;
  std::deque<int> window;  // monotone deque, as in the unconstrained search
  for (int wire = 0; wire < total_width(); ++wire) {
    while (!window.empty() &&
           free_time_[static_cast<std::size_t>(window.back())] <=
               free_time_[static_cast<std::size_t>(wire)])
      window.pop_back();
    window.push_back(wire);
    const int left = wire - query.width + 1;
    if (left < 0) continue;
    if (window.front() < left) window.pop_front();
    if (wires_constrained &&
        blocked_prefix[static_cast<std::size_t>(wire) + 1] -
                blocked_prefix[static_cast<std::size_t>(left)] !=
            0)
      continue;  // window touches a blocked wire
    const std::int64_t skyline_start =
        free_time_[static_cast<std::size_t>(window.front())];
    const std::int64_t start =
        feasible_start(std::max(skyline_start, query.min_start));
    if (!best.has_value() || start < best->start) best = Spot{left, start};
  }
  return best;
}

void Skyline::place(int wire, int width, std::int64_t end) {
  if (wire < 0 || width < 1 || wire + width > total_width())
    throw std::invalid_argument("Skyline::place: window outside strip");
  for (int w = wire; w < wire + width; ++w) {
    auto& t = free_time_[static_cast<std::size_t>(w)];
    t = std::max(t, end);
  }
}

void Skyline::place(int wire, int width, std::int64_t start, std::int64_t end,
                    std::int64_t power) {
  place(wire, width, end);
  if (power > 0 && start < end) power_spans_.push_back({start, end, power});
}

std::int64_t Skyline::makespan() const noexcept {
  return *std::max_element(free_time_.begin(), free_time_.end());
}

void Skyline::clear() noexcept {
  std::fill(free_time_.begin(), free_time_.end(), 0);
  power_spans_.clear();
}

}  // namespace wtam::pack
