#include "pack/skyline.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace wtam::pack {

Skyline::Skyline(int total_width) {
  if (total_width < 1)
    throw std::invalid_argument("Skyline: total_width must be >= 1");
  free_time_.assign(static_cast<std::size_t>(total_width), 0);
}

Skyline::Spot Skyline::best_spot(int width) const {
  if (width < 1 || width > total_width())
    throw std::invalid_argument("Skyline::best_spot: width outside strip");

  // Sliding-window maximum of the per-wire free times (monotone deque of
  // wire indices whose free times decrease), minimized over windows.
  Spot best{0, 0};
  bool have_best = false;
  std::deque<int> window;  // candidate maxima, front = current max
  for (int wire = 0; wire < total_width(); ++wire) {
    while (!window.empty() &&
           free_time_[static_cast<std::size_t>(window.back())] <=
               free_time_[static_cast<std::size_t>(wire)])
      window.pop_back();
    window.push_back(wire);
    const int left = wire - width + 1;
    if (left < 0) continue;
    if (window.front() < left) window.pop_front();
    const std::int64_t start =
        free_time_[static_cast<std::size_t>(window.front())];
    if (!have_best || start < best.start) {
      best = {left, start};
      have_best = true;
    }
  }
  return best;
}

void Skyline::place(int wire, int width, std::int64_t end) {
  if (wire < 0 || width < 1 || wire + width > total_width())
    throw std::invalid_argument("Skyline::place: window outside strip");
  for (int w = wire; w < wire + width; ++w) {
    auto& t = free_time_[static_cast<std::size_t>(w)];
    t = std::max(t, end);
  }
}

std::int64_t Skyline::makespan() const noexcept {
  return *std::max_element(free_time_.begin(), free_time_.end());
}

void Skyline::clear() noexcept {
  std::fill(free_time_.begin(), free_time_.end(), 0);
}

}  // namespace wtam::pack
