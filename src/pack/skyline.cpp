#include "pack/skyline.hpp"

#include <algorithm>
#include <stdexcept>

namespace wtam::pack {

Skyline::Skyline(int total_width) {
  if (total_width < 1)
    throw std::invalid_argument("Skyline: total_width must be >= 1");
  free_time_.assign(static_cast<std::size_t>(total_width), 0);
}

Skyline::Spot Skyline::best_spot(int width) const {
  if (width < 1 || width > total_width())
    throw std::invalid_argument("Skyline::best_spot: width outside strip");

  // Sliding-window maximum of the per-wire free times (monotone deque of
  // wire indices whose free times decrease), minimized over windows. The
  // deque lives in reusable scratch: head/tail indices over a flat array
  // (total pushes <= total_width, so it never overflows).
  monotone_window_.resize(static_cast<std::size_t>(total_width()));
  std::size_t head = 0;
  std::size_t tail = 0;  // live candidates in [head, tail)
  Spot best{0, 0};
  bool have_best = false;
  for (int wire = 0; wire < total_width(); ++wire) {
    while (head < tail &&
           free_time_[static_cast<std::size_t>(monotone_window_[tail - 1])] <=
               free_time_[static_cast<std::size_t>(wire)])
      --tail;
    monotone_window_[tail++] = wire;
    const int left = wire - width + 1;
    if (left < 0) continue;
    if (monotone_window_[head] < left) ++head;
    const std::int64_t start =
        free_time_[static_cast<std::size_t>(monotone_window_[head])];
    if (!have_best || start < best.start) {
      best = {left, start};
      have_best = true;
    }
  }
  return best;
}

std::optional<Skyline::Spot> Skyline::best_spot(const SpotQuery& query) const {
  if (query.width < 1 || query.width > total_width())
    throw std::invalid_argument("Skyline::best_spot: width outside strip");
  const int window_lo = query.window.lo;
  const int window_hi =
      query.window.hi < 0 ? total_width() : query.window.hi;
  if (window_lo < 0 || window_lo >= window_hi || window_hi > total_width())
    throw std::invalid_argument("Skyline::best_spot: malformed wire window");
  if (query.duration < 1)
    throw std::invalid_argument("Skyline::best_spot: duration must be >= 1");
  if (query.blocked_prefix != nullptr &&
      query.blocked_prefix->size() !=
          static_cast<std::size_t>(total_width()) + 1)
    throw std::invalid_argument(
        "Skyline::best_spot: blocked_prefix size != total_width + 1");
  if (query.power_budget > 0 && query.power > query.power_budget)
    return std::nullopt;  // this rectangle alone can never fit the budget

  // Wires a window may not touch: outside the allowed range or inside a
  // forbidden interval. A prefix count turns the per-window check into
  // O(1). The caller can hand in a mask precomputed once per pack
  // (query.blocked_prefix); otherwise it is rebuilt here into reusable
  // scratch. The common power-only query (full window, nothing forbidden)
  // skips the mask entirely.
  const bool wires_constrained =
      query.blocked_prefix != nullptr || window_lo != 0 ||
      window_hi != total_width() ||
      (query.forbidden != nullptr && !query.forbidden->empty());
  const std::vector<int>* blocked_prefix = query.blocked_prefix;
  if (wires_constrained && blocked_prefix == nullptr) {
    blocked_prefix_scratch_.assign(
        static_cast<std::size_t>(total_width()) + 1, 0);
    blocked_scratch_.assign(static_cast<std::size_t>(total_width()), 0);
    for (int wire = 0; wire < total_width(); ++wire)
      if (wire < window_lo || wire >= window_hi)
        blocked_scratch_[static_cast<std::size_t>(wire)] = 1;
    if (query.forbidden != nullptr)
      for (const core::WireInterval& interval : *query.forbidden)
        for (int wire = std::max(0, interval.lo);
             wire < std::min(total_width(), interval.hi); ++wire)
          blocked_scratch_[static_cast<std::size_t>(wire)] = 1;
    for (int wire = 0; wire < total_width(); ++wire)
      blocked_prefix_scratch_[static_cast<std::size_t>(wire) + 1] =
          blocked_prefix_scratch_[static_cast<std::size_t>(wire)] +
          blocked_scratch_[static_cast<std::size_t>(wire)];
    blocked_prefix = &blocked_prefix_scratch_;
  }

  // Pass 1: each allowed window's base start (its skyline maximum floored
  // at min_start), into reusable scratch; the minimum base wins the power
  // probe. Let f(base) = earliest power-feasible start >= base. f is
  // non-decreasing, f(base) >= base, and f's result is itself feasible
  // (f(f(base)) == f(base)), so the best achievable start is
  // s* = f(min base) and f(base) == s* exactly when base <= s*. That
  // turns the old per-window power evaluation into ONE timeline probe per
  // query, and the old leftmost tie-break (first window achieving the
  // minimal start, windows scanned left to right) into "leftmost window
  // with base <= s*" — bit-identical results.
  monotone_window_.resize(static_cast<std::size_t>(total_width()));
  window_base_.assign(static_cast<std::size_t>(total_width()), -1);
  std::size_t head = 0;
  std::size_t tail = 0;  // monotone deque over scratch, as above
  std::int64_t min_base = -1;
  for (int wire = 0; wire < total_width(); ++wire) {
    while (head < tail &&
           free_time_[static_cast<std::size_t>(monotone_window_[tail - 1])] <=
               free_time_[static_cast<std::size_t>(wire)])
      --tail;
    monotone_window_[tail++] = wire;
    const int left = wire - query.width + 1;
    if (left < 0) continue;
    if (monotone_window_[head] < left) ++head;
    if (wires_constrained &&
        (*blocked_prefix)[static_cast<std::size_t>(wire) + 1] -
                (*blocked_prefix)[static_cast<std::size_t>(left)] !=
            0)
      continue;  // window touches a blocked wire
    const std::int64_t skyline_start =
        free_time_[static_cast<std::size_t>(monotone_window_[head])];
    const std::int64_t base = std::max(skyline_start, query.min_start);
    window_base_[static_cast<std::size_t>(left)] = base;
    if (min_base < 0 || base < min_base) min_base = base;
  }
  if (min_base < 0) return std::nullopt;  // no window of allowed wires

  const std::int64_t start =
      query.power_budget <= 0
          ? min_base
          : power_timeline_.earliest_fit(min_base, query.duration,
                                         query.power, query.power_budget);
  // Pass 2: leftmost window whose base admits `start`.
  for (int left = 0; left <= total_width() - query.width; ++left) {
    const std::int64_t base = window_base_[static_cast<std::size_t>(left)];
    if (base >= 0 && base <= start) return Spot{left, start};
  }
  return std::nullopt;  // unreachable: the min-base window qualifies
}

void Skyline::place(int wire, int width, std::int64_t end) {
  if (wire < 0 || width < 1 || wire + width > total_width())
    throw std::invalid_argument("Skyline::place: window outside strip");
  for (int w = wire; w < wire + width; ++w) {
    auto& t = free_time_[static_cast<std::size_t>(w)];
    t = std::max(t, end);
  }
}

void Skyline::place(int wire, int width, std::int64_t start, std::int64_t end,
                    std::int64_t power) {
  place(wire, width, end);
  if (power > 0 && start < end) power_timeline_.add(start, end, power);
}

std::int64_t Skyline::makespan() const noexcept {
  return *std::max_element(free_time_.begin(), free_time_.end());
}

void Skyline::clear() noexcept {
  std::fill(free_time_.begin(), free_time_.end(), 0);
  power_timeline_.clear();
}

}  // namespace wtam::pack
