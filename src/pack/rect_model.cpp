#include "pack/rect_model.hpp"

#include <stdexcept>

namespace wtam::pack {

const Rect& RectModel::min_area_rect(int core) const {
  const auto& rects = candidates.at(static_cast<std::size_t>(core));
  const Rect* best = &rects.front();
  for (const Rect& rect : rects)
    if (rect.area() < best->area()) best = &rect;
  return *best;
}

std::int64_t RectModel::total_min_area() const noexcept {
  std::int64_t total = 0;
  for (int i = 0; i < core_count(); ++i) total += min_area_rect(i).area();
  return total;
}

RectModel build_rect_model(const core::TestTimeTable& table, int total_width) {
  if (total_width < 1 || total_width > table.max_width())
    throw std::invalid_argument(
        "build_rect_model: total_width outside the table's range");

  RectModel model;
  model.total_width = total_width;
  model.candidates.resize(static_cast<std::size_t>(table.core_count()));
  for (int i = 0; i < table.core_count(); ++i) {
    auto& rects = model.candidates[static_cast<std::size_t>(i)];
    // The table's envelope is min over narrower widths of the raw wrapper
    // time, so its strict-improvement points are exactly
    // wrapper::pareto_widths — read them off the memoized table instead of
    // re-running the wrapper-design pass per core and width.
    std::int64_t last = -1;
    for (int w = 1; w <= total_width; ++w) {
      const std::int64_t t = table.time(i, w);
      if (last < 0 || t < last) {
        rects.push_back({i, w, t});
        last = t;
      }
    }
  }
  return model;
}

}  // namespace wtam::pack
