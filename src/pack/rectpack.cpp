#include "pack/rectpack.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "pack/skyline.hpp"

namespace wtam::pack {

namespace {

/// A packing decision: the order cores are placed in, plus the smallest
/// candidate index each core may use (forcing a core to wider/faster
/// rectangles is the width-adjust move of the local search).
struct PackState {
  std::vector<int> order;
  std::vector<int> min_candidate;
};

PackedSchedule greedy_pack(const RectModel& model, const PackState& state) {
  Skyline skyline(model.total_width);
  PackedSchedule schedule;
  schedule.total_width = model.total_width;
  schedule.placements.reserve(state.order.size());

  for (const int core : state.order) {
    const auto& rects = model.candidates[static_cast<std::size_t>(core)];
    const int first =
        std::min(state.min_candidate[static_cast<std::size_t>(core)],
                 static_cast<int>(rects.size()) - 1);
    // Among the allowed candidates, take the one that finishes earliest;
    // break ties toward the smaller footprint (area, then width), which
    // leaves more skyline for later cores.
    const Rect* chosen = nullptr;
    Skyline::Spot chosen_spot{};
    std::int64_t chosen_finish = 0;
    for (std::size_t c = static_cast<std::size_t>(first); c < rects.size();
         ++c) {
      const Rect& rect = rects[c];
      const auto spot = skyline.best_spot(rect.width);
      const std::int64_t finish = spot.start + rect.time;
      const bool better =
          chosen == nullptr || finish < chosen_finish ||
          (finish == chosen_finish &&
           (rect.area() < chosen->area() ||
            (rect.area() == chosen->area() && rect.width < chosen->width)));
      if (better) {
        chosen = &rect;
        chosen_spot = spot;
        chosen_finish = finish;
      }
    }
    skyline.place(chosen_spot.wire, chosen->width, chosen_finish);
    schedule.placements.push_back({core, chosen->width, chosen_spot.wire,
                                   chosen_spot.start, chosen_finish});
    schedule.makespan = std::max(schedule.makespan, chosen_finish);
  }

  sort_placements(schedule.placements);
  return schedule;
}

/// Bottom-left packing *with hole filling*: unlike the skyline, a
/// rectangle may start below previously raised wires, in any hole large
/// enough to hold it. Candidate start times are 0 and the end times of
/// already-placed rectangles (a bottom-left placement always abuts one);
/// the earliest feasible start with the leftmost fitting wire window
/// wins. Quadratic in placements, so it is used to compact final
/// solutions rather than inside the local-search loop.
PackedSchedule holefill_pack(const RectModel& model, const PackState& state) {
  PackedSchedule schedule;
  schedule.total_width = model.total_width;
  schedule.placements.reserve(state.order.size());

  const int width_total = model.total_width;
  std::vector<char> wire_free(static_cast<std::size_t>(width_total), 1);

  // Finds the leftmost wire window of `width` free wires during
  // [start, start + time); returns -1 when none exists.
  const auto leftmost_window = [&](std::int64_t start, std::int64_t time,
                                   int width) {
    std::fill(wire_free.begin(), wire_free.end(), char{1});
    for (const auto& p : schedule.placements) {
      if (p.start >= start + time || start >= p.end) continue;
      for (int w = p.wire; w < p.wire + p.width; ++w)
        wire_free[static_cast<std::size_t>(w)] = 0;
    }
    int run = 0;
    for (int w = 0; w < width_total; ++w) {
      run = wire_free[static_cast<std::size_t>(w)] ? run + 1 : 0;
      if (run >= width) return w - width + 1;
    }
    return -1;
  };

  std::vector<std::int64_t> starts;
  for (const int core : state.order) {
    starts.assign(1, 0);
    for (const auto& p : schedule.placements) starts.push_back(p.end);
    std::sort(starts.begin(), starts.end());
    starts.erase(std::unique(starts.begin(), starts.end()), starts.end());

    const auto& rects = model.candidates[static_cast<std::size_t>(core)];
    const int first =
        std::min(state.min_candidate[static_cast<std::size_t>(core)],
                 static_cast<int>(rects.size()) - 1);
    PackedPlacement chosen{};
    bool have_chosen = false;
    for (std::size_t c = static_cast<std::size_t>(first); c < rects.size();
         ++c) {
      const Rect& rect = rects[c];
      for (const std::int64_t start : starts) {
        if (have_chosen && start + rect.time > chosen.end) break;
        const int wire = leftmost_window(start, rect.time, rect.width);
        if (wire < 0) continue;
        const PackedPlacement candidate{core, rect.width, wire, start,
                                        start + rect.time};
        const bool better =
            !have_chosen || candidate.end < chosen.end ||
            (candidate.end == chosen.end && rect.width < chosen.width);
        if (better) {
          chosen = candidate;
          have_chosen = true;
        }
        break;  // later starts of the same rectangle only finish later
      }
    }
    schedule.placements.push_back(chosen);
    schedule.makespan = std::max(schedule.makespan, chosen.end);
  }

  sort_placements(schedule.placements);
  return schedule;
}

/// The deterministic seed orderings of the rectangle-packing literature.
std::vector<std::pair<std::string, std::vector<int>>> seed_orders(
    const RectModel& model, const core::TestTimeTable& table) {
  const int n = model.core_count();
  std::vector<int> base(static_cast<std::size_t>(n));
  std::iota(base.begin(), base.end(), 0);

  const auto sorted_by = [&base](auto key_desc) {
    std::vector<int> order = base;
    std::stable_sort(order.begin(), order.end(),
                     [&](int a, int b) { return key_desc(a) > key_desc(b); });
    return order;
  };

  // Normalization for the diagonal ordering: widths against the strip,
  // times against the area lower bound on the strip height.
  const double height_scale = std::max<double>(
      1.0, static_cast<double>(model.total_min_area()) /
               static_cast<double>(model.total_width));

  std::vector<std::pair<std::string, std::vector<int>>> orders;
  orders.emplace_back("area-decreasing", sorted_by([&](int c) {
                        return static_cast<double>(
                            model.min_area_rect(c).area());
                      }));
  orders.emplace_back("diagonal-decreasing", sorted_by([&](int c) {
                        const Rect& r = model.min_area_rect(c);
                        const double w = static_cast<double>(r.width) /
                                         model.total_width;
                        const double t =
                            static_cast<double>(r.time) / height_scale;
                        return w * w + t * t;
                      }));
  orders.emplace_back("time-decreasing", sorted_by([&](int c) {
                        return static_cast<double>(
                            table.time(c, model.total_width));
                      }));
  orders.emplace_back("width-decreasing", sorted_by([&](int c) {
                        return static_cast<double>(model.min_area_rect(c).width);
                      }));
  return orders;
}

}  // namespace

RectPackResult rectpack_schedule(const core::TestTimeTable& table,
                                 int total_width,
                                 const RectPackOptions& options) {
  common::Stopwatch watch;
  const RectModel model = build_rect_model(table, total_width);
  const int n = model.core_count();

  RectPackResult result;
  const auto offer = [&result](PackedSchedule schedule,
                               const std::string* seed_name = nullptr) {
    if (result.schedule.placements.empty() ||
        schedule.makespan < result.makespan) {
      result.makespan = schedule.makespan;
      result.schedule = std::move(schedule);
      if (seed_name != nullptr) result.seed_ordering = *seed_name;
    }
  };

  auto seeds = seed_orders(model, table);
  const int per_seed =
      options.local_search_iterations <= 0
          ? 0
          : std::max(25, options.local_search_iterations /
                             static_cast<int>(seeds.size()));

  // One independent hill-climbing walker per seed ordering (multi-start
  // beats a single longer walk on these small, plateau-heavy landscapes).
  // Each walker draws from its own RNG stream, so a larger iteration
  // budget only ever extends trajectories and the best schedule seen
  // during the walks is monotone in the budget. (The final hole-fill
  // compaction runs on the budget-dependent end state, so overall
  // monotonicity is near-certain rather than a hard guarantee.) The
  // walker accepts sideways moves; the best schedule seen anywhere is
  // tracked separately.
  std::uint64_t seed_state = options.seed;
  for (const auto& [seed_name, seed_order] : seeds) {
    common::Rng rng(common::splitmix64(seed_state));
    PackState current{seed_order,
                      std::vector<int>(static_cast<std::size_t>(n), 0)};
    PackedSchedule walker_schedule = greedy_pack(model, current);
    ++result.repacks;
    offer(walker_schedule, &seed_name);

    for (int iter = 0; iter < per_seed; ++iter) {
      // The first seed's greedy pack has already been offered, so the
      // best-so-far schedule is complete whenever the context fires.
      if (options.context != nullptr) {
        result.interrupt = options.context->poll();
        if (result.interrupt != core::SolveInterrupt::None) break;
      }
      PackState trial = current;

      std::vector<int> critical;
      for (const auto& p : walker_schedule.placements)
        if (p.end == walker_schedule.makespan) critical.push_back(p.core);
      const int pick_critical =
          critical[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(critical.size()) - 1))];

      switch (rng.uniform_int(0, 4)) {
        case 0: {  // force a critical core to a wider (faster) rectangle
          auto& floor =
              trial.min_candidate[static_cast<std::size_t>(pick_critical)];
          const int last = static_cast<int>(
              model.candidates[static_cast<std::size_t>(pick_critical)]
                  .size() -
              1);
          floor = std::min(floor + 1, last);
          break;
        }
        case 1: {  // promote a critical core to the front of the order
          auto& order = trial.order;
          order.erase(std::find(order.begin(), order.end(), pick_critical));
          order.insert(order.begin(), pick_critical);
          break;
        }
        case 2: {  // relax a random core back to its full candidate set
          const auto core =
              static_cast<std::size_t>(rng.uniform_int(0, n - 1));
          trial.min_candidate[core] = 0;
          break;
        }
        case 3: {  // swap two random order positions
          const auto a = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
          const auto b = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
          std::swap(trial.order[a], trial.order[b]);
          break;
        }
        case 4: {  // compaction: re-place in the walker's start-time order
          std::vector<int> order;
          order.reserve(static_cast<std::size_t>(n));
          for (const auto& p : walker_schedule.placements)
            order.push_back(p.core);
          trial.order = std::move(order);
          break;
        }
      }

      PackedSchedule schedule = greedy_pack(model, trial);
      ++result.repacks;
      if (schedule.makespan <= walker_schedule.makespan) {  // accept sideways
        current = std::move(trial);
        walker_schedule = std::move(schedule);
        offer(walker_schedule, &seed_name);
      }
    }

    // Per-walker compaction: repack the walker's final state and its
    // start-time order with hole filling, which can reclaim strip area
    // the skyline had to write off. Skipped once interrupted — the
    // quadratic compaction is exactly the kind of tail work a deadline
    // is meant to cut.
    if (result.interrupt != core::SolveInterrupt::None) break;
    PackState by_start = current;
    by_start.order.clear();
    for (const auto& p : walker_schedule.placements)
      by_start.order.push_back(p.core);
    for (const PackState& state : {current, by_start}) {
      PackedSchedule schedule = holefill_pack(model, state);
      ++result.repacks;
      offer(std::move(schedule), &seed_name);
    }
  }

  result.cpu_s = watch.elapsed_s();
  return result;
}

}  // namespace wtam::pack
