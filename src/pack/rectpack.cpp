#include "pack/rectpack.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/power.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pack/skyline.hpp"

namespace wtam::pack {

namespace {

/// A packing decision: the order cores are placed in, plus the smallest
/// candidate index each core may use (forcing a core to wider/faster
/// rectangles is the width-adjust move of the local search).
struct PackState {
  std::vector<int> order;
  std::vector<int> min_candidate;
};

/// core::ScheduleConstraints lowered to the per-core lookups the packing
/// loops consume. `any == false` means the engines take their original
/// unconstrained code paths, byte for byte.
struct ConstraintPlan {
  bool any = false;
  std::vector<std::vector<int>> preds;              ///< predecessors per core
  std::vector<std::int64_t> earliest;               ///< start floor per core
  std::vector<core::WireInterval> window;           ///< fixed window per core
  std::vector<std::vector<core::WireInterval>> forbidden;  ///< per core
  /// Per-core wire masks, built once per pack so the spot-search hot path
  /// never rebuilds them per query: wire_allowed[c][w] = 1 iff core c may
  /// touch wire w (empty = unconstrained wires for that core), and
  /// blocked_prefix[c] the matching prefix counts in the form
  /// Skyline::SpotQuery borrows (empty likewise).
  std::vector<std::vector<char>> wire_allowed;
  std::vector<std::vector<int>> blocked_prefix;
  core::PowerVector power;  ///< per-core draw; empty = power-unconstrained
  std::int64_t budget = 0;

  [[nodiscard]] std::int64_t core_power(int core) const noexcept {
    return power.empty() ? 0 : power[static_cast<std::size_t>(core)];
  }

  /// The precomputed mask for SpotQuery, or nullptr when the core's wires
  /// are unconstrained.
  [[nodiscard]] const std::vector<int>* core_blocked_prefix(
      int core) const noexcept {
    const auto& mask = blocked_prefix[static_cast<std::size_t>(core)];
    return mask.empty() ? nullptr : &mask;
  }
};

ConstraintPlan build_plan(const core::ScheduleConstraints& constraints,
                          int core_count, int total_width) {
  ConstraintPlan plan;
  plan.any = !constraints.empty();
  if (!plan.any) return plan;
  const auto n = static_cast<std::size_t>(core_count);
  plan.preds.resize(n);
  plan.earliest.assign(n, 0);
  plan.window.assign(n, core::WireInterval{0, total_width});
  plan.forbidden.resize(n);
  plan.wire_allowed.resize(n);
  plan.blocked_prefix.resize(n);
  for (const auto& pair : constraints.precedence)
    plan.preds[static_cast<std::size_t>(pair.after)].push_back(pair.before);
  for (const auto& entry : constraints.earliest) {
    auto& floor_cycle = plan.earliest[static_cast<std::size_t>(entry.core)];
    floor_cycle = std::max(floor_cycle, entry.cycle);
  }
  for (const auto& entry : constraints.fixed)
    plan.window[static_cast<std::size_t>(entry.core)] = entry.wires;
  for (const auto& entry : constraints.forbidden)
    plan.forbidden[static_cast<std::size_t>(entry.core)].push_back(
        entry.wires);
  if (constraints.has_power()) {
    plan.power = constraints.power;
    plan.budget = constraints.power_budget;
  }
  // Lower each wire-constrained core's window + forbidden intervals to a
  // bitmap and its blocked-prefix counts, once; cores with free wires
  // keep empty masks and take the unmasked query path.
  const auto w_total = static_cast<std::size_t>(total_width);
  for (std::size_t c = 0; c < n; ++c) {
    const core::WireInterval window = plan.window[c];
    if (window.lo == 0 && window.hi == total_width &&
        plan.forbidden[c].empty())
      continue;
    auto& allowed = plan.wire_allowed[c];
    allowed.assign(w_total, 1);
    for (int w = 0; w < total_width; ++w)
      if (w < window.lo || w >= window.hi)
        allowed[static_cast<std::size_t>(w)] = 0;
    for (const core::WireInterval& interval : plan.forbidden[c])
      for (int w = std::max(0, interval.lo);
           w < std::min(total_width, interval.hi); ++w)
        allowed[static_cast<std::size_t>(w)] = 0;
    auto& prefix = plan.blocked_prefix[c];
    prefix.assign(w_total + 1, 0);
    for (std::size_t w = 0; w < w_total; ++w)
      prefix[w + 1] = prefix[w] + (allowed[w] ? 0 : 1);
  }
  return plan;
}

/// Projects `order` onto the precedence DAG: the earliest core in `order`
/// whose predecessors are all emitted goes next, so any move-perturbed
/// order stays precedence-feasible while deviating as little as possible
/// from the walker's intent. Validated constraints are acyclic, so every
/// core is emitted.
std::vector<int> topo_project(const std::vector<int>& order,
                              const ConstraintPlan& plan) {
  const std::size_t n = order.size();
  std::vector<int> projected;
  projected.reserve(n);
  std::vector<char> used(n, 0);
  std::vector<char> emitted(n, 0);
  for (std::size_t step = 0; step < n; ++step) {
    bool advanced = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const int core = order[i];
      const auto& preds = plan.preds[static_cast<std::size_t>(core)];
      const bool ready =
          std::all_of(preds.begin(), preds.end(), [&](int pred) {
            return emitted[static_cast<std::size_t>(pred)] != 0;
          });
      if (!ready) continue;
      projected.push_back(core);
      used[i] = 1;
      emitted[static_cast<std::size_t>(core)] = 1;
      advanced = true;
      break;
    }
    if (!advanced) break;  // cycle — validate_constraints rejects these
  }
  for (std::size_t i = 0; i < n; ++i)  // defensive: never drop a core
    if (!used[i]) projected.push_back(order[i]);
  return projected;
}

/// Start floor of `core` given its constraints and the predecessors
/// already placed (`core_end` holds their finish times).
std::int64_t start_floor(int core, const ConstraintPlan& plan,
                         const std::vector<std::int64_t>& core_end) {
  std::int64_t floor_cycle = plan.earliest[static_cast<std::size_t>(core)];
  for (const int pred : plan.preds[static_cast<std::size_t>(core)])
    floor_cycle =
        std::max(floor_cycle, core_end[static_cast<std::size_t>(pred)]);
  return floor_cycle;
}

PackedSchedule greedy_pack(const RectModel& model, const PackState& state,
                           const ConstraintPlan& plan) {
  Skyline skyline(model.total_width);
  PackedSchedule schedule;
  schedule.total_width = model.total_width;
  schedule.placements.reserve(state.order.size());

  if (!plan.any) {
    for (const int core : state.order) {
      const auto& rects = model.candidates[static_cast<std::size_t>(core)];
      const int first =
          std::min(state.min_candidate[static_cast<std::size_t>(core)],
                   static_cast<int>(rects.size()) - 1);
      // Among the allowed candidates, take the one that finishes earliest;
      // break ties toward the smaller footprint (area, then width), which
      // leaves more skyline for later cores.
      const Rect* chosen = nullptr;
      Skyline::Spot chosen_spot{};
      std::int64_t chosen_finish = 0;
      for (std::size_t c = static_cast<std::size_t>(first); c < rects.size();
           ++c) {
        const Rect& rect = rects[c];
        const auto spot = skyline.best_spot(rect.width);
        const std::int64_t finish = spot.start + rect.time;
        const bool better =
            chosen == nullptr || finish < chosen_finish ||
            (finish == chosen_finish &&
             (rect.area() < chosen->area() ||
              (rect.area() == chosen->area() && rect.width < chosen->width)));
        if (better) {
          chosen = &rect;
          chosen_spot = spot;
          chosen_finish = finish;
        }
      }
      skyline.place(chosen_spot.wire, chosen->width, chosen_finish);
      schedule.placements.push_back({core, chosen->width, chosen_spot.wire,
                                     chosen_spot.start, chosen_finish});
      schedule.makespan = std::max(schedule.makespan, chosen_finish);
    }
    sort_placements(schedule.placements);
    return schedule;
  }

  // Constrained pack: precedence-projected order, every placement through
  // the skyline's constrained spot search.
  std::vector<std::int64_t> core_end(state.order.size(), 0);
  for (const int core : topo_project(state.order, plan)) {
    const auto& rects = model.candidates[static_cast<std::size_t>(core)];
    const int first =
        std::min(state.min_candidate[static_cast<std::size_t>(core)],
                 static_cast<int>(rects.size()) - 1);
    const std::int64_t min_start = start_floor(core, plan, core_end);
    const std::int64_t power = plan.core_power(core);

    // Everything but the rectangle's own extent is invariant across the
    // core's candidates — built once, with the plan's precomputed
    // blocked-wire mask borrowed instead of rebuilt per query.
    Skyline::SpotQuery query;
    query.min_start = min_start;
    query.window = plan.window[static_cast<std::size_t>(core)];
    query.forbidden = &plan.forbidden[static_cast<std::size_t>(core)];
    query.power = power;
    query.power_budget = plan.budget;
    query.blocked_prefix = plan.core_blocked_prefix(core);

    const Rect* chosen = nullptr;
    Skyline::Spot chosen_spot{};
    std::int64_t chosen_finish = 0;
    const auto scan = [&](std::size_t from) {
      for (std::size_t c = from; c < rects.size(); ++c) {
        const Rect& rect = rects[c];
        query.width = rect.width;
        query.duration = rect.time;
        const auto spot = skyline.best_spot(query);
        if (!spot.has_value()) continue;  // constraint-infeasible candidate
        const std::int64_t finish = spot->start + rect.time;
        const bool better =
            chosen == nullptr || finish < chosen_finish ||
            (finish == chosen_finish &&
             (rect.area() < chosen->area() ||
              (rect.area() == chosen->area() && rect.width < chosen->width)));
        if (better) {
          chosen = &rect;
          chosen_spot = *spot;
          chosen_finish = finish;
        }
      }
    };
    scan(static_cast<std::size_t>(first));
    // A width-adjust floor can exclude every candidate that fits the
    // core's fixed window; relax it rather than fail (the width-1 Pareto
    // candidate is always feasible for validated constraints).
    if (chosen == nullptr && first > 0) scan(0);
    if (chosen == nullptr)
      throw std::logic_error(
          "rectpack: no feasible placement for core " + std::to_string(core) +
          " (constraints should have been validated)");

    skyline.place(chosen_spot.wire, chosen->width, chosen_spot.start,
                  chosen_finish, power);
    schedule.placements.push_back({core, chosen->width, chosen_spot.wire,
                                   chosen_spot.start, chosen_finish});
    schedule.makespan = std::max(schedule.makespan, chosen_finish);
    core_end[static_cast<std::size_t>(core)] = chosen_finish;
  }

  sort_placements(schedule.placements);
  return schedule;
}

/// Bottom-left packing *with hole filling*: unlike the skyline, a
/// rectangle may start below previously raised wires, in any hole large
/// enough to hold it. Candidate start times are 0 (or the core's
/// constraint floor) and the end times of already-placed rectangles (a
/// bottom-left placement always abuts one); the earliest feasible start
/// with the leftmost fitting wire window wins. Quadratic in placements,
/// so it is used to compact final solutions rather than inside the
/// local-search loop. Under constraints the wire scan masks fixed and
/// forbidden intervals and every candidate start is power-checked.
PackedSchedule holefill_pack(const RectModel& model, const PackState& state,
                             const ConstraintPlan& plan) {
  PackedSchedule schedule;
  schedule.total_width = model.total_width;
  schedule.placements.reserve(state.order.size());

  const int width_total = model.total_width;
  std::vector<char> wire_free(static_cast<std::size_t>(width_total), 1);

  // Finds the leftmost wire window of `width` free wires during
  // [start, start + time) for `core`; returns -1 when none exists.
  const auto leftmost_window = [&](std::int64_t start, std::int64_t time,
                                   int width, int core) {
    // Seed from the plan's precomputed per-core bitmap (built once per
    // pack) instead of re-deriving window + forbidden wires per call.
    if (plan.any &&
        !plan.wire_allowed[static_cast<std::size_t>(core)].empty()) {
      const auto& allowed = plan.wire_allowed[static_cast<std::size_t>(core)];
      std::copy(allowed.begin(), allowed.end(), wire_free.begin());
    } else {
      std::fill(wire_free.begin(), wire_free.end(), char{1});
    }
    for (const auto& p : schedule.placements) {
      if (p.start >= start + time || start >= p.end) continue;
      for (int w = p.wire; w < p.wire + p.width; ++w)
        wire_free[static_cast<std::size_t>(w)] = 0;
    }
    int run = 0;
    for (int w = 0; w < width_total; ++w) {
      run = wire_free[static_cast<std::size_t>(w)] ? run + 1 : 0;
      if (run >= width) return w - width + 1;
    }
    return -1;
  };

  const std::vector<int> order =
      plan.any ? topo_project(state.order, plan) : state.order;
  std::vector<std::int64_t> core_end(state.order.size(), 0);

  // Power profile of what is already placed, mirrored from
  // schedule.placements (the hole-filler cannot rely on the skyline's
  // power timeline, so it keeps its own). Only fed under a budget;
  // feasibility is the timeline's window_fits — same values as the old
  // span-list core::power_window_fits check.
  core::PowerTimeline power_timeline;

  std::vector<std::int64_t> starts;
  for (const int core : order) {
    const std::int64_t min_start =
        plan.any ? start_floor(core, plan, core_end) : 0;
    const std::int64_t power = plan.any ? plan.core_power(core) : 0;
    starts.assign(1, min_start);
    for (const auto& p : schedule.placements)
      if (p.end > min_start) starts.push_back(p.end);
    std::sort(starts.begin(), starts.end());
    starts.erase(std::unique(starts.begin(), starts.end()), starts.end());

    const auto& rects = model.candidates[static_cast<std::size_t>(core)];
    const int first =
        std::min(state.min_candidate[static_cast<std::size_t>(core)],
                 static_cast<int>(rects.size()) - 1);
    PackedPlacement chosen{};
    bool have_chosen = false;
    const auto scan = [&](std::size_t from) {
      for (std::size_t c = from; c < rects.size(); ++c) {
        const Rect& rect = rects[c];
        for (const std::int64_t start : starts) {
          if (have_chosen && start + rect.time > chosen.end) break;
          if (!power_timeline.window_fits(start, rect.time, power,
                                          plan.budget))
            continue;  // a later start may have power headroom
          const int wire = leftmost_window(start, rect.time, rect.width, core);
          if (wire < 0) continue;
          const PackedPlacement candidate{core, rect.width, wire, start,
                                          start + rect.time};
          const bool better =
              !have_chosen || candidate.end < chosen.end ||
              (candidate.end == chosen.end && rect.width < chosen.width);
          if (better) {
            chosen = candidate;
            have_chosen = true;
          }
          break;  // later starts of the same rectangle only finish later
        }
      }
    };
    scan(static_cast<std::size_t>(first));
    if (!have_chosen && plan.any && first > 0) scan(0);
    if (!have_chosen)
      throw std::logic_error(
          "rectpack: hole-filling found no feasible placement for core " +
          std::to_string(core) +
          " (constraints should have been validated)");
    schedule.placements.push_back(chosen);
    if (plan.budget > 0 && power > 0 && chosen.start < chosen.end)
      power_timeline.add(chosen.start, chosen.end, power);
    schedule.makespan = std::max(schedule.makespan, chosen.end);
    core_end[static_cast<std::size_t>(core)] = chosen.end;
  }

  sort_placements(schedule.placements);
  return schedule;
}

/// The deterministic seed orderings of the rectangle-packing literature.
std::vector<std::pair<std::string, std::vector<int>>> seed_orders(
    const RectModel& model, const core::TestTimeTable& table) {
  const int n = model.core_count();
  std::vector<int> base(static_cast<std::size_t>(n));
  std::iota(base.begin(), base.end(), 0);

  const auto sorted_by = [&base](auto key_desc) {
    std::vector<int> order = base;
    std::stable_sort(order.begin(), order.end(),
                     [&](int a, int b) { return key_desc(a) > key_desc(b); });
    return order;
  };

  // Normalization for the diagonal ordering: widths against the strip,
  // times against the area lower bound on the strip height.
  const double height_scale = std::max<double>(
      1.0, static_cast<double>(model.total_min_area()) /
               static_cast<double>(model.total_width));

  std::vector<std::pair<std::string, std::vector<int>>> orders;
  orders.emplace_back("area-decreasing", sorted_by([&](int c) {
                        return static_cast<double>(
                            model.min_area_rect(c).area());
                      }));
  orders.emplace_back("diagonal-decreasing", sorted_by([&](int c) {
                        const Rect& r = model.min_area_rect(c);
                        const double w = static_cast<double>(r.width) /
                                         model.total_width;
                        const double t =
                            static_cast<double>(r.time) / height_scale;
                        return w * w + t * t;
                      }));
  orders.emplace_back("time-decreasing", sorted_by([&](int c) {
                        return static_cast<double>(
                            table.time(c, model.total_width));
                      }));
  orders.emplace_back("width-decreasing", sorted_by([&](int c) {
                        return static_cast<double>(model.min_area_rect(c).width);
                      }));
  return orders;
}

/// One seed ordering's hill-climbing walk, self-contained so walkers can
/// run serially or on a pool with identical results: walker-local
/// best-so-far tracking (strict improvement, so the earliest achiever of
/// the final makespan is kept — exactly what interleaved serial offers
/// produced) plus the walker's own repack count and interrupt verdict.
struct WalkerOutcome {
  PackedSchedule schedule;
  std::int64_t makespan = 0;
  int repacks = 0;
  core::SolveInterrupt interrupt = core::SolveInterrupt::None;
};

/// `rng_seed` is the walker's pre-derived stream seed (the k-th output of
/// the splitmix64 sequence over options.seed, derived in seed order by
/// the caller so serial and pooled runs draw identical streams).
WalkerOutcome run_walker(const RectModel& model,
                         const core::TestTimeTable& table,
                         const ConstraintPlan& plan,
                         const core::ScheduleConstraints& constraints,
                         const std::vector<int>& seed_order, int per_seed,
                         std::uint64_t rng_seed,
                         const core::SolveContext* context) {
  const int n = model.core_count();
  WalkerOutcome out;
  const auto offer = [&out](PackedSchedule schedule) {
    if (out.schedule.placements.empty() || schedule.makespan < out.makespan) {
      out.makespan = schedule.makespan;
      out.schedule = std::move(schedule);
    }
  };

  common::Rng rng(rng_seed);
  PackState current{seed_order,
                    std::vector<int>(static_cast<std::size_t>(n), 0)};
  PackedSchedule walker_schedule = greedy_pack(model, current, plan);
  ++out.repacks;
  offer(walker_schedule);

  for (int iter = 0; iter < per_seed; ++iter) {
    // The first greedy pack has already been offered, so the best-so-far
    // schedule is complete whenever the context fires.
    if (context != nullptr) {
      out.interrupt = context->poll();
      if (out.interrupt != core::SolveInterrupt::None) break;
    }
    PackState trial = current;

    std::vector<int> critical;
    for (const auto& p : walker_schedule.placements)
      if (p.end == walker_schedule.makespan) critical.push_back(p.core);
    const int pick_critical =
        critical[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(critical.size()) - 1))];

    switch (rng.uniform_int(0, 4)) {
      case 0: {  // force a critical core to a wider (faster) rectangle
        auto& floor =
            trial.min_candidate[static_cast<std::size_t>(pick_critical)];
        const auto& rects =
            model.candidates[static_cast<std::size_t>(pick_critical)];
        const int last = static_cast<int>(rects.size() - 1);
        const int next = std::min(floor + 1, last);
        if (plan.any) {
          // Skip the move when every candidate from the new floor is
          // wider than the core's fixed window — it could only violate.
          const core::WireInterval window =
              plan.window[static_cast<std::size_t>(pick_critical)];
          if (rects[static_cast<std::size_t>(next)].width >
              window.hi - window.lo)
            break;
        }
        floor = next;
        break;
      }
      case 1: {  // promote a critical core to the front of the order
        auto& order = trial.order;
        order.erase(std::find(order.begin(), order.end(), pick_critical));
        order.insert(order.begin(), pick_critical);
        break;
      }
      case 2: {  // relax a random core back to its full candidate set
        const auto core =
            static_cast<std::size_t>(rng.uniform_int(0, n - 1));
        trial.min_candidate[core] = 0;
        break;
      }
      case 3: {  // swap two random order positions
        const auto a = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
        const auto b = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
        std::swap(trial.order[a], trial.order[b]);
        break;
      }
      case 4: {  // compaction: re-place in the walker's start-time order
        std::vector<int> order;
        order.reserve(static_cast<std::size_t>(n));
        for (const auto& p : walker_schedule.placements)
          order.push_back(p.core);
        trial.order = std::move(order);
        break;
      }
    }

    PackedSchedule schedule = greedy_pack(model, trial, plan);
    ++out.repacks;
    if (schedule.makespan <= walker_schedule.makespan) {  // accept sideways
      current = std::move(trial);
      walker_schedule = std::move(schedule);
      offer(walker_schedule);
    }
  }

  // Per-walker compaction: repack the walker's final state and its
  // start-time order with hole filling, which can reclaim strip area
  // the skyline had to write off. Skipped once interrupted — the
  // quadratic compaction is exactly the kind of tail work a deadline
  // is meant to cut.
  if (out.interrupt == core::SolveInterrupt::None) {
    PackState by_start = current;
    by_start.order.clear();
    for (const auto& p : walker_schedule.placements)
      by_start.order.push_back(p.core);
    for (const PackState& state : {current, by_start}) {
      PackedSchedule schedule = holefill_pack(model, state, plan);
      ++out.repacks;
      // The hole-filling repack re-validates under the constraints; an
      // offer that would regress the honored constraint set is dropped
      // (defense in depth — construction should already guarantee it).
      if (plan.any &&
          !validate_packed_schedule(table, schedule, constraints).empty())
        continue;
      offer(std::move(schedule));
    }
  }
  return out;
}

}  // namespace

RectPackResult rectpack_schedule(const core::TestTimeTable& table,
                                 int total_width,
                                 const RectPackOptions& options) {
  // Whole-engine cost is both reported per call (cpu_s) and recorded
  // process-wide; per-walker pack time is traced when the job asks.
  static obs::Histogram& pack_hist =
      obs::MetricsRegistry::instance().histogram("pack.rectpack_ns");
  common::ScopedTimer<obs::Histogram> watch(&pack_hist);
  obs::SolveTrace* trace =
      options.context != nullptr ? options.context->trace : nullptr;
  if (!options.constraints.empty()) {
    const auto issues = core::validate_constraints(
        options.constraints, table.core_count(), total_width);
    if (!issues.empty())
      throw std::invalid_argument("rectpack_schedule: invalid constraints: " +
                                  issues.front());
  }
  const RectModel model = build_rect_model(table, total_width);
  const ConstraintPlan plan =
      build_plan(options.constraints, table.core_count(), total_width);

  auto seeds = seed_orders(model, table);
  const int per_seed =
      options.local_search_iterations <= 0
          ? 0
          : std::max(25, options.local_search_iterations /
                             static_cast<int>(seeds.size()));

  // One independent hill-climbing walker per seed ordering (multi-start
  // beats a single longer walk on these small, plateau-heavy landscapes).
  // Each walker draws from its own RNG stream, so a larger iteration
  // budget only ever extends trajectories and the best schedule seen
  // during the walks is monotone in the budget. (The final hole-fill
  // compaction runs on the budget-dependent end state, so overall
  // monotonicity is near-certain rather than a hard guarantee.) Walkers
  // are merged strictly in seed order with strict-improvement preference,
  // which reproduces the serial offer sequence exactly — so the parallel
  // path below is bit-identical to the serial one.
  RectPackResult result;
  const auto merge = [&result](WalkerOutcome&& outcome,
                               const std::string& seed_name) {
    result.repacks += outcome.repacks;
    if (result.interrupt == core::SolveInterrupt::None)
      result.interrupt = outcome.interrupt;
    if (result.schedule.placements.empty() ||
        outcome.makespan < result.makespan) {
      result.makespan = outcome.makespan;
      result.schedule = std::move(outcome.schedule);
      result.seed_ordering = seed_name;
    }
  };

  // Per-walker RNG stream seeds, derived in seed order from one
  // splitmix64 sequence — identical whether walkers then run serially or
  // on the pool.
  std::uint64_t seed_state = options.seed;
  std::vector<std::uint64_t> walker_seeds(seeds.size());
  for (auto& walker_seed : walker_seeds)
    walker_seed = common::splitmix64(seed_state);

  const int threads =
      options.threads == 0
          ? common::ThreadPool::hardware_threads()
          : options.threads;
  if (threads <= 1) {
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      obs::SpanTimer span(trace, "walker:" + seeds[i].first);
      WalkerOutcome outcome =
          run_walker(model, table, plan, options.constraints,
                     seeds[i].second, per_seed, walker_seeds[i],
                     options.context);
      span.finish();
      const bool interrupted =
          outcome.interrupt != core::SolveInterrupt::None;
      merge(std::move(outcome), seeds[i].first);
      if (interrupted) break;  // stop launching walkers, like the old loop
    }
  } else {
    const auto walker_count = seeds.size();
    std::vector<WalkerOutcome> outcomes(walker_count);
    // Each walker writes only its own outcomes[i] slot before arriving
    // at the latch, whose lock hand-off publishes the writes to the
    // waiting thread below.
    common::CompletionLatch latch;
    common::ThreadPool pool(
        std::min(threads, static_cast<int>(walker_count)));
    for (std::size_t i = 0; i < walker_count; ++i) {
      pool.submit([&, i] {
        try {
          // Concurrent recording into the shared trace is the designed
          // case (SolveTrace locks internally; TSan covers this path).
          obs::SpanTimer span(trace, "walker:" + seeds[i].first);
          outcomes[i] =
              run_walker(model, table, plan, options.constraints,
                         seeds[i].second, per_seed, walker_seeds[i],
                         options.context);
        } catch (...) {
          // Recorded for the owner to rethrow after the join — a walker
          // must not throw through the pool.
          latch.record_error(std::current_exception());
        }
        latch.arrive();
      });
    }
    latch.wait(walker_count);
    if (std::exception_ptr error = latch.take_error())
      std::rethrow_exception(error);
    for (std::size_t i = 0; i < walker_count; ++i) {
      // Mirror the serial loop: an interrupted walker is the last one
      // merged (serial never launches the rest), so the deterministic
      // pre-cancelled case yields byte-identical results at any thread
      // count. Mid-run interrupts are timing-dependent either way.
      const bool interrupted =
          outcomes[i].interrupt != core::SolveInterrupt::None;
      merge(std::move(outcomes[i]), seeds[i].first);
      if (interrupted) break;
    }
  }

  result.cpu_s = watch.elapsed_s();
  return result;
}

}  // namespace wtam::pack
