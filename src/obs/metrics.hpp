// Process-wide metrics: named counters, gauges, and log-bucketed latency
// histograms with quantile extraction.
//
// Design constraints, in order:
//   * Exactness — counters must report precisely the number of events
//     recorded, under any interleaving. The serve CI smoke asserts
//     scraped counters equal jobs submitted.
//   * Contention — metrics are recorded from the solver's worker pool, so
//     a single hot mutex would serialize the very workload the histograms
//     time. Counters and histograms shard state across kMetricSlots
//     cache-line-aligned slots; each thread hashes to a stable slot, so a
//     record is one uncontended lock round-trip (~15–25 ns, see the
//     metrics_overhead kernels in BENCH_micro.json). Snapshots lock each
//     slot in turn and merge.
//   * Discipline — every shared field is WTAM_GUARDED_BY its slot mutex,
//     same as the rest of the codebase; no raw atomics spread around
//     (CancelToken stays the one documented lock-free exception).
//
// Recording is always-on and cheap; *reporting* is opt-in (--metrics,
// the serve `metrics` verb), so solver results stay byte-identical
// whether or not anyone is scraping.
//
// Histogram bucketing is HDR-style log-linear: values 0..7 land in exact
// unit buckets; above that each power-of-two octave splits into
// 2^kHistogramSubBits = 8 sub-buckets, giving <= 12.5% relative error on
// any recorded value and a fixed 488-bucket footprint for the full
// non-negative int64 range. Quantiles interpolate within a bucket and
// clamp to the observed [min, max].

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"

namespace wtam::obs {

/// Number of per-thread shards in each Counter/Histogram.
inline constexpr std::size_t kMetricSlots = 16;

/// Sub-bucket resolution: each power-of-two octave splits into
/// 2^kHistogramSubBits buckets.
inline constexpr int kHistogramSubBits = 3;

/// Total buckets covering [0, INT64_MAX]: 8 exact unit buckets for 0..7
/// plus 60 octaves (exponents 3..62) of 8 sub-buckets each.
inline constexpr int kHistogramBuckets =
    (1 << kHistogramSubBits) * (64 - kHistogramSubBits - 1) +
    (1 << kHistogramSubBits);

namespace detail {
/// Stable per-thread shard index in [0, kMetricSlots).
[[nodiscard]] std::size_t thread_slot() noexcept;
}  // namespace detail

/// Monotonically increasing event count. increment() takes one
/// uncontended slot lock; value() merges all slots.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void increment(std::int64_t delta = 1);
  [[nodiscard]] std::int64_t value() const;
  void reset();

 private:
  struct alignas(64) Slot {
    mutable common::Mutex mu;
    std::int64_t value WTAM_GUARDED_BY(mu) = 0;
  };
  std::array<Slot, kMetricSlots> slots_;
};

/// Point-in-time level (in-flight jobs, queue depth). Unsharded: gauges
/// are written at job boundaries, not in hot loops.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t value);
  void add(std::int64_t delta);
  [[nodiscard]] std::int64_t value() const;
  void reset();

 private:
  mutable common::Mutex mu_;
  std::int64_t value_ WTAM_GUARDED_BY(mu_) = 0;
};

/// Merged view of one histogram: totals plus the full bucket vector
/// (indexable with Histogram::bucket_index/bucket_bounds).
struct HistogramData {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  ///< 0 when count == 0
  std::int64_t max = 0;  ///< 0 when count == 0
  std::vector<std::uint64_t> buckets;

  /// Quantile estimate for q in [0, 1]: cumulative walk to the target
  /// rank, linear interpolation within the bucket, clamped to the
  /// observed [min, max]. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

/// Log-bucketed distribution of non-negative values (latencies in ns by
/// convention — name metrics `*_ns`). Negative inputs clamp to 0.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::int64_t value);
  /// Alias used by common::ScopedTimer — reads as "record nanoseconds".
  void record_ns(std::int64_t ns) { record(ns); }

  [[nodiscard]] HistogramData merged() const;
  void reset();

  /// Bucket index for a value (negatives clamp to 0). Exposed for the
  /// bucket-boundary tests.
  [[nodiscard]] static int bucket_index(std::int64_t value) noexcept;
  /// Half-open value range [first, second) covered by a bucket; the top
  /// bucket's upper bound clamps to INT64_MAX.
  [[nodiscard]] static std::pair<std::int64_t, std::int64_t> bucket_bounds(
      int index) noexcept;

 private:
  struct alignas(64) Slot {
    mutable common::Mutex mu;
    std::int64_t count WTAM_GUARDED_BY(mu) = 0;
    std::int64_t sum WTAM_GUARDED_BY(mu) = 0;
    std::int64_t min WTAM_GUARDED_BY(mu) = 0;
    std::int64_t max WTAM_GUARDED_BY(mu) = 0;
    std::array<std::uint64_t, kHistogramBuckets> buckets
        WTAM_GUARDED_BY(mu){};
  };
  std::array<Slot, kMetricSlots> slots_;
};

/// One named counter value in a snapshot.
struct CounterValue {
  std::string name;
  std::int64_t value = 0;
};

/// One named gauge value in a snapshot.
struct GaugeValue {
  std::string name;
  std::int64_t value = 0;
};

/// One named histogram summary in a snapshot.
struct HistogramValue {
  std::string name;
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Point-in-time copy of every registered metric, names sorted, so two
/// snapshots of the same state render identically.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

/// Register-on-first-use registry. counter()/gauge()/histogram() return
/// references that stay valid for the registry's lifetime, so call sites
/// can cache them (function-local static) and skip the name lookup on
/// the hot path. instance() is the process-wide registry every tool
/// scrapes; independent registries can be constructed for tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] static MetricsRegistry& instance();

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zeroes every registered metric (names stay registered).
  void reset();

 private:
  mutable common::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      WTAM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ WTAM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      WTAM_GUARDED_BY(mu_);
};

/// Maps a registry metric name onto the Prometheus grammar: every
/// character outside [a-zA-Z0-9_:] becomes '_' and a leading digit is
/// prefixed. Exposed so other renderers of merged fleet metrics
/// (serve::Router's prometheus verb) sanitize identically.
[[nodiscard]] std::string sanitize_metric_name(const std::string& name);

/// Prometheus text exposition (version 0.0.4) of a snapshot: counters
/// and gauges as typed samples, histograms as summaries with quantile
/// labels plus _sum/_count. Metric names are sanitized ('.' and any
/// other illegal character become '_').
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

}  // namespace wtam::obs
