// JSON rendering of a MetricsSnapshot — kept out of obs/metrics.hpp so
// the metrics core depends only on common/ while the document model
// (api::JsonValue, a leaf header) stays a rendering concern.

#pragma once

#include "api/json_value.hpp"
#include "obs/metrics.hpp"

namespace wtam::obs {

/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
/// sum, min, max, mean, p50, p90, p95, p99}}} — names in sorted order
/// (snapshot order), so equal snapshots dump byte-identically.
[[nodiscard]] api::JsonValue metrics_to_json(const MetricsSnapshot& snapshot);

}  // namespace wtam::obs
