#include "obs/trace.hpp"

#include <algorithm>

namespace wtam::obs {

void SolveTrace::record(std::string stage, std::int64_t start_ns,
                        std::int64_t duration_ns) {
  TraceSpan span;
  span.stage = std::move(stage);
  span.start_ns = start_ns;
  span.duration_ns = duration_ns;
  common::MutexLock lock(mu_);
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> SolveTrace::spans() const {
  std::vector<TraceSpan> out;
  {
    common::MutexLock lock(mu_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.stage < b.stage;
            });
  return out;
}

}  // namespace wtam::obs
