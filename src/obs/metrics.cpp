#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

namespace wtam::obs {

namespace detail {

std::size_t thread_slot() noexcept {
  // Threads take slots round-robin; a thread keeps its slot for life, so
  // per-thread recording never migrates between shards mid-sequence.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricSlots;
  return slot;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Counter

void Counter::increment(std::int64_t delta) {
  Slot& slot = slots_[detail::thread_slot()];
  common::MutexLock lock(slot.mu);
  slot.value += delta;
}

std::int64_t Counter::value() const {
  std::int64_t total = 0;
  for (const Slot& slot : slots_) {
    common::MutexLock lock(slot.mu);
    total += slot.value;
  }
  return total;
}

void Counter::reset() {
  for (Slot& slot : slots_) {
    common::MutexLock lock(slot.mu);
    slot.value = 0;
  }
}

// ---------------------------------------------------------------------------
// Gauge

void Gauge::set(std::int64_t value) {
  common::MutexLock lock(mu_);
  value_ = value;
}

void Gauge::add(std::int64_t delta) {
  common::MutexLock lock(mu_);
  value_ += delta;
}

std::int64_t Gauge::value() const {
  common::MutexLock lock(mu_);
  return value_;
}

void Gauge::reset() {
  common::MutexLock lock(mu_);
  value_ = 0;
}

// ---------------------------------------------------------------------------
// Histogram

int Histogram::bucket_index(std::int64_t value) noexcept {
  if (value < 0) value = 0;
  const auto v = static_cast<std::uint64_t>(value);
  constexpr std::uint64_t kSub = 1u << kHistogramSubBits;
  if (v < kSub) return static_cast<int>(v);  // exact unit buckets 0..7
  // Highest set bit selects the octave; the kHistogramSubBits bits below
  // it select the sub-bucket within the octave.
  const int exp = std::bit_width(v) - 1;  // >= kHistogramSubBits
  const int shift = exp - kHistogramSubBits;
  const auto sub = static_cast<int>((v >> shift) & (kSub - 1));
  return ((exp - kHistogramSubBits) << kHistogramSubBits) + sub +
         static_cast<int>(kSub);
}

std::pair<std::int64_t, std::int64_t> Histogram::bucket_bounds(
    int index) noexcept {
  constexpr int kSub = 1 << kHistogramSubBits;
  if (index < 0) index = 0;
  if (index >= kHistogramBuckets) index = kHistogramBuckets - 1;
  if (index < kSub) return {index, index + 1};
  const int block = (index - kSub) >> kHistogramSubBits;
  const int sub = (index - kSub) & (kSub - 1);
  const auto lo = static_cast<std::int64_t>(
      static_cast<std::uint64_t>(kSub + sub) << block);
  const std::uint64_t width = std::uint64_t{1} << block;
  const std::uint64_t hi = static_cast<std::uint64_t>(lo) + width;
  constexpr auto kMax =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
  return {lo, hi > kMax ? std::numeric_limits<std::int64_t>::max()
                        : static_cast<std::int64_t>(hi)};
}

void Histogram::record(std::int64_t value) {
  if (value < 0) value = 0;
  const int index = bucket_index(value);
  Slot& slot = slots_[detail::thread_slot()];
  common::MutexLock lock(slot.mu);
  if (slot.count == 0 || value < slot.min) slot.min = value;
  if (slot.count == 0 || value > slot.max) slot.max = value;
  slot.count += 1;
  slot.sum += value;
  slot.buckets[static_cast<std::size_t>(index)] += 1;
}

HistogramData Histogram::merged() const {
  HistogramData data;
  data.buckets.assign(kHistogramBuckets, 0);
  bool any = false;
  for (const Slot& slot : slots_) {
    common::MutexLock lock(slot.mu);
    if (slot.count == 0) continue;
    if (!any || slot.min < data.min) data.min = slot.min;
    if (!any || slot.max > data.max) data.max = slot.max;
    any = true;
    data.count += slot.count;
    data.sum += slot.sum;
    for (int i = 0; i < kHistogramBuckets; ++i)
      data.buckets[static_cast<std::size_t>(i)] +=
          slot.buckets[static_cast<std::size_t>(i)];
  }
  return data;
}

void Histogram::reset() {
  for (Slot& slot : slots_) {
    common::MutexLock lock(slot.mu);
    slot.count = 0;
    slot.sum = 0;
    slot.min = 0;
    slot.max = 0;
    slot.buckets.fill(0);
  }
}

double HistogramData::quantile(double q) const noexcept {
  if (count <= 0 || buckets.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Target rank in [1, count]; the bucket holding that rank is the
  // quantile bucket, with linear interpolation inside it.
  const double target = std::max(1.0, q * static_cast<double>(count));
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double before = cumulative;
    cumulative += static_cast<double>(buckets[i]);
    if (cumulative + 1e-9 < target) continue;
    const auto [lo, hi] = Histogram::bucket_bounds(static_cast<int>(i));
    const double fraction =
        (target - before) / static_cast<double>(buckets[i]);
    double estimate = static_cast<double>(lo) +
                      (static_cast<double>(hi) - static_cast<double>(lo)) *
                          fraction;
    // Clamp to the observed range: a single sample reports itself
    // exactly rather than its bucket midpoint.
    estimate = std::max(estimate, static_cast<double>(min));
    estimate = std::min(estimate, static_cast<double>(max));
    return estimate;
  }
  return static_cast<double>(max);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  common::MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  common::MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  common::MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  // Collect stable pointers under the registry lock, then read each
  // metric outside it: metric reads take slot locks, and holding mu_
  // across them would serialize against every concurrent increment.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    common::MutexLock lock(mu_);
    counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_)
      counters.emplace_back(name, counter.get());
    gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_)
      gauges.emplace_back(name, gauge.get());
    histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_)
      histograms.emplace_back(name, histogram.get());
  }

  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters.size());
  for (const auto& [name, counter] : counters)
    snapshot.counters.push_back({name, counter->value()});
  snapshot.gauges.reserve(gauges.size());
  for (const auto& [name, gauge] : gauges)
    snapshot.gauges.push_back({name, gauge->value()});
  snapshot.histograms.reserve(histograms.size());
  for (const auto& [name, histogram] : histograms) {
    const HistogramData data = histogram->merged();
    HistogramValue value;
    value.name = name;
    value.count = data.count;
    value.sum = data.sum;
    value.min = data.min;
    value.max = data.max;
    value.mean = data.mean();
    value.p50 = data.quantile(0.50);
    value.p90 = data.quantile(0.90);
    value.p95 = data.quantile(0.95);
    value.p99 = data.quantile(0.99);
    snapshot.histograms.push_back(std::move(value));
  }
  return snapshot;
}

void MetricsRegistry::reset() {
  std::vector<Counter*> counters;
  std::vector<Gauge*> gauges;
  std::vector<Histogram*> histograms;
  {
    common::MutexLock lock(mu_);
    for (auto& [name, counter] : counters_) counters.push_back(counter.get());
    for (auto& [name, gauge] : gauges_) gauges.push_back(gauge.get());
    for (auto& [name, histogram] : histograms_)
      histograms.push_back(histogram.get());
  }
  for (Counter* counter : counters) counter->reset();
  for (Gauge* gauge : gauges) gauge->reset();
  for (Histogram* histogram : histograms) histogram->reset();
}

// ---------------------------------------------------------------------------
// Prometheus text exposition

std::string sanitize_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

namespace {

std::string format_sample_value(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.0e15) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  std::ostringstream out;
  out.precision(9);
  out << value;
  return out.str();
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const CounterValue& counter : snapshot.counters) {
    const std::string name = sanitize_metric_name(counter.name);
    out << "# TYPE " << name << " counter\n"
        << name << " " << counter.value << "\n";
  }
  for (const GaugeValue& gauge : snapshot.gauges) {
    const std::string name = sanitize_metric_name(gauge.name);
    out << "# TYPE " << name << " gauge\n"
        << name << " " << gauge.value << "\n";
  }
  for (const HistogramValue& histogram : snapshot.histograms) {
    const std::string name = sanitize_metric_name(histogram.name);
    out << "# TYPE " << name << " summary\n";
    out << name << "{quantile=\"0.5\"} " << format_sample_value(histogram.p50)
        << "\n";
    out << name << "{quantile=\"0.9\"} " << format_sample_value(histogram.p90)
        << "\n";
    out << name << "{quantile=\"0.95\"} "
        << format_sample_value(histogram.p95) << "\n";
    out << name << "{quantile=\"0.99\"} "
        << format_sample_value(histogram.p99) << "\n";
    out << name << "_sum " << histogram.sum << "\n";
    out << name << "_count " << histogram.count << "\n";
  }
  return out.str();
}

}  // namespace wtam::obs
