#include "obs/metrics_json.hpp"

namespace wtam::obs {

api::JsonValue metrics_to_json(const MetricsSnapshot& snapshot) {
  api::JsonValue root = api::JsonValue::object();

  api::JsonValue counters = api::JsonValue::object();
  for (const CounterValue& counter : snapshot.counters)
    counters.set(counter.name, api::JsonValue::number(counter.value));
  root.set("counters", std::move(counters));

  api::JsonValue gauges = api::JsonValue::object();
  for (const GaugeValue& gauge : snapshot.gauges)
    gauges.set(gauge.name, api::JsonValue::number(gauge.value));
  root.set("gauges", std::move(gauges));

  api::JsonValue histograms = api::JsonValue::object();
  for (const HistogramValue& histogram : snapshot.histograms) {
    api::JsonValue entry = api::JsonValue::object();
    entry.set("count", api::JsonValue::number(histogram.count));
    entry.set("sum", api::JsonValue::number(histogram.sum));
    entry.set("min", api::JsonValue::number(histogram.min));
    entry.set("max", api::JsonValue::number(histogram.max));
    entry.set("mean", api::JsonValue::number(histogram.mean));
    entry.set("p50", api::JsonValue::number(histogram.p50));
    entry.set("p90", api::JsonValue::number(histogram.p90));
    entry.set("p95", api::JsonValue::number(histogram.p95));
    entry.set("p99", api::JsonValue::number(histogram.p99));
    histograms.set(histogram.name, std::move(entry));
  }
  root.set("histograms", std::move(histograms));

  return root;
}

}  // namespace wtam::obs
