// Per-solve stage tracing: where does a 1.3 s constrained rectpack solve
// actually spend its time?
//
// A SolveTrace is a thread-safe span log owned by one solve. The Solver
// creates it when SolverOptions.trace is set, hangs it off the job's
// core::SolveContext, and every layer underneath records the stages it
// owns (soc-resolve, cache-lookup / cache-coalesce-wait, walker:<seed>,
// validate, partition-search, exact-step, queue-wait — see the README
// span glossary). Timestamps are nanoseconds relative to the trace's
// construction, taken from the same steady clock as every Stopwatch, so
// spans from concurrent walker threads order consistently.
//
// Tracing is opt-in exactly like --timing: with the flag off no trace is
// allocated, every recording site sees a null pointer and skips, and
// solver results stay byte-identical.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/timer.hpp"

namespace wtam::obs {

/// One recorded stage: [start_ns, start_ns + duration_ns) relative to
/// the owning trace's epoch.
struct TraceSpan {
  std::string stage;
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = 0;
};

/// Append-only span log for one solve. record() may be called from any
/// thread (rectpack's pooled walkers record concurrently).
class SolveTrace {
 public:
  SolveTrace() = default;
  SolveTrace(const SolveTrace&) = delete;
  SolveTrace& operator=(const SolveTrace&) = delete;

  /// Nanoseconds since this trace was constructed.
  [[nodiscard]] std::int64_t now_ns() const noexcept {
    return epoch_.elapsed_ns();
  }

  void record(std::string stage, std::int64_t start_ns,
              std::int64_t duration_ns);

  /// All spans so far, sorted by (start_ns, stage) so concurrent
  /// recordings render deterministically for equal timestamps.
  [[nodiscard]] std::vector<TraceSpan> spans() const;

 private:
  common::Stopwatch epoch_;
  mutable common::Mutex mu_;
  std::vector<TraceSpan> spans_ WTAM_GUARDED_BY(mu_);
};

/// RAII span: starts timing at construction, records on destruction (or
/// at an explicit finish()). Null-trace-safe — every instrumentation
/// site passes `context ? context->trace : nullptr` and pays only a
/// pointer test when tracing is off.
class SpanTimer {
 public:
  SpanTimer(SolveTrace* trace, std::string stage)
      : trace_(trace),
        stage_(std::move(stage)),
        start_ns_(trace != nullptr ? trace->now_ns() : 0) {}
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  ~SpanTimer() { finish(); }

  /// Renames the span before it is recorded (cache-lookup becomes
  /// cache-coalesce-wait once the lookup is known to have blocked on
  /// another job's in-flight computation).
  void set_stage(std::string stage) { stage_ = std::move(stage); }

  /// Records now instead of at scope exit; further calls are no-ops.
  void finish() {
    if (trace_ == nullptr) return;
    trace_->record(std::move(stage_), start_ns_, trace_->now_ns() - start_ns_);
    trace_ = nullptr;
  }

 private:
  SolveTrace* trace_;
  std::string stage_;
  std::int64_t start_ns_;
};

}  // namespace wtam::obs
