// Shared result types for the TAM optimization algorithms.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace wtam::core {

/// A complete test-bus architecture: TAM widths plus the core assignment.
/// `assignment[i]` is the 0-based TAM index of core i (printed 1-based in
/// the core-assignment-vector notation of [5]).
struct TamArchitecture {
  std::vector<int> widths;
  std::vector<int> assignment;
  std::vector<std::int64_t> tam_times;  ///< summed testing time per TAM
  std::int64_t testing_time = 0;        ///< max over tam_times

  [[nodiscard]] int tam_count() const noexcept {
    return static_cast<int>(widths.size());
  }
  [[nodiscard]] int total_width() const noexcept {
    int total = 0;
    for (const int w : widths) total += w;
    return total;
  }
};

/// "5+5+6" — the width-partition notation of the paper's tables.
[[nodiscard]] std::string format_partition(std::span<const int> widths);

/// "(2,1,2,1,...)" — the core-assignment-vector notation of [5]
/// (position = core, entry = 1-based TAM).
[[nodiscard]] std::string format_assignment(std::span<const int> assignment);

}  // namespace wtam::core
