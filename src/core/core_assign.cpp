#include "core/core_assign.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace wtam::core {

CoreAssignResult core_assign(const TestTimeProvider& table,
                             std::span<const int> widths,
                             const CoreAssignOptions& options) {
  const int num_tams = static_cast<int>(widths.size());
  if (num_tams < 1)
    throw std::invalid_argument("core_assign: need at least one TAM");
  for (const int w : widths)
    if (w < 1 || w > table.max_width())
      throw std::invalid_argument("core_assign: TAM width outside table range");

  const int num_cores = table.core_count();

  // Lines 4-6: testing time of every core on every TAM (shared widths hit
  // the memoized table, so this is a cheap lookup pass).
  std::vector<std::vector<std::int64_t>> time(
      static_cast<std::size_t>(num_cores),
      std::vector<std::int64_t>(static_cast<std::size_t>(num_tams)));
  for (int i = 0; i < num_cores; ++i)
    for (int j = 0; j < num_tams; ++j)
      time[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          table.time(i, widths[static_cast<std::size_t>(j)]);

  CoreAssignResult result;
  auto& arch = result.architecture;
  arch.widths.assign(widths.begin(), widths.end());
  arch.assignment.assign(static_cast<std::size_t>(num_cores), -1);
  arch.tam_times.assign(static_cast<std::size_t>(num_tams), 0);

  std::vector<int> unassigned(static_cast<std::size_t>(num_cores));
  for (int i = 0; i < num_cores; ++i) unassigned[static_cast<std::size_t>(i)] = i;

  // For the core tie-break: the widest TAM strictly narrower than a given
  // TAM (Line 15). -1 when none exists.
  const auto next_narrower_tam = [&widths, num_tams](int tam) {
    int best = -1;
    for (int k = 0; k < num_tams; ++k) {
      if (k == tam) continue;
      if (widths[static_cast<std::size_t>(k)] >
          widths[static_cast<std::size_t>(tam)])
        continue;
      if (best < 0 || widths[static_cast<std::size_t>(k)] >
                          widths[static_cast<std::size_t>(best)])
        best = k;
    }
    return best;
  };

  while (!unassigned.empty()) {
    // Lines 10-12: minimally loaded TAM; ties go to the widest.
    int tam = 0;
    for (int j = 1; j < num_tams; ++j) {
      const auto tj = arch.tam_times[static_cast<std::size_t>(j)];
      const auto tb = arch.tam_times[static_cast<std::size_t>(tam)];
      if (tj < tb) {
        tam = j;
      } else if (tj == tb && options.widest_tam_tiebreak &&
                 widths[static_cast<std::size_t>(j)] >
                     widths[static_cast<std::size_t>(tam)]) {
        tam = j;
      }
    }

    // Lines 13-16: unassigned core with the largest time on `tam`; ties
    // are broken by the time on the next-narrower TAM.
    std::vector<int> tied;
    std::int64_t max_time = -1;
    for (const int i : unassigned) {
      const auto t = time[static_cast<std::size_t>(i)][static_cast<std::size_t>(tam)];
      if (t > max_time) {
        max_time = t;
        tied.assign(1, i);
      } else if (t == max_time) {
        tied.push_back(i);
      }
    }
    int core = tied.front();
    if (tied.size() > 1 && options.next_tam_core_tiebreak) {
      const int ref_tam = next_narrower_tam(tam);
      if (ref_tam >= 0) {
        for (const int i : tied) {
          if (time[static_cast<std::size_t>(i)][static_cast<std::size_t>(ref_tam)] >
              time[static_cast<std::size_t>(core)][static_cast<std::size_t>(ref_tam)])
            core = i;
        }
      }
    }

    // Line 17: assign.
    arch.assignment[static_cast<std::size_t>(core)] = tam;
    arch.tam_times[static_cast<std::size_t>(tam)] +=
        time[static_cast<std::size_t>(core)][static_cast<std::size_t>(tam)];
    std::erase(unassigned, core);

    // Lines 18-20: abort once any TAM reaches the best-known time.
    const auto worst =
        *std::max_element(arch.tam_times.begin(), arch.tam_times.end());
    if (worst >= options.best_known) {
      arch.testing_time = worst;
      result.aborted = true;
      return result;
    }
  }

  arch.testing_time =
      *std::max_element(arch.tam_times.begin(), arch.tam_times.end());
  return result;
}

}  // namespace wtam::core
