// Exact solution of P_AW — optimal core-to-TAM assignment for fixed TAM
// widths (paper §3.2, the "final optimization step").
//
// Two engines compute the same optimum:
//   * Ilp           — the paper's mathematical-programming model verbatim:
//                     binary x_ij (core i on TAM j), continuous makespan
//                     tau; min tau s.t. tau >= sum_i x_ij T_i(w_j) for all
//                     j and sum_j x_ij = 1 for all i. O(N*B) variables,
//                     O(N) constraints. Solved by src/ilp (branch & bound
//                     over our simplex), warm-started from Core_assign.
//   * BranchAndBound — a combinatorial DFS specialized to min-makespan
//                     assignment; orders of magnitude faster on these
//                     instances, used where benches must solve thousands
//                     of partitions exactly.
// Both honor a time limit and report whether optimality was proven —
// mirroring the paper's exhaustive runs that "did not complete even after
// two days of execution".

#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>

#include "core/core_assign.hpp"
#include "core/solve_context.hpp"
#include "core/tam_types.hpp"
#include "core/time_provider.hpp"
#include "ilp/branch_and_bound.hpp"

namespace wtam::core {

enum class ExactEngine { BranchAndBound, Ilp };

struct ExactOptions {
  ExactEngine engine = ExactEngine::BranchAndBound;
  double time_limit_s = std::numeric_limits<double>::infinity();
  std::int64_t max_nodes = 500'000'000;
  /// Cooperative cancellation/deadline, checked at the same cadence as
  /// the node/time limits; when it fires the solve stops like a limit
  /// (proven_optimal = false, incumbent returned). nullptr = limits only.
  const SolveContext* context = nullptr;
  /// External upper bound: search only for strictly better assignments.
  /// When it is tighter than this partition's optimum the heuristic
  /// assignment is returned unchanged. Lets the exhaustive-baseline
  /// ablation share the best time across partitions (BranchAndBound only;
  /// the ILP engine ignores it). std::nullopt = no external bound.
  std::optional<std::int64_t> upper_bound_hint;
};

struct ExactResult {
  bool proven_optimal = false;  ///< false if a limit stopped the search
  TamArchitecture architecture; ///< best assignment found
  std::int64_t nodes = 0;
  double cpu_s = 0.0;
};

/// Solves P_AW exactly for the given widths. The Core_assign heuristic
/// result seeds the incumbent, so the returned testing time is never worse
/// than the heuristic's even when a limit fires.
[[nodiscard]] ExactResult solve_assignment_exact(
    const TestTimeProvider& table, std::span<const int> widths,
    const ExactOptions& options = {});

/// Builds the paper's ILP model (exposed for tests and the micro bench).
/// Variable layout: x_ij at index i*B + j, tau at index N*B.
[[nodiscard]] ilp::Problem build_assignment_ilp(const TestTimeProvider& table,
                                                std::span<const int> widths);

}  // namespace wtam::core
