// Architecture-independent lower bounds on SOC testing time (from [8]).
//
// For ANY wrapper/TAM architecture with total width W:
//   LB1 (bottleneck core): every core sits on a TAM of width <= W, so the
//       testing time is at least max_i T_i(W);
//   LB2 (test-data volume): a core on a w-wire TAM occupies w wires for
//       T_i(w) cycles; with V_i = min_w { w * T_i(w) } the whole test
//       needs at least ceil(sum_i V_i / W) cycles on W wires.
// The overall bound is max(LB1, LB2). These make optimality gaps
// reportable without exhaustive search — e.g. p31108's plateau at 544579
// is exactly LB1 (Core 18).

#pragma once

#include <cstdint>

#include "core/test_time_table.hpp"

namespace wtam::core {

struct LowerBounds {
  std::int64_t bottleneck_core = 0;  ///< LB1 = max_i T_i(W)
  int bottleneck_core_index = 0;
  std::int64_t volume = 0;  ///< LB2 = ceil(sum_i min_w w*T_i(w) / W)
  [[nodiscard]] std::int64_t combined() const noexcept {
    return bottleneck_core > volume ? bottleneck_core : volume;
  }
};

/// Computes both bounds for a total TAM width (1 <= W <= table range).
[[nodiscard]] LowerBounds testing_time_lower_bounds(const TestTimeTable& table,
                                                    int total_width);

/// Relative optimality gap of an achieved testing time vs the combined
/// bound: (time - LB) / LB. Zero means provably optimal.
[[nodiscard]] double optimality_gap(const LowerBounds& bounds,
                                    std::int64_t achieved_time);

}  // namespace wtam::core
