// Partition_evaluate — fast heuristic search over TAM width partitions
// (paper §3.1, Figure 3; problems P_PAW and P_NPAW).
//
// For each TAM count B in [min_tams, max_tams], enumerate every unique
// partition of the total width W into B positive parts and evaluate it
// with Core_assign. Three levels of solution-space pruning (the paper's
// central scalability argument):
//   1. the Increment upper-bound rule enumerates each partition once
//      (no permuted duplicates);
//   2. Core_assign aborts a partition as soon as any TAM's accumulated
//      time reaches the best-known time tau (Lines 18-20 of Figure 1);
//   3. evaluation itself is the O(N^2) heuristic, not an ILP.
// Statistics per B reproduce Table 1 (how few partitions are evaluated to
// completion).

#pragma once

#include <cstdint>
#include <vector>

#include "core/core_assign.hpp"
#include "core/solve_context.hpp"
#include "core/tam_types.hpp"
#include "core/time_provider.hpp"

namespace wtam::core {

struct PartitionEvaluateOptions {
  int min_tams = 1;
  int max_tams = 10;
  /// Routing floor on every TAM's width (the paper's reference [4]
  /// studies place-and-route constraints of this kind). 1 = unrestricted.
  int min_tam_width = 1;
  /// Pruning level 2 (tau early abort). Off only in the ablation bench.
  bool prune_with_tau = true;
  /// Tie-break switches forwarded to Core_assign (ablation).
  bool widest_tam_tiebreak = true;
  bool next_tam_core_tiebreak = true;
  /// Reset tau to +inf at each B, as Figure 3 Line 6 does. The ablation
  /// bench can carry tau across B values instead (slightly stronger
  /// pruning than the published algorithm).
  bool reset_tau_per_b = true;
  /// Worker threads for the search. 1 = the serial reference algorithm;
  /// 0 = one per hardware thread. Parallel runs return results that are
  /// bit-identical to serial (same best architecture and the same per-B
  /// statistics, cpu_s aside): partitions are enumerated in the canonical
  /// order into fixed-size chunks, workers evaluate chunks concurrently
  /// against a shared atomic tau that only ever holds the merged-prefix
  /// incumbent (never tighter than the serial tau at any yet-unmerged
  /// partition), and outcomes are merged in enumeration order, where each
  /// partition is re-classified exactly as the serial trajectory would
  /// have: a partition aborts serially iff its full evaluation time is
  /// >= the serial tau at its position.
  int threads = 1;
  /// Partitions per dispatched chunk in parallel mode. The default
  /// amortizes dispatch overhead while keeping the shared tau fresh;
  /// exposed mainly so tests can stress the merge logic.
  int chunk_size = 1024;
  /// Cooperative cancellation/deadline, polled once per enumerated
  /// partition (serial) or chunk boundary (parallel). The search always
  /// evaluates at least one partition to completion before honoring an
  /// interrupt, so an interrupted result still carries a best incumbent.
  /// nullptr = run to completion (no polling overhead).
  const SolveContext* context = nullptr;
};

/// Per-B statistics (Table 1 columns).
struct PartitionSearchStats {
  int tams = 0;
  std::uint64_t partitions_unique = 0;  ///< enumerated (each exactly once)
  std::uint64_t evaluated_to_completion = 0;  ///< P_eval of Table 1
  std::uint64_t aborted_by_tau = 0;
  std::int64_t best_time = 0;  ///< best heuristic time for this B
  std::vector<int> best_partition;
  double cpu_s = 0.0;
};

struct PartitionEvaluateResult {
  /// Best architecture over all B (heuristic testing times).
  TamArchitecture best;
  int best_tams = 0;
  std::vector<PartitionSearchStats> per_b;
  double cpu_s = 0.0;
  /// None when the search ran to completion; otherwise why it stopped
  /// early (`best` is the best-so-far incumbent, always populated).
  SolveInterrupt interrupt = SolveInterrupt::None;
};

/// Runs the search. total_width must be within the table's range.
[[nodiscard]] PartitionEvaluateResult partition_evaluate(
    const TestTimeProvider& table, int total_width,
    const PartitionEvaluateOptions& options = {});

}  // namespace wtam::core
