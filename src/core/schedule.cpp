#include "core/schedule.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace wtam::core {

namespace {

void check_architecture(const TestTimeTable& table,
                        const TamArchitecture& architecture) {
  if (architecture.tam_count() < 1)
    throw std::invalid_argument("schedule: architecture has no TAMs");
  if (static_cast<int>(architecture.assignment.size()) != table.core_count())
    throw std::invalid_argument("schedule: assignment size != core count");
  for (const int w : architecture.widths)
    if (w < 1 || w > table.max_width())
      throw std::invalid_argument("schedule: TAM width outside table range");
  for (const int tam : architecture.assignment)
    if (tam < 0 || tam >= architecture.tam_count())
      throw std::invalid_argument("schedule: core assigned to invalid TAM");
}

}  // namespace

TestSchedule build_schedule(const TestTimeTable& table,
                            const TamArchitecture& architecture,
                            ScheduleOrder order) {
  check_architecture(table, architecture);

  TestSchedule schedule;
  schedule.tam_finish.assign(architecture.widths.size(), 0);

  for (int tam = 0; tam < architecture.tam_count(); ++tam) {
    const int width = architecture.widths[static_cast<std::size_t>(tam)];
    std::vector<int> cores;
    for (int i = 0; i < table.core_count(); ++i)
      if (architecture.assignment[static_cast<std::size_t>(i)] == tam)
        cores.push_back(i);

    switch (order) {
      case ScheduleOrder::AsAssigned:
        break;  // already in core-index order
      case ScheduleOrder::LongestFirst:
        std::stable_sort(cores.begin(), cores.end(), [&](int a, int b) {
          return table.time(a, width) > table.time(b, width);
        });
        break;
      case ScheduleOrder::ShortestFirst:
        std::stable_sort(cores.begin(), cores.end(), [&](int a, int b) {
          return table.time(a, width) < table.time(b, width);
        });
        break;
    }

    std::int64_t clock = 0;
    for (const int core : cores) {
      const std::int64_t duration = table.time(core, width);
      schedule.entries.push_back({core, tam, clock, clock + duration});
      clock += duration;
    }
    schedule.tam_finish[static_cast<std::size_t>(tam)] = clock;
  }
  schedule.makespan = schedule.tam_finish.empty()
                          ? 0
                          : *std::max_element(schedule.tam_finish.begin(),
                                              schedule.tam_finish.end());
  return schedule;
}

std::vector<TamUtilization> wire_utilization(
    const TestTimeTable& table, const TamArchitecture& architecture) {
  check_architecture(table, architecture);
  std::vector<TamUtilization> report;
  report.reserve(architecture.widths.size());
  for (int tam = 0; tam < architecture.tam_count(); ++tam) {
    const int width = architecture.widths[static_cast<std::size_t>(tam)];
    TamUtilization u;
    u.tam = tam;
    u.width = width;
    std::int64_t busy_wire_cycles = 0;
    std::int64_t finish = 0;
    for (int i = 0; i < table.core_count(); ++i) {
      if (architecture.assignment[static_cast<std::size_t>(i)] != tam) continue;
      const int used = table.used_width(i, width);
      u.max_used_width = std::max(u.max_used_width, used);
      busy_wire_cycles += table.time(i, width) * used;
      finish += table.time(i, width);
    }
    u.idle_wires = width - u.max_used_width;
    u.time_weighted_utilization =
        finish > 0 ? static_cast<double>(busy_wire_cycles) /
                         (static_cast<double>(finish) * width)
                   : 0.0;
    report.push_back(u);
  }
  return report;
}

std::string render_gantt(const TestSchedule& schedule, const soc::Soc& soc,
                         int columns) {
  if (columns < 10) columns = 10;
  std::ostringstream out;
  if (schedule.makespan == 0) return "(empty schedule)\n";
  const double scale =
      static_cast<double>(columns) / static_cast<double>(schedule.makespan);

  const int tams = static_cast<int>(schedule.tam_finish.size());
  for (int tam = 0; tam < tams; ++tam) {
    std::string row(static_cast<std::size_t>(columns), '.');
    for (const auto& entry : schedule.entries) {
      if (entry.tam != tam) continue;
      auto from = static_cast<int>(static_cast<double>(entry.start) * scale);
      auto to = static_cast<int>(static_cast<double>(entry.end) * scale);
      from = std::clamp(from, 0, columns - 1);
      to = std::clamp(to, from + 1, columns);
      // Fill with the core's label letter, separators at session starts.
      const char label = static_cast<char>(
          'A' + entry.core % 26);
      for (int c = from; c < to; ++c) row[static_cast<std::size_t>(c)] = label;
      row[static_cast<std::size_t>(from)] = '|';
    }
    out << "TAM " << tam + 1 << " " << row << " "
        << schedule.tam_finish[static_cast<std::size_t>(tam)] << "\n";
  }
  out << "legend:";
  std::vector<bool> mentioned(soc.cores.size(), false);
  for (const auto& entry : schedule.entries) {
    const auto idx = static_cast<std::size_t>(entry.core);
    if (idx < mentioned.size() && !mentioned[idx]) {
      mentioned[idx] = true;
      out << ' ' << static_cast<char>('A' + entry.core % 26) << '='
          << soc.cores[idx].name;
    }
  }
  out << "\n";
  return out.str();
}

}  // namespace wtam::core
