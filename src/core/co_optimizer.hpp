// The complete two-step wrapper/TAM co-optimization flow (paper §3):
//   step 1: Partition_evaluate finds a good (B, width partition) fast;
//   step 2: one exact P_AW solve re-optimizes the core assignment on that
//           partition ("final optimization step", §3.2).
// The result is near-optimal at a small fraction of the exhaustive cost.
//
// Note the paper's documented anomaly (§4.2, §5): because step 1 is a
// heuristic, the partition it returns is not always the one that would be
// best *after* exact re-optimization; co_optimize therefore reports both
// the heuristic and the final architecture so callers can observe it.

#pragma once

#include "core/assignment_exact.hpp"
#include "core/partition_evaluate.hpp"
#include "core/tam_types.hpp"
#include "core/test_time_table.hpp"
#include "soc/soc.hpp"

namespace wtam::core {

struct CoOptimizeOptions {
  PartitionEvaluateOptions search;
  ExactOptions final_step;
  /// Skip step 2 entirely (heuristic-only flow; ablation).
  bool run_final_step = true;
};

struct CoOptimizeResult {
  PartitionEvaluateResult heuristic;  ///< step-1 outcome and statistics
  ExactResult final_step;             ///< step-2 outcome (on heuristic.best)
  /// The architecture to ship: final if run, else heuristic best.
  TamArchitecture architecture;
  /// None when both steps ran to completion. When search.context fires
  /// (cancellation or deadline), the flow stops early — step 2 is skipped
  /// or time-limited to the remaining deadline — and `architecture` is
  /// the best-so-far incumbent.
  SolveInterrupt interrupt = SolveInterrupt::None;
  double heuristic_cpu_s = 0.0;
  double final_cpu_s = 0.0;
  [[nodiscard]] double total_cpu_s() const noexcept {
    return heuristic_cpu_s + final_cpu_s;
  }
};

/// P_NPAW: free number of TAMs in [options.search.min_tams, max_tams].
[[nodiscard]] CoOptimizeResult co_optimize(const TestTimeProvider& table,
                                           int total_width,
                                           const CoOptimizeOptions& options = {});

/// P_PAW: fixed number of TAMs (convenience wrapper that pins
/// min_tams = max_tams = tams).
[[nodiscard]] CoOptimizeResult co_optimize_fixed_b(
    const TestTimeProvider& table, int total_width, int tams,
    const CoOptimizeOptions& options = {});

}  // namespace wtam::core
