// Test scheduling on a fixed TAM architecture.
//
// The paper uses the test bus model: cores assigned to the same TAM are
// tested *sequentially*, different TAMs run *concurrently*, so the SOC
// testing time is the maximum TAM completion time and the order of cores
// on a TAM does not change it. The order does matter for everything
// layered on top — abort-on-first-fail expectations, power profiles
// (see power.hpp), and debug — so this module materializes explicit
// schedules, reports per-TAM wire utilization (quantifying the paper's
// §1 idle-TAM-wire motivation), and renders ASCII Gantt charts.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/tam_types.hpp"
#include "core/test_time_table.hpp"

namespace wtam::core {

/// One core's test session on a TAM.
struct ScheduledTest {
  int core = 0;
  int tam = 0;
  std::int64_t start = 0;  ///< cycles from test start
  std::int64_t end = 0;    ///< start + T_core(width(tam))
};

struct TestSchedule {
  std::vector<ScheduledTest> entries;     ///< sorted by (tam, start)
  std::vector<std::int64_t> tam_finish;   ///< completion time per TAM
  std::int64_t makespan = 0;
};

enum class ScheduleOrder {
  AsAssigned,     ///< core index order (deterministic default)
  LongestFirst,   ///< longest tests first (fails surface late)
  ShortestFirst,  ///< shortest tests first (fails surface early)
};

/// Builds the schedule implied by an architecture. Throws
/// std::invalid_argument if the architecture does not match the table
/// (core count, width range, unassigned cores).
[[nodiscard]] TestSchedule build_schedule(
    const TestTimeTable& table, const TamArchitecture& architecture,
    ScheduleOrder order = ScheduleOrder::AsAssigned);

/// Per-TAM wire usage: how many of the TAM's wires any assigned core
/// actually shifts through, and the time-weighted utilization
/// sum(T_core * used_width(core)) / (finish * width).
struct TamUtilization {
  int tam = 0;
  int width = 0;
  int max_used_width = 0;  ///< widest wrapper among assigned cores
  int idle_wires = 0;      ///< width - max_used_width
  double time_weighted_utilization = 0.0;  ///< in [0, 1]
};

[[nodiscard]] std::vector<TamUtilization> wire_utilization(
    const TestTimeTable& table, const TamArchitecture& architecture);

/// ASCII Gantt chart of the schedule (one row per TAM), `columns` wide.
[[nodiscard]] std::string render_gantt(const TestSchedule& schedule,
                                       const soc::Soc& soc, int columns = 64);

}  // namespace wtam::core
