#include "core/daisy_chain.hpp"

#include <algorithm>
#include <stdexcept>

#include "wrapper/wrapper.hpp"

namespace wtam::core {

DaisyChainEvaluation evaluate_daisy_chain(const soc::Soc& soc,
                                          const TamArchitecture& architecture) {
  if (architecture.tam_count() < 1)
    throw std::invalid_argument("evaluate_daisy_chain: no TAMs");
  if (static_cast<int>(architecture.assignment.size()) != soc.core_count())
    throw std::invalid_argument(
        "evaluate_daisy_chain: assignment size != core count");

  const int tams = architecture.tam_count();
  std::vector<int> cores_on(static_cast<std::size_t>(tams), 0);
  for (const int tam : architecture.assignment) {
    if (tam < 0 || tam >= tams)
      throw std::invalid_argument("evaluate_daisy_chain: bad TAM index");
    ++cores_on[static_cast<std::size_t>(tam)];
  }

  DaisyChainEvaluation eval;
  eval.tam_times.assign(static_cast<std::size_t>(tams), 0);
  for (int i = 0; i < soc.core_count(); ++i) {
    const int tam = architecture.assignment[static_cast<std::size_t>(i)];
    const int width = architecture.widths[static_cast<std::size_t>(tam)];
    if (width < 1)
      throw std::invalid_argument("evaluate_daisy_chain: bad TAM width");
    const auto& core = soc.cores[static_cast<std::size_t>(i)];
    const wrapper::WrapperDesign design = wrapper::best_design(core, width);

    const std::int64_t bypass = cores_on[static_cast<std::size_t>(tam)] - 1;
    const std::int64_t longer =
        std::max(design.scan_in_length, design.scan_out_length) + bypass;
    const std::int64_t shorter =
        std::min(design.scan_in_length, design.scan_out_length) + bypass;
    const std::int64_t serial_time =
        (1 + longer) * core.test_patterns + shorter;

    eval.tam_times[static_cast<std::size_t>(tam)] += serial_time;
    eval.bypass_overhead_cycles += serial_time - design.test_time;
  }
  eval.testing_time =
      *std::max_element(eval.tam_times.begin(), eval.tam_times.end());
  return eval;
}

}  // namespace wtam::core
