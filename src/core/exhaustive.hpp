// The exhaustive baseline of [8] that the paper measures against:
// enumerate every unique width partition and solve each P_AW instance
// *exactly*; optimal, but the per-partition cost is an ILP and the number
// of partitions explodes with B — the paper reports multi-day
// non-termination for B >= 4 on the Philips SOCs. A wall-clock budget
// reproduces that behaviour gracefully.

#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/assignment_exact.hpp"
#include "core/solve_context.hpp"
#include "core/tam_types.hpp"
#include "core/time_provider.hpp"

namespace wtam::core {

struct ExhaustiveOptions {
  /// Budget for the whole enumeration; on expiry the search stops and
  /// `completed` is false (the paper's "did not run to completion").
  double time_budget_s = std::numeric_limits<double>::infinity();
  ExactEngine engine = ExactEngine::BranchAndBound;
  /// Carry the best-known time into each exact solve as an upper bound?
  /// [8] could not ("execution of the ILP model cannot be halted
  /// prematurely", §2) — so the faithful baseline solves every partition
  /// from scratch; switching this on is the ablation.
  bool share_incumbent = false;
  /// Worker threads for the enumeration. 1 = serial; 0 = one per hardware
  /// thread. Partitions are enumerated in canonical order into fixed-size
  /// chunks solved concurrently; results are merged in enumeration order,
  /// so an unbudgeted run returns the same best architecture (first
  /// minimum in enumeration order) regardless of thread count. Under a
  /// budget, which partitions get solved before expiry is timing-
  /// dependent — exactly as it is serially.
  int threads = 1;
  /// Partitions per dispatched chunk in parallel mode; exact solves are
  /// expensive, so chunks are small to balance load.
  int chunk_size = 8;
  /// Cooperative cancellation/deadline, checked wherever the wall-clock
  /// budget is (a fired context behaves exactly like budget expiry:
  /// `completed` is false, `best` is the incumbent so far). nullptr =
  /// budget only.
  const SolveContext* context = nullptr;
};

struct ExhaustiveResult {
  bool completed = false;
  TamArchitecture best;
  std::uint64_t partitions_total = 0;   ///< unique partitions in the space
  std::uint64_t partitions_solved = 0;  ///< solved before budget expiry
  double cpu_s = 0.0;
};

/// P_PAW by exhaustive enumeration: fixed number of TAMs.
[[nodiscard]] ExhaustiveResult exhaustive_paw(const TestTimeProvider& table,
                                              int total_width, int tams,
                                              const ExhaustiveOptions& options = {});

/// P_NPAW by exhaustive enumeration over B in [1, max_tams].
[[nodiscard]] ExhaustiveResult exhaustive_pnpaw(
    const TestTimeProvider& table, int total_width, int max_tams,
    const ExhaustiveOptions& options = {});

}  // namespace wtam::core
