// Daisy-chain TAM evaluation (the architectural alternative to the
// paper's test bus model).
//
// The paper adopts the *test bus* model: each TAM's wires are multiplexed
// to one core at a time, so a TAM's testing time is the plain sum of its
// cores' times. The main published alternative is the *daisychain*
// (TestShell/TestRail [11], and the serial access of [14]): the TAM wires
// thread through every core on the chain, each core contributing a 1-bit
// bypass register when it is not the core under test. Serial access
// through k cores therefore stretches every scan-in/out path by the
// (k - 1) bypass bits of the other cores:
//
//   T_i^daisy = (1 + max(si,so) + k - 1) * p_i + min(si,so) + k - 1
//
// and the TAM still tests its cores one after another. The bypass penalty
// grows with the number of cores per chain, which is exactly why the
// paper's bus model wins on testing time (the daisychain's advantage —
// no per-core multiplexing fabric — is an area argument outside the
// testing-time objective). bench_ablation quantifies the gap.

#pragma once

#include <cstdint>
#include <vector>

#include "core/tam_types.hpp"
#include "soc/soc.hpp"

namespace wtam::core {

struct DaisyChainEvaluation {
  std::vector<std::int64_t> tam_times;
  std::int64_t testing_time = 0;  ///< max over tam_times
  std::int64_t bypass_overhead_cycles = 0;  ///< total cycles lost to bypass
};

/// Evaluates an existing architecture (widths + assignment) under the
/// daisychain access model. Wrapper designs are recomputed per core at
/// its TAM's width, exactly as the bus model does, then the bypass
/// stretch is applied. Throws std::invalid_argument on malformed input.
[[nodiscard]] DaisyChainEvaluation evaluate_daisy_chain(
    const soc::Soc& soc, const TamArchitecture& architecture);

}  // namespace wtam::core
