#include "core/partition_evaluate.hpp"

#include <limits>
#include <stdexcept>

#include "common/timer.hpp"
#include "partition/partition.hpp"

namespace wtam::core {

PartitionEvaluateResult partition_evaluate(
    const TestTimeProvider& table, int total_width,
    const PartitionEvaluateOptions& options) {
  if (total_width < 1 || total_width > table.max_width())
    throw std::invalid_argument(
        "partition_evaluate: total_width outside table range");
  if (options.min_tams < 1 || options.max_tams < options.min_tams)
    throw std::invalid_argument("partition_evaluate: bad TAM range");
  if (options.min_tam_width < 1 || options.min_tam_width > total_width)
    throw std::invalid_argument("partition_evaluate: bad min_tam_width");
  if (static_cast<std::int64_t>(options.min_tams) * options.min_tam_width >
      total_width)
    throw std::invalid_argument(
        "partition_evaluate: min_tams * min_tam_width exceeds total width");

  common::Stopwatch total_watch;
  PartitionEvaluateResult result;
  constexpr std::int64_t kInfinity = std::numeric_limits<std::int64_t>::max();
  std::int64_t global_best = kInfinity;

  for (int b = options.min_tams; b <= options.max_tams; ++b) {
    if (b > total_width) break;  // no partition of W into more than W parts
    common::Stopwatch b_watch;
    PartitionSearchStats stats;
    stats.tams = b;
    // Figure 3 Line 6 resets tau per B; the ablation variant carries the
    // global best across B values.
    std::int64_t tau = options.reset_tau_per_b ? kInfinity : global_best;

    partition::for_each_partition_min(
        total_width, b, options.min_tam_width,
        [&](std::span<const int> widths) {
          ++stats.partitions_unique;
          CoreAssignOptions assign_options;
          assign_options.best_known = options.prune_with_tau ? tau : kInfinity;
          assign_options.widest_tam_tiebreak = options.widest_tam_tiebreak;
          assign_options.next_tam_core_tiebreak = options.next_tam_core_tiebreak;
          const CoreAssignResult assigned =
              core_assign(table, widths, assign_options);
          if (assigned.aborted) {
            ++stats.aborted_by_tau;
            return true;
          }
          ++stats.evaluated_to_completion;
          const std::int64_t time = assigned.architecture.testing_time;
          if (time < tau) {
            tau = time;
            stats.best_time = time;
            stats.best_partition.assign(widths.begin(), widths.end());
            if (time < global_best) {
              global_best = time;
              result.best = assigned.architecture;
              result.best_tams = b;
            }
          }
          return true;
        });

    stats.best_time = tau == kInfinity ? 0 : tau;
    stats.cpu_s = b_watch.elapsed_s();
    result.per_b.push_back(std::move(stats));
  }

  if (global_best == kInfinity)
    throw std::logic_error("partition_evaluate: no partition evaluated");
  result.cpu_s = total_watch.elapsed_s();
  return result;
}

}  // namespace wtam::core
