#include "core/partition_evaluate.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "partition/partition.hpp"

namespace wtam::core {

namespace {

constexpr std::int64_t kInfinity = std::numeric_limits<std::int64_t>::max();

/// Sentinel in ChunkOutcome::full_time: the worker's pruned run aborted,
/// so the partition's full time is >= the tau it ran against — and that
/// tau is never tighter than the serial tau at the partition's position,
/// so the serial run would have aborted it too.
constexpr std::int64_t kWorkerAborted = -1;

/// A block of consecutively enumerated partitions, flattened:
/// `widths[i*parts .. (i+1)*parts)` is partition i of the chunk.
struct PartitionChunk {
  std::vector<int> widths;
  int parts = 0;
};

/// Worker output for one chunk. The widths ride along so the ordered
/// merge can reconstruct best_partition without re-enumerating.
struct ChunkOutcome {
  std::vector<int> widths;
  int parts = 0;
  std::vector<std::int64_t> full_time;  ///< per partition; kWorkerAborted
};

/// Serial search over one B — the reference implementation the parallel
/// engine must reproduce bit for bit. Returns the stats and updates the
/// global incumbent/result exactly as Figure 3 does.
void search_b_serial(const TestTimeProvider& table, int total_width, int b,
                     const PartitionEvaluateOptions& options,
                     std::int64_t& global_best,
                     PartitionEvaluateResult& result) {
  PartitionSearchStats stats;
  stats.tams = b;
  common::Stopwatch b_watch;
  // Figure 3 Line 6 resets tau per B; the ablation variant carries the
  // global best across B values.
  std::int64_t tau = options.reset_tau_per_b ? kInfinity : global_best;

  partition::for_each_partition_min(
      total_width, b, options.min_tam_width,
      [&](std::span<const int> widths) {
        // Poll for cancellation/deadline once an incumbent exists (the
        // very first partition is always evaluated so an interrupted
        // search still returns a complete best-so-far architecture).
        if (options.context != nullptr && global_best != kInfinity) {
          const SolveInterrupt fired = options.context->poll();
          if (fired != SolveInterrupt::None) {
            result.interrupt = fired;
            return false;
          }
        }
        ++stats.partitions_unique;
        CoreAssignOptions assign_options;
        assign_options.best_known = options.prune_with_tau ? tau : kInfinity;
        assign_options.widest_tam_tiebreak = options.widest_tam_tiebreak;
        assign_options.next_tam_core_tiebreak = options.next_tam_core_tiebreak;
        const CoreAssignResult assigned =
            core_assign(table, widths, assign_options);
        if (assigned.aborted) {
          ++stats.aborted_by_tau;
          return true;
        }
        ++stats.evaluated_to_completion;
        const std::int64_t time = assigned.architecture.testing_time;
        if (time < tau) {
          tau = time;
          stats.best_time = time;
          stats.best_partition.assign(widths.begin(), widths.end());
          if (time < global_best) {
            global_best = time;
            result.best = assigned.architecture;
            result.best_tams = b;
          }
        }
        return true;
      });

  stats.best_time = tau == kInfinity ? 0 : tau;
  stats.cpu_s = b_watch.elapsed_s();
  result.per_b.push_back(std::move(stats));
}

/// Parallel search over one B. Chunks are evaluated concurrently against
/// a shared atomic tau that only ever holds the merged-prefix incumbent;
/// the ordered merge then replays the serial tau trajectory, which is
/// possible because a partition aborts serially iff its full evaluation
/// time is >= the serial tau at its position (TAM loads only grow during
/// Core_assign, so the final makespan bounds every intermediate load).
void search_b_parallel(const TestTimeProvider& table, int total_width, int b,
                       const PartitionEvaluateOptions& options,
                       common::ThreadPool& pool, std::int64_t& global_best,
                       PartitionEvaluateResult& result) {
  PartitionSearchStats stats;
  stats.tams = b;
  common::Stopwatch b_watch;
  const std::int64_t initial_tau =
      options.reset_tau_per_b ? kInfinity : global_best;

  // Merged-prefix incumbent, read by workers for pruning. It can lag the
  // serial tau (in-flight chunks are not yet merged) but never undercuts
  // it, which keeps worker aborts a subset-consistent signal.
  std::atomic<std::int64_t> shared_tau{initial_tau};
  // The serial tau trajectory, advanced only inside the ordered merge.
  std::int64_t merge_tau = initial_tau;

  const auto process = [&](const PartitionChunk& chunk) {
    ChunkOutcome out;
    out.widths = chunk.widths;
    out.parts = chunk.parts;
    const auto parts = static_cast<std::size_t>(chunk.parts);
    const std::size_t count = chunk.widths.size() / parts;
    out.full_time.reserve(count);
    // The worker's pruning bound: the merged-prefix tau joined with full
    // times completed earlier in this same chunk — both are evaluations
    // that precede every remaining partition of the chunk in enumeration
    // order, so the bound stays >= the serial tau at each position.
    std::int64_t local_tau = shared_tau.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < count; ++i) {
      const std::span<const int> widths(chunk.widths.data() + i * parts,
                                        parts);
      CoreAssignOptions assign_options;
      if (options.prune_with_tau) {
        local_tau = std::min(local_tau,
                             shared_tau.load(std::memory_order_acquire));
        assign_options.best_known = local_tau;
      }
      assign_options.widest_tam_tiebreak = options.widest_tam_tiebreak;
      assign_options.next_tam_core_tiebreak = options.next_tam_core_tiebreak;
      const CoreAssignResult assigned =
          core_assign(table, widths, assign_options);
      if (assigned.aborted) {
        out.full_time.push_back(kWorkerAborted);
      } else {
        const std::int64_t time = assigned.architecture.testing_time;
        out.full_time.push_back(time);
        local_tau = std::min(local_tau, time);
      }
    }
    return out;
  };

  const auto merge = [&](ChunkOutcome&& outcome) {
    const auto parts = static_cast<std::size_t>(outcome.parts);
    for (std::size_t i = 0; i < outcome.full_time.size(); ++i) {
      ++stats.partitions_unique;
      const std::int64_t full_time = outcome.full_time[i];
      if (options.prune_with_tau &&
          (full_time == kWorkerAborted || full_time >= merge_tau)) {
        // Exactly the partitions the serial run aborts: their full time
        // reaches the serial tau, so Lines 18-20 would have fired.
        ++stats.aborted_by_tau;
        continue;
      }
      ++stats.evaluated_to_completion;
      if (full_time < merge_tau) {
        merge_tau = full_time;
        stats.best_time = full_time;
        const int* first = outcome.widths.data() + i * parts;
        stats.best_partition.assign(first, first + parts);
        shared_tau.store(merge_tau, std::memory_order_release);
      }
    }
  };

  common::OrderedChunkPipeline<PartitionChunk, ChunkOutcome> pipeline(
      pool, process, merge,
      /*max_in_flight=*/static_cast<std::size_t>(pool.size()) * 4);

  const auto chunk_capacity =
      static_cast<std::size_t>(options.chunk_size) *
      static_cast<std::size_t>(b);
  PartitionChunk current;
  current.parts = b;
  current.widths.reserve(chunk_capacity);
  // Cancellation/deadline polling happens on the producer: enumeration
  // stops, already-pushed chunks drain through the ordered merge, and the
  // merged prefix is the best-so-far incumbent. At least one partition is
  // always enumerated first (and the leading partition of the first B
  // never tau-aborts), so an interrupted run still has a complete best.
  std::uint64_t enumerated = 0;
  partition::for_each_partition_min(
      total_width, b, options.min_tam_width, [&](std::span<const int> widths) {
        if (options.context != nullptr &&
            (enumerated > 0 || global_best != kInfinity)) {
          const SolveInterrupt fired = options.context->poll();
          if (fired != SolveInterrupt::None) {
            result.interrupt = fired;
            return false;
          }
        }
        ++enumerated;
        current.widths.insert(current.widths.end(), widths.begin(),
                              widths.end());
        if (current.widths.size() < chunk_capacity) return true;
        const bool ok = pipeline.push(std::move(current));
        current = PartitionChunk{};
        current.parts = b;
        current.widths.reserve(chunk_capacity);
        return ok;
      });
  if (!current.widths.empty()) pipeline.push(std::move(current));
  pipeline.finish();

  stats.best_time = merge_tau == kInfinity ? 0 : merge_tau;
  if (merge_tau < global_best) {
    global_best = merge_tau;
    // Re-run the winning partition unpruned to materialize the full
    // architecture. Core_assign's decisions do not depend on best_known
    // (the bound only gates the abort check), so this reproduces the
    // exact architecture the serial run stored when it first reached the
    // incumbent.
    CoreAssignOptions assign_options;
    assign_options.widest_tam_tiebreak = options.widest_tam_tiebreak;
    assign_options.next_tam_core_tiebreak = options.next_tam_core_tiebreak;
    result.best = core_assign(table, stats.best_partition, assign_options)
                      .architecture;
    result.best_tams = b;
  }
  stats.cpu_s = b_watch.elapsed_s();
  result.per_b.push_back(std::move(stats));
}

}  // namespace

PartitionEvaluateResult partition_evaluate(
    const TestTimeProvider& table, int total_width,
    const PartitionEvaluateOptions& options) {
  if (total_width < 1 || total_width > table.max_width())
    throw std::invalid_argument(
        "partition_evaluate: total_width outside table range");
  if (options.min_tams < 1 || options.max_tams < options.min_tams)
    throw std::invalid_argument("partition_evaluate: bad TAM range");
  if (options.min_tam_width < 1 || options.min_tam_width > total_width)
    throw std::invalid_argument("partition_evaluate: bad min_tam_width");
  if (static_cast<std::int64_t>(options.min_tams) * options.min_tam_width >
      total_width)
    throw std::invalid_argument(
        "partition_evaluate: min_tams * min_tam_width exceeds total width");
  if (options.threads < 0)
    throw std::invalid_argument("partition_evaluate: threads must be >= 0");
  if (options.chunk_size < 1)
    throw std::invalid_argument("partition_evaluate: chunk_size must be >= 1");

  const int threads = options.threads == 0
                          ? common::ThreadPool::hardware_threads()
                          : options.threads;

  // Total search time both reported (cpu_s) and recorded process-wide,
  // so scrapes can see heuristic-search cost without per-job tracing.
  static obs::Histogram& search_hist =
      obs::MetricsRegistry::instance().histogram("core.partition_search_ns");
  common::ScopedTimer<obs::Histogram> total_watch(&search_hist);
  PartitionEvaluateResult result;
  std::int64_t global_best = kInfinity;

  // One pool for the whole search; B values still run in sequence so the
  // carried-tau ablation (reset_tau_per_b = false) stays well-defined.
  std::unique_ptr<common::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<common::ThreadPool>(threads);

  for (int b = options.min_tams; b <= options.max_tams; ++b) {
    if (b > total_width) break;  // no partition of W into more than W parts
    if (pool)
      search_b_parallel(table, total_width, b, options, *pool, global_best,
                        result);
    else
      search_b_serial(table, total_width, b, options, global_best, result);
    if (result.interrupt != SolveInterrupt::None) break;
  }

  if (global_best == kInfinity)
    throw std::logic_error("partition_evaluate: no partition evaluated");
  result.cpu_s = total_watch.elapsed_s();
  return result;
}

}  // namespace wtam::core
