#include "core/assignment_exact.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/math_util.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"

namespace wtam::core {

namespace {

/// Testing times of every core on every TAM, plus per-core minima.
struct TimeMatrix {
  std::vector<std::vector<std::int64_t>> t;  ///< [core][tam]
  std::vector<std::int64_t> row_min;         ///< min over TAMs per core

  TimeMatrix(const TestTimeProvider& table, std::span<const int> widths) {
    const int n = table.core_count();
    const int b = static_cast<int>(widths.size());
    t.resize(static_cast<std::size_t>(n));
    row_min.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      auto& row = t[static_cast<std::size_t>(i)];
      row.resize(static_cast<std::size_t>(b));
      std::int64_t lo = std::numeric_limits<std::int64_t>::max();
      for (int j = 0; j < b; ++j) {
        row[static_cast<std::size_t>(j)] =
            table.time(i, widths[static_cast<std::size_t>(j)]);
        lo = std::min(lo, row[static_cast<std::size_t>(j)]);
      }
      row_min[static_cast<std::size_t>(i)] = lo;
    }
  }
};

/// Depth-first branch & bound for min-makespan assignment.
class CombinatorialSearch {
 public:
  CombinatorialSearch(const TimeMatrix& times, std::span<const int> widths,
                      const ExactOptions& options)
      : times_(times), widths_(widths.begin(), widths.end()), options_(options) {
    const auto n = times_.t.size();
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), 0);
    // Hardest cores first: by decreasing best-case (minimum) time.
    std::stable_sort(order_.begin(), order_.end(), [this](std::size_t a, std::size_t b) {
      return times_.row_min[a] > times_.row_min[b];
    });
    // Suffix sums of best-case times for the work-based lower bound.
    suffix_min_.assign(n + 1, 0);
    for (std::size_t k = n; k-- > 0;)
      suffix_min_[k] = suffix_min_[k + 1] + times_.row_min[order_[k]];
  }

  /// `incumbent` holds the heuristic assignment on entry; it is replaced
  /// whenever the search finds an assignment strictly better than
  /// `prune_bound`. Returns false when a node/time limit fired.
  bool run(std::vector<int>& incumbent, std::int64_t prune_bound,
           std::int64_t& nodes) {
    best_ = &incumbent;
    best_time_ = prune_bound;
    loads_.assign(widths_.size(), 0);
    current_.assign(times_.t.size(), -1);
    limit_hit_ = false;
    dfs(0, nodes);
    return !limit_hit_;
  }

 private:
  void dfs(std::size_t depth, std::int64_t& nodes) {
    if (limit_hit_) return;
    if (++nodes >= options_.max_nodes ||
        ((nodes & 0x3ff) == 0 &&
         (watch_.elapsed_s() > options_.time_limit_s ||
          (options_.context != nullptr &&
           options_.context->poll() != SolveInterrupt::None)))) {
      limit_hit_ = true;
      return;
    }
    if (depth == times_.t.size()) return;  // all pruning happened at edges

    const std::size_t core = order_[depth];
    const auto& row = times_.t[core];

    // Try TAMs in ascending resulting-load order for good incumbents early.
    std::vector<int> tams(widths_.size());
    std::iota(tams.begin(), tams.end(), 0);
    std::sort(tams.begin(), tams.end(), [&](int a, int b) {
      return loads_[static_cast<std::size_t>(a)] + row[static_cast<std::size_t>(a)] <
             loads_[static_cast<std::size_t>(b)] + row[static_cast<std::size_t>(b)];
    });

    for (std::size_t pick = 0; pick < tams.size(); ++pick) {
      const int j = tams[static_cast<std::size_t>(pick)];
      // Symmetry break: among TAMs with identical width and identical
      // current load, only the first is worth trying.
      bool duplicate = false;
      for (std::size_t prev = 0; prev < pick; ++prev) {
        const int k = tams[prev];
        if (widths_[static_cast<std::size_t>(k)] == widths_[static_cast<std::size_t>(j)] &&
            loads_[static_cast<std::size_t>(k)] == loads_[static_cast<std::size_t>(j)]) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;

      const std::int64_t new_load =
          loads_[static_cast<std::size_t>(j)] + row[static_cast<std::size_t>(j)];
      if (new_load >= best_time_) continue;

      loads_[static_cast<std::size_t>(j)] += row[static_cast<std::size_t>(j)];
      current_[core] = j;

      if (depth + 1 == times_.t.size()) {
        const std::int64_t makespan =
            *std::max_element(loads_.begin(), loads_.end());
        if (makespan < best_time_) {
          best_time_ = makespan;
          *best_ = std::vector<int>(current_.begin(), current_.end());
        }
      } else if (lower_bound(depth + 1) < best_time_) {
        dfs(depth + 1, nodes);
      }

      loads_[static_cast<std::size_t>(j)] -= row[static_cast<std::size_t>(j)];
      current_[core] = -1;
      if (limit_hit_) return;
    }
  }

  /// Work-based bound: remaining best-case work spread over all TAMs can
  /// never beat the current maximum load.
  [[nodiscard]] std::int64_t lower_bound(std::size_t depth) const {
    const std::int64_t current_max =
        *std::max_element(loads_.begin(), loads_.end());
    const std::int64_t total_load =
        std::accumulate(loads_.begin(), loads_.end(), std::int64_t{0});
    const std::int64_t spread = common::ceil_div(
        total_load + suffix_min_[depth], static_cast<std::int64_t>(loads_.size()));
    return std::max(current_max, spread);
  }

  const TimeMatrix& times_;
  std::vector<int> widths_;
  const ExactOptions& options_;
  common::Stopwatch watch_;
  std::vector<std::size_t> order_;
  std::vector<std::int64_t> suffix_min_;
  std::vector<std::int64_t> loads_;
  std::vector<int> current_;
  std::vector<int>* best_ = nullptr;
  std::int64_t best_time_ = 0;
  bool limit_hit_ = false;
};

ExactResult finish_result(const TestTimeProvider& table, std::span<const int> widths,
                          std::vector<int> assignment) {
  ExactResult out;
  auto& arch = out.architecture;
  arch.widths.assign(widths.begin(), widths.end());
  arch.assignment = std::move(assignment);
  arch.tam_times.assign(widths.size(), 0);
  for (int i = 0; i < table.core_count(); ++i) {
    const int j = arch.assignment[static_cast<std::size_t>(i)];
    arch.tam_times[static_cast<std::size_t>(j)] +=
        table.time(i, widths[static_cast<std::size_t>(j)]);
  }
  arch.testing_time =
      *std::max_element(arch.tam_times.begin(), arch.tam_times.end());
  return out;
}

}  // namespace

ilp::Problem build_assignment_ilp(const TestTimeProvider& table,
                                  std::span<const int> widths) {
  const int n = table.core_count();
  const int b = static_cast<int>(widths.size());
  if (b < 1) throw std::invalid_argument("build_assignment_ilp: no TAMs");

  const int tau = n * b;  // makespan variable index
  ilp::Problem problem;
  problem.lp = lp::Problem::with_vars(n * b + 1);
  problem.is_integer.assign(static_cast<std::size_t>(n * b + 1), true);
  problem.is_integer[static_cast<std::size_t>(tau)] = false;
  problem.lp.objective[static_cast<std::size_t>(tau)] = 1.0;

  for (int i = 0; i < n; ++i)
    for (int j = 0; j < b; ++j)
      problem.lp.upper[static_cast<std::size_t>(i * b + j)] = 1.0;

  // tau >= sum_i T_i(w_j) x_ij  for every TAM j (constraint 1).
  for (int j = 0; j < b; ++j) {
    lp::Row row;
    row.sense = lp::RowSense::LessEqual;
    row.rhs = 0.0;
    for (int i = 0; i < n; ++i)
      row.coeffs.emplace_back(
          i * b + j,
          static_cast<double>(table.time(i, widths[static_cast<std::size_t>(j)])));
    row.coeffs.emplace_back(tau, -1.0);
    problem.lp.rows.push_back(std::move(row));
  }
  // Every core on exactly one TAM (constraint 2).
  for (int i = 0; i < n; ++i) {
    lp::Row row;
    row.sense = lp::RowSense::Equal;
    row.rhs = 1.0;
    for (int j = 0; j < b; ++j) row.coeffs.emplace_back(i * b + j, 1.0);
    problem.lp.rows.push_back(std::move(row));
  }
  return problem;
}

ExactResult solve_assignment_exact(const TestTimeProvider& table,
                                   std::span<const int> widths,
                                   const ExactOptions& options) {
  // Exact-step cost is both reported per call (cpu_s) and recorded
  // process-wide so scrapes can see it without per-job tracing.
  static obs::Histogram& exact_hist =
      obs::MetricsRegistry::instance().histogram("core.exact_step_ns");
  common::ScopedTimer<obs::Histogram> watch(&exact_hist);
  const int n = table.core_count();
  const int b = static_cast<int>(widths.size());

  // Warm start from the heuristic (paper: the final ILP refines the
  // Partition_evaluate assignment).
  const CoreAssignResult heuristic = core_assign(table, widths);

  if (options.engine == ExactEngine::BranchAndBound) {
    const TimeMatrix times(table, widths);
    std::vector<int> assignment = heuristic.architecture.assignment;
    std::int64_t prune_bound = heuristic.architecture.testing_time;
    if (options.upper_bound_hint)
      prune_bound = std::min(prune_bound, *options.upper_bound_hint);
    CombinatorialSearch search(times, widths, options);
    std::int64_t nodes = 0;
    const bool complete = search.run(assignment, prune_bound, nodes);
    ExactResult out = finish_result(table, widths, std::move(assignment));
    out.proven_optimal = complete;
    out.nodes = nodes;
    out.cpu_s = watch.elapsed_s();
    return out;
  }

  // ILP engine.
  ilp::Problem problem = build_assignment_ilp(table, widths);
  ilp::Options ilp_options;
  ilp_options.time_limit_s = options.time_limit_s;
  ilp_options.max_nodes = options.max_nodes;
  ilp_options.objective_is_integral = true;
  if (options.context != nullptr)
    ilp_options.interrupt = [context = options.context] {
      return context->poll() != SolveInterrupt::None;
    };
  std::vector<double> hint(static_cast<std::size_t>(n * b + 1), 0.0);
  for (int i = 0; i < n; ++i) {
    const int j = heuristic.architecture.assignment[static_cast<std::size_t>(i)];
    hint[static_cast<std::size_t>(i * b + j)] = 1.0;
  }
  hint[static_cast<std::size_t>(n * b)] =
      static_cast<double>(heuristic.architecture.testing_time);
  ilp_options.incumbent_hint = std::move(hint);

  const ilp::Solution solution = ilp::solve(problem, ilp_options);
  std::vector<int> assignment = heuristic.architecture.assignment;
  if (!solution.x.empty()) {
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < b; ++j)
        if (solution.x[static_cast<std::size_t>(i * b + j)] > 0.5)
          assignment[static_cast<std::size_t>(i)] = j;
  }
  ExactResult out = finish_result(table, widths, std::move(assignment));
  out.proven_optimal = solution.status == ilp::Status::Optimal;
  out.nodes = solution.nodes;
  out.cpu_s = watch.elapsed_s();
  return out;
}

}  // namespace wtam::core
