// Memoized core testing times T_i(w).
//
// Every optimization algorithm in the paper consults T_i(w) — the testing
// time of core i wrapped at TAM width w — thousands of times. The table
// precomputes the *effective* (monotone-envelope) testing time for every
// core at every width 1..max_width: a TAM may always leave wires idle, so
// T_i(w) = min over w' <= w of the raw Design_wrapper time. The width that
// attains the minimum is recorded as the used width (priority (ii) of P_W).

#pragma once

#include <cstdint>
#include <vector>

#include "core/time_provider.hpp"
#include "soc/soc.hpp"
#include "wrapper/wrapper.hpp"

namespace wtam::core {

class TestTimeTable final : public TestTimeProvider {
 public:
  /// Precomputes testing times for all cores at widths 1..max_width.
  /// Throws std::invalid_argument for max_width < 1 or an empty SOC.
  TestTimeTable(const soc::Soc& soc, int max_width);

  [[nodiscard]] const soc::Soc& soc() const noexcept { return *soc_; }
  [[nodiscard]] int core_count() const noexcept override {
    return soc_->core_count();
  }
  [[nodiscard]] int max_width() const noexcept override { return max_width_; }

  /// Effective testing time of core `core` on a TAM of width `width`.
  [[nodiscard]] std::int64_t time(int core, int width) const override;

  /// Wrapper width actually used when core is put on a TAM of `width`
  /// wires (<= width; the rest idle).
  [[nodiscard]] int used_width(int core, int width) const;

  /// Sum over all cores of time(core, width) — total work at a width.
  [[nodiscard]] std::int64_t total_time(int width) const;

 private:
  const soc::Soc* soc_;  ///< non-owning; caller keeps the SOC alive
  int max_width_;
  /// times_[core][width-1], envelope-monotone non-increasing per core.
  std::vector<std::vector<std::int64_t>> times_;
  std::vector<std::vector<int>> used_widths_;
};

}  // namespace wtam::core
