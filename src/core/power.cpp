#include "core/power.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <stdexcept>

namespace wtam::core {

namespace {

/// Profile level at instant `t`: sum of the spans covering it.
std::int64_t power_at(std::span<const PowerSpan> spans, std::int64_t t) {
  std::int64_t total = 0;
  for (const PowerSpan& span : spans)
    if (span.start <= t && t < span.end) total += span.power;
  return total;
}

}  // namespace

std::int64_t peak_power_over_window(std::span<const PowerSpan> spans,
                                    std::int64_t start,
                                    std::int64_t duration) {
  if (duration <= 0) return 0;
  std::int64_t peak = power_at(spans, start);
  for (const PowerSpan& span : spans) {
    if (span.start <= start || span.start >= start + duration) continue;
    peak = std::max(peak, power_at(spans, span.start));
  }
  return peak;
}

bool power_window_fits(std::span<const PowerSpan> spans, std::int64_t start,
                       std::int64_t duration, std::int64_t power,
                       std::int64_t budget) {
  if (budget <= 0) return true;
  const std::int64_t headroom = budget - power;
  if (headroom < 0) return false;
  if (duration <= 0 || spans.empty()) return true;
  if (power_at(spans, start) > headroom) return false;
  for (const PowerSpan& span : spans) {
    if (span.start <= start || span.start >= start + duration) continue;
    if (power_at(spans, span.start) > headroom) return false;
  }
  return true;
}

std::int64_t peak_power(std::span<const PowerSpan> spans) {
  std::map<std::int64_t, std::int64_t> delta;  // time -> power change
  for (const PowerSpan& span : spans) {
    if (span.start >= span.end || span.power == 0) continue;
    delta[span.start] += span.power;
    delta[span.end] -= span.power;
  }
  std::int64_t peak = 0;
  std::int64_t current = 0;
  for (const auto& [time, change] : delta) {
    current += change;
    peak = std::max(peak, current);
  }
  return peak;
}

std::ptrdiff_t PowerTimeline::segment_before(std::int64_t t) const {
  // Last breakpoint with time <= t; -1 when t precedes them all.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](std::int64_t value, const Breakpoint& bp) { return value < bp.time; });
  return it - points_.begin() - 1;
}

void PowerTimeline::add(std::int64_t start, std::int64_t end,
                        std::int64_t power) {
  if (power < 0)
    throw std::invalid_argument("PowerTimeline::add: negative power");
  if (start >= end || power == 0) return;  // nothing to record

  const auto by_time = [](const Breakpoint& bp, std::int64_t t) {
    return bp.time < t;
  };
  // Ensure breakpoints exist at `start` and `end`; a new one inherits the
  // level in force just before it.
  auto lower =
      std::lower_bound(points_.begin(), points_.end(), start, by_time);
  auto i = static_cast<std::size_t>(lower - points_.begin());
  if (i == points_.size() || points_[i].time != start) {
    const std::int64_t level = i == 0 ? 0 : points_[i - 1].load;
    points_.insert(points_.begin() + static_cast<std::ptrdiff_t>(i),
                   {start, level});
  }
  auto upper = std::lower_bound(
      points_.begin() + static_cast<std::ptrdiff_t>(i), points_.end(), end,
      by_time);
  auto j = static_cast<std::size_t>(upper - points_.begin());
  if (j == points_.size() || points_[j].time != end) {
    // j > 0 always: the start breakpoint sits at index i < j.
    points_.insert(points_.begin() + static_cast<std::ptrdiff_t>(j),
                   {end, points_[j - 1].load});
  }

  // Raise the level across [start, end); the global peak only ever grows.
  for (std::size_t k = i; k < j; ++k) {
    points_[k].load += power;
    peak_ = std::max(peak_, points_[k].load);
  }

  // Coalesce. Equal-load neighbours can only appear at the two seams:
  // interior neighbours differed before the uniform raise and still do.
  // The end seam goes first so index i stays valid.
  const auto coalesce_at = [this](std::size_t idx) {
    if (idx >= points_.size()) return;
    const std::int64_t before = idx == 0 ? 0 : points_[idx - 1].load;
    if (points_[idx].load == before)
      points_.erase(points_.begin() + static_cast<std::ptrdiff_t>(idx));
  };
  coalesce_at(j);
  coalesce_at(i);
}

std::int64_t PowerTimeline::peak_over_window(std::int64_t start,
                                             std::int64_t duration) const {
  if (duration <= 0 || points_.empty()) return 0;
  std::ptrdiff_t seg = segment_before(start);
  std::int64_t peak = seg >= 0 ? points_[static_cast<std::size_t>(seg)].load
                               : 0;
  for (++seg; seg < static_cast<std::ptrdiff_t>(points_.size()) &&
              points_[static_cast<std::size_t>(seg)].time < start + duration;
       ++seg)
    peak = std::max(peak, points_[static_cast<std::size_t>(seg)].load);
  return peak;
}

bool PowerTimeline::window_fits(std::int64_t start, std::int64_t duration,
                                std::int64_t power,
                                std::int64_t budget) const {
  if (budget <= 0) return true;
  const std::int64_t headroom = budget - power;
  if (headroom < 0) return false;
  if (duration <= 0 || points_.empty()) return true;
  std::ptrdiff_t seg = segment_before(start);
  if (seg >= 0 && points_[static_cast<std::size_t>(seg)].load > headroom)
    return false;
  for (++seg; seg < static_cast<std::ptrdiff_t>(points_.size()) &&
              points_[static_cast<std::size_t>(seg)].time < start + duration;
       ++seg)
    if (points_[static_cast<std::size_t>(seg)].load > headroom) return false;
  return true;
}

std::int64_t PowerTimeline::earliest_fit(std::int64_t from,
                                         std::int64_t duration,
                                         std::int64_t power,
                                         std::int64_t budget) const {
  if (budget <= 0 || points_.empty()) return from;
  if (window_fits(from, duration, power, budget)) return from;
  // Probe the load-drop breakpoints after `from` — the only instants
  // where feasibility can flip to true (see the class comment).
  const auto begin = std::upper_bound(
      points_.begin(), points_.end(), from,
      [](std::int64_t value, const Breakpoint& bp) { return value < bp.time; });
  for (auto it = begin; it != points_.end(); ++it) {
    const std::int64_t before =
        it == points_.begin() ? 0 : std::prev(it)->load;
    if (it->load >= before) continue;  // rise or plateau — cannot flip
    if (window_fits(it->time, duration, power, budget)) return it->time;
  }
  // Unreachable for power <= budget: the last breakpoint drops to zero
  // load and is probed above. Defensive fallback, matching the span-list
  // helper: the profile horizon.
  return std::max(from, points_.back().time);
}

PowerVector scan_activity_power(const soc::Soc& soc) {
  PowerVector power;
  power.reserve(soc.cores.size());
  for (const auto& core : soc.cores)
    power.push_back(core.functional_ios() + core.total_scan_bits());
  return power;
}

std::vector<PowerStep> power_profile(const TestSchedule& schedule,
                                     const PowerVector& power) {
  // Sweep line over session starts/ends.
  std::map<std::int64_t, std::int64_t> delta;  // time -> power change
  for (const auto& entry : schedule.entries) {
    if (entry.core < 0 ||
        entry.core >= static_cast<int>(power.size()))
      throw std::invalid_argument("power_profile: power vector too small");
    const std::int64_t p = power[static_cast<std::size_t>(entry.core)];
    delta[entry.start] += p;
    delta[entry.end] -= p;
  }
  std::vector<PowerStep> profile;
  std::int64_t current = 0;
  std::int64_t previous_time = 0;
  bool first = true;
  for (const auto& [time, change] : delta) {
    if (!first && time > previous_time && current != 0)
      profile.push_back({previous_time, time, current});
    current += change;
    previous_time = time;
    first = false;
  }
  return profile;
}

std::int64_t peak_power(const TestSchedule& schedule,
                        const PowerVector& power) {
  std::int64_t peak = 0;
  for (const auto& step : power_profile(schedule, power))
    peak = std::max(peak, step.power);
  return peak;
}

PowerConstrainedResult schedule_with_power_limit(
    const TestTimeTable& table, const TamArchitecture& architecture,
    const PowerVector& power, std::int64_t limit, ScheduleOrder order) {
  if (static_cast<int>(power.size()) != table.core_count())
    throw std::invalid_argument(
        "schedule_with_power_limit: power vector size != core count");

  PowerConstrainedResult result;

  // The per-TAM sequences come from the unconstrained scheduler.
  const TestSchedule base = build_schedule(table, architecture, order);
  const int tams = architecture.tam_count();
  std::vector<std::vector<ScheduledTest>> sequence(
      static_cast<std::size_t>(tams));
  for (const auto& entry : base.entries)
    sequence[static_cast<std::size_t>(entry.tam)].push_back(entry);

  // Feasibility: every single core must fit under the budget.
  for (const auto& entry : base.entries) {
    if (power[static_cast<std::size_t>(entry.core)] > limit) {
      result.feasible = false;
      return result;
    }
  }

  std::vector<std::size_t> next(static_cast<std::size_t>(tams), 0);
  std::vector<std::int64_t> busy_until(static_cast<std::size_t>(tams), 0);
  // (end time, tam, core power) of running sessions.
  using Running = std::tuple<std::int64_t, int, std::int64_t>;
  std::priority_queue<Running, std::vector<Running>, std::greater<>> running;

  TestSchedule out;
  out.tam_finish.assign(static_cast<std::size_t>(tams), 0);
  std::int64_t clock = 0;
  std::int64_t current_power = 0;

  const auto all_done = [&] {
    for (int tam = 0; tam < tams; ++tam)
      if (next[static_cast<std::size_t>(tam)] <
          sequence[static_cast<std::size_t>(tam)].size())
        return false;
    return true;
  };

  while (!all_done() || !running.empty()) {
    // Start every session that fits right now (ascending TAM index).
    bool started = true;
    while (started) {
      started = false;
      for (int tam = 0; tam < tams; ++tam) {
        const auto t = static_cast<std::size_t>(tam);
        if (next[t] >= sequence[t].size()) continue;
        if (busy_until[t] > clock) continue;
        const auto& session = sequence[t][next[t]];
        const std::int64_t p = power[static_cast<std::size_t>(session.core)];
        if (current_power + p > limit) continue;
        const std::int64_t duration = session.end - session.start;
        out.entries.push_back({session.core, tam, clock, clock + duration});
        busy_until[t] = clock + duration;
        out.tam_finish[t] = clock + duration;
        running.emplace(clock + duration, tam, p);
        current_power += p;
        ++next[t];
        started = true;
      }
    }
    if (running.empty()) break;  // cannot happen while work remains
    // Advance to the next completion.
    const auto [end, tam, p] = running.top();
    running.pop();
    clock = end;
    current_power -= p;
    (void)tam;
  }

  out.makespan = 0;
  for (const auto finish : out.tam_finish)
    out.makespan = std::max(out.makespan, finish);
  // Inserted idle time = constrained busy span minus pure test time per TAM.
  std::int64_t idle = 0;
  for (int tam = 0; tam < tams; ++tam) {
    const auto t = static_cast<std::size_t>(tam);
    std::int64_t busy = 0;
    for (const auto& session : sequence[t]) busy += session.end - session.start;
    idle += out.tam_finish[t] - busy;
  }

  result.schedule = std::move(out);
  result.peak = peak_power(result.schedule, power);
  result.feasible = true;
  result.idle_cycles = idle;
  return result;
}

}  // namespace wtam::core
