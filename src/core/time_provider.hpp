// Abstraction over "testing time of core i at TAM width w".
//
// The production implementation is TestTimeTable (Design_wrapper +
// memoization over a real SOC). ExplicitTimeMatrix feeds hand-written
// time matrices into the same algorithms — used by the Figure-2 worked
// example, unit tests, and what-if studies.

#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace wtam::core {

class TestTimeProvider {
 public:
  virtual ~TestTimeProvider() = default;

  [[nodiscard]] virtual int core_count() const = 0;
  /// Largest width `time` may be asked about.
  [[nodiscard]] virtual int max_width() const = 0;
  /// Effective testing time of `core` on a TAM of `width` wires.
  [[nodiscard]] virtual std::int64_t time(int core, int width) const = 0;
};

/// Testing times given explicitly for a fixed set of widths (other widths
/// are invalid and throw std::out_of_range).
class ExplicitTimeMatrix final : public TestTimeProvider {
 public:
  /// `times[i]` are core i's testing times, one per entry of `widths`.
  ExplicitTimeMatrix(std::vector<int> widths,
                     std::vector<std::vector<std::int64_t>> times);

  [[nodiscard]] int core_count() const override {
    return static_cast<int>(times_.size());
  }
  [[nodiscard]] int max_width() const override { return max_width_; }
  [[nodiscard]] std::int64_t time(int core, int width) const override;

 private:
  std::map<int, std::size_t> width_column_;
  std::vector<std::vector<std::int64_t>> times_;
  int max_width_ = 0;
};

}  // namespace wtam::core
