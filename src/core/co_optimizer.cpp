#include "core/co_optimizer.hpp"

namespace wtam::core {

CoOptimizeResult co_optimize(const TestTimeProvider& table, int total_width,
                             const CoOptimizeOptions& options) {
  CoOptimizeResult result;
  result.heuristic = partition_evaluate(table, total_width, options.search);
  result.heuristic_cpu_s = result.heuristic.cpu_s;
  if (options.run_final_step) {
    result.final_step = solve_assignment_exact(
        table, result.heuristic.best.widths, options.final_step);
    result.final_cpu_s = result.final_step.cpu_s;
    result.architecture = result.final_step.architecture;
  } else {
    result.architecture = result.heuristic.best;
  }
  return result;
}

CoOptimizeResult co_optimize_fixed_b(const TestTimeProvider& table,
                                     int total_width, int tams,
                                     const CoOptimizeOptions& options) {
  CoOptimizeOptions pinned = options;
  pinned.search.min_tams = tams;
  pinned.search.max_tams = tams;
  return co_optimize(table, total_width, pinned);
}

}  // namespace wtam::core
