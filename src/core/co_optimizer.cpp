#include "core/co_optimizer.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace wtam::core {

CoOptimizeResult co_optimize(const TestTimeProvider& table, int total_width,
                             const CoOptimizeOptions& options) {
  const SolveContext* context = options.search.context;
  obs::SolveTrace* trace = context != nullptr ? context->trace : nullptr;
  CoOptimizeResult result;
  {
    obs::SpanTimer span(trace, "partition-search");
    result.heuristic = partition_evaluate(table, total_width, options.search);
  }
  result.heuristic_cpu_s = result.heuristic.cpu_s;
  result.interrupt = result.heuristic.interrupt;
  if (options.run_final_step &&
      result.interrupt == SolveInterrupt::None) {
    // The exact step polls the context at its node cadence and is
    // additionally clamped to the remaining deadline, so the flow as a
    // whole returns on time with the (never worse than heuristic)
    // incumbent.
    ExactOptions exact = options.final_step;
    if (context != nullptr) {
      exact.time_limit_s = std::min(exact.time_limit_s, context->remaining_s());
      exact.context = context;
    }
    obs::SpanTimer span(trace, "exact-step");
    result.final_step =
        solve_assignment_exact(table, result.heuristic.best.widths, exact);
    result.final_cpu_s = result.final_step.cpu_s;
    result.architecture = result.final_step.architecture;
    if (context != nullptr && !result.final_step.proven_optimal)
      result.interrupt = context->poll();
  } else {
    result.architecture = result.heuristic.best;
  }
  return result;
}

CoOptimizeResult co_optimize_fixed_b(const TestTimeProvider& table,
                                     int total_width, int tams,
                                     const CoOptimizeOptions& options) {
  CoOptimizeOptions pinned = options;
  pinned.search.min_tams = tams;
  pinned.search.max_tams = tams;
  return co_optimize(table, total_width, pinned);
}

}  // namespace wtam::core
