#include "core/test_time_table.hpp"

#include <stdexcept>

namespace wtam::core {

TestTimeTable::TestTimeTable(const soc::Soc& soc, int max_width)
    : soc_(&soc), max_width_(max_width) {
  if (max_width < 1)
    throw std::invalid_argument("TestTimeTable: max_width must be >= 1");
  soc.validate();

  const auto n = static_cast<std::size_t>(soc.core_count());
  times_.resize(n);
  used_widths_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& core = soc.cores[i];
    auto& row = times_[i];
    auto& used = used_widths_[i];
    row.resize(static_cast<std::size_t>(max_width));
    used.resize(static_cast<std::size_t>(max_width));
    const std::int64_t floor_time = soc::min_test_time_bound(core);
    std::int64_t best = -1;
    int best_width = 1;
    for (int w = 1; w <= max_width; ++w) {
      if (best < 0 || best > floor_time) {
        const std::int64_t raw = wrapper::test_time(core, w);
        if (best < 0 || raw < best) {
          best = raw;
          best_width = w;
        }
      }
      row[static_cast<std::size_t>(w - 1)] = best;
      used[static_cast<std::size_t>(w - 1)] = best_width;
    }
  }
}

std::int64_t TestTimeTable::time(int core, int width) const {
  if (core < 0 || core >= core_count())
    throw std::out_of_range("TestTimeTable::time: core index");
  if (width < 1 || width > max_width_)
    throw std::out_of_range("TestTimeTable::time: width");
  return times_[static_cast<std::size_t>(core)][static_cast<std::size_t>(width - 1)];
}

int TestTimeTable::used_width(int core, int width) const {
  if (core < 0 || core >= core_count())
    throw std::out_of_range("TestTimeTable::used_width: core index");
  if (width < 1 || width > max_width_)
    throw std::out_of_range("TestTimeTable::used_width: width");
  return used_widths_[static_cast<std::size_t>(core)][static_cast<std::size_t>(width - 1)];
}

std::int64_t TestTimeTable::total_time(int width) const {
  std::int64_t total = 0;
  for (int i = 0; i < core_count(); ++i) total += time(i, width);
  return total;
}

}  // namespace wtam::core
