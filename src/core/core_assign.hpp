// Core_assign — the paper's heuristic for P_AW (Figure 1).
//
// Given TAMs of fixed widths, repeatedly assign the unassigned core with
// the largest testing time to the TAM with the smallest accumulated
// testing time (largest-job-first list scheduling on unrelated machines,
// generalizing LPT [3]), with two tie-breaking rules reconstructed from
// the paper's worked example (Figure 2):
//   * TAM tie (equal accumulated time): prefer the widest TAM;
//   * core tie (equal T on the chosen TAM): compare the tied cores on the
//     widest *other* TAM no wider than the chosen one, and pick the core
//     that would be slowest there (it has the most to lose later).
// Lines 18-20: if any TAM's accumulated time reaches the best-known SOC
// time tau, this width partition can never win — abort immediately.
// This early abort is what makes Partition_evaluate scale (§3.1).

#pragma once

#include <cstdint>
#include <limits>
#include <span>

#include "core/tam_types.hpp"
#include "core/time_provider.hpp"

namespace wtam::core {

struct CoreAssignOptions {
  /// Best-known SOC testing time tau; evaluation aborts once any TAM
  /// reaches it. Default: no abort.
  std::int64_t best_known = std::numeric_limits<std::int64_t>::max();
  /// Tie-break switches (both on per the paper; exposed for the ablation
  /// bench that quantifies what each rule is worth).
  bool widest_tam_tiebreak = true;
  bool next_tam_core_tiebreak = true;
};

struct CoreAssignResult {
  /// True if Lines 18-20 fired: the partial schedule already reached tau
  /// and the partition was discarded. `architecture` then holds the
  /// partial state and testing_time >= tau.
  bool aborted = false;
  TamArchitecture architecture;
};

/// Runs Core_assign for the given TAM widths. Widths must be within the
/// table's precomputed range. O(N^2 + N*B) for N cores and B TAMs.
[[nodiscard]] CoreAssignResult core_assign(const TestTimeProvider& table,
                                           std::span<const int> widths,
                                           const CoreAssignOptions& options = {});

}  // namespace wtam::core
