#include "core/tam_types.hpp"

#include <sstream>

namespace wtam::core {

std::string format_partition(std::span<const int> widths) {
  std::ostringstream oss;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    if (i > 0) oss << '+';
    oss << widths[i];
  }
  return oss.str();
}

std::string format_assignment(std::span<const int> assignment) {
  std::ostringstream oss;
  oss << '(';
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (i > 0) oss << ',';
    oss << assignment[i] + 1;
  }
  oss << ')';
  return oss.str();
}

}  // namespace wtam::core
