#include "core/lower_bounds.hpp"

#include <stdexcept>

#include "common/math_util.hpp"

namespace wtam::core {

LowerBounds testing_time_lower_bounds(const TestTimeTable& table,
                                      int total_width) {
  if (total_width < 1 || total_width > table.max_width())
    throw std::invalid_argument(
        "testing_time_lower_bounds: width outside table range");

  LowerBounds bounds;
  std::int64_t volume = 0;
  for (int i = 0; i < table.core_count(); ++i) {
    const std::int64_t t_full = table.time(i, total_width);
    if (t_full > bounds.bottleneck_core) {
      bounds.bottleneck_core = t_full;
      bounds.bottleneck_core_index = i;
    }
    std::int64_t best_area = std::numeric_limits<std::int64_t>::max();
    for (int w = 1; w <= total_width; ++w)
      best_area = std::min(best_area, static_cast<std::int64_t>(w) *
                                          table.time(i, w));
    volume += best_area;
  }
  bounds.volume = common::ceil_div(volume, total_width);
  return bounds;
}

double optimality_gap(const LowerBounds& bounds, std::int64_t achieved_time) {
  const std::int64_t lb = bounds.combined();
  if (lb <= 0)
    throw std::invalid_argument("optimality_gap: non-positive lower bound");
  return static_cast<double>(achieved_time - lb) / static_cast<double>(lb);
}

}  // namespace wtam::core
