#include "core/exhaustive.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "partition/partition.hpp"

namespace wtam::core {

namespace {

constexpr std::int64_t kNoIncumbent =
    std::numeric_limits<std::int64_t>::max();

void solve_all_partitions_serial(const TestTimeProvider& table,
                                 int total_width, int tams,
                                 const ExhaustiveOptions& options,
                                 const common::Stopwatch& watch,
                                 ExhaustiveResult& result) {
  partition::for_each_partition(
      total_width, tams, [&](std::span<const int> widths) {
        if (watch.elapsed_s() > options.time_budget_s) return false;
        ExactOptions exact;
        exact.engine = options.engine;
        // Leave the per-partition solve unbounded in nodes; the outer
        // budget is the only cutoff, like the original runs. The budget
        // check above ran on an earlier clock reading, so clamp the
        // remainder: a solver handed a (slightly) negative limit near the
        // deadline would misbehave.
        const double remaining =
            std::max(0.0, options.time_budget_s - watch.elapsed_s());
        exact.time_limit_s = remaining;
        if (options.share_incumbent && !result.best.widths.empty())
          exact.upper_bound_hint = result.best.testing_time;
        ExactResult solved = solve_assignment_exact(table, widths, exact);
        if (!solved.proven_optimal) return false;  // budget expired mid-solve
        ++result.partitions_solved;
        if (result.best.widths.empty() ||
            solved.architecture.testing_time < result.best.testing_time)
          result.best = std::move(solved.architecture);
        return true;
      });
}

/// A block of consecutively enumerated partitions, flattened.
struct SolveChunk {
  std::vector<int> widths;
  int parts = 0;
};

struct SolveOutcome {
  std::vector<ExactResult> solved;  ///< one per partition, chunk order
};

void solve_all_partitions_parallel(const TestTimeProvider& table,
                                   int total_width, int tams,
                                   const ExhaustiveOptions& options,
                                   const common::Stopwatch& watch,
                                   common::ThreadPool& pool,
                                   ExhaustiveResult& result) {
  // Merged-prefix incumbent for the share_incumbent ablation. Like the
  // serial hint it only ever tightens in enumeration order, so the final
  // best (first minimum in enumeration order) is unchanged.
  std::atomic<std::int64_t> shared_incumbent{
      result.best.widths.empty() ? kNoIncumbent : result.best.testing_time};
  bool budget_expired = false;

  const auto process = [&](const SolveChunk& chunk) {
    SolveOutcome out;
    const auto parts = static_cast<std::size_t>(chunk.parts);
    const std::size_t count = chunk.widths.size() / parts;
    out.solved.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (watch.elapsed_s() > options.time_budget_s) {
        // Default ExactResult: proven_optimal = false. The ordered merge
        // treats it as the budget cutoff, exactly like the serial loop.
        out.solved.resize(count);
        return out;
      }
      const std::span<const int> widths(chunk.widths.data() + i * parts,
                                        parts);
      ExactOptions exact;
      exact.engine = options.engine;
      exact.time_limit_s =
          std::max(0.0, options.time_budget_s - watch.elapsed_s());
      if (options.share_incumbent) {
        const std::int64_t hint =
            shared_incumbent.load(std::memory_order_acquire);
        if (hint != kNoIncumbent) exact.upper_bound_hint = hint;
      }
      out.solved.push_back(solve_assignment_exact(table, widths, exact));
    }
    return out;
  };

  const auto merge = [&](SolveOutcome&& outcome) {
    for (ExactResult& solved : outcome.solved) {
      if (budget_expired) return;
      if (!solved.proven_optimal) {
        budget_expired = true;
        return;
      }
      ++result.partitions_solved;
      if (result.best.widths.empty() ||
          solved.architecture.testing_time < result.best.testing_time) {
        result.best = std::move(solved.architecture);
        shared_incumbent.store(result.best.testing_time,
                               std::memory_order_release);
      }
    }
  };

  common::OrderedChunkPipeline<SolveChunk, SolveOutcome> pipeline(
      pool, process, merge,
      /*max_in_flight=*/static_cast<std::size_t>(pool.size()) * 4);

  const auto chunk_capacity = static_cast<std::size_t>(options.chunk_size) *
                              static_cast<std::size_t>(tams);
  SolveChunk current;
  current.parts = tams;
  current.widths.reserve(chunk_capacity);
  partition::for_each_partition(
      total_width, tams, [&](std::span<const int> widths) {
        if (watch.elapsed_s() > options.time_budget_s) return false;
        current.widths.insert(current.widths.end(), widths.begin(),
                              widths.end());
        if (current.widths.size() < chunk_capacity) return true;
        const bool ok = pipeline.push(std::move(current));
        current = SolveChunk{};
        current.parts = tams;
        current.widths.reserve(chunk_capacity);
        return ok;
      });
  if (!current.widths.empty()) pipeline.push(std::move(current));
  pipeline.finish();
}

void solve_all_partitions(const TestTimeProvider& table, int total_width,
                          int tams, const ExhaustiveOptions& options,
                          const common::Stopwatch& watch,
                          common::ThreadPool* pool, ExhaustiveResult& result) {
  result.partitions_total += partition::count_exact(total_width, tams);
  if (pool)
    solve_all_partitions_parallel(table, total_width, tams, options, watch,
                                  *pool, result);
  else
    solve_all_partitions_serial(table, total_width, tams, options, watch,
                                result);
}

std::unique_ptr<common::ThreadPool> make_pool(const ExhaustiveOptions& options,
                                              const char* who) {
  if (options.threads < 0)
    throw std::invalid_argument(std::string(who) + ": threads must be >= 0");
  if (options.chunk_size < 1)
    throw std::invalid_argument(std::string(who) +
                                ": chunk_size must be >= 1");
  const int threads = options.threads == 0
                          ? common::ThreadPool::hardware_threads()
                          : options.threads;
  if (threads <= 1) return nullptr;
  return std::make_unique<common::ThreadPool>(threads);
}

}  // namespace

ExhaustiveResult exhaustive_paw(const TestTimeProvider& table, int total_width,
                                int tams, const ExhaustiveOptions& options) {
  if (tams < 1) throw std::invalid_argument("exhaustive_paw: tams must be >= 1");
  const auto pool = make_pool(options, "exhaustive_paw");
  common::Stopwatch watch;
  ExhaustiveResult result;
  solve_all_partitions(table, total_width, tams, options, watch, pool.get(),
                       result);
  result.completed = result.partitions_solved == result.partitions_total;
  result.cpu_s = watch.elapsed_s();
  return result;
}

ExhaustiveResult exhaustive_pnpaw(const TestTimeProvider& table, int total_width,
                                  int max_tams,
                                  const ExhaustiveOptions& options) {
  if (max_tams < 1)
    throw std::invalid_argument("exhaustive_pnpaw: max_tams must be >= 1");
  const auto pool = make_pool(options, "exhaustive_pnpaw");
  common::Stopwatch watch;
  ExhaustiveResult result;
  for (int b = 1; b <= max_tams && b <= total_width; ++b)
    solve_all_partitions(table, total_width, b, options, watch, pool.get(),
                         result);
  result.completed = result.partitions_solved == result.partitions_total;
  result.cpu_s = watch.elapsed_s();
  return result;
}

}  // namespace wtam::core
