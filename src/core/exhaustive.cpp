#include "core/exhaustive.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "partition/partition.hpp"

namespace wtam::core {

namespace {

constexpr std::int64_t kNoIncumbent =
    std::numeric_limits<std::int64_t>::max();

/// True once the wall-clock budget is spent or the caller's context fired
/// (cancellation/deadline) — the two stop conditions behave identically.
bool budget_expired(const common::Stopwatch& watch,
                    const ExhaustiveOptions& options) {
  if (watch.elapsed_s() > options.time_budget_s) return true;
  return options.context != nullptr &&
         options.context->poll() != SolveInterrupt::None;
}

/// Remaining per-solve time: the budget remainder clamped by the
/// context's deadline, never negative (see the clamp note below).
double remaining_budget_s(const common::Stopwatch& watch,
                          const ExhaustiveOptions& options) {
  double remaining =
      std::max(0.0, options.time_budget_s - watch.elapsed_s());
  if (options.context != nullptr)
    remaining = std::min(remaining, options.context->remaining_s());
  return remaining;
}

void solve_all_partitions_serial(const TestTimeProvider& table,
                                 int total_width, int tams,
                                 const ExhaustiveOptions& options,
                                 const common::Stopwatch& watch,
                                 ExhaustiveResult& result) {
  partition::for_each_partition(
      total_width, tams, [&](std::span<const int> widths) {
        if (budget_expired(watch, options)) return false;
        ExactOptions exact;
        exact.engine = options.engine;
        exact.context = options.context;
        // Leave the per-partition solve unbounded in nodes; the outer
        // budget is the only cutoff, like the original runs. The budget
        // check above ran on an earlier clock reading, so clamp the
        // remainder: a solver handed a (slightly) negative limit near the
        // deadline would misbehave.
        exact.time_limit_s = remaining_budget_s(watch, options);
        if (options.share_incumbent && !result.best.widths.empty())
          exact.upper_bound_hint = result.best.testing_time;
        ExactResult solved = solve_assignment_exact(table, widths, exact);
        if (!solved.proven_optimal) return false;  // budget expired mid-solve
        ++result.partitions_solved;
        if (result.best.widths.empty() ||
            solved.architecture.testing_time < result.best.testing_time)
          result.best = std::move(solved.architecture);
        return true;
      });
}

/// A block of consecutively enumerated partitions, flattened.
struct SolveChunk {
  std::vector<int> widths;
  int parts = 0;
};

struct SolveOutcome {
  std::vector<ExactResult> solved;  ///< one per partition, chunk order
};

void solve_all_partitions_parallel(const TestTimeProvider& table,
                                   int total_width, int tams,
                                   const ExhaustiveOptions& options,
                                   const common::Stopwatch& watch,
                                   common::ThreadPool& pool,
                                   ExhaustiveResult& result) {
  // Merged-prefix incumbent for the share_incumbent ablation. Like the
  // serial hint it only ever tightens in enumeration order, so the final
  // best (first minimum in enumeration order) is unchanged.
  std::atomic<std::int64_t> shared_incumbent{
      result.best.widths.empty() ? kNoIncumbent : result.best.testing_time};
  bool merge_hit_cutoff = false;

  const auto process = [&](const SolveChunk& chunk) {
    SolveOutcome out;
    const auto parts = static_cast<std::size_t>(chunk.parts);
    const std::size_t count = chunk.widths.size() / parts;
    out.solved.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (budget_expired(watch, options)) {
        // Default ExactResult: proven_optimal = false. The ordered merge
        // treats it as the budget cutoff, exactly like the serial loop.
        out.solved.resize(count);
        return out;
      }
      const std::span<const int> widths(chunk.widths.data() + i * parts,
                                        parts);
      ExactOptions exact;
      exact.engine = options.engine;
      exact.context = options.context;
      exact.time_limit_s = remaining_budget_s(watch, options);
      if (options.share_incumbent) {
        const std::int64_t hint =
            shared_incumbent.load(std::memory_order_acquire);
        if (hint != kNoIncumbent) exact.upper_bound_hint = hint;
      }
      out.solved.push_back(solve_assignment_exact(table, widths, exact));
    }
    return out;
  };

  const auto merge = [&](SolveOutcome&& outcome) {
    for (ExactResult& solved : outcome.solved) {
      if (merge_hit_cutoff) return;
      if (!solved.proven_optimal) {
        merge_hit_cutoff = true;
        return;
      }
      ++result.partitions_solved;
      if (result.best.widths.empty() ||
          solved.architecture.testing_time < result.best.testing_time) {
        result.best = std::move(solved.architecture);
        shared_incumbent.store(result.best.testing_time,
                               std::memory_order_release);
      }
    }
  };

  common::OrderedChunkPipeline<SolveChunk, SolveOutcome> pipeline(
      pool, process, merge,
      /*max_in_flight=*/static_cast<std::size_t>(pool.size()) * 4);

  const auto chunk_capacity = static_cast<std::size_t>(options.chunk_size) *
                              static_cast<std::size_t>(tams);
  SolveChunk current;
  current.parts = tams;
  current.widths.reserve(chunk_capacity);
  partition::for_each_partition(
      total_width, tams, [&](std::span<const int> widths) {
        if (budget_expired(watch, options)) return false;
        current.widths.insert(current.widths.end(), widths.begin(),
                              widths.end());
        if (current.widths.size() < chunk_capacity) return true;
        const bool ok = pipeline.push(std::move(current));
        current = SolveChunk{};
        current.parts = tams;
        current.widths.reserve(chunk_capacity);
        return ok;
      });
  if (!current.widths.empty()) pipeline.push(std::move(current));
  pipeline.finish();
}

void solve_all_partitions(const TestTimeProvider& table, int total_width,
                          int tams, const ExhaustiveOptions& options,
                          const common::Stopwatch& watch,
                          common::ThreadPool* pool, ExhaustiveResult& result) {
  result.partitions_total += partition::count_exact(total_width, tams);
  if (pool)
    solve_all_partitions_parallel(table, total_width, tams, options, watch,
                                  *pool, result);
  else
    solve_all_partitions_serial(table, total_width, tams, options, watch,
                                result);
}

std::unique_ptr<common::ThreadPool> make_pool(const ExhaustiveOptions& options,
                                              const char* who) {
  if (options.threads < 0)
    throw std::invalid_argument(std::string(who) + ": threads must be >= 0");
  if (options.chunk_size < 1)
    throw std::invalid_argument(std::string(who) +
                                ": chunk_size must be >= 1");
  const int threads = options.threads == 0
                          ? common::ThreadPool::hardware_threads()
                          : options.threads;
  if (threads <= 1) return nullptr;
  return std::make_unique<common::ThreadPool>(threads);
}

}  // namespace

ExhaustiveResult exhaustive_paw(const TestTimeProvider& table, int total_width,
                                int tams, const ExhaustiveOptions& options) {
  if (tams < 1) throw std::invalid_argument("exhaustive_paw: tams must be >= 1");
  const auto pool = make_pool(options, "exhaustive_paw");
  common::Stopwatch watch;
  ExhaustiveResult result;
  solve_all_partitions(table, total_width, tams, options, watch, pool.get(),
                       result);
  result.completed = result.partitions_solved == result.partitions_total;
  result.cpu_s = watch.elapsed_s();
  return result;
}

ExhaustiveResult exhaustive_pnpaw(const TestTimeProvider& table, int total_width,
                                  int max_tams,
                                  const ExhaustiveOptions& options) {
  if (max_tams < 1)
    throw std::invalid_argument("exhaustive_pnpaw: max_tams must be >= 1");
  const auto pool = make_pool(options, "exhaustive_pnpaw");
  common::Stopwatch watch;
  ExhaustiveResult result;
  for (int b = 1; b <= max_tams && b <= total_width; ++b)
    solve_all_partitions(table, total_width, b, options, watch, pool.get(),
                         result);
  result.completed = result.partitions_solved == result.partitions_total;
  result.cpu_s = watch.elapsed_s();
  return result;
}

}  // namespace wtam::core
