#include "core/exhaustive.hpp"

#include <stdexcept>

#include "common/timer.hpp"
#include "partition/partition.hpp"

namespace wtam::core {

namespace {

void solve_all_partitions(const TestTimeProvider& table, int total_width,
                          int tams, const ExhaustiveOptions& options,
                          const common::Stopwatch& watch,
                          ExhaustiveResult& result) {
  result.partitions_total += partition::count_exact(total_width, tams);
  partition::for_each_partition(
      total_width, tams, [&](std::span<const int> widths) {
        if (watch.elapsed_s() > options.time_budget_s) return false;
        ExactOptions exact;
        exact.engine = options.engine;
        // Leave the per-partition solve unbounded in nodes; the outer
        // budget is the only cutoff, like the original runs.
        const double remaining = options.time_budget_s - watch.elapsed_s();
        exact.time_limit_s = remaining;
        if (options.share_incumbent && !result.best.widths.empty())
          exact.upper_bound_hint = result.best.testing_time;
        ExactResult solved = solve_assignment_exact(table, widths, exact);
        if (!solved.proven_optimal) return false;  // budget expired mid-solve
        ++result.partitions_solved;
        if (result.best.widths.empty() ||
            solved.architecture.testing_time < result.best.testing_time)
          result.best = std::move(solved.architecture);
        return true;
      });
}

}  // namespace

ExhaustiveResult exhaustive_paw(const TestTimeProvider& table, int total_width,
                                int tams, const ExhaustiveOptions& options) {
  if (tams < 1) throw std::invalid_argument("exhaustive_paw: tams must be >= 1");
  common::Stopwatch watch;
  ExhaustiveResult result;
  solve_all_partitions(table, total_width, tams, options, watch, result);
  result.completed = result.partitions_solved == result.partitions_total;
  result.cpu_s = watch.elapsed_s();
  return result;
}

ExhaustiveResult exhaustive_pnpaw(const TestTimeProvider& table, int total_width,
                                  int max_tams,
                                  const ExhaustiveOptions& options) {
  if (max_tams < 1)
    throw std::invalid_argument("exhaustive_pnpaw: max_tams must be >= 1");
  common::Stopwatch watch;
  ExhaustiveResult result;
  for (int b = 1; b <= max_tams && b <= total_width; ++b)
    solve_all_partitions(table, total_width, b, options, watch, result);
  result.completed = result.partitions_solved == result.partitions_total;
  result.cpu_s = watch.elapsed_s();
  return result;
}

}  // namespace wtam::core
