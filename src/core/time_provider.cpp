#include "core/time_provider.hpp"

#include <stdexcept>

namespace wtam::core {

ExplicitTimeMatrix::ExplicitTimeMatrix(
    std::vector<int> widths, std::vector<std::vector<std::int64_t>> times)
    : times_(std::move(times)) {
  if (widths.empty())
    throw std::invalid_argument("ExplicitTimeMatrix: no widths");
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (widths[c] < 1)
      throw std::invalid_argument("ExplicitTimeMatrix: width must be >= 1");
    if (!width_column_.emplace(widths[c], c).second)
      throw std::invalid_argument("ExplicitTimeMatrix: duplicate width");
    max_width_ = std::max(max_width_, widths[c]);
  }
  for (const auto& row : times_)
    if (row.size() != widths.size())
      throw std::invalid_argument("ExplicitTimeMatrix: row size mismatch");
}

std::int64_t ExplicitTimeMatrix::time(int core, int width) const {
  if (core < 0 || core >= core_count())
    throw std::out_of_range("ExplicitTimeMatrix::time: core index");
  const auto it = width_column_.find(width);
  if (it == width_column_.end())
    throw std::out_of_range("ExplicitTimeMatrix::time: unknown width");
  return times_[static_cast<std::size_t>(core)][it->second];
}

}  // namespace wtam::core
