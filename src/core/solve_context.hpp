// Cooperative cancellation and deadlines for long-running searches.
//
// A SolveContext bundles a CancelToken and an optional wall-clock
// deadline; engines poll() it at their natural iteration boundaries (the
// per-partition callback of Partition_evaluate, rectpack's local-search
// iterations, the exhaustive baseline's budget checks) and stop searching
// when it fires, returning their best-so-far incumbent. The contract the
// api::Solver relies on: every engine evaluates at least one complete
// candidate before honoring an interrupt, so an interrupted run still
// carries a valid (validator-clean) result.

#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <optional>
#include <string_view>

#include "common/timer.hpp"

namespace wtam::obs {
class SolveTrace;
}  // namespace wtam::obs

namespace wtam::core {

/// Why a search stopped early (None = it ran to completion).
enum class SolveInterrupt { None, Cancelled, DeadlineExceeded };

[[nodiscard]] constexpr std::string_view to_string(
    SolveInterrupt interrupt) noexcept {
  switch (interrupt) {
    case SolveInterrupt::Cancelled: return "cancelled";
    case SolveInterrupt::DeadlineExceeded: return "deadline_exceeded";
    case SolveInterrupt::None: break;
  }
  return "none";
}

/// Copyable handle to a shared cancellation flag. All copies observe a
/// request_cancel() made through any of them; safe to signal from another
/// thread while a solve is running.
///
/// Deliberately lock-free (release store / acquire load on one shared
/// atomic), so there is no mutex for -Wthread-safety to track here: the
/// token is polled from engine hot loops where a lock round-trip per
/// iteration would be measurable. The acquire/release pair is what makes
/// a post-cancel read on the polling thread well ordered.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() const noexcept {
    flag_->store(true, std::memory_order_release);
  }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The per-job view engines poll. Cancellation wins over an elapsed
/// deadline, so a job cancelled near its deadline reports Cancelled
/// deterministically.
struct SolveContext {
  CancelToken cancel;
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Optional per-solve span log (obs/trace.hpp). Non-owning: the
  /// api::Solver allocates it when tracing is requested and keeps it
  /// alive for the job's duration; engines record through
  /// obs::SpanTimer, which no-ops on nullptr, so untraced solves pay
  /// one pointer test per stage.
  obs::SolveTrace* trace = nullptr;

  /// The time point `seconds` from now (the one conversion every
  /// deadline in the codebase uses).
  [[nodiscard]] static std::chrono::steady_clock::time_point deadline_after(
      double seconds) {
    return common::steady_now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(seconds));
  }

  [[nodiscard]] static SolveContext with_deadline(double seconds) {
    SolveContext context;
    context.deadline = deadline_after(seconds);
    return context;
  }

  [[nodiscard]] SolveInterrupt poll() const noexcept {
    if (cancel.cancel_requested()) return SolveInterrupt::Cancelled;
    if (deadline && common::steady_now() >= *deadline)
      return SolveInterrupt::DeadlineExceeded;
    return SolveInterrupt::None;
  }

  /// Seconds until the deadline (infinity when none is set); never
  /// negative. Used to derive time limits for non-polling inner solvers.
  [[nodiscard]] double remaining_s() const noexcept {
    if (!deadline) return std::numeric_limits<double>::infinity();
    const auto left =
        std::chrono::duration<double>(*deadline - common::steady_now());
    return left.count() > 0.0 ? left.count() : 0.0;
  }
};

}  // namespace wtam::core
