#include "core/backend.hpp"

#include <sstream>
#include <stdexcept>

#include "core/co_optimizer.hpp"
#include "core/power.hpp"

namespace wtam::core {

namespace {

/// Names the constraint classes in `constraints` outside `supported`
/// (a comma-separated list) — empty when everything is supported.
std::string unsupported_classes(const ScheduleConstraints& constraints,
                                bool supports_power) {
  std::string classes;
  const auto add = [&classes](const char* name) {
    if (!classes.empty()) classes += ", ";
    classes += name;
  };
  if (constraints.has_power() && !supports_power) add("power");
  if (!constraints.precedence.empty()) add("precedence");
  if (!constraints.fixed.empty()) add("fixed wire intervals");
  if (!constraints.forbidden.empty()) add("forbidden wire intervals");
  if (!constraints.earliest.empty()) add("earliest_start");
  return classes;
}

class EnumerativeBackend final : public OptimizerBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "enumerative";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "Partition_evaluate over all width partitions + one exact "
           "re-optimization (the source paper's two-step flow)";
  }
  [[nodiscard]] BackendOutcome optimize(
      const TestTimeTable& table, int total_width,
      const BackendOptions& options,
      const SolveContext& context) const override {
    const ScheduleConstraints& constraints = options.constraints;
    if (const std::string classes =
            unsupported_classes(constraints, /*supports_power=*/true);
        !classes.empty())
      throw UnsupportedConstraintError(std::string(name()), classes);

    CoOptimizeOptions co;
    co.search.min_tams = options.min_tams;
    co.search.max_tams = options.max_tams;
    co.search.threads = options.threads;
    co.search.context = &context;
    co.run_final_step = options.run_final_step;
    const auto result = co_optimize(table, total_width, co);

    BackendOutcome outcome;
    outcome.backend = std::string(name());
    outcome.testing_time = result.architecture.testing_time;
    outcome.schedule = pack::from_architecture(table, result.architecture);
    outcome.architecture = result.architecture;
    outcome.cpu_s = result.total_cpu_s();
    outcome.interrupt = result.interrupt;
    outcome.details.emplace_back(
        "partition", format_partition(result.architecture.widths));
    outcome.details.emplace_back(
        "assignment", format_assignment(result.architecture.assignment));
    outcome.details.emplace_back(
        "heuristic time", std::to_string(result.heuristic.best.testing_time));

    if (constraints.has_power()) {
      // Honor the budget on the architecture the power-blind search
      // chose: sessions are delayed just enough (greedy list scheduling,
      // core/power.hpp) and the delayed test-bus schedule is lowered to
      // the unified packing. The makespan can only grow.
      const PowerConstrainedResult limited = schedule_with_power_limit(
          table, result.architecture, constraints.power,
          constraints.power_budget);
      if (!limited.feasible)
        // validate_constraints rejects single cores above the budget, so
        // this only fires for callers that skipped validation.
        throw std::invalid_argument(
            "enumerative backend: power budget infeasible (a single core "
            "exceeds it)");
      outcome.schedule = pack::from_schedule(result.architecture,
                                             limited.schedule);
      outcome.testing_time = limited.schedule.makespan;
      outcome.details.emplace_back("power budget",
                                   std::to_string(constraints.power_budget));
      outcome.details.emplace_back("peak power",
                                   std::to_string(limited.peak));
      outcome.details.emplace_back("power idle cycles",
                                   std::to_string(limited.idle_cycles));
    }
    return outcome;
  }
};

class RectPackBackend final : public OptimizerBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "rectpack";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "bottom-left skyline packing of Pareto wrapper rectangles with "
           "width-adjust-and-repack local search (arXiv:1008.3320 model)";
  }
  [[nodiscard]] BackendOutcome optimize(
      const TestTimeTable& table, int total_width,
      const BackendOptions& options,
      const SolveContext& context) const override {
    pack::RectPackOptions rectpack = options.rectpack;
    rectpack.context = &context;
    rectpack.threads = options.threads;
    rectpack.constraints = options.constraints;
    const auto result = pack::rectpack_schedule(table, total_width, rectpack);

    BackendOutcome outcome;
    outcome.backend = std::string(name());
    outcome.testing_time = result.makespan;
    outcome.schedule = result.schedule;
    outcome.cpu_s = result.cpu_s;
    outcome.interrupt = result.interrupt;
    outcome.details.emplace_back("seed ordering", result.seed_ordering);
    outcome.details.emplace_back("repacks", std::to_string(result.repacks));
    if (!options.constraints.empty())
      outcome.details.emplace_back(
          "constraints", canonical_constraints(options.constraints));
    std::ostringstream utilization;
    utilization << static_cast<int>(
                       pack::strip_utilization(result.schedule) * 100.0 + 0.5)
                << "%";
    outcome.details.emplace_back("strip utilization", utilization.str());
    return outcome;
  }
};

}  // namespace

BackendRegistry::BackendRegistry() {
  register_backend(std::make_unique<EnumerativeBackend>());
  register_backend(std::make_unique<RectPackBackend>());
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

bool BackendRegistry::register_backend(
    std::unique_ptr<OptimizerBackend> backend) {
  if (backend == nullptr)
    throw std::invalid_argument("register_backend: null backend");
  if (const OptimizerBackend* existing = find(backend->name())) {
    // Same name + same description: idempotent re-registration (tests and
    // plugins may register unconditionally). A different backend under an
    // existing name is a programming error worth naming precisely.
    if (existing->description() == backend->description()) return false;
    throw std::invalid_argument(
        "register_backend: backend '" + std::string(backend->name()) +
        "' is already registered as \"" + std::string(existing->description()) +
        "\"");
  }
  backends_.push_back(std::move(backend));
  return true;
}

const OptimizerBackend* BackendRegistry::find(std::string_view name) const {
  for (const auto& backend : backends_)
    if (backend->name() == name) return backend.get();
  return nullptr;
}

const OptimizerBackend& BackendRegistry::at(std::string_view name) const {
  if (const OptimizerBackend* backend = find(name)) return *backend;
  std::ostringstream out;
  out << "unknown backend '" << name << "' (registered:";
  for (const auto& known : names()) out << " " << known;
  out << ")";
  throw std::invalid_argument(out.str());
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(backends_.size());
  for (const auto& backend : backends_)
    result.emplace_back(backend->name());
  return result;
}

std::vector<const OptimizerBackend*> BackendRegistry::backends() const {
  std::vector<const OptimizerBackend*> result;
  result.reserve(backends_.size());
  for (const auto& backend : backends_) result.push_back(backend.get());
  return result;
}

}  // namespace wtam::core
