// Scenario constraints for test scheduling — the shared vocabulary every
// placement engine speaks (the paper's §6 power direction plus the
// bin-packing constraint classes of arXiv:1008.4448).
//
// A ScheduleConstraints value restricts which packings are legal:
//   * a peak power budget over per-core power values (no instant of the
//     schedule may dissipate more than the budget);
//   * precedence pairs (core `after` may not start before `before` ends);
//   * per-core fixed wire intervals (the core's rectangle must stay
//     inside the interval — fixed-position cores, hierarchical TAMs);
//   * per-core forbidden wire intervals (the rectangle must avoid them);
//   * per-core earliest-start cycles.
// The struct is engine-agnostic plain data: pack/ lowers it into the
// skyline spot search, the enumerative backend maps the power budget onto
// the test-bus power machinery, the PackedSchedule validator checks
// finished schedules against it, and the api layer serializes it and
// folds its canonical form into request identity. Validation guarantees
// feasibility up front (every core alone fits the budget and has at least
// one allowed wire), so engines may treat a validated constraint set as
// always satisfiable.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace wtam::core {

/// Per-core test power estimates in arbitrary units.
using PowerVector = std::vector<std::int64_t>;

/// Wire interval [lo, hi) on the strip's x-axis.
struct WireInterval {
  int lo = 0;
  int hi = 0;
  [[nodiscard]] bool operator==(const WireInterval&) const = default;
};

/// Core `after` may not start testing before core `before` finishes.
struct PrecedencePair {
  int before = 0;
  int after = 0;
  [[nodiscard]] bool operator==(const PrecedencePair&) const = default;
};

/// One core tied to one wire interval (fixed or forbidden, per the list
/// it sits in).
struct CoreWireInterval {
  int core = 0;
  WireInterval wires;
  [[nodiscard]] bool operator==(const CoreWireInterval&) const = default;
};

/// Core may not start testing before `cycle`.
struct EarliestStart {
  int core = 0;
  std::int64_t cycle = 0;
  [[nodiscard]] bool operator==(const EarliestStart&) const = default;
};

struct ScheduleConstraints {
  /// Per-core power values (size == core count); meaningful only together
  /// with power_budget > 0. Both empty/zero = no power constraint.
  PowerVector power;
  std::int64_t power_budget = 0;  ///< peak concurrent power; 0 = unconstrained
  std::vector<PrecedencePair> precedence;
  /// Each listed core's rectangle must lie inside its interval (at most
  /// one interval per core).
  std::vector<CoreWireInterval> fixed;
  /// Each listed core's rectangle must not overlap its interval (a core
  /// may carry several).
  std::vector<CoreWireInterval> forbidden;
  std::vector<EarliestStart> earliest;

  [[nodiscard]] bool has_power() const noexcept { return power_budget > 0; }

  /// True when no constraint class is populated — engines take their
  /// unconstrained fast path and request keys render nothing. A nonzero
  /// budget of either sign counts as populated, so a negative budget
  /// reaches validate_constraints and is rejected instead of silently
  /// running unconstrained.
  [[nodiscard]] bool empty() const noexcept {
    return power_budget == 0 && power.empty() && precedence.empty() &&
           fixed.empty() && forbidden.empty() && earliest.empty();
  }

  [[nodiscard]] bool operator==(const ScheduleConstraints&) const = default;
};

/// Sorted, deduplicated copy — the canonical form request identity and
/// equality comparisons rely on (two phrasings of the same constraint set
/// normalize identically).
[[nodiscard]] ScheduleConstraints normalized(ScheduleConstraints constraints);

/// Stable one-line rendering of the normalized constraints; "" when
/// empty. Folded into api::RequestKey's canonical options, so the format
/// is a persistence contract (pinned by tests):
///   "power=p0:p1:...;budget=B;prec=b>a,...;fixed=c@lo-hi,...;
///    forbid=c@lo-hi,...;earliest=c@t,..."
[[nodiscard]] std::string canonical_constraints(
    const ScheduleConstraints& constraints);

/// Checks `constraints` against a model and returns every violation
/// found (empty = valid): power vector sized to the core count with
/// non-negative entries and budget set iff powers are, no single core
/// above the budget (infeasible outright), precedence indices in range
/// with no self-pairs and no cycles, wire intervals well-formed
/// (0 <= lo < hi <= total_width) with at most one fixed interval per
/// core, at least one allowed wire per core once fixed/forbidden
/// intervals are applied, and non-negative earliest-start cycles with at
/// most one per core. Pass core_count < 0 or total_width < 0 to skip the
/// checks that need the respective bound (structural pre-validation
/// before a SOC is resolved).
[[nodiscard]] std::vector<std::string> validate_constraints(
    const ScheduleConstraints& constraints, int core_count, int total_width);

/// Thrown by a backend asked to honor a constraint class it does not
/// implement. The api::Solver maps it to Status::InvalidRequest with the
/// message (which always starts with "unsupported_constraint:"), so the
/// unified outcome stays honest instead of silently ignoring constraints.
class UnsupportedConstraintError : public std::invalid_argument {
 public:
  /// `backend` names the engine, `what` the constraint classes it cannot
  /// honor (e.g. "precedence, fixed").
  UnsupportedConstraintError(const std::string& backend,
                             const std::string& what)
      : std::invalid_argument("unsupported_constraint: the " + backend +
                              " backend does not support " + what) {}
};

}  // namespace wtam::core
