// Pluggable optimizer backends.
//
// Every co-optimization engine in the repo is reachable through one seam:
// an OptimizerBackend turns (testing-time table, total width, options)
// into a unified BackendOutcome — the makespan, a wire-level
// PackedSchedule (validator-checkable and Gantt-renderable regardless of
// which engine produced it), the CPU time, and backend-specific detail
// lines. The registry maps names to backends so tools, benches, and
// future engines (simulated annealing, branch & bound over packings, ...)
// plug in without touching call sites. Two backends ship today:
//   * "enumerative" — the source paper's flow (Partition_evaluate + one
//     exact re-optimization), wrapping core::co_optimize;
//   * "rectpack"    — rectangle packing over Pareto wrapper rectangles
//     (pack/rectpack.hpp, the arXiv:1008.3320 / arXiv:1008.4448 model).

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/constraints.hpp"
#include "core/solve_context.hpp"
#include "core/tam_types.hpp"
#include "core/test_time_table.hpp"
#include "pack/packed_schedule.hpp"
#include "pack/rectpack.hpp"

namespace wtam::core {

struct BackendOptions {
  /// TAM-count range for architecture-enumerating backends.
  int min_tams = 1;
  int max_tams = 10;
  /// Worker threads (honored by backends with parallel searches).
  int threads = 1;
  /// Run the exact re-optimization step (enumerative backend).
  bool run_final_step = true;
  /// Options for the rectangle-packing backend.
  pack::RectPackOptions rectpack;
  /// Scenario constraints the schedule must honor. rectpack is
  /// constraint-complete; the enumerative backend honors the power
  /// budget (via the test-bus power machinery) and throws
  /// UnsupportedConstraintError for the other classes, which the Solver
  /// reports as invalid_request — never silently ignored.
  ScheduleConstraints constraints;
};

struct BackendOutcome {
  std::string backend;
  std::int64_t testing_time = 0;  ///< makespan of `schedule`
  /// Unified wire-level schedule; passes pack::validate_packed_schedule
  /// for every backend.
  pack::PackedSchedule schedule;
  /// Present when the backend produced a static test-bus architecture.
  std::optional<TamArchitecture> architecture;
  double cpu_s = 0.0;
  /// None when the search ran to completion; otherwise the context fired
  /// and this outcome is the best-so-far incumbent (still validator-clean).
  SolveInterrupt interrupt = SolveInterrupt::None;
  /// Backend-specific key/value lines for human-readable reports.
  std::vector<std::pair<std::string, std::string>> details;
};

class OptimizerBackend {
 public:
  virtual ~OptimizerBackend() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;
  /// Runs the engine. `context` is polled cooperatively: on cancellation
  /// or deadline expiry the backend stops at its next poll point and
  /// returns its best-so-far outcome with `interrupt` set; every backend
  /// completes at least one candidate first, so the returned schedule is
  /// always valid.
  [[nodiscard]] virtual BackendOutcome optimize(
      const TestTimeTable& table, int total_width,
      const BackendOptions& options, const SolveContext& context) const = 0;
  /// Convenience: optimize with an inert context (never interrupts).
  [[nodiscard]] BackendOutcome optimize(const TestTimeTable& table,
                                        int total_width,
                                        const BackendOptions& options) const {
    return optimize(table, total_width, options, SolveContext{});
  }
};

/// Name -> backend registry. The built-in backends are registered on
/// first access; additional backends may be registered at startup
/// (registration is not synchronized — do it before spawning threads).
class BackendRegistry {
 public:
  [[nodiscard]] static BackendRegistry& instance();

  /// Registers `backend` under its name. Returns true when newly
  /// registered; returns false (a no-op) when a backend with the same
  /// name AND description is already present, making repeated
  /// registration from tests idempotent. Throws std::invalid_argument on
  /// a null backend or on a name collision with a *different* backend —
  /// the message quotes the existing backend's description. The registry
  /// is unchanged on every failure path.
  bool register_backend(std::unique_ptr<OptimizerBackend> backend);

  /// nullptr when `name` is unknown.
  [[nodiscard]] const OptimizerBackend* find(std::string_view name) const;

  /// Throws std::invalid_argument listing the registered names.
  [[nodiscard]] const OptimizerBackend& at(std::string_view name) const;

  /// Registered names, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Registered backends, in registration order (for listings — one
  /// scan yields both names and descriptions).
  [[nodiscard]] std::vector<const OptimizerBackend*> backends() const;

 private:
  BackendRegistry();
  std::vector<std::unique_ptr<OptimizerBackend>> backends_;
};

// NOTE: the run_backend free function that used to live here (deprecated
// in PR 3) is gone. Drive engines through the job-oriented api::Solver
// (src/api/solver.hpp) — it adds request validation, status reporting,
// deadlines, cancellation, result caching, and parallel batches; code
// that genuinely needs the raw seam (backend-level tests) calls
// BackendRegistry::instance().at(name).optimize(...) directly.

}  // namespace wtam::core
