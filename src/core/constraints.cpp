#include "core/constraints.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace wtam::core {

namespace {

bool interval_well_formed(const WireInterval& wires, int total_width) {
  return wires.lo >= 0 && wires.lo < wires.hi &&
         (total_width < 0 || wires.hi <= total_width);
}

std::string interval_label(const CoreWireInterval& entry) {
  return "core " + std::to_string(entry.core) + " wires [" +
         std::to_string(entry.wires.lo) + "," +
         std::to_string(entry.wires.hi) + ")";
}

/// Kahn's algorithm over the precedence edges; returns false when a cycle
/// remains (only called once indices are known to be in range).
bool precedence_is_acyclic(const std::vector<PrecedencePair>& precedence,
                           int core_count) {
  std::vector<int> in_degree(static_cast<std::size_t>(core_count), 0);
  std::vector<std::vector<int>> successors(
      static_cast<std::size_t>(core_count));
  for (const auto& pair : precedence) {
    successors[static_cast<std::size_t>(pair.before)].push_back(pair.after);
    ++in_degree[static_cast<std::size_t>(pair.after)];
  }
  std::vector<int> ready;
  for (int i = 0; i < core_count; ++i)
    if (in_degree[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  int ordered = 0;
  while (!ready.empty()) {
    const int core = ready.back();
    ready.pop_back();
    ++ordered;
    for (const int next : successors[static_cast<std::size_t>(core)])
      if (--in_degree[static_cast<std::size_t>(next)] == 0)
        ready.push_back(next);
  }
  return ordered == core_count;
}

}  // namespace

ScheduleConstraints normalized(ScheduleConstraints constraints) {
  const auto by_core_then_wires = [](const CoreWireInterval& a,
                                     const CoreWireInterval& b) {
    if (a.core != b.core) return a.core < b.core;
    if (a.wires.lo != b.wires.lo) return a.wires.lo < b.wires.lo;
    return a.wires.hi < b.wires.hi;
  };
  std::sort(constraints.precedence.begin(), constraints.precedence.end(),
            [](const PrecedencePair& a, const PrecedencePair& b) {
              return a.before != b.before ? a.before < b.before
                                          : a.after < b.after;
            });
  constraints.precedence.erase(
      std::unique(constraints.precedence.begin(),
                  constraints.precedence.end()),
      constraints.precedence.end());
  std::sort(constraints.fixed.begin(), constraints.fixed.end(),
            by_core_then_wires);
  constraints.fixed.erase(
      std::unique(constraints.fixed.begin(), constraints.fixed.end()),
      constraints.fixed.end());
  std::sort(constraints.forbidden.begin(), constraints.forbidden.end(),
            by_core_then_wires);
  constraints.forbidden.erase(
      std::unique(constraints.forbidden.begin(), constraints.forbidden.end()),
      constraints.forbidden.end());
  std::sort(constraints.earliest.begin(), constraints.earliest.end(),
            [](const EarliestStart& a, const EarliestStart& b) {
              return a.core != b.core ? a.core < b.core : a.cycle < b.cycle;
            });
  constraints.earliest.erase(
      std::unique(constraints.earliest.begin(), constraints.earliest.end()),
      constraints.earliest.end());
  return constraints;
}

std::string canonical_constraints(const ScheduleConstraints& raw) {
  if (raw.empty()) return {};
  const ScheduleConstraints constraints = normalized(raw);
  std::ostringstream out;
  const char* separator = "";
  if (!constraints.power.empty()) {
    out << "power=";
    for (std::size_t i = 0; i < constraints.power.size(); ++i)
      out << (i == 0 ? "" : ":") << constraints.power[i];
    separator = ";";
  }
  if (constraints.power_budget != 0) {
    out << separator << "budget=" << constraints.power_budget;
    separator = ";";
  }
  if (!constraints.precedence.empty()) {
    out << separator << "prec=";
    for (std::size_t i = 0; i < constraints.precedence.size(); ++i)
      out << (i == 0 ? "" : ",") << constraints.precedence[i].before << ">"
          << constraints.precedence[i].after;
    separator = ";";
  }
  const auto render_intervals = [&](const char* key,
                                    const std::vector<CoreWireInterval>& set) {
    if (set.empty()) return;
    out << separator << key << "=";
    for (std::size_t i = 0; i < set.size(); ++i)
      out << (i == 0 ? "" : ",") << set[i].core << "@" << set[i].wires.lo
          << "-" << set[i].wires.hi;
    separator = ";";
  };
  render_intervals("fixed", constraints.fixed);
  render_intervals("forbid", constraints.forbidden);
  if (!constraints.earliest.empty()) {
    out << separator << "earliest=";
    for (std::size_t i = 0; i < constraints.earliest.size(); ++i)
      out << (i == 0 ? "" : ",") << constraints.earliest[i].core << "@"
          << constraints.earliest[i].cycle;
  }
  return out.str();
}

std::vector<std::string> validate_constraints(
    const ScheduleConstraints& constraints, int core_count, int total_width) {
  std::vector<std::string> issues;
  const auto complain = [&issues](const std::string& message) {
    issues.push_back(message);
  };
  const auto core_known = [core_count](int core) {
    return core >= 0 && (core_count < 0 || core < core_count);
  };

  // ---- power ---------------------------------------------------------------
  if (constraints.power_budget < 0)
    complain("power_budget must be >= 0 (0 = unconstrained)");
  if (constraints.power_budget > 0 && constraints.power.empty())
    complain("power_budget set without per-core power values");
  if (!constraints.power.empty() && constraints.power_budget <= 0)
    complain("per-core power values set without a positive power_budget");
  if (core_count >= 0 && !constraints.power.empty() &&
      static_cast<int>(constraints.power.size()) != core_count)
    complain("power vector has " + std::to_string(constraints.power.size()) +
             " entries for " + std::to_string(core_count) + " cores");
  for (std::size_t i = 0; i < constraints.power.size(); ++i) {
    const std::int64_t p = constraints.power[i];
    if (p < 0)
      complain("core " + std::to_string(i) + " power " + std::to_string(p) +
               " is negative");
    else if (constraints.power_budget > 0 && p > constraints.power_budget)
      complain("core " + std::to_string(i) + " power " + std::to_string(p) +
               " alone exceeds the budget " +
               std::to_string(constraints.power_budget) + " (infeasible)");
  }

  // ---- precedence ----------------------------------------------------------
  bool precedence_indices_ok = true;
  for (const auto& pair : constraints.precedence) {
    if (!core_known(pair.before) || !core_known(pair.after)) {
      complain("precedence pair " + std::to_string(pair.before) + ">" +
               std::to_string(pair.after) + " references an unknown core");
      precedence_indices_ok = false;
    } else if (pair.before == pair.after) {
      complain("precedence pair " + std::to_string(pair.before) + ">" +
               std::to_string(pair.after) + " is a self-dependency");
      precedence_indices_ok = false;
    }
  }
  if (core_count >= 0 && precedence_indices_ok &&
      !constraints.precedence.empty() &&
      !precedence_is_acyclic(constraints.precedence, core_count))
    complain("precedence pairs form a cycle");

  // ---- wire intervals ------------------------------------------------------
  std::vector<int> fixed_seen;
  for (const auto& entry : constraints.fixed) {
    if (!core_known(entry.core))
      complain("fixed interval references unknown core " +
               std::to_string(entry.core));
    if (!interval_well_formed(entry.wires, total_width))
      complain("fixed " + interval_label(entry) +
               ": interval must satisfy 0 <= lo < hi <= total width");
    if (std::find(fixed_seen.begin(), fixed_seen.end(), entry.core) !=
        fixed_seen.end())
      complain("core " + std::to_string(entry.core) +
               " has more than one fixed interval");
    fixed_seen.push_back(entry.core);
  }
  for (const auto& entry : constraints.forbidden) {
    if (!core_known(entry.core))
      complain("forbidden interval references unknown core " +
               std::to_string(entry.core));
    if (!interval_well_formed(entry.wires, total_width))
      complain("forbidden " + interval_label(entry) +
               ": interval must satisfy 0 <= lo < hi <= total width");
  }

  // Per-core feasibility: the fixed window minus the forbidden intervals
  // must leave at least one wire (a width-1 rectangle is always a Pareto
  // candidate, so one allowed wire keeps every core placeable).
  if (core_count >= 0 && total_width >= 1) {
    for (int core = 0; core < core_count; ++core) {
      WireInterval window{0, total_width};
      bool constrained = false;
      for (const auto& entry : constraints.fixed)
        if (entry.core == core && interval_well_formed(entry.wires,
                                                       total_width)) {
          window = entry.wires;
          constrained = true;
        }
      std::vector<char> allowed(static_cast<std::size_t>(total_width), 0);
      for (int w = window.lo; w < window.hi; ++w)
        allowed[static_cast<std::size_t>(w)] = 1;
      for (const auto& entry : constraints.forbidden) {
        if (entry.core != core ||
            !interval_well_formed(entry.wires, total_width))
          continue;
        constrained = true;
        for (int w = entry.wires.lo; w < entry.wires.hi; ++w)
          allowed[static_cast<std::size_t>(w)] = 0;
      }
      if (constrained &&
          std::find(allowed.begin(), allowed.end(), char{1}) == allowed.end())
        complain("core " + std::to_string(core) +
                 " has no allowed wires once fixed/forbidden intervals "
                 "apply (infeasible)");
    }
  }

  // ---- earliest starts -----------------------------------------------------
  std::vector<int> earliest_seen;
  for (const auto& entry : constraints.earliest) {
    if (!core_known(entry.core))
      complain("earliest_start references unknown core " +
               std::to_string(entry.core));
    if (entry.cycle < 0)
      complain("core " + std::to_string(entry.core) + " earliest_start " +
               std::to_string(entry.cycle) + " is negative");
    if (std::find(earliest_seen.begin(), earliest_seen.end(), entry.core) !=
        earliest_seen.end())
      complain("core " + std::to_string(entry.core) +
               " has more than one earliest_start");
    earliest_seen.push_back(entry.core);
  }

  return issues;
}

}  // namespace wtam::core
