// Power-aware test scheduling (extension).
//
// The paper's related work ([4]: TAM design under place-and-route and
// power constraints) motivates a standard DFT constraint this module
// adds on top of the test-bus model: every concurrently tested core
// dissipates scan power, and the SOC-level peak must stay under a budget.
// Cores on one TAM already run sequentially; cores on different TAMs
// overlap, so the schedule's *order* and *start offsets* determine the
// peak. We provide:
//   * a default scan-activity power model (toggling bits per cycle ~
//     wrapper cells + scan flip-flops);
//   * the exact peak/profile of a schedule;
//   * a greedy power-constrained scheduler that delays test sessions
//     just enough to respect the budget (classic list scheduling with a
//     resource constraint), trading testing time for peak power.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/constraints.hpp"  // PowerVector lives with the constraints
#include "core/schedule.hpp"
#include "core/tam_types.hpp"
#include "core/test_time_table.hpp"

namespace wtam::core {

/// One [start, end) interval drawing `power` — the unit of the
/// peak-power-over-window helpers below, shared by every consumer of an
/// instantaneous power profile (skyline placement, the hole-filling
/// compaction, the packed-schedule validator). Half-open on the right:
/// a span ending at t and a span starting at t never overlap.
struct PowerSpan {
  std::int64_t start = 0;
  std::int64_t end = 0;
  std::int64_t power = 0;
};

/// Peak of the piecewise-constant sum of `spans` over the window
/// [start, start + duration). The profile only changes at span starts,
/// so it is evaluated at `start` and at every span start strictly inside
/// the window — O(k^2) in the spans overlapping the window, O(1) extra
/// space (the packers call this per candidate start, so no sweep-line
/// allocation). Returns 0 for an empty window or no overlapping spans.
[[nodiscard]] std::int64_t peak_power_over_window(
    std::span<const PowerSpan> spans, std::int64_t start,
    std::int64_t duration);

/// True iff adding a `power`-draw rectangle over [start, start + duration)
/// on top of `spans` keeps every instant within `budget`. budget <= 0
/// means unconstrained (always fits). Early-outs on the first violating
/// breakpoint instead of computing the full peak.
[[nodiscard]] bool power_window_fits(std::span<const PowerSpan> spans,
                                     std::int64_t start, std::int64_t duration,
                                     std::int64_t power, std::int64_t budget);

/// Exact peak of the whole span profile (sweep line over start/end
/// events; 0 when empty). The validator's one-shot global check.
[[nodiscard]] std::int64_t peak_power(std::span<const PowerSpan> spans);

/// Incremental piecewise-constant power profile — the constrained-packing
/// hot-path replacement for rescanning a flat PowerSpan list per query.
///
/// The profile is stored as sorted breakpoints: `points_[i].load` is the
/// instantaneous load on [points_[i].time, points_[i+1].time); the load is
/// 0 before the first breakpoint and after the last (whose load is always
/// 0, since every added span ends). Adjacent breakpoints with equal loads
/// are coalesced on insertion, so long packs stop accumulating one
/// breakpoint per span end and the structure stays at the number of
/// *distinct-level* transitions. add() costs a binary search plus work
/// proportional to the breakpoints the new span overlaps (vector inserts
/// shift the tail, but after coalescing the array is short); every query
/// is a binary search plus a scan of the overlapped breakpoints — no
/// allocation, no full-profile rescans.
///
/// Query results are exactly the values the flat-span helpers above
/// compute over the same placements: the profile function is identical,
/// and earliest_fit probes `from` plus every load-drop breakpoint — the
/// only instants where window feasibility can flip from infeasible to
/// feasible (a flip needs the over-budget segment to leave the window,
/// i.e. a load drop; every drop is a span end, and coalescing only ever
/// removes non-drop points). The packers' determinism pins hold across
/// the span-list -> timeline swap because of this equivalence.
class PowerTimeline {
 public:
  struct Breakpoint {
    std::int64_t time = 0;
    std::int64_t load = 0;  ///< level on [time, next breakpoint's time)
  };

  /// Adds a `power`-draw span over [start, end). Empty spans (start >=
  /// end) and zero power are ignored; negative power throws
  /// std::invalid_argument (loads are sums of draws and never negative).
  void add(std::int64_t start, std::int64_t end, std::int64_t power);

  void clear() noexcept {
    points_.clear();
    peak_ = 0;
  }

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }

  /// Global peak of the profile, maintained incrementally (loads only
  /// ever grow, so the peak is the running max of every raised level).
  [[nodiscard]] std::int64_t peak() const noexcept { return peak_; }

  /// Peak load over [start, start + duration); 0 for an empty window.
  [[nodiscard]] std::int64_t peak_over_window(std::int64_t start,
                                              std::int64_t duration) const;

  /// True iff adding `power` over [start, start + duration) keeps every
  /// instant within `budget`. budget <= 0 means unconstrained. Same
  /// contract as core::power_window_fits over the equivalent span list.
  [[nodiscard]] bool window_fits(std::int64_t start, std::int64_t duration,
                                 std::int64_t power,
                                 std::int64_t budget) const;

  /// Earliest start >= `from` at which `power` more units fit under
  /// `budget` for `duration` cycles. Candidates are `from` and the
  /// load-drop breakpoints after it; bit-identical to probing every span
  /// end of the equivalent span list (see the class comment).
  [[nodiscard]] std::int64_t earliest_fit(std::int64_t from,
                                          std::int64_t duration,
                                          std::int64_t power,
                                          std::int64_t budget) const;

  /// The raw breakpoint array, for tests asserting the invariants
  /// (strictly increasing times, no adjacent equal loads, last load 0).
  [[nodiscard]] const std::vector<Breakpoint>& breakpoints() const noexcept {
    return points_;
  }

 private:
  /// Index of the segment whose half-open interval covers `t`, or -1 when
  /// t precedes the first breakpoint (level 0).
  [[nodiscard]] std::ptrdiff_t segment_before(std::int64_t t) const;

  std::vector<Breakpoint> points_;
  std::int64_t peak_ = 0;
};

/// Default model: power ~ scan activity = functional I/Os + scan bits
/// (every wrapper/scan cell toggles each shift cycle).
[[nodiscard]] PowerVector scan_activity_power(const soc::Soc& soc);

/// One step of the SOC power profile: [start, end) at `power`.
struct PowerStep {
  std::int64_t start = 0;
  std::int64_t end = 0;
  std::int64_t power = 0;
};

/// Exact piecewise-constant SOC power profile of a schedule.
[[nodiscard]] std::vector<PowerStep> power_profile(const TestSchedule& schedule,
                                                   const PowerVector& power);

/// Maximum of the profile (0 for an empty schedule).
[[nodiscard]] std::int64_t peak_power(const TestSchedule& schedule,
                                      const PowerVector& power);

struct PowerConstrainedResult {
  TestSchedule schedule;
  std::int64_t peak = 0;       ///< achieved peak (<= limit on success)
  bool feasible = false;       ///< false if some single core exceeds the limit
  std::int64_t idle_cycles = 0;  ///< total delay inserted vs unconstrained
};

/// Schedules the architecture under a peak-power budget: per TAM the
/// cores keep their (order-selected) sequence, but a session is delayed
/// until enough power headroom is available. Greedy earliest-start list
/// scheduling; with limit >= sum of all powers it reproduces
/// build_schedule exactly.
[[nodiscard]] PowerConstrainedResult schedule_with_power_limit(
    const TestTimeTable& table, const TamArchitecture& architecture,
    const PowerVector& power, std::int64_t limit,
    ScheduleOrder order = ScheduleOrder::AsAssigned);

}  // namespace wtam::core
