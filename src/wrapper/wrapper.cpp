#include "wrapper/wrapper.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "common/math_util.hpp"

namespace wtam::wrapper {

namespace {

/// Best-Fit-Decreasing pack of the internal scan chains into bins of the
/// given capacity; returns one vector of chain indices per opened bin.
/// `order` holds chain indices sorted by decreasing length.
std::vector<std::vector<int>> bfd_pack(const std::vector<int>& lengths,
                                       const std::vector<int>& order,
                                       std::int64_t capacity) {
  std::vector<std::vector<int>> bins;
  std::vector<std::int64_t> loads;
  for (const int idx : order) {
    const std::int64_t len = lengths[static_cast<std::size_t>(idx)];
    // Best fit: the fullest bin that still has room.
    int best = -1;
    std::int64_t best_load = -1;
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (loads[b] + len <= capacity && loads[b] > best_load) {
        best = static_cast<int>(b);
        best_load = loads[b];
      }
    }
    if (best < 0) {
      bins.emplace_back();
      loads.push_back(0);
      best = static_cast<int>(bins.size()) - 1;
    }
    bins[static_cast<std::size_t>(best)].push_back(idx);
    loads[static_cast<std::size_t>(best)] += len;
  }
  return bins;
}

/// Greedy water-filling: place `cells` one at a time on the wrapper chain
/// whose relevant length (selected by `length_of`) is currently minimal;
/// ties go to the lowest index. This minimizes the resulting maximum.
template <typename LengthFn, typename AddFn>
void distribute_cells(std::vector<WrapperChain>& chains, std::int64_t cells,
                      LengthFn length_of, AddFn add_cell) {
  if (cells <= 0 || chains.empty()) return;
  using Entry = std::pair<std::int64_t, int>;  // (length, chain index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t i = 0; i < chains.size(); ++i)
    heap.emplace(length_of(chains[i]), static_cast<int>(i));
  for (std::int64_t c = 0; c < cells; ++c) {
    const auto [len, idx] = heap.top();
    heap.pop();
    add_cell(chains[static_cast<std::size_t>(idx)]);
    heap.emplace(length_of(chains[static_cast<std::size_t>(idx)]), idx);
  }
}

/// Counts how few wrapper chains suffice to reach the same (si, so):
/// fill chains in index order up to the si/so water levels, opening a new
/// chain only when every open one is full ("reluctance", priority ii).
int compact_width(const soc::Core& core,
                  const std::vector<std::int64_t>& scan_loads,
                  std::int64_t si, std::int64_t so, int width) {
  std::int64_t need_in = core.num_inputs;
  std::int64_t need_out = core.num_outputs;
  std::int64_t need_bid = core.num_bidirs;
  int used = 0;
  for (int b = 0; b < width; ++b) {
    const std::int64_t scan =
        b < static_cast<int>(scan_loads.size()) ? scan_loads[static_cast<std::size_t>(b)] : 0;
    std::int64_t room_in = std::max<std::int64_t>(0, si - scan);
    std::int64_t room_out = std::max<std::int64_t>(0, so - scan);
    // Bidir cells consume a slot on both sides of the same chain.
    const std::int64_t bid = std::min({need_bid, room_in, room_out});
    need_bid -= bid;
    room_in -= bid;
    room_out -= bid;
    const std::int64_t in = std::min(need_in, room_in);
    need_in -= in;
    const std::int64_t out = std::min(need_out, room_out);
    need_out -= out;
    if (scan > 0 || bid > 0 || in > 0 || out > 0) used = b + 1;
    if (need_in == 0 && need_out == 0 && need_bid == 0 &&
        b + 1 >= static_cast<int>(scan_loads.size()))
      break;
  }
  return used;
}

}  // namespace

WrapperDesign design_wrapper(const soc::Core& core, int width) {
  if (width < 1)
    throw std::invalid_argument("design_wrapper: width must be >= 1");

  WrapperDesign design;
  design.tam_width = width;
  design.chains.resize(static_cast<std::size_t>(width));

  // --- Phase 1: partition internal scan chains (BFD bin packing). -------
  const auto& lengths = core.scan_chains;
  if (!lengths.empty()) {
    std::vector<int> order(lengths.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&lengths](int a, int b) {
      return lengths[static_cast<std::size_t>(a)] >
             lengths[static_cast<std::size_t>(b)];
    });

    // Start at the scheduling lower bound and relax the capacity until the
    // packing fits in `width` bins (dual bin-packing approximation).
    std::int64_t capacity = std::max<std::int64_t>(
        core.longest_scan_chain(),
        common::ceil_div(core.total_scan_bits(), width));
    std::vector<std::vector<int>> bins;
    for (;;) {
      bins = bfd_pack(lengths, order, capacity);
      if (static_cast<int>(bins.size()) <= width) break;
      ++capacity;
    }
    for (std::size_t b = 0; b < bins.size(); ++b) {
      auto& chain = design.chains[b];
      chain.internal_chain_indices = std::move(bins[b]);
      for (const int idx : chain.internal_chain_indices)
        chain.scan_bits += lengths[static_cast<std::size_t>(idx)];
    }
  }

  // --- Phase 2: distribute wrapper cells (water-filling). ---------------
  // Bidir cells first (they load both sides), then inputs on the scan-in
  // lengths, then outputs on the scan-out lengths.
  distribute_cells(
      design.chains, core.num_bidirs,
      [](const WrapperChain& c) {
        return std::max(c.scan_in_length(), c.scan_out_length());
      },
      [](WrapperChain& c) { ++c.bidir_cells; });
  distribute_cells(
      design.chains, core.num_inputs,
      [](const WrapperChain& c) { return c.scan_in_length(); },
      [](WrapperChain& c) { ++c.input_cells; });
  distribute_cells(
      design.chains, core.num_outputs,
      [](const WrapperChain& c) { return c.scan_out_length(); },
      [](WrapperChain& c) { ++c.output_cells; });

  for (const auto& chain : design.chains) {
    design.scan_in_length = std::max(design.scan_in_length, chain.scan_in_length());
    design.scan_out_length =
        std::max(design.scan_out_length, chain.scan_out_length());
  }
  design.test_time = test_time_formula(core.test_patterns,
                                       design.scan_in_length,
                                       design.scan_out_length);

  // --- Priority (ii): report the width actually needed. -----------------
  std::vector<std::int64_t> scan_loads;
  for (const auto& chain : design.chains)
    if (chain.scan_bits > 0) scan_loads.push_back(chain.scan_bits);
  std::sort(scan_loads.begin(), scan_loads.end(), std::greater<>());
  design.used_width = compact_width(core, scan_loads, design.scan_in_length,
                                    design.scan_out_length, width);
  return design;
}

std::int64_t test_time(const soc::Core& core, int width) {
  return design_wrapper(core, width).test_time;
}

WrapperDesign best_design(const soc::Core& core, int width) {
  WrapperDesign best = design_wrapper(core, 1);
  for (int w = 2; w <= width; ++w) {
    // Stop early once the absolute lower bound has been reached.
    if (best.test_time <= soc::min_test_time_bound(core)) break;
    WrapperDesign candidate = design_wrapper(core, w);
    if (candidate.test_time < best.test_time) best = std::move(candidate);
  }
  return best;
}

WrapperDesign design_wrapper_naive(const soc::Core& core, int width) {
  if (width < 1)
    throw std::invalid_argument("design_wrapper_naive: width must be >= 1");

  WrapperDesign design;
  design.tam_width = width;
  design.chains.resize(static_cast<std::size_t>(width));

  // Round-robin the internal chains in declaration order.
  for (std::size_t c = 0; c < core.scan_chains.size(); ++c) {
    auto& chain = design.chains[c % static_cast<std::size_t>(width)];
    chain.internal_chain_indices.push_back(static_cast<int>(c));
    chain.scan_bits += core.scan_chains[c];
  }
  // Split cells evenly by index, ignoring the scan imbalance.
  for (int cell = 0; cell < core.num_bidirs; ++cell)
    ++design.chains[static_cast<std::size_t>(cell % width)].bidir_cells;
  for (int cell = 0; cell < core.num_inputs; ++cell)
    ++design.chains[static_cast<std::size_t>(cell % width)].input_cells;
  for (int cell = 0; cell < core.num_outputs; ++cell)
    ++design.chains[static_cast<std::size_t>(cell % width)].output_cells;

  int used = 0;
  for (std::size_t c = 0; c < design.chains.size(); ++c) {
    const auto& chain = design.chains[c];
    design.scan_in_length = std::max(design.scan_in_length, chain.scan_in_length());
    design.scan_out_length =
        std::max(design.scan_out_length, chain.scan_out_length());
    if (!chain.empty()) used = static_cast<int>(c) + 1;
  }
  design.used_width = used;
  design.test_time = test_time_formula(core.test_patterns,
                                       design.scan_in_length,
                                       design.scan_out_length);
  return design;
}

std::vector<int> pareto_widths(const soc::Core& core, int max_width) {
  std::vector<int> widths;
  std::int64_t last = -1;
  for (int w = 1; w <= max_width; ++w) {
    const std::int64_t t = test_time(core, w);
    if (last < 0 || t < last) {
      widths.push_back(w);
      last = t;
    }
  }
  return widths;
}

}  // namespace wtam::wrapper
