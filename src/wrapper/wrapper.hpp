// P_W: test wrapper design for a single embedded core (paper §2, and [8]).
//
// A wrapper connects a core's functional terminals and internal scan chains
// to `width` TAM wires by building at most `width` *wrapper scan chains*.
// Internal scan chains are indivisible; wrapper input/output cells are
// appended to the wrapper chains. With
//   si = length of the longest wrapper scan-IN chain,
//   so = length of the longest wrapper scan-OUT chain,
// the core testing time for p patterns is
//   T = (1 + max(si, so)) * p + min(si, so)
// (pipeline: shift-in overlapped with shift-out of the previous pattern,
// plus one final scan-out).
//
// Design_wrapper has two priorities (paper §2): (i) minimize T, which means
// balancing wrapper chain lengths, and (ii) minimize the TAM width actually
// used, via a built-in reluctance to open new wrapper chains. We implement
// (i) with Best-Fit-Decreasing bin packing of the internal scan chains
// (capacity = the bin-packing lower bound, relaxed until <= width bins
// suffice) followed by water-filling of the I/O cells, and (ii) with a
// compaction pass that counts how few wrapper chains reach the same
// (si, so).

#pragma once

#include <cstdint>
#include <vector>

#include "soc/core.hpp"

namespace wtam::wrapper {

/// One wrapper scan chain: which internal chains it carries plus cell counts.
struct WrapperChain {
  std::vector<int> internal_chain_indices;  ///< indices into Core::scan_chains
  std::int64_t scan_bits = 0;               ///< summed internal chain length
  std::int64_t input_cells = 0;
  std::int64_t output_cells = 0;
  std::int64_t bidir_cells = 0;  ///< counted on both the in- and out-side

  [[nodiscard]] std::int64_t scan_in_length() const noexcept {
    return scan_bits + input_cells + bidir_cells;
  }
  [[nodiscard]] std::int64_t scan_out_length() const noexcept {
    return scan_bits + output_cells + bidir_cells;
  }
  [[nodiscard]] bool empty() const noexcept {
    return scan_bits == 0 && input_cells == 0 && output_cells == 0 &&
           bidir_cells == 0;
  }
};

/// Result of designing a wrapper at a given TAM width.
struct WrapperDesign {
  int tam_width = 0;   ///< width the wrapper was designed for
  int used_width = 0;  ///< wrapper chains actually needed for the same (si,so)
  std::int64_t scan_in_length = 0;   ///< si
  std::int64_t scan_out_length = 0;  ///< so
  std::int64_t test_time = 0;        ///< T
  std::vector<WrapperChain> chains;  ///< exactly tam_width entries
};

/// Core testing-time formula of [8].
[[nodiscard]] constexpr std::int64_t test_time_formula(std::int64_t patterns,
                                                       std::int64_t si,
                                                       std::int64_t so) noexcept {
  const std::int64_t longer = si > so ? si : so;
  const std::int64_t shorter = si > so ? so : si;
  return (1 + longer) * patterns + shorter;
}

/// Designs a wrapper using exactly `width` wires (Design_wrapper of [8]).
/// Throws std::invalid_argument for width < 1.
[[nodiscard]] WrapperDesign design_wrapper(const soc::Core& core, int width);

/// Testing time of `core` wrapped at exactly `width` (no envelope).
[[nodiscard]] std::int64_t test_time(const soc::Core& core, int width);

/// A TAM of width w can always leave wires idle, so the *effective* testing
/// time at width w is the minimum over all widths <= w. This returns the
/// best design with tam_width <= width (the monotone envelope used by all
/// optimization algorithms; its used_width reports the winning width).
[[nodiscard]] WrapperDesign best_design(const soc::Core& core, int width);

/// Widths 1..max_width at which the effective testing time strictly
/// improves — the "Pareto-optimal" TAM widths for this core. Assigning the
/// core to a wider TAM than the last entry only wastes wires (paper §1's
/// idle-TAM-wire argument).
[[nodiscard]] std::vector<int> pareto_widths(const soc::Core& core,
                                             int max_width);

/// Ablation baseline: a naive wrapper that round-robins internal scan
/// chains over the wires in input order (no BFD balancing) and splits
/// I/O cells evenly. Quantifies what Design_wrapper's balancing buys
/// (priority (i) of P_W). Same result structure as design_wrapper.
[[nodiscard]] WrapperDesign design_wrapper_naive(const soc::Core& core,
                                                 int width);

}  // namespace wtam::wrapper
